"""A6 — extension: synchronous CTS2 vs the asynchronous decentralized scheme.

§6 announces the future work we implemented in
:mod:`repro.variants.cts_async`: replace the master–slave rendezvous with a
decentralized asynchronous blackboard.  This bench compares the two at
equal per-processor budgets across the MK suite.

Expected shape: comparable solution quality, with the asynchronous scheme
showing *zero* barrier idle time (the synchronous scheme's idle ratio is
its structural overhead).
"""

from __future__ import annotations

import pytest

from repro.analysis import load_balance, render_generic
from repro.instances import mk_suite
from repro.variants import solve_cts2, solve_cts_async

from common import publish, scaled

SEEDS = (0, 1)
EVALS = 40_000
N = 8


def run_comparison():
    rows = []
    sync_total = 0.0
    async_total = 0.0
    for inst in mk_suite():
        for seed in SEEDS:
            sync = solve_cts2(
                inst, n_slaves=N, n_rounds=8, rng_seed=seed,
                max_evaluations=scaled(EVALS),
            )
            asyn = solve_cts_async(
                inst, n_threads=N, rng_seed=seed, max_evaluations=scaled(EVALS)
            )
            sync_total += sync.best.value
            async_total += asyn.best.value
            if seed == 0:
                rows.append(
                    [
                        inst.name,
                        round(sync.best.value),
                        round(asyn.best.value),
                        f"{100 * load_balance(sync.trace).idle_ratio:.2f}%",
                        f"{100 * load_balance(asyn.trace).idle_ratio:.2f}%",
                    ]
                )
    return rows, sync_total, async_total


@pytest.mark.benchmark(group="extension")
def test_async_vs_sync(benchmark, capsys):
    rows, sync_total, async_total = benchmark.pedantic(
        run_comparison, rounds=1, iterations=1
    )
    body = render_generic(
        ["problem", "CTS2 (sync)", "CTS-async", "sync idle", "async idle"], rows
    )
    body += (
        f"\n\naggregate value — sync: {sync_total:,.0f}, async: {async_total:,.0f}"
    )
    publish("async_vs_sync", "A6 — synchronous vs asynchronous cooperation", body, capsys)

    # Async removes all barrier idling by construction.
    assert all(r[4] == "0.00%" for r in rows)
    # Quality stays comparable (within 3% aggregate).
    assert async_total >= 0.97 * sync_total
