"""E2 — extension workload: the Chu–Beasley grid (post-paper benchmark).

The paper predates Chu & Beasley's 1998 OR-Library suite, which became the
standard MKP benchmark.  This bench runs CTS2 over a stratified sample of
our CB-layout reconstruction (one instance per (m, r) stratum at n=100)
and reports LP-relative deviations — demonstrating the method generalizes
beyond its own 1997 test bed and mapping how tightness and constraint
count drive difficulty.

Expected shape: deviation grows with m (more constraints = harder) and
shrinks with r (looser capacity = easier), the canonical CB difficulty
surface.
"""

from __future__ import annotations

import pytest

from repro.analysis import deviation_percent, render_generic
from repro.exact import solve_lp_relaxation
from repro.instances import cb_instance
from repro.instances.chu_beasley import CB_MS, CB_RS

from common import publish, scaled

N = 100
EVALS = 60_000


def run_grid():
    rows = []
    by_m: dict[int, list[float]] = {m: [] for m in CB_MS}
    by_r: dict[float, list[float]] = {r: [] for r in CB_RS}
    from repro.variants import solve_cts2

    for m in CB_MS:
        for r in CB_RS:
            inst = cb_instance(m, N, r, 0)
            lp = solve_lp_relaxation(inst)
            result = solve_cts2(
                inst, n_slaves=8, n_rounds=6, rng_seed=0,
                max_evaluations=scaled(EVALS),
            )
            dev = deviation_percent(result.best.value, lp.value)
            by_m[m].append(dev)
            by_r[r].append(dev)
            rows.append([f"m={m}", f"r={r}", round(result.best.value), round(dev, 3)])
    return rows, by_m, by_r


@pytest.mark.benchmark(group="extension")
def test_cb_extension(benchmark, capsys):
    rows, by_m, by_r = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    body = render_generic(["m", "tightness", "CTS2 best", "dev vs LP %"], rows)
    publish(
        "cb_extension",
        "E2 — Chu–Beasley grid sample (n=100), CTS2 deviations vs LP",
        body,
        capsys,
    )

    mean = lambda xs: sum(xs) / len(xs)
    # Difficulty grows with the number of constraints...
    assert mean(by_m[30]) > mean(by_m[5])
    # ... and shrinks as capacities loosen.
    assert mean(by_r[0.25]) > mean(by_r[0.75])
