"""Service throughput: sustained jobs/sec and p99 time-to-first-round.

The service layer's whole pitch (DESIGN.md §5.6) is amortization: the
:class:`~repro.service.pool.SolverPool` keeps backends warm across jobs and
the :class:`~repro.service.cache.InstanceCache` shares hot tables, so a
job's startup cost under heavy concurrency should stay close to the
single-job case instead of re-paying construction per request.  This bench
drives one :class:`~repro.service.jobs.JobManager` exactly the way a
loaded deployment would:

* ``single job`` — one request on a fresh one-slot multiprocessing pool:
  the cold time-to-first-round (TTFR) baseline — process spawn, arena
  construction and hot-table build all included;
* ``concurrent batch`` — 64 simultaneous submits (8 in ``--smoke``) onto a
  2-slot multiprocessing pool at steady state (one warm-up job per slot
  runs before the clock starts, the way a deployed service is warm when
  load arrives): sustained jobs/sec, TTFR p50/p99, and the warm-path
  counters (lease affinity hits, backend warm reuses, cache hits) that
  explain *why* the tail stays flat — every job lands on live workers and
  skips spawn entirely.

TTFR is measured from run start (lease acquired, recorder attached) to the
first ``round_end`` event — the window the warm pool and instance cache
actually compress; queue wait is admission policy, not startup cost.  The
headline gate: concurrent p99 TTFR < 2x the single-job TTFR.  Results land
in ``benchmarks/results/BENCH_service.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py [--smoke]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
from pathlib import Path

import pytest

from repro.instances import gk_instance
from repro.obs import monotonic_s
from repro.service import JobManager, JobRequest, JobState, SolverPool

from common import publish, scaled

DEFAULT_OUT = Path(__file__).parent / "results" / "BENCH_service.json"

N_SLAVES = 4
POOL_SIZE = 2
N_ROUNDS = 6
# Per-slave budget, split over the rounds.  Sized so a round does real
# compute (tens of ms): with millisecond rounds the TTFR tail measures
# event-loop scheduling jitter, not the warm-pool startup cost under test.
EVALS_PER_JOB = 36_000
MP_CONTEXT = "fork"
GK_NUMBER = 10  # GK10-10x100


async def _first_round_t(manager: JobManager, job_id: str) -> float | None:
    """Seconds from run start to the job's first completed round."""
    async for event in manager.stream(job_id):
        if event.get("event") == "round_end":
            return float(event["t"])
    return None


async def _run_jobs(
    instance, n_jobs: int, pool_size: int, evals: int, *, prewarm: bool = False
) -> dict:
    pool = SolverPool.multiprocessing(
        pool_size, N_SLAVES, mp_context=MP_CONTEXT
    )
    manager = JobManager(pool)
    if prewarm:
        # One throwaway job per slot: _pick prefers never-bound slots, so
        # this binds every backend once and the timed batch is all-warm.
        warmups = [
            manager.submit(
                JobRequest(instance, n_rounds=1, max_evaluations=500)
            )
            for _ in range(pool_size)
        ]
        for warm_id in warmups:
            await manager.wait(warm_id)
    base = {
        "leases": pool.leases,
        "affinity_hits": pool.affinity_hits,
        "warm_reuses": sum(s.backend.warm_reuses for s in pool.slots()),
        "cache_hits": manager.cache.stats()["hits"],
    }
    t0 = monotonic_s()
    job_ids = [
        manager.submit(
            JobRequest(
                instance,
                n_rounds=N_ROUNDS,
                rng_seed=seed,
                max_evaluations=evals,
            )
        )
        for seed in range(n_jobs)
    ]
    ttfrs = await asyncio.gather(
        *(_first_round_t(manager, job_id) for job_id in job_ids)
    )
    statuses = [await manager.wait(job_id) for job_id in job_ids]
    elapsed = monotonic_s() - t0
    stats = {
        "leases": pool.leases - base["leases"],
        "affinity_hits": pool.affinity_hits - base["affinity_hits"],
        "warm_reuses": sum(s.backend.warm_reuses for s in pool.slots())
        - base["warm_reuses"],
        "cache_hits": manager.cache.stats()["hits"] - base["cache_hits"],
    }
    await manager.close()
    return {
        "elapsed_s": elapsed,
        "ttfrs": [t for t in ttfrs if t is not None],
        "all_done": all(s.state is JobState.DONE for s in statuses),
        "stats": stats,
    }


def _percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))]


def measure(*, smoke: bool = False) -> dict:
    n_jobs = 8 if smoke else 64
    evals = scaled(EVALS_PER_JOB)
    instance = gk_instance(GK_NUMBER)

    # Cold baseline: median of three fresh pools (one spawn each) — a
    # single sample makes the gate's denominator pure host-noise roulette.
    singles = [asyncio.run(_run_jobs(instance, 1, 1, evals)) for _ in range(3)]
    single = sorted(singles, key=lambda r: r["ttfrs"][0])[1]
    batch = asyncio.run(
        _run_jobs(instance, n_jobs, POOL_SIZE, evals, prewarm=True)
    )

    single_ttfr = single["ttfrs"][0]
    p50 = _percentile(batch["ttfrs"], 0.50)
    p99 = _percentile(batch["ttfrs"], 0.99)
    return {
        "instance": f"GK{GK_NUMBER:02d}",
        "n_slaves": N_SLAVES,
        "pool_size": POOL_SIZE,
        "n_rounds": N_ROUNDS,
        "evals_per_job": evals,
        "smoke": smoke,
        "single_job": {
            "ttfr_s": round(single_ttfr, 4),
            "wall_s": round(single["elapsed_s"], 4),
            "done": single["all_done"],
        },
        "concurrent": {
            "n_jobs": n_jobs,
            "wall_s": round(batch["elapsed_s"], 4),
            "jobs_per_sec": round(n_jobs / batch["elapsed_s"], 3),
            "ttfr_p50_s": round(p50, 4),
            "ttfr_p99_s": round(p99, 4),
            "ttfr_p99_over_single": round(p99 / single_ttfr, 3),
            "done": batch["all_done"],
            **batch["stats"],
        },
        "python": platform.python_version(),
    }


def render(data: dict) -> str:
    s, c = data["single_job"], data["concurrent"]
    p50_label = f"{c['n_jobs']} concurrent p50"
    p99_label = f"{c['n_jobs']} concurrent p99"
    return "\n".join(
        [
            f"{data['instance']}, {data['pool_size']}-slot mp pool, "
            f"P={data['n_slaves']}, {data['n_rounds']} rounds, "
            f"{data['evals_per_job']} evals/job",
            f"{'regime':<24} {'TTFR':>9} {'wall':>9}",
            f"{'single job (cold)':<24} {s['ttfr_s']:>8.3f}s {s['wall_s']:>8.3f}s"
            "   (median of 3)",
            f"{p50_label:<24} {c['ttfr_p50_s']:>8.3f}s",
            f"{p99_label:<24} {c['ttfr_p99_s']:>8.3f}s"
            f"   -> x{c['ttfr_p99_over_single']:.2f} of single (gate: < 2)",
            f"sustained throughput: {c['jobs_per_sec']:.2f} jobs/sec "
            f"({c['n_jobs']} jobs in {c['wall_s']:.2f}s)",
            f"warm path: {c['affinity_hits']}/{c['leases']} affinity leases, "
            f"{c['warm_reuses']} backend warm reuses, "
            f"{c['cache_hits']} instance-cache hits",
        ]
    )


def check(data: dict, *, smoke: bool) -> None:
    """Completion is a hard gate; the TTFR tail gate is the headline."""
    assert data["single_job"]["done"], "single job did not finish DONE"
    assert data["concurrent"]["done"], "a concurrent job did not finish DONE"
    n_jobs = data["concurrent"]["n_jobs"]
    # steady state: every timed lease lands on a slot warm on this instance
    assert data["concurrent"]["affinity_hits"] == n_jobs
    assert data["concurrent"]["warm_reuses"] == n_jobs
    assert data["concurrent"]["cache_hits"] == n_jobs
    ratio = data["concurrent"]["ttfr_p99_over_single"]
    assert ratio < 2.0, (
        f"p99 TTFR is x{ratio} of the single-job case (gate: < 2)"
    )


@pytest.mark.benchmark(group="service")
def test_service_throughput(benchmark, capsys):
    data = benchmark.pedantic(measure, kwargs={"smoke": True}, rounds=1)
    publish("service", "Solver service: jobs/sec and TTFR tail", render(data), capsys)
    check(data, smoke=True)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    data = measure(smoke=args.smoke)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(data, indent=2) + "\n")
    print(render(data))
    print(f"-> {args.out}")
    check(data, smoke=args.smoke)


if __name__ == "__main__":
    main()
