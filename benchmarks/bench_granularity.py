"""A10 — parallelism granularity: why the paper rejects sources 1–2.

§2 dismisses cost-function and neighborhood-evaluation parallelism as
"low level approaches" requiring specialized hardware, and picks parallel
search threads because coarse grain "minimiz[es] the communication
overhead between threads".  This bench makes that argument quantitative on
commodity hardware:

* ``vectorized``  — the library's actual kernel (numpy, single process);
* ``chunked``     — the same work split into 8 pieces in-process (upper
  bound for any fine-grain scheme: zero transport cost);
* ``process pool``— genuine source-2 parallelism: candidate chunks shipped
  to worker processes every move.

Expected shape: the process pool is orders of magnitude slower per
neighborhood scan than the vectorized kernel at MKP neighborhood sizes —
the communication-to-computation ratio the paper warns about.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis import render_generic
from repro.core import SearchState, greedy_solution
from repro.instances import mk_suite
from repro.parallel.neighborhood_eval import (
    ProcessPoolNeighborhoodEvaluator,
    drop_candidates_of,
    score_candidates,
    score_candidates_chunked,
)

from common import publish, scaled

REPEATS = 200


def run_measurement():
    inst = mk_suite()[4]  # 25x500: the *largest* neighborhood in the suite
    state = SearchState.from_solution(inst, greedy_solution(inst))
    i_star, cands = drop_candidates_of(state)
    n = scaled(REPEATS)

    t0 = time.perf_counter()
    for _ in range(n):
        score_candidates(inst, i_star, cands)
    t_vec = (time.perf_counter() - t0) / n

    t0 = time.perf_counter()
    for _ in range(n):
        score_candidates_chunked(inst, i_star, cands, 8)
    t_chunk = (time.perf_counter() - t0) / n

    with ProcessPoolNeighborhoodEvaluator(inst, n_workers=2) as pool:
        pool.evaluate(i_star, cands)  # warm up workers
        t0 = time.perf_counter()
        for _ in range(max(1, n // 10)):
            pool.evaluate(i_star, cands)
        t_pool = (time.perf_counter() - t0) / max(1, n // 10)

    rows = [
        ["vectorized (library kernel)", f"{t_vec * 1e6:.1f}", "1.0x"],
        ["chunked x8 (in-process)", f"{t_chunk * 1e6:.1f}", f"{t_chunk / t_vec:.1f}x"],
        ["process pool x2 (source 2)", f"{t_pool * 1e6:.1f}", f"{t_pool / t_vec:.1f}x"],
    ]
    return rows, t_vec, t_pool


@pytest.mark.benchmark(group="granularity")
def test_granularity(benchmark, capsys):
    rows, t_vec, t_pool = benchmark.pedantic(run_measurement, rounds=1, iterations=1)
    body = render_generic(
        ["evaluation scheme", "per-scan time (µs)", "slowdown"], rows
    )
    publish(
        "granularity",
        "A10 — neighborhood-evaluation granularity (MK5 drop scan)",
        body,
        capsys,
    )
    # The §2 claim: per-move process fan-out is catastrophically slower
    # than the coarse-grain design at MKP neighborhood sizes.
    assert t_pool > 10 * t_vec
