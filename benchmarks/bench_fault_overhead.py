"""No-fault overhead of the hardened (fault-tolerant) master loop.

The fault-injection layer (DESIGN.md §5.2) must be free when unused: with
an empty :class:`FaultPlan` the master's idempotency bookkeeping, the
``None``-task protocol, and the optional :class:`ChaosComm` interposition
may not cost a measurable fraction of a run.  This bench A/B-times the
same CTS2 search

* ``bare``  — ``fault_plan=None`` (the default production path), and
* ``armed`` — a non-empty plan whose events never fire (every message
  routed through ``ChaosComm``, every plan lookup taken),

interleaving the windows so host-load drift hits both arms equally, and
records the overhead into ``benchmarks/results/BENCH_fault_overhead.json``.
The acceptance bar is < 2% overhead versus the PR-1 kernel-layer baseline
run (``BENCH_kernels.json``), whose hot-path throughput is re-measured
here for reference.

Usage::

    PYTHONPATH=src python benchmarks/bench_fault_overhead.py
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import pytest

from repro.core import Budget
from repro.instances import correlated_instance
from repro.master import MasterConfig, MasterProcess
from repro.parallel import FaultEvent, FaultKind, FaultPlan, SerialBackend

from common import publish

DEFAULT_OUT = Path(__file__).parent / "results" / "BENCH_fault_overhead.json"
KERNELS_JSON = Path(__file__).parent / "results" / "BENCH_kernels.json"

N_SLAVES = 4
N_ROUNDS = 6
EVALS_PER_SLAVE = 120_000

#: Armed-but-inert plan: events address rounds the run never reaches, so
#: every ChaosComm decision and FaultPlan lookup executes with no effect.
NEVER_FIRING = FaultPlan(
    events=tuple(
        FaultEvent(1_000_000 + r, k, kind)
        for r in range(4)
        for k in range(N_SLAVES)
        for kind in (FaultKind.CRASH, FaultKind.DROP_REPORT)
    )
)


def one_run(plan: FaultPlan | None, *, rng_seed: int = 7) -> float:
    """Execute one hardened CTS2 run; returns the search's best value."""
    instance = correlated_instance(5, 100, rng=42, name="bench-fault-5x100")
    backend = SerialBackend(N_SLAVES, fault_plan=plan)
    config = MasterConfig(n_slaves=N_SLAVES, n_rounds=N_ROUNDS)
    master = MasterProcess(instance, config, backend, rng_seed=rng_seed)
    result = master.run(budget_per_slave=Budget(max_evaluations=EVALS_PER_SLAVE))
    return result.best.value


def measure(repeats: int = 5) -> dict:
    """Interleaved best-of-``repeats`` timing of the bare and armed arms.

    Best-of is the standard defense against scheduler noise; interleaving
    makes a slow drift in host load bias both arms the same way instead of
    whichever ran second.
    """
    one_run(None)  # warm caches, imports, allocator
    bare_times: list[float] = []
    armed_times: list[float] = []
    bare_value = armed_value = 0.0
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        bare_value = one_run(None)
        bare_times.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        armed_value = one_run(NEVER_FIRING)
        armed_times.append(time.perf_counter() - t0)
    if bare_value != armed_value:  # the inert plan must not change the search
        raise AssertionError(
            f"armed run diverged from bare run: {armed_value} != {bare_value}"
        )
    bare = min(bare_times)
    armed = min(armed_times)
    return {
        "repeats": max(1, repeats),
        "n_slaves": N_SLAVES,
        "n_rounds": N_ROUNDS,
        "evals_per_slave": EVALS_PER_SLAVE,
        "bare_seconds": round(bare, 4),
        "armed_seconds": round(armed, 4),
        "overhead_pct": round((armed - bare) / bare * 100.0, 2),
        "best_value": bare_value,
        "python": platform.python_version(),
    }


def kernel_reference() -> dict | None:
    """Re-measure the PR-1 hot path and compare against its recorded run."""
    if not KERNELS_JSON.exists():
        return None
    recorded = json.loads(KERNELS_JSON.read_text()).get("runs", {}).get(
        "kernel_hot_path"
    )
    if recorded is None:
        return None
    from bench_kernels import measure_hot_path

    now = measure_hot_path(seconds=1.5, repeats=2)
    return {
        "recorded_evals_per_sec": recorded["evals_per_sec"],
        "measured_evals_per_sec": now["evals_per_sec"],
        "ratio": round(now["evals_per_sec"] / recorded["evals_per_sec"], 3),
    }


def render(data: dict) -> str:
    lines = [
        f"{'arm':<10} {'seconds':>9}",
        f"{'bare':<10} {data['bare_seconds']:>9.4f}",
        f"{'armed':<10} {data['armed_seconds']:>9.4f}",
        f"no-fault overhead: {data['overhead_pct']:+.2f}%  (bar: < 2%)",
    ]
    ref = data.get("kernel_reference")
    if ref:
        lines.append(
            "kernel hot path vs PR-1 baseline: "
            f"{ref['measured_evals_per_sec']:.0f} / "
            f"{ref['recorded_evals_per_sec']:.0f} evals/s "
            f"(x{ref['ratio']:.2f})"
        )
    return "\n".join(lines)


@pytest.mark.benchmark(group="fault-overhead")
def test_fault_overhead(benchmark, capsys):
    data = benchmark.pedantic(measure, kwargs={"repeats": 3}, rounds=1)
    publish("fault_overhead", "No-fault overhead of the hardened loop",
            render(data), capsys)
    # Loose gate against gross regressions; the tracked JSON records the
    # tight < 2% figure under controlled repeats.
    assert data["overhead_pct"] < 10.0


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    data = measure(repeats=args.repeats)
    data["kernel_reference"] = kernel_reference()
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(data, indent=2) + "\n")
    print(render(data))
    print(f"-> {args.out}")


if __name__ == "__main__":
    main()
