"""A11 — problem decomposition (source 3) vs cooperative threads (source 4).

§2 mentions Taillard's decomposition parallelism as an alternative; the
paper instead cooperates over the *full* problem.  This bench compares
them at equal per-processor budgets across the MK suite.

Expected shape: CTS2 beats the decomposition on aggregate — splitting
capacities proportionally across item blocks loses the cross-block
trades an optimal packing exploits.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_generic
from repro.instances import mk_suite
from repro.variants import solve_cts2, solve_decomposition

from common import publish, scaled

SEEDS = (0, 1)
EVALS = 40_000
N = 4


def run_comparison():
    rows = []
    dec_total = 0.0
    cts_total = 0.0
    for inst in mk_suite():
        dec_vals = []
        cts_vals = []
        for seed in SEEDS:
            dec = solve_decomposition(
                inst, n_blocks=N, rng_seed=seed, max_evaluations=scaled(EVALS)
            )
            cts = solve_cts2(
                inst, n_slaves=N, n_rounds=6, rng_seed=seed,
                max_evaluations=scaled(EVALS),
            )
            dec_vals.append(dec.best.value)
            cts_vals.append(cts.best.value)
        dec_mean = sum(dec_vals) / len(dec_vals)
        cts_mean = sum(cts_vals) / len(cts_vals)
        dec_total += dec_mean
        cts_total += cts_mean
        rows.append(
            [
                inst.name,
                round(dec_mean),
                round(cts_mean),
                f"{100 * (cts_mean - dec_mean) / dec_mean:+.2f}%",
            ]
        )
    return rows, dec_total, cts_total


@pytest.mark.benchmark(group="extension")
def test_decomposition_vs_cooperative(benchmark, capsys):
    rows, dec_total, cts_total = benchmark.pedantic(
        run_comparison, rounds=1, iterations=1
    )
    body = render_generic(
        ["problem", "decomposition", "CTS2", "CTS2 advantage"], rows
    )
    publish(
        "decomposition",
        "A11 — decomposition (source 3) vs cooperative threads (source 4)",
        body,
        capsys,
    )
    assert cts_total >= dec_total, "cooperative search must win on aggregate"
