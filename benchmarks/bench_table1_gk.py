"""T1 — Table 1: computational results on the Glover–Kochenberger suite.

Paper's table: per size group, the maximum execution time and the
deviation in % of the best solution found by the parallel TS.

Our reproduction: CTS2 with 8 slaves on the simulated farm, structural
budget (the algorithm's own Nb_div/Nb_it loops decide when a slave round
ends, so "execution time" is an output, exactly as in the paper).
Deviation is measured against the LP upper bound (the true optimum is
unknown at these sizes), so the column *over-states* the real deviation
by the LP gap — EXPERIMENTS.md records this.

Expected shape (the claim under test): execution time grows with problem
size, and the deviation stays small (single-digit percent) across all
groups.
"""

from __future__ import annotations

import pytest

from repro.analysis import Table1Row, deviation_percent, render_table1
from repro.core import StrategyBounds, TabuSearchConfig
from repro.exact import solve_lp_relaxation
from repro.instances import GK_GROUPS, gk_group
from repro.master import MasterConfig
from repro.variants import solve_cts2

from common import publish, scaled

N_SLAVES = 8
ROUNDS = 3


def _reference_value(inst) -> float:
    """Proven optimum when B&B can close the instance quickly, else the LP
    bound (which over-states deviations by the integrality gap)."""
    if inst.n_items <= 100:
        from repro.exact import branch_and_bound

        bb = branch_and_bound(inst, node_limit=scaled(400_000))
        if bb.proven:
            return bb.value
    return solve_lp_relaxation(inst).value


def run_group(label: str) -> Table1Row:
    instances = gk_group(label)
    max_time = 0.0
    deviations = []
    for inst in instances:
        config = MasterConfig(
            n_slaves=N_SLAVES,
            n_rounds=ROUNDS,
            ts_config=TabuSearchConfig(
                nb_div=2, bounds=StrategyBounds(base_iterations=24)
            ),
            bounds=StrategyBounds(base_iterations=24),
        )
        result = solve_cts2(
            inst,
            rng_seed=0,
            max_evaluations=scaled(2_000_000),  # generous cap; structure ends first
            master_config=config,
        )
        reference = _reference_value(inst)
        deviations.append(deviation_percent(result.best.value, reference))
        max_time = max(max_time, result.virtual_seconds)
    m = instances[0].n_constraints
    ns = sorted(i.n_items for i in instances)
    size_label = f"{m}*{ns[0]}" if len(ns) == 1 else f"{m}*{ns[0]}..{ns[-1]}"
    return Table1Row(
        group=label,
        size_label=size_label,
        max_exec_time=max_time,
        mean_deviation_percent=sum(deviations) / len(deviations),
    )


def run_table1() -> list[Table1Row]:
    return [run_group(label) for label, _, _ in GK_GROUPS]


@pytest.mark.benchmark(group="table1")
def test_table1_gk(benchmark, capsys):
    rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    body = render_table1(rows)
    publish("table1_gk", "Table 1 — Glover–Kochenberger suite (CTS2, P=8)", body, capsys)

    # Shape assertions (paper-vs-measured recorded in EXPERIMENTS.md):
    # (1) deviations vs the LP bound stay single-digit.
    assert all(r.mean_deviation_percent < 10.0 for r in rows)
    # (2) the big 25xN group costs more time than the small 3xN group.
    by_group = {r.group: r for r in rows}
    assert by_group["18to22"].max_exec_time > by_group["1to4"].max_exec_time
