"""LP-core fixing: reduced-kernel throughput and CB quality vs full space.

PR 7 left the compute floor as the bottleneck: every kernel pass scans all
``n`` columns even when the root LP already pegs most variables.  ISSUE-8's
core fixing runs each slave on a reduced instance (the ``n_core`` most
ambiguous variables by ``|reduced cost|`` stay free, the rest are pinned to
their LP-rounded values).  This bench gates both halves of that claim:

* ``kernel`` — effective moves/sec of one warm
  :class:`~repro.parallel.runtime.SlaveRuntime` on GK24 (25x500, the
  ISSUE-7 transport-gate instance) with a ``core_ratio=0.5`` fixation
  pattern vs the full-space arena, from steady-state wall-budget runs.
  Two figures, because the repo has two clocks:

  - *effective* moves/sec — moves per virtual second in the farm cost
    model, whose unit is the candidate evaluation (``repro.farm``; every
    round budget and Table-2 experiment is denominated in it).  Reduced
    pools are ~half as wide, so each compound move charges ~half the
    evaluations: the headline >= 1.5x gate lives here, and it is what a
    fixed per-round evaluation budget actually buys.
  - wall-clock moves/sec — the host-measured figure.  The Python kernels
    carry per-pass fixed overhead that does not shrink with ``n``, so the
    wall win is smaller (~1.1-1.3x); the gate only pins that it never
    regresses.
* ``cb_quality`` — CTS2 deviations vs the LP bound over the E2
  Chu-Beasley sample (m in {5, 10, 30} x r in {0.25, 0.5, 0.75}, n=100)
  with and without adaptive core fixing, same budgets and seeds.  The gate
  pins the m=30 mean: core fixing must strictly improve on the full-space
  CTS2 run *and* (full runs) on the committed EXPERIMENTS.md E2 baseline
  row mean (5.01/2.08/1.55 -> 2.88%).

Results land in ``benchmarks/results/BENCH_core_fixing.json`` via the
shared schema (``common.write_bench_json``), which also refreshes
``BENCH_index.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_core_fixing.py [--smoke]
"""

from __future__ import annotations

import argparse
import platform

import pytest

from repro.analysis import deviation_percent, render_generic
from repro.core import Budget, Strategy, TabuSearchConfig, random_solution
from repro.core.reduction import shared_selector
from repro.exact import solve_lp_relaxation
from repro.instances import cb_instance, gk_instance
from repro.instances.chu_beasley import CB_MS, CB_RS
from repro.parallel import SlaveTask
from repro.parallel.runtime import SlaveRuntime
from repro.variants import solve_cts2

from common import publish, scaled, write_bench_json

GK_NUMBER = 24  # GK24-25x500: the ISSUE-7 transport-gate instance
CORE_RATIO = 0.5
CB_N = 100
CB_EVALS = 60_000

#: Headline gate: moves per *virtual* second (farm cost model, evaluation-
#: denominated — what a fixed per-round budget buys) at core_ratio=0.5.
EFFECTIVE_GATE = 1.5
EFFECTIVE_GATE_SMOKE = 1.35

#: Wall-clock moves/sec must not regress below the full-space arena (the
#: Python kernels' per-pass fixed overhead caps the wall win well below
#: the width ratio; the floor only pins "never slower").
WALL_GATE = 1.05
WALL_GATE_SMOKE = 1.0

#: Quality gate (full runs): with-core m=30 mean deviation must land
#: strictly below the committed EXPERIMENTS.md E2 baseline row mean
#: ((5.01 + 2.08 + 1.55) / 3) as well as below the same-run full-space arm.
CB_BASELINE_M30_MEAN = 2.88


# --------------------------------------------------------------------- #
# Arm A: effective moves/sec, reduced vs full-space kernel on GK24
# --------------------------------------------------------------------- #
def measure_kernel(wall_s: float, repeats: int) -> dict:
    """Warm-arena A/B: identical wall budgets, with and without the pattern.

    Both arms run on one :class:`SlaveRuntime` (so the reduced arena is a
    cache entry next to the full one, exactly the production layout) over
    interleaved ``wall_s``-second steady-state runs.  Accepted compound
    moves and charged candidate evaluations come off the report; the
    evaluation-denominated ratio aggregates over every repeat (it is a
    counter ratio, immune to host-load drift), the wall figure takes
    best-of per arm.
    """
    instance = gk_instance(GK_NUMBER)
    selector = shared_selector(instance)
    pattern = selector.pattern(CORE_RATIO, variant=0)
    runtime = SlaveRuntime(instance, TabuSearchConfig(nb_div=10_000), slave_id=0)
    arms = {"full": None, "core": pattern}
    wall_mps = {label: 0.0 for label in arms}
    moves = {label: 0 for label in arms}
    evals = {label: 0 for label in arms}
    for label, pat in arms.items():  # warm-up: build + fault in both arenas
        runtime.execute(_kernel_task(instance, 0, Budget(max_evaluations=200), pat))
    for rep in range(1, max(1, repeats) + 1):
        for label, pat in arms.items():
            report = runtime.execute(
                _kernel_task(instance, rep, Budget(wall_seconds=wall_s), pat)
            )
            wall_mps[label] = max(
                wall_mps[label], report.moves / max(runtime.last_execute_s, 1e-9)
            )
            moves[label] += report.moves
            evals[label] += report.evaluations
    # Moves per charged evaluation: the farm model's virtual clock ticks
    # once per candidate evaluation, so this ratio IS moves per virtual
    # second (the per-evaluation tick rate cancels — m is unchanged).
    eff = {label: moves[label] / max(evals[label], 1) for label in arms}
    return {
        "instance": f"GK{GK_NUMBER:02d}",
        "n_items": instance.n_items,
        "n_core": pattern.n_core,
        "core_ratio": CORE_RATIO,
        "wall_seconds_per_run": wall_s,
        "repeats": max(1, repeats),
        "full_moves": moves["full"],
        "core_moves": moves["core"],
        "full_evaluations": evals["full"],
        "core_evaluations": evals["core"],
        "full_evals_per_move": round(evals["full"] / max(moves["full"], 1), 1),
        "core_evals_per_move": round(evals["core"] / max(moves["core"], 1), 1),
        "effective_speedup": round(eff["core"] / eff["full"], 3),
        "full_wall_moves_per_sec": round(wall_mps["full"], 1),
        "core_wall_moves_per_sec": round(wall_mps["core"], 1),
        "wall_speedup": round(wall_mps["core"] / wall_mps["full"], 3),
        "recores": runtime.recores,
        "core_tasks": runtime.core_tasks,
    }


def _kernel_task(instance, rep: int, budget: Budget, pattern) -> SlaveTask:
    return SlaveTask(
        x_init=random_solution(instance, rng=rep),
        strategy=Strategy(8, 2, 10),
        budget=budget,
        seed=1_000 + rep,
        round_index=rep,
        seq_id=rep,
        pattern=pattern,
    )


# --------------------------------------------------------------------- #
# Arm B: CB grid quality, adaptive core fixing vs full-space CTS2
# --------------------------------------------------------------------- #
def measure_cb(evals: int) -> dict:
    """The E2 grid twice: full-space CTS2 vs CTS2 with the adaptive core.

    ``core_ratio=0.5`` opens the SGP's adaptive range ``(0.5, 1.0)`` — the
    strategy-tuning loop narrows the core when elites disperse and widens
    it when they cluster, so this is the production knob, not a pinned
    ablation.  Budgets, seeds, and slave counts match the E2 baseline run
    exactly; only the core bounds differ between arms.
    """
    rows = []
    devs: dict[str, dict[int, list[float]]] = {
        "full": {m: [] for m in CB_MS},
        "core": {m: [] for m in CB_MS},
    }
    for m in CB_MS:
        for r in CB_RS:
            inst = cb_instance(m, CB_N, r, 0)
            lp = solve_lp_relaxation(inst)
            cells = {}
            for label, ratio in (("full", None), ("core", CORE_RATIO)):
                result = solve_cts2(
                    inst, n_slaves=8, n_rounds=6, rng_seed=0,
                    max_evaluations=evals, core_ratio=ratio,
                )
                dev = deviation_percent(result.best.value, lp.value)
                devs[label][m].append(dev)
                cells[label] = (result.best.value, dev)
            rows.append(
                [
                    f"m={m}",
                    f"r={r}",
                    round(cells["full"][0]),
                    round(cells["full"][1], 3),
                    round(cells["core"][0]),
                    round(cells["core"][1], 3),
                ]
            )
    mean = lambda xs: sum(xs) / len(xs)
    return {
        "n": CB_N,
        "evals": evals,
        "core_ratio": CORE_RATIO,
        "rows": rows,
        "mean_dev_by_m": {
            label: {str(m): round(mean(vals), 3) for m, vals in per_m.items()}
            for label, per_m in devs.items()
        },
        "m30_mean_full": round(mean(devs["full"][30]), 3),
        "m30_mean_core": round(mean(devs["core"][30]), 3),
        "m30_baseline_mean": CB_BASELINE_M30_MEAN,
    }


def measure(*, smoke: bool = False) -> dict:
    kernel_wall = 0.15 if smoke else 0.4
    kernel_repeats = 3 if smoke else 5
    cb_evals = scaled(CB_EVALS // 10 if smoke else CB_EVALS)
    return {
        "smoke": smoke,
        "kernel": measure_kernel(kernel_wall, kernel_repeats),
        "cb_quality": measure_cb(cb_evals),
        "python": platform.python_version(),
    }


def render(data: dict) -> str:
    k, cb = data["kernel"], data["cb_quality"]
    table = render_generic(
        ["m", "tightness", "full best", "full dev %", "core best", "core dev %"],
        cb["rows"],
    )
    return "\n".join(
        [
            f"kernel throughput ({k['instance']}, n={k['n_items']} -> "
            f"n_core={k['n_core']}, {k['wall_seconds_per_run']}s steady-state "
            f"runs x{k['repeats']}):",
            f"{'evals/move (farm cost)':<24} {k['full_evals_per_move']:>9.1f} full"
            f" {k['core_evals_per_move']:>9.1f} core"
            f"   -> x{k['effective_speedup']:.2f} effective moves/virtual-sec "
            f"(gate: >= {EFFECTIVE_GATE})",
            f"{'wall moves/sec':<24} {k['full_wall_moves_per_sec']:>9.1f} full"
            f" {k['core_wall_moves_per_sec']:>9.1f} core"
            f"   -> x{k['wall_speedup']:.2f} (floor: >= {WALL_GATE})",
            f"re-cores: {k['recores']}, reduced tasks served: {k['core_tasks']}",
            "",
            f"CB grid (n={cb['n']}, {cb['evals']} evals/slave, CTS2 x8, "
            f"adaptive core ({cb['core_ratio']}, 1.0)):",
            table,
            f"m=30 mean deviation: {cb['m30_mean_full']:.3f}% full-space vs "
            f"{cb['m30_mean_core']:.3f}% with core fixing "
            f"(E2 baseline row mean: {cb['m30_baseline_mean']}%)",
        ]
    )


def check(data: dict, *, smoke: bool) -> None:
    """The ISSUE-8 acceptance gates (thresholds softened in smoke)."""
    k, cb = data["kernel"], data["cb_quality"]
    eff_gate = EFFECTIVE_GATE_SMOKE if smoke else EFFECTIVE_GATE
    wall_gate = WALL_GATE_SMOKE if smoke else WALL_GATE
    assert k["effective_speedup"] >= eff_gate, (
        f"effective moves/virtual-sec speedup {k['effective_speedup']} "
        f"below {eff_gate}x"
    )
    assert k["wall_speedup"] >= wall_gate, (
        f"wall moves/sec speedup {k['wall_speedup']} below {wall_gate}x"
    )
    assert k["core_tasks"] > 0 and k["recores"] >= 1
    assert cb["m30_mean_core"] < cb["m30_mean_full"], (
        f"core fixing did not improve the m=30 mean: "
        f"{cb['m30_mean_core']} vs {cb['m30_mean_full']} full-space"
    )
    if not smoke:
        assert cb["m30_mean_core"] < cb["m30_baseline_mean"], (
            f"m=30 mean with core fixing {cb['m30_mean_core']}% not below "
            f"the {cb['m30_baseline_mean']}% E2 baseline row mean"
        )


def gates(data: dict, *, smoke: bool) -> dict:
    k, cb = data["kernel"], data["cb_quality"]
    eff_gate = EFFECTIVE_GATE_SMOKE if smoke else EFFECTIVE_GATE
    wall_gate = WALL_GATE_SMOKE if smoke else WALL_GATE
    return {
        "effective_speedup": {
            "value": k["effective_speedup"],
            "threshold": eff_gate,
            "passed": k["effective_speedup"] >= eff_gate,
        },
        "wall_speedup": {
            "value": k["wall_speedup"],
            "threshold": wall_gate,
            "passed": k["wall_speedup"] >= wall_gate,
        },
        "m30_mean_improves": {
            "value": cb["m30_mean_core"],
            "threshold": cb["m30_mean_full"],
            "passed": cb["m30_mean_core"] < cb["m30_mean_full"],
        },
        "m30_below_baseline": {
            "value": cb["m30_mean_core"],
            "threshold": cb["m30_baseline_mean"],
            "passed": cb["m30_mean_core"] < cb["m30_baseline_mean"],
        },
    }


@pytest.mark.benchmark(group="core-fixing")
def test_core_fixing(benchmark, capsys):
    data = benchmark.pedantic(measure, kwargs={"smoke": True}, rounds=1)
    publish(
        "core_fixing", "LP-core fixing: reduced kernels vs full space",
        render(data), capsys,
    )
    check(data, smoke=True)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    args = parser.parse_args(argv)

    data = measure(smoke=args.smoke)
    out = write_bench_json(
        "core_fixing",
        metrics={"kernel": data["kernel"], "cb_quality": data["cb_quality"]},
        gates=gates(data, smoke=args.smoke),
        meta={"smoke": args.smoke, "python": data["python"]},
    )
    print(render(data))
    print(f"-> {out}")
    check(data, smoke=args.smoke)


if __name__ == "__main__":
    main()
