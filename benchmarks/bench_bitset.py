"""Tracked benchmarks for the packed-bitset codec and move-selection layer.

Three numbers, all folded into ``benchmarks/results/BENCH_bitset.json``:

* **hot-path moves/sec** on the pinned GK24 instance (same compound-move
  workload as ``bench_kernels.measure_hot_path``), compared against the
  PR-1 flat-array kernel baseline re-measured on this host — target >= 1.5x;
* **wire bytes per master round** with the packed :class:`Solution` codec
  on vs. off (off reproduces the historical dense-ndarray pickle), measured
  from ``MessageRouter.total_bytes`` over identical synchronous rounds —
  target >= 5x reduction, with bit-identical final incumbents;
* **master-round latency** for the same two runs (wall seconds per round),
  to show the codec is not trading bytes for time.

``--smoke`` shrinks every budget to a seconds-scale run and *asserts* the
exactness contract (identical incumbents, codec round-trip) without writing
the results file — that mode is wired into CI so hot-path regressions fail
the build instead of silently landing.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import time
from pathlib import Path

from bench_kernels import measure_hot_path
from repro.core.solution import set_wire_codec, wire_codec_enabled
from repro.core.termination import Budget
from repro.instances import gk_suite
from repro.master.master import MasterConfig, MasterProcess
from repro.parallel.backends import SerialBackend

DEFAULT_OUT = Path(__file__).parent / "results" / "BENCH_bitset.json"

#: PR-1 kernel baseline for the identical workload, re-measured on the same
#: host immediately before the bitset layer landed (fastest of 3x3s windows,
#: ``git checkout <pr1>; python -c 'measure_hot_path(...)'``).  The tracked
#: speedup divides against this number, not the original BENCH_kernels.json
#: entry, so host drift between sessions cannot fake a win.
PR1_BASELINE = {
    "instance": "GK24-25x500",
    "seconds": 3.006,
    "repeats": 3,
    "moves": 22500,
    "evaluations": 13287551,
    "moves_per_sec": 7486.0,
    "evals_per_sec": 4420916.0,
}


def measure_master_round(
    *,
    wire_codec: bool,
    n_slaves: int = 4,
    n_rounds: int = 4,
    evals_per_slave: int = 200_000,
    rng_seed: int = 42,
) -> dict:
    """Run a synchronous master over the serial backend; report bytes + time.

    The run is fully deterministic for a fixed seed, and the wire codec only
    changes the pickled representation of solutions — so the on/off pair
    must end on bit-identical incumbents (asserted by the caller).
    """
    previous = wire_codec_enabled()
    set_wire_codec(wire_codec)
    try:
        instance = gk_suite()[23]
        cfg = MasterConfig(n_slaves=n_slaves, n_rounds=n_rounds)
        backend = SerialBackend(cfg.n_slaves)
        master = MasterProcess(instance, cfg, backend, rng_seed=rng_seed)
        t0 = time.perf_counter()
        result = master.run(budget_per_slave=Budget(max_evaluations=evals_per_slave))
        elapsed = time.perf_counter() - t0
        router = backend.router
        return {
            "wire_codec": wire_codec,
            "instance": instance.name,
            "n_slaves": n_slaves,
            "n_rounds": n_rounds,
            "evals_per_slave": evals_per_slave,
            "best_value": result.best.value,
            "best_x_sha": hashlib.sha256(result.best.x.tobytes()).hexdigest()[:16],
            "total_bytes": router.total_bytes,
            "bytes_per_round": round(router.total_bytes / n_rounds, 1),
            "bytes_by_tag": {str(k): v for k, v in sorted(router.bytes_by_tag.items())},
            "total_messages": router.total_messages,
            "wall_seconds": round(elapsed, 3),
            "seconds_per_round": round(elapsed / n_rounds, 4),
        }
    finally:
        set_wire_codec(previous)


def run_suite(*, seconds: float, repeats: int, rounds: int, evals: int) -> dict:
    hot = measure_hot_path(seconds=seconds, repeats=repeats)
    codec_on = measure_master_round(
        wire_codec=True, n_rounds=rounds, evals_per_slave=evals
    )
    codec_off = measure_master_round(
        wire_codec=False, n_rounds=rounds, evals_per_slave=evals
    )
    if (codec_on["best_value"], codec_on["best_x_sha"]) != (
        codec_off["best_value"],
        codec_off["best_x_sha"],
    ):
        raise AssertionError(
            "wire codec changed the trajectory: "
            f"{codec_on['best_value']}/{codec_on['best_x_sha']} vs "
            f"{codec_off['best_value']}/{codec_off['best_x_sha']}"
        )
    return {
        "pr1_baseline": PR1_BASELINE,
        "bitset_hot_path": hot,
        "moves_per_sec_speedup": round(
            hot["moves_per_sec"] / PR1_BASELINE["moves_per_sec"], 2
        ),
        "master_round": {
            "codec_on": codec_on,
            "codec_off": codec_off,
            "bytes_reduction": round(
                codec_off["total_bytes"] / codec_on["total_bytes"], 2
            ),
            "incumbents_bit_identical": True,
        },
    }


def smoke() -> None:
    """Seconds-scale CI gate: exactness always, throughput as a soft floor."""
    data = run_suite(seconds=1.0, repeats=1, rounds=2, evals=50_000)
    speedup = data["moves_per_sec_speedup"]
    reduction = data["master_round"]["bytes_reduction"]
    print(
        f"smoke: {data['bitset_hot_path']['moves_per_sec']:.0f} moves/s "
        f"({speedup:.2f}x vs PR-1 same-host), wire bytes {reduction:.2f}x smaller, "
        "incumbents bit-identical"
    )
    # Exactness is non-negotiable (run_suite already asserted identical
    # incumbents).  The byte ratio is deterministic -> hard-gate it; the
    # throughput floor is deliberately loose because CI hosts are noisy and
    # differ from the tracked-benchmark host.
    assert reduction >= 4.0, f"wire-bytes reduction collapsed: {reduction}x"
    assert speedup >= 0.8, f"hot path regressed catastrophically: {speedup}x"


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="seconds-scale CI gate")
    parser.add_argument("--seconds", type=float, default=3.0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--rounds", type=int, default=4)
    parser.add_argument("--evals", type=int, default=200_000)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    if args.smoke:
        smoke()
        return

    data = run_suite(
        seconds=args.seconds, repeats=args.repeats, rounds=args.rounds, evals=args.evals
    )
    data["python"] = platform.python_version()
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(data, indent=2) + "\n")
    print(
        f"bitset hot path: {data['bitset_hot_path']['moves_per_sec']:.0f} moves/s "
        f"({data['moves_per_sec_speedup']:.2f}x vs PR-1), wire bytes "
        f"{data['master_round']['bytes_reduction']:.2f}x smaller -> {args.out}"
    )


if __name__ == "__main__":
    main()
