"""A5 — scaling: solution quality and time-to-target versus P.

The paper's motivation (§1): parallel processing should "reduce the
execution time" and "improve the quality of the final solution".  Two
measurements on the simulated farm:

1. quality at a fixed per-processor budget, P ∈ {1, 2, 4, 8, 16} — more
   slaves explore more, so quality is non-decreasing (up to seed noise);
2. virtual time until a fixed target value is reached (time-to-target) —
   more slaves hit the target sooner, the classic speedup curve for
   parallel metaheuristics.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_generic
from repro.instances import mk_suite
from repro.variants import solve_cts2, solve_seq

from common import publish, scaled

PS = (1, 2, 4, 8, 16)
SEEDS = (0, 1, 2)
EVALS = 40_000
ROUNDS = 6


def run_scaling():
    inst = mk_suite()[2]  # MK3: 25x300
    # --- pass 1: quality at fixed per-processor budget -------------------
    quality_rows = []
    per_p_values: dict[int, float] = {}
    for p in PS:
        values = []
        for seed in SEEDS:
            if p == 1:
                r = solve_seq(inst, rng_seed=seed, max_evaluations=scaled(EVALS))
            else:
                r = solve_cts2(
                    inst,
                    n_slaves=p,
                    n_rounds=ROUNDS,
                    rng_seed=seed,
                    max_evaluations=scaled(EVALS),
                )
            values.append(r.best.value)
        mean_value = sum(values) / len(values)
        per_p_values[p] = mean_value
        quality_rows.append([p, round(mean_value), round(max(values))])

    # --- pass 2: time-to-target ------------------------------------------
    # Target: what a single processor reaches with the full budget — the
    # speedup question is how much faster P processors get there.
    target = per_p_values[1]
    ttt_rows = []
    base_time = None
    for p in PS:
        times = []
        for seed in SEEDS:
            if p == 1:
                r = solve_seq(
                    inst,
                    rng_seed=seed,
                    max_evaluations=scaled(EVALS) * 4,
                    target_value=target,
                )
            else:
                # More, shorter rounds: the time-to-target resolution is
                # one round slice (the barrier is the synchronous scheme's
                # detection granularity).
                r = solve_cts2(
                    inst,
                    n_slaves=p,
                    n_rounds=ROUNDS * 4,
                    rng_seed=seed,
                    max_evaluations=scaled(EVALS) * 4,
                    target_value=target,
                )
            times.append(r.virtual_seconds if r.best.value >= target else float("inf"))
        finite = [t for t in times if t != float("inf")]
        mean_time = sum(finite) / len(finite) if finite else float("inf")
        if p == 1:
            base_time = mean_time
        speed = base_time / mean_time if mean_time and mean_time != float("inf") else 0.0
        ttt_rows.append(
            [p, round(mean_time, 4), f"{speed:.2f}x", f"{len(finite)}/{len(SEEDS)}"]
        )
    return quality_rows, ttt_rows, per_p_values


@pytest.mark.benchmark(group="scaling")
def test_speedup(benchmark, capsys):
    quality_rows, ttt_rows, per_p = benchmark.pedantic(
        run_scaling, rounds=1, iterations=1
    )
    body = (
        "Quality at fixed per-processor budget:\n"
        + render_generic(["P", "mean best", "max best"], quality_rows)
        + "\n\nTime to the P=1 quality target:\n"
        + render_generic(["P", "mean vtime(s)", "speedup", "hit rate"], ttt_rows)
    )
    publish("speedup", "A5 — quality and time-to-target vs P (MK3, CTS2)", body, capsys)

    # Quality: the full farm must beat the single processor.
    assert per_p[16] >= per_p[1]
    # Time-to-target: P=16 reaches the P=1 target faster than P=1 did.
    t1 = float(ttt_rows[0][1])
    t16 = float(ttt_rows[-1][1])
    assert t16 < t1
