"""A8 — load balance: the ``Nb_it ∝ 1/Nb_drop`` rule at the barrier.

§4.2: "slaves processors must terminate their search (approximately) at
the same time ... one way to balance the execution times of the different
slave processors is to give a value to Nb_it which is proportional to
Nb_drop conversely."

Setup: CTS2 with *structural* round budgets (no evaluation cap — each
slave runs its own ``Nb_div × Nb_it`` loops, so per-round work genuinely
depends on the strategy), once with the balancing rule on and once with a
fixed ``Nb_it`` for everyone.  The simulated farm's barrier-idle ratio is
the measurement.

Expected shape: the balanced configuration has a significantly smaller
idle ratio; quality stays comparable.
"""

from __future__ import annotations

import pytest

from repro.analysis import load_balance, render_generic
from repro.core import StrategyBounds, TabuSearchConfig
from repro.instances import mk_suite
from repro.master import MasterConfig
from repro.variants import solve_cts2

from common import publish, scaled

N_SLAVES = 8
ROUNDS = 4
SEEDS = (0, 1, 2)
BASE_ITERATIONS = 48


def run_once(inst, seed: int, balanced: bool):
    bounds = StrategyBounds(
        base_iterations=scaled(BASE_ITERATIONS), load_balanced=balanced
    )
    config = MasterConfig(
        n_slaves=N_SLAVES,
        n_rounds=ROUNDS,
        bounds=bounds,
        ts_config=TabuSearchConfig(nb_div=1, bounds=bounds),
    )
    # No eval budget: the structural loops set each slave's workload.
    return solve_cts2(
        inst, rng_seed=seed, max_evaluations=10**9, master_config=config
    )


def run_comparison():
    inst = mk_suite()[2]  # MK3
    rows = []
    idle = {True: [], False: []}
    value = {True: [], False: []}
    for balanced in (True, False):
        for seed in SEEDS:
            result = run_once(inst, seed, balanced)
            lb = load_balance(result.trace)
            idle[balanced].append(lb.idle_ratio)
            value[balanced].append(result.best.value)
        rows.append(
            [
                "Nb_it = base/Nb_drop (paper)" if balanced else "Nb_it fixed",
                f"{100 * sum(idle[balanced]) / len(SEEDS):.2f}%",
                round(sum(value[balanced]) / len(SEEDS)),
            ]
        )
    return rows, idle


@pytest.mark.benchmark(group="load-balance")
def test_load_balance(benchmark, capsys):
    rows, idle = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    body = render_generic(["Nb_it policy", "mean barrier idle", "mean best"], rows)
    publish("load_balance", "A8 — load balancing via Nb_it ∝ 1/Nb_drop (MK3)", body, capsys)

    mean_balanced = sum(idle[True]) / len(idle[True])
    mean_fixed = sum(idle[False]) / len(idle[False])
    # The paper's rule must cut barrier idling.  The reduction is partial,
    # not total: Nb_it ∝ 1/Nb_drop equalizes *drop counts*, while the
    # residual imbalance comes from the stall-terminated local-search loops
    # whose length no static rule can predict ("terminate approximately at
    # the same time", §4.2).
    assert mean_balanced < 0.85 * mean_fixed, (
        f"balanced idle {mean_balanced:.3f} not clearly below fixed {mean_fixed:.3f}"
    )
