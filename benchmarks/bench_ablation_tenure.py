"""A1 — ablation: tabu tenure (``Lt_length``) sweep.

§4.1 motivates dynamic tuning with the classic tension: a short list lets
the search cycle back into good regions (intensification) but risks true
cycling; a long list forbids too much and starves the neighborhood.  This
bench quantifies that trade-off on a medium GK instance with sequential TS
at a fixed evaluation budget.

Expected shape: tenure 0 (no memory) is dominated by some positive tenure;
very large tenures degrade again — the interior-maximum curve that makes
`Lt_length` worth tuning at all.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_generic
from repro.core import (
    Budget,
    Strategy,
    TabuSearch,
    TabuSearchConfig,
    random_solution,
)
from repro.instances import gk_instance

from common import publish, scaled

TENURES = [0, 1, 2, 5, 10, 20, 40]
SEEDS = range(5)
EVALS = 30_000


def run_sweep() -> list[list[object]]:
    inst = gk_instance(11)  # 10x150
    rows = []
    for tenure in TENURES:
        values = []
        for seed in SEEDS:
            ts = TabuSearch(
                inst,
                Strategy(lt_length=tenure, nb_drop=2, nb_local=30),
                # add_candidates=1: the deterministic Add rule, so the tabu
                # memory is the *only* anti-cycling mechanism and the sweep
                # isolates its effect (with randomized adds the curve
                # flattens — randomness already breaks cycles).
                TabuSearchConfig(nb_div=1_000_000, add_candidates=1),
                rng=seed,
            )
            result = ts.run(
                x_init=random_solution(inst, rng=seed),
                budget=Budget(max_evaluations=scaled(EVALS)),
            )
            values.append(result.best.value)
        rows.append([tenure, round(sum(values) / len(values)), max(values)])
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_tenure(benchmark, capsys):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    body = render_generic(["Lt_length", "mean best", "max best"], rows)
    publish("ablation_tenure", "A1 — tabu tenure sweep (GK11, SEQ TS)", body, capsys)

    by_tenure = {r[0]: r[1] for r in rows}
    best_tenure = max(by_tenure, key=lambda t: by_tenure[t])
    # Memory must help: the best tenure is positive.
    assert best_tenure > 0
    # Some positive tenure beats the no-memory baseline.
    assert max(v for t, v in by_tenure.items() if t > 0) >= by_tenure[0]
