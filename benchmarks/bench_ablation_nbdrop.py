"""A2 — ablation: move weight (``Nb_drop``) vs step size and disruption.

§4.1: "Experimental tests [9] have shown that, when the number of
consecutive drops (nb_drop) done in a move is small (less than 3), the
objective function changes less rapidly and the visited solutions are
close ones another.  When the value of nb_drop becomes high, the
variations in the objective function are more important and the visited
solutions are distant ones another."

This bench measures exactly those two statistics — mean |ΔF| per move and
mean Hamming distance per move — as a function of ``Nb_drop``.

Expected shape: both statistics increase monotonically (modulo noise) with
``Nb_drop``; the small/large regimes differ by a clear factor.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import render_generic
from repro.core import (
    MoveEngine,
    SearchState,
    TabuList,
    greedy_solution,
)
from repro.instances import gk_instance

from common import publish, scaled

DROPS = [1, 2, 3, 4, 6, 8]
MOVES = 150


def run_measurement() -> list[list[object]]:
    inst = gk_instance(11)  # 10x150
    rows = []
    for nb_drop in DROPS:
        deltas = []
        steps = []
        rng = np.random.default_rng(0)
        state = SearchState.from_solution(inst, greedy_solution(inst))
        tabu = TabuList(inst.n_items, tenure=8)
        engine = MoveEngine(state, tabu, rng)
        best = state.value
        previous_x = state.x.copy()
        for _ in range(scaled(MOVES)):
            value_before = state.value
            record = engine.apply(nb_drop, best)
            best = max(best, state.value)
            tabu.tick()
            if record.touched:
                tabu.make_tabu(np.asarray(record.touched))
            deltas.append(abs(state.value - value_before))
            steps.append(int(np.count_nonzero(state.x != previous_x)))
            previous_x = state.x.copy()
        rows.append(
            [nb_drop, round(float(np.mean(deltas)), 1), round(float(np.mean(steps)), 2)]
        )
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_nbdrop(benchmark, capsys):
    rows = benchmark.pedantic(run_measurement, rounds=1, iterations=1)
    body = render_generic(["Nb_drop", "mean |dF| per move", "mean Hamming step"], rows)
    publish("ablation_nbdrop", "A2 — Nb_drop vs objective variation and step size", body, capsys)

    by_drop = {r[0]: (r[1], r[2]) for r in rows}
    # The paper's small (<3) vs large regimes must separate clearly.
    assert by_drop[8][0] > 1.5 * by_drop[1][0], "objective variation must grow with Nb_drop"
    assert by_drop[8][1] > 1.5 * by_drop[1][1], "step distance must grow with Nb_drop"
    # Hamming step grows monotonically across the sweep (allowing tiny noise).
    steps = [r[2] for r in rows]
    assert all(b >= a * 0.95 for a, b in zip(steps, steps[1:]))
