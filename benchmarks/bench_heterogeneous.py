"""A12 — load balancing on a heterogeneous farm (beyond the paper).

§4.2's ``Nb_it ∝ 1/Nb_drop`` rule equalizes *algorithmic work* per slave.
On the paper's farm of identical Alphas that is (approximately) equal
*time*; on a heterogeneous farm it is not — the rule knows nothing about
node speeds.  This extension experiment quantifies the degradation and
compares against the asynchronous scheme, which needs no balancing at all.

Setup: an 8-node farm where half the nodes run at 1.0× and half at 0.5×
speed (a realistic mixed-generation cluster).  Same structural CTS2 runs
as experiment A8, plus CTS-async on the same hardware.

Expected shape: synchronous barrier idle grows markedly versus the
homogeneous farm; the asynchronous scheme's idle stays zero and its
makespan is shorter at equal total work.
"""

from __future__ import annotations

import pytest

from repro.analysis import load_balance, render_generic
from repro.core import StrategyBounds, TabuSearchConfig
from repro.farm import CrossbarModel, FarmModel, ProcessorModel
from repro.instances import mk_suite
from repro.master import MasterConfig
from repro.variants import solve_cts2, solve_cts_async

from common import publish, scaled

N_SLAVES = 8
SEEDS = (0, 1)
BASE_ITERATIONS = 48

HOMOGENEOUS = FarmModel(n_processors=N_SLAVES + 1)
#: half fast, half slow nodes; the master (last rank) is fast.
HETEROGENEOUS = FarmModel(
    n_processors=N_SLAVES + 1,
    processor=ProcessorModel(),
    network=CrossbarModel(),
    speed_factors=tuple([1.0, 0.5] * ((N_SLAVES + 1) // 2) + [1.0]),
)


def run_sync(inst, farm, seed):
    bounds = StrategyBounds(base_iterations=scaled(BASE_ITERATIONS))
    config = MasterConfig(
        n_slaves=N_SLAVES,
        n_rounds=4,
        bounds=bounds,
        ts_config=TabuSearchConfig(nb_div=1, bounds=bounds),
    )
    return solve_cts2(
        inst, rng_seed=seed, max_evaluations=10**9, master_config=config, farm=farm
    )


def run_comparison():
    inst = mk_suite()[2]  # MK3
    rows = []
    idle = {}
    for label, farm in (("homogeneous", HOMOGENEOUS), ("heterogeneous", HETEROGENEOUS)):
        ratios = []
        makespans = []
        for seed in SEEDS:
            result = run_sync(inst, farm, seed)
            ratios.append(load_balance(result.trace).idle_ratio)
            makespans.append(result.virtual_seconds)
        idle[label] = sum(ratios) / len(ratios)
        rows.append(
            [
                f"CTS2 sync, {label}",
                f"{100 * idle[label]:.2f}%",
                round(sum(makespans) / len(makespans), 4),
            ]
        )
    # Async on the heterogeneous farm: no barrier to suffer from.
    async_ratios = []
    async_makespans = []
    for seed in SEEDS:
        result = solve_cts_async(
            inst,
            n_threads=N_SLAVES,
            rng_seed=seed,
            max_evaluations=scaled(40_000),
            farm=HETEROGENEOUS,
        )
        async_ratios.append(load_balance(result.trace).idle_ratio)
        async_makespans.append(result.virtual_seconds)
    rows.append(
        [
            "CTS-async, heterogeneous",
            f"{100 * sum(async_ratios) / len(async_ratios):.2f}%",
            round(sum(async_makespans) / len(async_makespans), 4),
        ]
    )
    return rows, idle


@pytest.mark.benchmark(group="extension")
def test_heterogeneous_farm(benchmark, capsys):
    rows, idle = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    body = render_generic(["configuration", "mean barrier idle", "mean makespan (s)"], rows)
    publish(
        "heterogeneous",
        "A12 — load balance on a heterogeneous farm (extension)",
        body,
        capsys,
    )
    # Speed skew the balancing rule cannot see must increase barrier idling.
    assert idle["heterogeneous"] > idle["homogeneous"]
    # The asynchronous scheme has no barrier at all.
    assert rows[-1][1] == "0.00%"
