"""Micro-benchmarks guarding the vectorized hot-path kernels.

The hpc-parallel guides' discipline: no optimization without measurement.
These are conventional pytest-benchmark timings (many rounds) for the
kernels everything else's throughput depends on:

* incremental add/drop (must stay O(m)),
* the vectorized fitting-items scan (one broadcast over free columns),
* one full compound move,
* message serialization (the farm's byte-cost model input).

Regressions here silently inflate every experiment's wall time, so they
get first-class benchmarks rather than ad-hoc %timeit runs.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import MoveEngine, SearchState, TabuList, greedy_solution
from repro.instances import gk_suite, mk_suite
from repro.parallel import payload_nbytes

#: The tracked-throughput instance: GK24, 25 constraints x 500 items — the
#: largest Table-1 problem, so per-move cost is dominated by the candidate
#: scans the kernel layer vectorizes.  Index into gk_suite() (0-based).
PINNED_GK_INDEX = 23


@pytest.fixture(scope="module")
def big_instance():
    return mk_suite()[4]  # 25x500


@pytest.fixture()
def big_state(big_instance):
    return SearchState.from_solution(big_instance, greedy_solution(big_instance))


@pytest.mark.benchmark(group="kernels")
def test_kernel_incremental_flip(benchmark, big_state):
    j = int(big_state.packed_items()[0])

    def flip_twice():
        big_state.drop(j)
        big_state.add(j)

    benchmark(flip_twice)


@pytest.mark.benchmark(group="kernels")
def test_kernel_fitting_items(benchmark, big_state):
    result = benchmark(big_state.fitting_items)
    assert result is not None


@pytest.mark.benchmark(group="kernels")
def test_kernel_compound_move(benchmark, big_instance):
    state = SearchState.from_solution(big_instance, greedy_solution(big_instance))
    tabu = TabuList(big_instance.n_items, 10)
    engine = MoveEngine(state, tabu, np.random.default_rng(0))
    best = state.value

    def one_move():
        nonlocal best
        record = engine.apply(2, best)
        best = max(best, state.value)
        tabu.tick()
        if record.touched:
            tabu.make_tabu(np.asarray(record.touched))

    benchmark(one_move)
    assert state.is_feasible


@pytest.mark.benchmark(group="kernels")
def test_kernel_objective_recompute_reference(benchmark, big_instance, big_state):
    """The O(mn) from-scratch evaluation the incremental path avoids —
    kept as the comparison point for the speedup the guides call for."""

    def recompute():
        return big_instance.weights @ big_state.x.astype(np.float64)

    benchmark(recompute)


@pytest.mark.benchmark(group="kernels")
def test_kernel_payload_serialization(benchmark, big_state):
    solution = big_state.snapshot()
    nbytes = benchmark(payload_nbytes, solution)
    assert nbytes > 0


# ---------------------------------------------------------------------------
# Tracked throughput: ``python benchmarks/bench_kernels.py --label <name>``
# drives the full compound-move hot path (drop + adds + tabu bookkeeping) on
# the pinned GK instance and folds moves/sec + evals/sec into
# ``benchmarks/results/BENCH_kernels.json``.  Running the same script with
# PYTHONPATH pointed at an older tree records that tree under its own label,
# so the JSON carries the before/after pair and the derived speedup.
# ---------------------------------------------------------------------------

DEFAULT_OUT = Path(__file__).parent / "results" / "BENCH_kernels.json"


def measure_hot_path(seconds: float = 3.0, rng_seed: int = 0, repeats: int = 3) -> dict:
    """Time the compound-move loop on the pinned GK instance.

    Runs ``repeats`` independent timing windows and reports the fastest one
    (the standard defense against scheduler noise on shared hosts).
    """
    instance = gk_suite()[PINNED_GK_INDEX]
    state = SearchState.from_solution(instance, greedy_solution(instance))
    tabu = TabuList(instance.n_items, 10)
    engine = MoveEngine(state, tabu, np.random.default_rng(rng_seed))
    best = state.value

    def one_move() -> None:
        nonlocal best
        record = engine.apply(2, best)
        best = max(best, state.value)
        tabu.tick()
        if record.touched:
            tabu.make_tabu(np.asarray(record.touched))

    for _ in range(200):  # warm caches / allocator before timing
        one_move()

    windows = []
    for _ in range(max(1, repeats)):
        moves = 0
        evals_start = engine.evaluations
        t0 = time.perf_counter()
        deadline = t0 + seconds
        while time.perf_counter() < deadline:
            for _ in range(50):
                one_move()
            moves += 50
        elapsed = time.perf_counter() - t0
        evaluations = engine.evaluations - evals_start
        windows.append((moves / elapsed, evaluations / elapsed, moves, evaluations, elapsed))

    assert state.is_feasible
    moves_rate, evals_rate, moves, evaluations, elapsed = max(windows)
    return {
        "instance": instance.name,
        "seconds": round(elapsed, 3),
        "repeats": max(1, repeats),
        "moves": moves,
        "evaluations": int(evaluations),
        "moves_per_sec": round(moves_rate, 1),
        "evals_per_sec": round(evals_rate, 1),
    }


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--label",
        default="kernel_hot_path",
        help="key to store this run under (e.g. seed_hot_path for the "
        "pre-kernel tree, kernel_hot_path for the current one)",
    )
    parser.add_argument("--seconds", type=float, default=3.0)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--keep-best",
        action="store_true",
        help="only overwrite an existing entry for this label if the new "
        "run is faster — lets interleaved seed/kernel invocations defeat "
        "slow drift in host load",
    )
    args = parser.parse_args(argv)

    data: dict = {"pinned_gk_index": PINNED_GK_INDEX, "runs": {}}
    if args.out.exists():
        data = json.loads(args.out.read_text())
        data.setdefault("runs", {})

    result = measure_hot_path(seconds=args.seconds)
    result["python"] = platform.python_version()
    previous = data["runs"].get(args.label)
    if (
        args.keep_best
        and previous is not None
        and previous["moves_per_sec"] >= result["moves_per_sec"]
    ):
        result = previous
    data["runs"][args.label] = result

    seed = data["runs"].get("seed_hot_path")
    kernel = data["runs"].get("kernel_hot_path")
    if seed and kernel:
        data["speedup"] = {
            "moves_per_sec": round(kernel["moves_per_sec"] / seed["moves_per_sec"], 2),
            "evals_per_sec": round(kernel["evals_per_sec"] / seed["evals_per_sec"], 2),
        }

    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(data, indent=2) + "\n")
    print(f"{args.label}: {result['moves_per_sec']:.0f} moves/s, "
          f"{result['evals_per_sec']:.0f} evals/s -> {args.out}")


if __name__ == "__main__":
    main()
