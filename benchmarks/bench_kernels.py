"""Micro-benchmarks guarding the vectorized hot-path kernels.

The hpc-parallel guides' discipline: no optimization without measurement.
These are conventional pytest-benchmark timings (many rounds) for the
kernels everything else's throughput depends on:

* incremental add/drop (must stay O(m)),
* the vectorized fitting-items scan (one broadcast over free columns),
* one full compound move,
* message serialization (the farm's byte-cost model input).

Regressions here silently inflate every experiment's wall time, so they
get first-class benchmarks rather than ad-hoc %timeit runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MoveEngine, SearchState, TabuList, greedy_solution
from repro.instances import mk_suite
from repro.parallel import payload_nbytes


@pytest.fixture(scope="module")
def big_instance():
    return mk_suite()[4]  # 25x500


@pytest.fixture()
def big_state(big_instance):
    return SearchState.from_solution(big_instance, greedy_solution(big_instance))


@pytest.mark.benchmark(group="kernels")
def test_kernel_incremental_flip(benchmark, big_state):
    j = int(big_state.packed_items()[0])

    def flip_twice():
        big_state.drop(j)
        big_state.add(j)

    benchmark(flip_twice)


@pytest.mark.benchmark(group="kernels")
def test_kernel_fitting_items(benchmark, big_state):
    result = benchmark(big_state.fitting_items)
    assert result is not None


@pytest.mark.benchmark(group="kernels")
def test_kernel_compound_move(benchmark, big_instance):
    state = SearchState.from_solution(big_instance, greedy_solution(big_instance))
    tabu = TabuList(big_instance.n_items, 10)
    engine = MoveEngine(state, tabu, np.random.default_rng(0))
    best = state.value

    def one_move():
        nonlocal best
        record = engine.apply(2, best)
        best = max(best, state.value)
        tabu.tick()
        if record.touched:
            tabu.make_tabu(np.asarray(record.touched))

    benchmark(one_move)
    assert state.is_feasible


@pytest.mark.benchmark(group="kernels")
def test_kernel_objective_recompute_reference(benchmark, big_instance, big_state):
    """The O(mn) from-scratch evaluation the incremental path avoids —
    kept as the comparison point for the speedup the guides call for."""

    def recompute():
        return big_instance.weights @ big_state.x.astype(np.float64)

    benchmark(recompute)


@pytest.mark.benchmark(group="kernels")
def test_kernel_payload_serialization(benchmark, big_state):
    solution = big_state.snapshot()
    nbytes = benchmark(payload_nbytes, solution)
    assert nbytes > 0
