"""Round-loop overhead: warm runtimes + multiplexed gather vs the PR-3 loop.

The Fig. 2 master hands out *short* per-round budgets, so the round loop's
fixed costs — rebuilding every slave's search runtime from scratch and the
rank-ordered gather with its per-slave timeouts and 1.0 s duplicate grace
sleep — rival the search itself.  This bench A/Bs the current loop against
a faithful in-bench replica of the PR-3 behaviour on a GK instance at
``P = 8`` with short per-round budgets:

* ``serial warm``  vs ``serial cold`` — per-slave
  :class:`~repro.parallel.runtime.SlaveRuntime` reuse vs per-task
  reconstruction, master-driven, rounds/sec (the headline >= 1.3x gate);
* ``mp warm`` vs ``mp rank-ordered cold`` — persistent workers with the
  ``connection.wait()`` gather vs cold construction plus the old
  rank-ordered ``recv(timeout)`` chain (:class:`RankOrderedBackend`);
* ``dead-rank gather`` — with ``D`` silent slaves and round timeout ``T``
  the multiplexed gather pays ``T`` once, the rank-ordered chain pays
  ``D x T`` sequentially;
* ``straggler attribution`` — one slow slave inflates only its own
  ``last_gather_idle_s`` entry; its peers are collected the moment they
  report.

Every comparison also asserts bit-identical incumbents between the arms —
the warm/multiplexed loop is an *overhead* change, never a trajectory
change.  Results land in ``benchmarks/results/BENCH_round_overhead.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_round_overhead.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path
from typing import Sequence

import pytest

from repro.core import Budget, Strategy, TabuSearchConfig, random_solution
from repro.instances import gk_instance
from repro.obs import RunRecorder
from repro.parallel import (
    CommTimeout,
    FaultEvent,
    FaultKind,
    FaultPlan,
    MultiprocessingBackend,
    SerialBackend,
    SlaveReport,
    SlaveTask,
)
from repro.parallel.message import RESULT_TAG, TASK_TAG

from common import publish, scaled

DEFAULT_OUT = Path(__file__).parent / "results" / "BENCH_round_overhead.json"

N_SLAVES = 8
EVALS_PER_ROUND = 150  # short budgets: the setup-dominated regime
GK_NUMBER = 10  # GK10-10x100


class RankOrderedBackend(MultiprocessingBackend):
    """PR-3 gather replica: rank-ordered ``recv(timeout)`` + 1.0 s dup grace.

    Lives in the bench only — production keeps the multiplexed loop — so
    the A/B always compares against the exact superseded behaviour instead
    of a guess about it.  Scatter, fault handling and bookkeeping are the
    parent's; only the gather strategy differs.
    """

    def run_round(self, tasks: Sequence[SlaveTask | None]) -> list[SlaveReport]:
        if not self._procs:
            raise RuntimeError("backend not started: call start() first")
        if len(tasks) != self.n_slaves:
            raise ValueError(f"expected {self.n_slaves} tasks; got {len(tasks)}")
        self.last_task_nbytes = {}
        self.last_report_nbytes = {}
        self.last_gather_idle_s = {}
        t_scatter = time.perf_counter()
        sent: list[int] = []
        for k, task in enumerate(tasks):
            if task is None:
                continue
            try:
                comm = self._ensure_alive(k)
                before = comm.bytes_sent
                comm.send(task, tag=TASK_TAG)
                self.last_task_nbytes[k] = comm.bytes_sent - before
                sent.append(k)
            except (BrokenPipeError, OSError):
                self.fault_counters["send_failed"] += 1
                self._bury(k)
        t_gather = time.perf_counter()
        reports: list[SlaveReport] = []
        for k in sent:  # rank order: slave k+1 waits behind slave k
            comm = self._comms[k]
            if comm is None:
                continue
            try:
                before = comm.bytes_received
                report = comm.recv(tag=RESULT_TAG, timeout=self.round_timeout_s)
                self.last_gather_idle_s.setdefault(
                    k, time.perf_counter() - t_gather
                )
                reports.append(report)
                task = tasks[k]
                drain_wait = (
                    1.0
                    if task is not None
                    and self.fault_plan.duplicates_report(task.round_index, k)
                    else 0.0
                )
                while comm.poll(drain_wait):
                    reports.append(comm.recv(tag=RESULT_TAG))
                    drain_wait = 0.0
                self.last_report_nbytes[k] = comm.bytes_received - before
            except (CommTimeout, EOFError, OSError):
                self.fault_counters["gather_lost"] += 1
                self._bury(k)
        t_end = time.perf_counter()
        self.last_master_wait_s = t_end - t_gather
        self.last_phase_seconds = {
            "scatter": t_gather - t_scatter,
            "compute": 0.0,
            "gather": t_end - t_gather,
        }
        self.phase_totals.update(self.last_phase_seconds)
        self.phase_totals["master_wait"] += self.last_master_wait_s
        reports.sort(key=lambda r: (r.slave_id, r.seq_id))
        return reports


# --------------------------------------------------------------------- #
# Rounds/sec arms (direct backend rounds, tasks pre-built outside timing)
# --------------------------------------------------------------------- #
def make_tasks(instance, round_index: int, evals: int):
    return [
        SlaveTask(
            x_init=random_solution(instance, rng=k),
            strategy=Strategy(8, 2, 10),
            budget=Budget(max_evaluations=evals),
            seed=100 * round_index + k,
            round_index=round_index,
            seq_id=round_index * N_SLAVES + k,
        )
        for k in range(N_SLAVES)
    ]


def report_key(r: SlaveReport):
    return (r.slave_id, r.seq_id, r.best, tuple(r.elite), r.evaluations, r.moves)


def _transport_totals(backend) -> dict:
    """Master-side transport counters (zeros for ring-less backends)."""
    comms = [c for c in getattr(backend, "_comms", []) if c is not None]
    return {
        "pipe_payload_bytes": sum(
            getattr(c, "pipe_payload_bytes", getattr(c, "bytes_sent", 0))
            for c in comms
        ),
        "ring_overflows": sum(getattr(c, "ring_overflows", 0) for c in comms),
        "n_workers": len(comms),
        "transports": sorted(set(getattr(backend, "worker_transports", []))),
    }


def _time_rounds(backend, all_tasks, n_warmup: int, *, gk_number: int = GK_NUMBER):
    """Run all rounds on ``backend``; time the post-warm-up ones.

    Returns (wall seconds over the timed rounds, per-round report keys for
    the identity check, cumulative master blocked-wait seconds, transport
    counter totals over every round including warm-up).
    """
    instance = gk_instance(gk_number)
    backend.start(instance, TabuSearchConfig(nb_div=10_000))
    try:
        keys = []
        for tasks in all_tasks[:n_warmup]:
            backend.run_round(tasks)
        wait_before = backend.phase_totals["master_wait"]
        t0 = time.perf_counter()
        for tasks in all_tasks[n_warmup:]:
            keys.append([report_key(r) for r in backend.run_round(tasks)])
        wall = time.perf_counter() - t0
        master_wait = backend.phase_totals["master_wait"] - wait_before
        return wall, keys, master_wait, _transport_totals(backend)
    finally:
        backend.shutdown()


def measure_ab(
    label_a: str,
    factory_a,
    label_b: str,
    factory_b,
    n_rounds: int,
    evals_per_round: int,
    repeats: int = 3,
    n_warmup: int = 3,
) -> dict:
    """Interleaved best-of-``repeats`` A/B of two backend factories.

    Identical tasks feed both arms; every repeat asserts the two arms'
    reports are bit-identical round by round.  Best-of interleaved windows
    is the house defense against host-load drift (cf. bench_fault_overhead).
    """
    instance = gk_instance(GK_NUMBER)
    all_tasks = [
        make_tasks(instance, r, evals_per_round) for r in range(n_warmup + n_rounds)
    ]
    walls: dict[str, list[float]] = {label_a: [], label_b: []}
    waits: dict[str, float] = {}
    keys: dict[str, list] = {}
    for _ in range(max(1, repeats)):
        for label, factory in ((label_a, factory_a), (label_b, factory_b)):
            wall, ks, wait, _stats = _time_rounds(factory(), all_tasks, n_warmup)
            walls[label].append(wall)
            keys[label] = ks
            waits[label] = wait
    if keys[label_a] != keys[label_b]:
        raise AssertionError(f"{label_a} reports diverged from {label_b}")
    wall_a, wall_b = min(walls[label_a]), min(walls[label_b])
    return {
        "n_rounds": n_rounds,
        "evals_per_round": evals_per_round,
        "repeats": max(1, repeats),
        f"{label_a}_rounds_per_sec": round(n_rounds / wall_a, 2),
        f"{label_b}_rounds_per_sec": round(n_rounds / wall_b, 2),
        f"{label_a}_master_wait_s": round(waits[label_a], 4),
        f"{label_b}_master_wait_s": round(waits[label_b], 4),
        "speedup": round(wall_b / wall_a, 3),
        "bit_identical": True,
    }


def measure_serial(n_rounds: int, evals_per_round: int, repeats: int = 3) -> dict:
    """Warm vs cold SerialBackend: per-slave arena reuse vs reconstruction."""
    data = measure_ab(
        "warm",
        lambda: SerialBackend(N_SLAVES, warm_runtime=True),
        "cold",
        lambda: SerialBackend(N_SLAVES, warm_runtime=False),
        n_rounds,
        evals_per_round,
        repeats=repeats,
    )
    return data


def measure_multiprocessing(n_rounds: int, evals_per_round: int, repeats: int = 3) -> dict:
    """Warm+multiplexed vs the PR-3 replica (cold + rank-ordered gather)."""
    return measure_ab(
        "warm",
        lambda: MultiprocessingBackend(N_SLAVES, warm_runtime=True),
        "pr3",
        lambda: RankOrderedBackend(N_SLAVES, warm_runtime=False),
        n_rounds,
        evals_per_round,
        repeats=repeats,
    )


SHM_GK_NUMBER = 24  # GK24-25x500: the ISSUE-7 transport-gate instance


def measure_shm(n_rounds: int, evals_per_round: int, repeats: int = 3) -> dict:
    """shm rings + batched workers vs the PR-6 pipe baseline on GK24.

    Four interleaved arms over identical tasks: a warm ``SerialBackend``
    (the serialized compute floor — the part no transport can touch), the
    PR-6 baseline (``pipe`` transport, one slave per worker), and the shm
    transport at ``batch_k`` 4 and 8.  Reports must be bit-identical
    across all four.

    Derived figures:

    * ``speedup_*`` — end-to-end mp rounds/sec vs the pipe baseline.  On a
      single-CPU host this is bounded hard by the compute floor (all P
      slaves' searches serialize onto one core), so the headline ``>= 3x``
      target of the transport work shows up in the *overhead* figures
      below rather than end-to-end.
    * ``overhead_ratio_*`` — (pipe round wall − serial floor) /
      (shm round wall − serial floor): the transport-owned share of the
      round, which the doorbell+ring path actually shrinks.
    * ``message_reduction`` — doorbell-carrying pipe messages per round,
      pipe baseline over shm/batched (16 → 2 at P=8, K=8): the mechanical
      ``>= 3x`` reduction in kernel round-trips.
    * ``shm_pipe_payload_per_round`` — payload bytes that crossed a pipe
      on the shm arm; the gate pins this to ~0 (doorbells only).
    """
    instance = gk_instance(SHM_GK_NUMBER)
    n_warmup = 3
    all_tasks = [
        make_tasks(instance, r, evals_per_round) for r in range(n_warmup + n_rounds)
    ]
    arms = {
        "serial": lambda: SerialBackend(N_SLAVES),
        "pipe": lambda: MultiprocessingBackend(N_SLAVES, transport="pipe", batch_k=1),
        "shm_k4": lambda: MultiprocessingBackend(N_SLAVES, transport="shm", batch_k=4),
        "shm_k8": lambda: MultiprocessingBackend(N_SLAVES, transport="shm", batch_k=8),
    }
    walls: dict[str, list[float]] = {label: [] for label in arms}
    keys: dict[str, list] = {}
    stats: dict[str, dict] = {}
    for _ in range(max(1, repeats)):
        for label, factory in arms.items():
            wall, ks, _wait, st = _time_rounds(
                factory(), all_tasks, n_warmup, gk_number=SHM_GK_NUMBER
            )
            walls[label].append(wall)
            keys[label] = ks
            stats[label] = st
    for label in ("pipe", "shm_k4", "shm_k8"):
        if keys[label] != keys["serial"]:
            raise AssertionError(f"{label} reports diverged from the serial floor")
    best = {label: min(ws) for label, ws in walls.items()}
    total_rounds = n_warmup + n_rounds
    shm_transport_ok = stats["shm_k8"]["transports"] == ["shm"]
    floor = best["serial"]
    overhead = {label: best[label] - floor for label in ("pipe", "shm_k4", "shm_k8")}
    # Doorbell-carrying messages per fault-free round: one task + one
    # report per worker.
    msgs = {
        "pipe": 2 * stats["pipe"]["n_workers"],
        "shm_k4": 2 * stats["shm_k4"]["n_workers"],
        "shm_k8": 2 * stats["shm_k8"]["n_workers"],
    }
    return {
        "instance": f"GK{SHM_GK_NUMBER:02d}",
        "n_slaves": N_SLAVES,
        "n_rounds": n_rounds,
        "evals_per_round": evals_per_round,
        "repeats": max(1, repeats),
        "serial_rounds_per_sec": round(n_rounds / best["serial"], 2),
        "pipe_rounds_per_sec": round(n_rounds / best["pipe"], 2),
        "shm_k4_rounds_per_sec": round(n_rounds / best["shm_k4"], 2),
        "shm_k8_rounds_per_sec": round(n_rounds / best["shm_k8"], 2),
        "speedup_k4": round(best["pipe"] / best["shm_k4"], 3),
        "speedup_k8": round(best["pipe"] / best["shm_k8"], 3),
        "overhead_ratio_k4": round(overhead["pipe"] / max(overhead["shm_k4"], 1e-9), 2),
        "overhead_ratio_k8": round(overhead["pipe"] / max(overhead["shm_k8"], 1e-9), 2),
        "messages_per_round": msgs,
        "message_reduction": round(msgs["pipe"] / msgs["shm_k8"], 1),
        "pipe_payload_per_round": round(
            stats["pipe"]["pipe_payload_bytes"] / total_rounds, 1
        ),
        "shm_pipe_payload_per_round": round(
            stats["shm_k8"]["pipe_payload_bytes"] / total_rounds, 1
        ),
        "shm_ring_overflows": stats["shm_k8"]["ring_overflows"],
        "shm_transport_engaged": shm_transport_ok,
        "bit_identical": True,
    }


# --------------------------------------------------------------------- #
# Gather behaviour under faults (direct backend rounds)
# --------------------------------------------------------------------- #


def measure_dead_rank_gather(n_dead: int = 2, timeout_s: float = 0.4) -> dict:
    """D silent slaves: one shared deadline vs D sequential timeouts."""
    instance = gk_instance(GK_NUMBER)
    n_meas = 2
    plan = FaultPlan(
        events=tuple(
            FaultEvent(r, k, FaultKind.DROP_REPORT)
            for r in range(1, n_meas + 1)
            for k in range(n_dead)
        )
    )
    out = {}
    for arm, cls in (("multiplexed", MultiprocessingBackend), ("pr3", RankOrderedBackend)):
        backend = cls(N_SLAVES, fault_plan=plan, round_timeout_s=timeout_s)
        with backend:
            backend.start(instance, TabuSearchConfig(nb_div=10_000))
            backend.run_round(make_tasks(instance, 0, 300))  # warm-up, no faults
            gathers = []
            for r in range(1, n_meas + 1):
                backend.run_round(make_tasks(instance, r, 300))
                gathers.append(backend.last_phase_seconds["gather"])
        out[arm] = round(min(gathers), 4)
    return {
        "n_dead_ranks": n_dead,
        "round_timeout_s": timeout_s,
        "multiplexed_gather_s": out["multiplexed"],
        "rank_order_gather_s": out["pr3"],
        "rank_order_over_multiplexed": round(out["pr3"] / out["multiplexed"], 2),
    }


def measure_straggler_attribution(factor: float = 15.0) -> dict:
    """One slow slave: only its own gather-idle entry inflates."""
    instance = gk_instance(GK_NUMBER)
    plan = FaultPlan(events=(FaultEvent(1, 0, FaultKind.STRAGGLE, factor=factor),))
    with MultiprocessingBackend(N_SLAVES, fault_plan=plan, round_timeout_s=30.0) as backend:
        backend.start(instance, TabuSearchConfig(nb_div=10_000))
        backend.run_round(make_tasks(instance, 0, 300))  # warm-up
        backend.run_round(make_tasks(instance, 1, 300))
        idle = dict(backend.last_gather_idle_s)
        gather = backend.last_phase_seconds["gather"]
    peers = [v for k, v in idle.items() if k != 0]
    return {
        "straggle_factor": factor,
        "straggler_idle_s": round(idle[0], 4),
        "max_peer_idle_s": round(max(peers), 4),
        "gather_s": round(gather, 4),
        "gather_bounded_by_slowest": gather < idle[0] + 1.0,
    }


def measure_recorder_overhead(n_rounds: int, evals_per_round: int) -> dict:
    """Disabled-recorder cost per round vs the measured round wall time.

    The master issues a bounded number of recorder calls per round
    (round_start, round_telemetry, faults, sgp, isp, round_end — at most
    six); the disabled short-circuit's per-call cost times that count,
    relative to one measured round, bounds what the observability layer
    charges a run nobody asked to record.  Per-call timing (rather than an
    A/B of two full runs) keeps the figure robust to host-load noise.
    """
    recorder = RunRecorder.disabled()
    calls = 200_000
    t0 = time.perf_counter()
    for i in range(calls):
        recorder.emit("round_end", round_index=i)
    per_call_s = (time.perf_counter() - t0) / calls
    assert recorder.events == []

    instance = gk_instance(GK_NUMBER)
    all_tasks = [
        make_tasks(instance, r, evals_per_round) for r in range(n_rounds + 1)
    ]
    backend = SerialBackend(N_SLAVES)
    backend.start(instance, TabuSearchConfig(nb_div=10_000))
    try:
        backend.run_round(all_tasks[0])  # warm-up
        t0 = time.perf_counter()
        for tasks in all_tasks[1:]:
            backend.run_round(tasks)
        round_wall_s = (time.perf_counter() - t0) / n_rounds
    finally:
        backend.shutdown()

    events_per_round = 6
    overhead = per_call_s * events_per_round / round_wall_s
    return {
        "disabled_emit_ns": round(per_call_s * 1e9, 1),
        "events_per_round": events_per_round,
        "round_wall_ms": round(round_wall_s * 1e3, 3),
        "overhead_fraction": overhead,
    }


def measure(*, smoke: bool = False) -> dict:
    n_rounds = 25 if smoke else 60
    repeats = 2 if smoke else 4
    evals = scaled(EVALS_PER_ROUND)
    return {
        "instance": f"GK{GK_NUMBER:02d}",
        "n_slaves": N_SLAVES,
        "smoke": smoke,
        "serial": measure_serial(n_rounds, evals, repeats),
        "multiprocessing": measure_multiprocessing(n_rounds, evals, repeats),
        "shm": measure_shm(n_rounds, evals, repeats),
        "dead_rank_gather": measure_dead_rank_gather(),
        "straggler": measure_straggler_attribution(),
        "recorder": measure_recorder_overhead(n_rounds, evals),
        "python": platform.python_version(),
    }


def render_shm(sh: dict) -> list[str]:
    return [
        f"shm transport ({sh['instance']}, P={sh['n_slaves']}, "
        f"{sh['evals_per_round']} evals/round):",
        f"{'mp pipe k=1 (PR-6)':<26} {sh['pipe_rounds_per_sec']:>10.2f}",
        f"{'mp shm k=4':<26} {sh['shm_k4_rounds_per_sec']:>10.2f}"
        f"   -> x{sh['speedup_k4']:.2f}",
        f"{'mp shm k=8':<26} {sh['shm_k8_rounds_per_sec']:>10.2f}"
        f"   -> x{sh['speedup_k8']:.2f}",
        f"{'serial compute floor':<26} {sh['serial_rounds_per_sec']:>10.2f}",
        f"transport-owned overhead: x{sh['overhead_ratio_k8']:.2f} smaller at k=8 "
        f"(x{sh['overhead_ratio_k4']:.2f} at k=4)",
        f"doorbell messages/round: {sh['messages_per_round']['pipe']} pipe -> "
        f"{sh['messages_per_round']['shm_k8']} shm/batched "
        f"(x{sh['message_reduction']:.0f} reduction, gate: >= 3)",
        f"payload bytes through pipes/round: {sh['pipe_payload_per_round']:.0f} "
        f"pipe -> {sh['shm_pipe_payload_per_round']:.0f} shm (gate: ~0), "
        f"ring overflows: {sh['shm_ring_overflows']}",
    ]


def render(data: dict) -> str:
    s, m = data["serial"], data["multiprocessing"]
    d, st = data["dead_rank_gather"], data["straggler"]
    return "\n".join(
        [
            f"GK instance {data['instance']}, P={data['n_slaves']}, "
            f"{s['evals_per_round']} evals/round",
            f"{'arm':<26} {'rounds/sec':>10}",
            f"{'serial warm':<26} {s['warm_rounds_per_sec']:>10.2f}",
            f"{'serial cold (PR-3)':<26} {s['cold_rounds_per_sec']:>10.2f}"
            f"   -> x{s['speedup']:.2f} (gate: >= 1.3)",
            f"{'mp warm+multiplexed':<26} {m['warm_rounds_per_sec']:>10.2f}",
            f"{'mp cold+rank-order (PR-3)':<26} {m['pr3_rounds_per_sec']:>10.2f}"
            f"   -> x{m['speedup']:.2f}",
            f"mp master blocked-wait: {m['warm_master_wait_s']:.3f}s warm vs "
            f"{m['pr3_master_wait_s']:.3f}s PR-3 over {m['n_rounds']} rounds",
            f"dead ranks ({d['n_dead_ranks']} x {d['round_timeout_s']}s timeout): "
            f"gather {d['multiplexed_gather_s']:.2f}s multiplexed vs "
            f"{d['rank_order_gather_s']:.2f}s rank-ordered "
            f"(x{d['rank_order_over_multiplexed']:.1f})",
            f"straggler: idle {st['straggler_idle_s']:.2f}s on the slow slave, "
            f"{st['max_peer_idle_s']:.2f}s max on its peers; "
            f"gather bounded by slowest: {st['gather_bounded_by_slowest']}",
            "incumbents bit-identical in both A/Bs: "
            f"{s['bit_identical'] and m['bit_identical']}",
            f"disabled recorder: {data['recorder']['disabled_emit_ns']:.0f}ns/emit "
            f"x {data['recorder']['events_per_round']} events/round = "
            f"{data['recorder']['overhead_fraction'] * 100:.4f}% of a "
            f"{data['recorder']['round_wall_ms']:.1f}ms round (gate: < 1%)",
            "",
            *render_shm(data["shm"]),
        ]
    )


def check_shm(sh: dict, *, smoke: bool) -> None:
    """Transport-owned gates for the shm/batched path.

    End-to-end rounds/sec is compute-bound on a single-core host, so the
    hard >= 3x gate lives on the figures the transport actually owns:
    doorbell message count and payload bytes through pipes.  The wall-time
    floors below are deliberately modest sanity checks, not the headline.
    """
    assert sh["bit_identical"], "shm/batched reports diverged from serial floor"
    if not sh["shm_transport_engaged"]:
        # Host without POSIX shared memory: the auto-fallback ran the whole
        # arm over pipes, so the shm-owned gates are vacuous here.
        return
    assert sh["message_reduction"] >= 3.0, (
        f"doorbell message reduction {sh['message_reduction']} below 3x"
    )
    assert sh["shm_pipe_payload_per_round"] <= 64.0, (
        f"{sh['shm_pipe_payload_per_round']} payload bytes/round leaked into pipes"
    )
    assert sh["shm_ring_overflows"] == 0, (
        f"{sh['shm_ring_overflows']} ring overflows fell back in-band"
    )
    if not smoke:
        assert sh["speedup_k8"] >= 1.05, (
            f"shm k=8 end-to-end speedup {sh['speedup_k8']} regressed below pipe"
        )
        assert sh["overhead_ratio_k8"] >= 1.3, (
            f"transport-owned overhead ratio {sh['overhead_ratio_k8']} below 1.3"
        )


def check(data: dict, *, smoke: bool) -> None:
    """Hard exactness gates + the headline throughput gate (soft in smoke)."""
    assert data["serial"]["bit_identical"] and data["multiprocessing"]["bit_identical"]
    assert data["straggler"]["max_peer_idle_s"] < data["straggler"]["straggler_idle_s"]
    assert data["dead_rank_gather"]["rank_order_over_multiplexed"] > 1.4
    floor = 1.15 if smoke else 1.3  # smoke runs on noisy CI hosts
    assert data["serial"]["speedup"] >= floor, (
        f"warm-runtime speedup {data['serial']['speedup']} below {floor}"
    )
    overhead = data["recorder"]["overhead_fraction"]
    assert overhead < 0.01, (
        f"disabled recorder costs {overhead * 100:.3f}% of a round (gate: 1%)"
    )
    check_shm(data["shm"], smoke=smoke)


@pytest.mark.benchmark(group="round-overhead")
def test_round_overhead(benchmark, capsys):
    data = benchmark.pedantic(measure, kwargs={"smoke": True}, rounds=1)
    publish("round_overhead", "Round-loop overhead: warm vs PR-3", render(data), capsys)
    check(data, smoke=True)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    data = measure(smoke=args.smoke)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(data, indent=2) + "\n")
    shm_out = args.out.parent / "BENCH_shm.json"
    shm_out.write_text(json.dumps(data["shm"], indent=2) + "\n")
    print(render(data))
    print(f"-> {args.out}")
    print(f"-> {shm_out}")
    check(data, smoke=args.smoke)


if __name__ == "__main__":
    main()
