"""Pytest path setup for the benchmark harness.

Benches import shared helpers via ``from common import ...``; adding this
directory to ``sys.path`` makes that import work regardless of the
invocation directory.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
