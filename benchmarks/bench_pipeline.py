"""Pipelined async master vs the Fig. 2 barrier under seeded stragglers.

The synchronous master pays every round's gather wall to its *slowest*
slave: one straggler stalls the whole fleet at the barrier.  The
bounded-staleness pipeline (DESIGN.md §5.9) keeps up to ``queue_depth``
bursts in flight per slave and re-dispatches the moment each report lands,
so a straggler stalls only itself while its peers keep searching.

This bench A/Bs ``pipeline="sync"`` vs ``pipeline="async"`` (at
``max_staleness=3`` — one burst beyond the double-buffer default, for
deeper sleep/compute overlap) over identical multiprocessing fleets on
GK24 (25x500) at ``P = 8``:

* ``straggle`` — a seeded :meth:`FaultPlan.stragglers` plan (a quarter of
  the (round, slave) cells sleep 8x slower).  The headline gate:
  async delivers >= 1.5x the effective evaluations per wall second
  (>= 1.3x in ``--smoke``, which runs on noisy CI hosts).
* ``no_fault`` — the same A/B with no fault plan.  The pipeline machinery
  (windows, incremental ISP/SGP, burst telemetry) may cost at most 5%
  throughput when there is nothing to overlap (15% in ``--smoke``).
* ``determinism`` — two async runs over :class:`SerialBackend` replay with
  the same seed must agree bit-for-bit on the incumbent and the value
  history (the seeded-determinism contract of the async mode).

Results land in ``benchmarks/results/BENCH_pipeline.json`` via the shared
schema (``write_bench_json``) and fold into ``BENCH_index.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_pipeline.py [--smoke]
"""

from __future__ import annotations

import argparse
import platform
from pathlib import Path

import pytest

from repro.core import TabuSearchConfig
from repro.instances import gk_instance
from repro.parallel import FaultPlan, MultiprocessingBackend
from repro.variants.runner import solve_cts2

from common import publish, scaled, write_bench_json

DEFAULT_OUT = Path(__file__).parent / "results" / "BENCH_pipeline.json"

GK_NUMBER = 24  # GK24-25x500: the transport-gate instance
N_SLAVES = 8
N_ROUNDS = 6
EVALS_PER_SLAVE = 24_000  # whole-run per-slave budget (split over rounds)
MAX_STALENESS = 3  # one burst beyond the double-buffer default: deeper overlap
STRAGGLE_SEED = 1997
STRAGGLE_RATE = 0.25
STRAGGLE_FACTOR = 8.0


def _run_arm(instance, pipeline: str, plan: FaultPlan | None, evals: int) -> dict:
    """One solve on a fresh (pre-warmed) MP fleet; returns throughput figures.

    The backend is started before the solve so worker spawn cost — paid
    identically by both arms — stays out of the measured wall time.
    """
    backend = MultiprocessingBackend(N_SLAVES, fault_plan=plan or FaultPlan.none())
    with backend:
        backend.start(instance, TabuSearchConfig())
        result = solve_cts2(
            instance,
            n_slaves=N_SLAVES,
            n_rounds=N_ROUNDS,
            rng_seed=7,
            max_evaluations=evals,
            backend=backend,
            pipeline=pipeline,
            max_staleness=MAX_STALENESS if pipeline == "async" else None,
        )
    assert result.n_rounds == N_ROUNDS
    assert all(
        a <= b for a, b in zip(result.value_history, result.value_history[1:])
    ), "incumbent regressed"
    return {
        "wall_s": result.wall_seconds,
        "evaluations": result.total_evaluations,
        "evals_per_sec": result.total_evaluations / result.wall_seconds,
        "best": result.best.value,
        "pipeline_stats": dict(result.pipeline_stats),
    }


def measure_ab(instance, plan: FaultPlan | None, evals: int, repeats: int) -> dict:
    """Interleaved best-of-``repeats`` sync vs async A/B (same seeds/plan)."""
    best: dict[str, dict] = {}
    for _ in range(max(1, repeats)):
        for pipeline in ("sync", "async"):
            arm = _run_arm(instance, pipeline, plan, evals)
            if (
                pipeline not in best
                or arm["evals_per_sec"] > best[pipeline]["evals_per_sec"]
            ):
                best[pipeline] = arm
    return {
        "sync": best["sync"],
        "async": best["async"],
        "speedup": best["async"]["evals_per_sec"] / best["sync"]["evals_per_sec"],
    }


def measure_determinism(instance, evals: int) -> dict:
    """Async over SerialBackend replay: same seed => same trajectory."""
    runs = [
        solve_cts2(
            instance,
            n_slaves=N_SLAVES,
            n_rounds=N_ROUNDS,
            rng_seed=13,
            max_evaluations=evals,
            pipeline="async",
        )
        for _ in range(2)
    ]
    return {
        "best_values": [r.best.value for r in runs],
        "identical": bool(
            runs[0].best.value == runs[1].best.value
            and runs[0].value_history == runs[1].value_history
            and (runs[0].best.items == runs[1].best.items).all()
        ),
    }


def measure(*, smoke: bool = False) -> dict:
    instance = gk_instance(GK_NUMBER)
    evals = scaled(EVALS_PER_SLAVE // (2 if smoke else 1))
    repeats = 2 if smoke else 3
    plan = FaultPlan.stragglers(
        STRAGGLE_SEED,
        N_SLAVES,
        N_ROUNDS,
        rate=STRAGGLE_RATE,
        factor=STRAGGLE_FACTOR,
    )
    return {
        "instance": f"GK{GK_NUMBER:02d}",
        "n_slaves": N_SLAVES,
        "n_rounds": N_ROUNDS,
        "evals_per_slave": evals,
        "repeats": repeats,
        "smoke": smoke,
        "straggle_plan": {
            "seed": STRAGGLE_SEED,
            "rate": STRAGGLE_RATE,
            "factor": STRAGGLE_FACTOR,
            "n_events": plan.n_events,
        },
        "straggle": measure_ab(instance, plan, evals, repeats),
        "no_fault": measure_ab(instance, None, evals, repeats),
        "determinism": measure_determinism(instance, evals),
        "python": platform.python_version(),
    }


def render(data: dict) -> str:
    st, nf = data["straggle"], data["no_fault"]
    lines = [
        f"GK instance {data['instance']}, P={data['n_slaves']}, "
        f"{data['n_rounds']} rounds, {data['evals_per_slave']} evals/slave, "
        f"straggle rate {data['straggle_plan']['rate']} "
        f"x{data['straggle_plan']['factor']:.0f} "
        f"({data['straggle_plan']['n_events']} events)",
        f"{'arm':<28} {'evals/sec':>12} {'wall s':>8}",
    ]
    for regime, ab in (("straggle", st), ("no-fault", nf)):
        for pipeline in ("sync", "async"):
            arm = ab[pipeline]
            lines.append(
                f"{regime + ' ' + pipeline:<28} {arm['evals_per_sec']:>12,.0f} "
                f"{arm['wall_s']:>8.2f}"
            )
    ps = st["async"]["pipeline_stats"]
    lines += [
        f"straggle speedup: x{st['speedup']:.2f} (gate: >= 1.5, smoke >= 1.3)",
        f"no-fault ratio:   x{nf['speedup']:.2f} (gate: >= 0.95, smoke >= 0.85)",
        f"async pipeline: bursts={ps.get('bursts_completed', 0):.0f} "
        f"failures={ps.get('burst_failures', 0):.0f} "
        f"max_staleness={ps.get('max_staleness', 0):.0f} "
        f"mean_depth={ps.get('mean_queue_depth', 0):.2f} "
        f"reclaimed_idle={ps.get('reclaimed_idle_s', 0):.2f}s",
        f"serial-replay determinism: {data['determinism']['identical']}",
    ]
    return "\n".join(lines)


def gates(data: dict, *, smoke: bool) -> dict:
    straggle_floor = 1.3 if smoke else 1.5
    no_fault_floor = 0.85 if smoke else 0.95
    return {
        "straggle_speedup": {
            "value": round(data["straggle"]["speedup"], 3),
            "threshold": straggle_floor,
            "passed": data["straggle"]["speedup"] >= straggle_floor,
        },
        "no_fault_ratio": {
            "value": round(data["no_fault"]["speedup"], 3),
            "threshold": no_fault_floor,
            "passed": data["no_fault"]["speedup"] >= no_fault_floor,
        },
        "serial_replay_deterministic": {
            "value": data["determinism"]["identical"],
            "threshold": True,
            "passed": bool(data["determinism"]["identical"]),
        },
    }


def check(data: dict, *, smoke: bool) -> None:
    for name, gate in gates(data, smoke=smoke).items():
        assert gate["passed"], (
            f"{name}: {gate['value']} missed threshold {gate['threshold']}"
        )


def persist(data: dict, *, smoke: bool, out_dir: Path | None = None) -> None:
    write_bench_json(
        "pipeline",
        metrics={
            "straggle_speedup": round(data["straggle"]["speedup"], 3),
            "no_fault_ratio": round(data["no_fault"]["speedup"], 3),
            "straggle_async_evals_per_sec": round(
                data["straggle"]["async"]["evals_per_sec"], 1
            ),
            "straggle_sync_evals_per_sec": round(
                data["straggle"]["sync"]["evals_per_sec"], 1
            ),
            "async_reclaimed_idle_s": round(
                data["straggle"]["async"]["pipeline_stats"].get(
                    "reclaimed_idle_s", 0.0
                ),
                3,
            ),
        },
        gates=gates(data, smoke=smoke),
        meta={
            "instance": data["instance"],
            "n_slaves": data["n_slaves"],
            "n_rounds": data["n_rounds"],
            "max_staleness": MAX_STALENESS,
            "evals_per_slave": data["evals_per_slave"],
            "straggle_plan": data["straggle_plan"],
            "smoke": smoke,
            "python": data["python"],
        },
        out_dir=out_dir,
    )


@pytest.mark.benchmark(group="pipeline")
def test_pipeline(benchmark, capsys):
    data = benchmark.pedantic(measure, kwargs={"smoke": True}, rounds=1)
    publish("pipeline", "Pipelined async master vs sync barrier", render(data), capsys)
    persist(data, smoke=True)
    check(data, smoke=True)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--out",
        type=Path,
        default=DEFAULT_OUT,
        help="result path (BENCH_pipeline.json lands in its directory)",
    )
    args = parser.parse_args(argv)

    data = measure(smoke=args.smoke)
    print(render(data))
    persist(data, smoke=args.smoke, out_dir=args.out.parent)
    print(f"-> {args.out.parent / 'BENCH_pipeline.json'}")
    check(data, smoke=args.smoke)


if __name__ == "__main__":
    main()
