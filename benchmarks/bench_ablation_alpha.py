"""A3 — ablation: the ISP pooling fraction ``alpha`` (macro int./div.).

§4.2: "By changing dynamically the value of the parameter alpha, it is
possible to force or to forbid threads to realize search in the same
region."  This bench sweeps *fixed* alpha values on CTS1 (pooling is the
only cooperative mechanism, so its effect is isolated) and compares them
against the dynamic controller.

Reported per setting: mean best value over seeds, and the total number of
pool/restart ISP events (how much the master interfered).

Expected shape: very low alpha behaves like ITS (pooling never fires);
very high alpha over-pools and loses diversity; a middle/dynamic setting
is at least as good as both extremes.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_generic
from repro.instances import mk_suite
from repro.master import ISPConfig, MasterConfig
from repro.variants import solve_cts1

from common import publish, scaled

ALPHAS = [0.90, 0.95, 0.98, 0.995]
SEEDS = (0, 1, 2)
EVALS = 40_000
ROUNDS = 8
N_SLAVES = 8


def run_one(inst, alpha: float | None, seed: int):
    config = MasterConfig(
        n_slaves=N_SLAVES,
        n_rounds=ROUNDS,
        communicate=True,
        adapt_strategies=False,
        isp=ISPConfig(alpha=alpha if alpha is not None else 0.98),
        dynamic_alpha=alpha is None,
    )
    return solve_cts1(
        inst, rng_seed=seed, max_evaluations=scaled(EVALS), master_config=config
    )


def run_sweep() -> list[list[object]]:
    inst = mk_suite()[1]  # MK2: 15x300
    rows = []
    for alpha in [*ALPHAS, None]:
        values = []
        interventions = 0
        for seed in SEEDS:
            result = run_one(inst, alpha, seed)
            values.append(result.best.value)
            for stats in result.rounds:
                interventions += stats.isp_rules.get("pool", 0)
                interventions += stats.isp_rules.get("restart", 0)
        label = "dynamic" if alpha is None else f"{alpha:.3f}"
        rows.append([label, round(sum(values) / len(values)), interventions])
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_alpha(benchmark, capsys):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    body = render_generic(["alpha", "mean best", "pool+restart events"], rows)
    publish("ablation_alpha", "A3 — ISP alpha sweep (MK2, CTS1)", body, capsys)

    by_alpha = {r[0]: (r[1], r[2]) for r in rows}
    # Higher alpha must interfere more (monotone event counts).
    events = [r[2] for r in rows[:-1]]
    assert events == sorted(events), "pooling events must grow with alpha"
    # The dynamic controller is competitive with the best fixed setting.
    best_fixed = max(v for label, (v, _) in by_alpha.items() if label != "dynamic")
    assert by_alpha["dynamic"][0] >= 0.995 * best_fixed
