"""A9 — the dynamic-tuning claim, isolated: SGP recovers bad strategies.

The paper's pitch (§4.2, §6): "parallel cooperative search may be used in
order to unload the user from the task of finding the efficient TS
parameters for each problem instance."  At well-tuned defaults CTS1 and
CTS2 often tie (EXPERIMENTS.md); the claim's value shows when the initial
parameters are *wrong*.

Setup: every slave starts with a deliberately pathological strategy
(maximum tabu tenure, maximum move weight, maximum stall patience).  CTS1
is stuck with it; CTS2's scoring detects the non-improving slaves and
regenerates their strategies.

Expected shape: CTS2 > CTS1 with bad strategies; CTS2-bad recovers most of
the gap to CTS2 with random (sane) strategies.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_generic
from repro.core import Strategy
from repro.instances import correlated_instance
from repro.master import MasterConfig
from repro.variants import solve_cts1, solve_cts2

from common import publish, scaled

SEEDS = (0, 1, 2, 3)
EVALS = 60_000
ROUNDS = 12
N_SLAVES = 8
BAD = tuple(Strategy(lt_length=50, nb_drop=8, nb_local=100) for _ in range(N_SLAVES))


def run_comparison() -> list[list[object]]:
    inst = correlated_instance(10, 150, rng=5, name="sgp-ablation")
    cells = {"CTS1 bad-init": 0.0, "CTS2 bad-init": 0.0, "CTS2 random-init": 0.0}
    regens = 0
    for seed in SEEDS:
        mc_bad = dict(
            n_slaves=N_SLAVES, n_rounds=ROUNDS, initial_strategies=BAD
        )
        cts1 = solve_cts1(
            inst,
            rng_seed=seed,
            max_evaluations=scaled(EVALS),
            master_config=MasterConfig(
                communicate=True, adapt_strategies=False, **mc_bad
            ),
        )
        cts2_bad = solve_cts2(
            inst,
            rng_seed=seed,
            max_evaluations=scaled(EVALS),
            master_config=MasterConfig(
                communicate=True, adapt_strategies=True, **mc_bad
            ),
        )
        cts2_rand = solve_cts2(
            inst,
            rng_seed=seed,
            max_evaluations=scaled(EVALS),
            n_slaves=N_SLAVES,
            n_rounds=ROUNDS,
        )
        cells["CTS1 bad-init"] += cts1.best.value
        cells["CTS2 bad-init"] += cts2_bad.best.value
        cells["CTS2 random-init"] += cts2_rand.best.value
        regens += sum(
            sum(v for k, v in s.sgp_actions.items() if k != "keep")
            for s in cts2_bad.rounds
        )
    n = len(SEEDS)
    rows = [[k, round(v / n)] for k, v in cells.items()]
    rows.append(["SGP regenerations (CTS2 bad-init, total)", regens])
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_sgp_recovery(benchmark, capsys):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    body = render_generic(["configuration", "mean best / count"], rows)
    publish(
        "ablation_sgp",
        "A9 — SGP recovery from pathological initial strategies",
        body,
        capsys,
    )

    values = {r[0]: r[1] for r in rows}
    # Dynamic tuning must beat the stuck configuration ...
    assert values["CTS2 bad-init"] > values["CTS1 bad-init"]
    # ... and must actually have regenerated strategies to do it.
    assert values["SGP regenerations (CTS2 bad-init, total)"] > 0
