"""B1 — the exact substrate's bound panel: tightness vs cost.

Not a paper artifact, but the substrate's quality control: every "Dev. in
%" column and every B&B proof rests on these bounds.  For a spread of
suite instances we report, for each bound, its mean gap above the proven
optimum (small instances) or above the LP value (large ones, where LP is
the reference), and its computation time.

Expected shape: LP is the tightest, the surrogate (LP-dual multipliers)
close behind, Lagrangian approaches LP from above (integrality property),
and the single-constraint Dantzig bound on the uniform aggregation is the
loosest but cheapest.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis import render_generic
from repro.exact import (
    SurrogateBound,
    dantzig_bound,
    lagrangian_bound,
    solve_lp_relaxation,
)
from repro.instances import fp57_instance, gk_instance

from common import publish, scaled


def run_panel():
    # Small FP problems (proven optima) + medium GK ones (LP reference).
    small = [fp57_instance(k, with_optimum=True) for k in (4, 22, 36, 51)]
    large = [gk_instance(k) for k in (9, 13, 17)]

    sums = {name: [0.0, 0.0] for name in ("LP", "surrogate", "Lagrangian", "Dantzig-uniform")}

    def record(name: str, value: float, reference: float, seconds: float) -> None:
        sums[name][0] += 100.0 * (value - reference) / reference
        sums[name][1] += seconds

    for inst in small + large:
        t0 = time.perf_counter()
        lp = solve_lp_relaxation(inst)
        t_lp = time.perf_counter() - t0
        reference = inst.optimum if inst.optimum is not None else lp.value

        record("LP", lp.value, reference, t_lp)

        t0 = time.perf_counter()
        sb = SurrogateBound(inst, lp.duals)
        record("surrogate", sb.root_bound(), reference, time.perf_counter() - t0)

        t0 = time.perf_counter()
        lag = lagrangian_bound(inst, iterations=scaled(200))
        record("Lagrangian", lag.bound, reference, time.perf_counter() - t0)

        t0 = time.perf_counter()
        uniform = np.ones(inst.n_constraints)
        dz = dantzig_bound(
            inst.profits, uniform @ inst.weights, float(uniform @ inst.capacities)
        )
        record("Dantzig-uniform", dz, reference, time.perf_counter() - t0)

    n = len(small) + len(large)
    rows = [
        [name, round(gap / n, 3), round(1000 * secs / n, 3)]
        for name, (gap, secs) in sums.items()
    ]
    return rows


@pytest.mark.benchmark(group="bounds")
def test_bound_panel(benchmark, capsys):
    rows = benchmark.pedantic(run_panel, rounds=1, iterations=1)
    body = render_generic(
        ["bound", "mean gap above reference %", "mean time (ms)"], rows
    )
    publish("bounds", "B1 — upper-bound panel (tightness vs cost)", body, capsys)

    gaps = {r[0]: r[1] for r in rows}
    # Validity: every bound is above the reference (non-negative gap).
    assert all(g >= -1e-6 for g in gaps.values())
    # LP is the tightest; the uniform Dantzig aggregation is the loosest.
    assert gaps["LP"] <= gaps["surrogate"] + 1e-9
    assert gaps["LP"] <= gaps["Lagrangian"] + 1e-9
    assert gaps["Dantzig-uniform"] >= gaps["surrogate"]