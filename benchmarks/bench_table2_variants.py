"""T2 — Table 2: SEQ vs ITS vs CTS1 vs CTS2 at a fixed execution time.

Paper's table: best cost found by the four approaches on MK1–MK5 for a
fixed execution time; CTS2 (communication + dynamic strategy setting)
dominates, CTS1 > ITS > SEQ on average.

Our reproduction: each approach receives the same per-processor virtual
time on the simulated farm (so the parallel variants do P× the total work,
exactly the paper's regime).  Values are averaged over three seeds to damp
single-run noise; the future-work asynchronous variant is reported as an
extra column.

Expected shape: CTS2 >= CTS1 >= ITS >= SEQ in aggregate, with the
cooperative variants winning on most rows.
"""

from __future__ import annotations

import pytest

from repro.analysis import Table2Row, render_table2
from repro.instances import mk_suite
from repro.variants import solve_cts1, solve_cts2, solve_cts_async, solve_its, solve_seq

from common import publish, scaled

N_SLAVES = 8
ROUNDS = 8
SEEDS = (0, 1, 2)
#: Per-processor budget. Chosen on the steep part of the anytime curve —
#: "for a fixed execution time" in the paper's sense: approaches are cut
#: off while still climbing, so climb *rate* (what cooperation buys)
#: separates them. At saturating budgets all parallel variants converge to
#: the same plateau and differences vanish (see EXPERIMENTS.md).
EVALS_PER_PROC = 40_000


def mean(values: list[float]) -> float:
    return sum(values) / len(values)


def run_table2() -> list[Table2Row]:
    rows = []
    budget = scaled(EVALS_PER_PROC)
    for inst in mk_suite():
        per_variant: dict[str, list[float]] = {
            "SEQ": [], "ITS": [], "CTS1": [], "CTS2": [], "CTS-async": []
        }
        exec_time = 0.0
        for seed in SEEDS:
            seq = solve_seq(inst, rng_seed=seed, max_evaluations=budget)
            its = solve_its(
                inst, n_slaves=N_SLAVES, n_rounds=ROUNDS, rng_seed=seed,
                max_evaluations=budget,
            )
            cts1 = solve_cts1(
                inst, n_slaves=N_SLAVES, n_rounds=ROUNDS, rng_seed=seed,
                max_evaluations=budget,
            )
            cts2 = solve_cts2(
                inst, n_slaves=N_SLAVES, n_rounds=ROUNDS, rng_seed=seed,
                max_evaluations=budget,
            )
            casync = solve_cts_async(
                inst, n_threads=N_SLAVES, rng_seed=seed, max_evaluations=budget
            )
            per_variant["SEQ"].append(seq.best.value)
            per_variant["ITS"].append(its.best.value)
            per_variant["CTS1"].append(cts1.best.value)
            per_variant["CTS2"].append(cts2.best.value)
            per_variant["CTS-async"].append(casync.best.value)
            exec_time = max(exec_time, cts2.virtual_seconds)
        rows.append(
            Table2Row(
                problem=inst.name,
                seq=mean(per_variant["SEQ"]),
                its=mean(per_variant["ITS"]),
                cts1=mean(per_variant["CTS1"]),
                cts2=mean(per_variant["CTS2"]),
                exec_time=exec_time,
                extras={"CTS-async": mean(per_variant["CTS-async"])},
            )
        )
    return rows


@pytest.mark.benchmark(group="table2")
def test_table2_variants(benchmark, capsys):
    rows = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    body = render_table2(rows)
    publish(
        "table2_variants",
        f"Table 2 — SEQ/ITS/CTS1/CTS2 on MK1–MK5 (P={N_SLAVES}, mean of {len(SEEDS)} seeds)",
        body,
        capsys,
    )

    # Shape assertions: cooperation dominates in aggregate (the paper's
    # headline), and every parallel variant beats SEQ in aggregate.
    total = {
        "SEQ": sum(r.seq for r in rows),
        "ITS": sum(r.its for r in rows),
        "CTS1": sum(r.cts1 for r in rows),
        "CTS2": sum(r.cts2 for r in rows),
    }
    assert total["ITS"] >= total["SEQ"]
    assert total["CTS1"] >= total["SEQ"]
    assert total["CTS2"] >= total["SEQ"]
    # CTS2 wins or ties the aggregate against the non-adaptive variants.
    assert total["CTS2"] >= max(total["ITS"], total["CTS1"]) - 0.001 * total["CTS2"]
