"""Elastic socket backend: localhost multi-worker speedup + chaos leg.

Two questions about the TCP transport (DESIGN.md §5.10):

* ``speedup`` — does sharding a round over worker *processes* actually
  buy wall time once the frames cross a socket?  P = 8 logical slaves on
  GK24 run wall-clock-budgeted tasks (``Budget(wall_seconds=...)`` — each
  task occupies its arena for a fixed wall window, the farm analogue of
  the paper's fixed per-round CPU slice, and deliberately insensitive to
  how many workers share a core) under 1 vs 4 connected workers.  One
  worker serializes all 8 windows per round; 4 workers overlap them 2-deep.
  Headline gate: >= 1.7x wall speedup at 4 workers.
* ``chaos`` — a worker vanishing mid-round (hard ``os._exit`` while
  serving its shard, the SIGKILL symptom) must not hang or regress the
  incumbent: the member is buried on heartbeat/EOF, the shard re-dealt,
  degraded-mode ISP/SGP absorbs the gap.  Gates: the solve completes and
  its incumbent history is monotone.

Results land in ``benchmarks/results/BENCH_socket.json`` via the shared
schema (``write_bench_json``) and fold into ``BENCH_index.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_socket.py [--smoke]
"""

from __future__ import annotations

import argparse
import platform
from pathlib import Path

import pytest

from repro.core.construction import random_solution
from repro.core.strategy import Strategy
from repro.core.tabu_search import TabuSearchConfig
from repro.core.termination import Budget
from repro.instances import gk_instance
from repro.obs import monotonic_s
from repro.parallel import FaultPlan, SocketBackend
from repro.parallel.faults import FaultEvent, FaultKind
from repro.parallel.message import SlaveTask

from common import publish, write_bench_json

DEFAULT_OUT = Path(__file__).parent / "results" / "BENCH_socket.json"

GK_NUMBER = 24  # GK24-25x500
N_SLAVES = 8
N_WORKERS = 4
SPEEDUP_FLOOR = 1.7
CONFIG = TabuSearchConfig(nb_div=100)


def _tasks(instance, n, round_index, wall_s):
    return [
        SlaveTask(
            x_init=random_solution(instance, rng=k),
            strategy=Strategy(8, 2, 10),
            budget=Budget(wall_seconds=wall_s),
            seed=1000 + round_index * n + k,
            round_index=round_index,
            seq_id=round_index * n + k,
        )
        for k in range(n)
    ]


def _wait_for_joins(backend: SocketBackend, n: int, timeout_s: float = 30.0) -> None:
    deadline = monotonic_s() + timeout_s
    while backend.joins < n:
        if monotonic_s() > deadline:
            raise RuntimeError(f"only {backend.joins}/{n} workers joined")
        backend._pump(0.05)


def _run_rounds(instance, n_workers, n_rounds, wall_s) -> dict:
    """Wall time for ``n_rounds`` full rounds on ``n_workers`` processes."""
    backend = SocketBackend(N_SLAVES, round_timeout_s=60.0)
    backend.attach_local_workers(n_workers)
    try:
        backend.start(instance, CONFIG)
        _wait_for_joins(backend, n_workers)
        # Warm-up round: arenas built, shards dealt, codepaths hot.
        backend.run_round(_tasks(instance, N_SLAVES, 0, wall_s / 4))
        t0 = monotonic_s()
        n_reports = 0
        for r in range(1, n_rounds + 1):
            n_reports += len(backend.run_round(_tasks(instance, N_SLAVES, r, wall_s)))
        elapsed = monotonic_s() - t0
    finally:
        backend.shutdown()
    assert n_reports == n_rounds * N_SLAVES, "speedup leg lost reports"
    return {
        "n_workers": n_workers,
        "wall_s": elapsed,
        "rounds_per_sec": n_rounds / elapsed,
    }


def _run_chaos(instance, n_rounds) -> dict:
    """One worker dies mid-round during a real solve; must finish monotone."""
    from repro.variants import solve_cts2

    doomed = FaultPlan(
        events=tuple(
            FaultEvent(round_index=1, slave_id=k, kind=FaultKind.CRASH)
            for k in range(N_SLAVES)
        )
    )
    backend = SocketBackend(
        N_SLAVES, round_timeout_s=2.0, heartbeat_timeout_s=5.0
    )
    backend.attach_local_workers(N_WORKERS, fault_plans=[doomed, None, None, None])
    try:
        _wait_for_joins(backend, N_WORKERS)
        t0 = monotonic_s()
        result = solve_cts2(
            instance,
            n_slaves=N_SLAVES,
            n_rounds=n_rounds,
            rng_seed=11,
            max_evaluations=1500,
            backend=backend,
        )
        elapsed = monotonic_s() - t0
        counters = dict(backend.fault_counters)
    finally:
        backend.shutdown()
    history = [float(v) for v in result.value_history]
    return {
        "wall_s": elapsed,
        "monotone": bool(history == sorted(history)),
        "completed": bool(history and result.best.value == history[-1]),
        "workers_lost": int(counters.get("worker_lost", 0)),
        "best_value": float(result.best.value),
    }


def measure(*, smoke: bool) -> dict:
    instance = gk_instance(GK_NUMBER)
    wall_s = 0.04 if smoke else 0.15
    n_rounds = 2 if smoke else 3
    single = _run_rounds(instance, 1, n_rounds, wall_s)
    multi = _run_rounds(instance, N_WORKERS, n_rounds, wall_s)
    chaos = _run_chaos(instance, n_rounds=4)
    return {
        "instance": f"GK{GK_NUMBER:02d}",
        "n_slaves": N_SLAVES,
        "n_rounds": n_rounds,
        "task_wall_s": wall_s,
        "single": single,
        "multi": multi,
        "speedup": single["wall_s"] / multi["wall_s"],
        "chaos": chaos,
        "smoke": smoke,
        "python": platform.python_version(),
    }


def render(data: dict) -> str:
    s, m, c = data["single"], data["multi"], data["chaos"]
    return "\n".join(
        [
            f"{data['instance']}, P={data['n_slaves']}, "
            f"{data['n_rounds']} rounds of {data['task_wall_s']:.2f}s tasks",
            f"{'fleet':<22} {'wall':>9} {'rounds/s':>10}",
            f"{'1 worker process':<22} {s['wall_s']:>8.3f}s {s['rounds_per_sec']:>10.2f}",
            f"{str(m['n_workers']) + ' worker processes':<22} {m['wall_s']:>8.3f}s "
            f"{m['rounds_per_sec']:>10.2f}",
            f"speedup: x{data['speedup']:.2f} (gate: >= {SPEEDUP_FLOOR})",
            f"chaos leg: worker killed mid-round -> finished in {c['wall_s']:.2f}s, "
            f"{c['workers_lost']} member(s) buried, "
            f"incumbent {'monotone' if c['monotone'] else 'REGRESSED'} "
            f"(best {c['best_value']:,.0f})",
        ]
    )


def gates(data: dict) -> dict:
    return {
        "speedup_4_workers": {
            "value": round(data["speedup"], 3),
            "threshold": SPEEDUP_FLOOR,
            "passed": data["speedup"] >= SPEEDUP_FLOOR,
        },
        "chaos_completed": {
            "value": data["chaos"]["completed"],
            "threshold": True,
            "passed": bool(data["chaos"]["completed"]),
        },
        "chaos_monotone_incumbent": {
            "value": data["chaos"]["monotone"],
            "threshold": True,
            "passed": bool(data["chaos"]["monotone"]),
        },
        "chaos_worker_buried": {
            "value": data["chaos"]["workers_lost"],
            "threshold": 1,
            "passed": data["chaos"]["workers_lost"] >= 1,
        },
    }


def check(data: dict) -> None:
    for name, gate in gates(data).items():
        assert gate["passed"], (
            f"{name}: {gate['value']} missed threshold {gate['threshold']}"
        )


def persist(data: dict, *, out_dir: Path | None = None) -> None:
    write_bench_json(
        "socket",
        metrics={
            "speedup_4_workers": round(data["speedup"], 3),
            "single_rounds_per_sec": round(data["single"]["rounds_per_sec"], 3),
            "multi_rounds_per_sec": round(data["multi"]["rounds_per_sec"], 3),
            "chaos_wall_s": round(data["chaos"]["wall_s"], 3),
            "chaos_workers_lost": data["chaos"]["workers_lost"],
        },
        gates=gates(data),
        meta={
            "instance": data["instance"],
            "n_slaves": data["n_slaves"],
            "n_workers": N_WORKERS,
            "n_rounds": data["n_rounds"],
            "task_wall_s": data["task_wall_s"],
            "smoke": data["smoke"],
            "python": data["python"],
        },
        out_dir=out_dir,
    )


@pytest.mark.benchmark(group="socket")
def test_socket(benchmark, capsys):
    data = benchmark.pedantic(measure, kwargs={"smoke": True}, rounds=1)
    publish(
        "socket",
        "Elastic socket backend: localhost worker speedup + chaos",
        render(data),
        capsys,
    )
    persist(data)
    check(data)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--out",
        type=Path,
        default=DEFAULT_OUT,
        help="result path (BENCH_socket.json lands in its directory)",
    )
    args = parser.parse_args(argv)

    data = measure(smoke=args.smoke)
    print(render(data))
    persist(data, out_dir=args.out.parent)
    print(f"-> {args.out.parent / 'BENCH_socket.json'}")
    check(data)


if __name__ == "__main__":
    main()
