"""A7 — baseline panel: the paper's approach vs its contemporaries.

Compares, at strictly equal candidate-evaluation budgets:

* density greedy and Toyoda greedy (construction-only floor),
* simulated annealing,
* reactive tabu search (Battiti–Tecchiolli — the §4.1 sequential
  alternative to parallel dynamic tuning),
* REM tabu search (Dammeyer–Voss — including its trace overhead),
* critical-event TS (Glover–Kochenberger, reference [6]),
* SEQ (the paper's own thread, alone) and CTS2 (the full system with 8
  slaves, each on its own simulated processor).

Budgets follow the paper's Table-2 regime: **equal time per processor**
(every sequential method gets the per-processor budget; CTS2's 8 slaves
each get the same budget on their own processor and so do 8x the total
work in the same elapsed time — that is precisely the advantage
parallelism buys and the comparison the paper reports).

Expected shape: every metaheuristic beats the greedy floor; CTS2 tops the
panel at equal elapsed (virtual) time.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_generic
from repro.baselines import (
    critical_event_tabu_search,
    density_greedy,
    rem_tabu_search,
    reactive_tabu_search,
    simulated_annealing,
    toyoda_greedy,
)
from repro.core import Budget
from repro.instances import gk_instance
from repro.variants import solve_cts2, solve_seq

from common import publish, scaled

SEEDS = (0, 1, 2)
EVALS_PER_PROC = 80_000
INSTANCES = (10, 13, 20)  # GK10 10x100, GK13 10x250, GK20 25x300


def run_panel() -> list[list[object]]:
    methods: dict[str, float] = {}

    def add(name: str, value: float) -> None:
        methods[name] = methods.get(name, 0.0) + value

    for number in INSTANCES:
        inst = gk_instance(number)
        add("greedy (density)", density_greedy(inst).value * len(SEEDS))
        add("greedy (Toyoda)", toyoda_greedy(inst).value * len(SEEDS))
        for seed in SEEDS:
            budget = scaled(EVALS_PER_PROC)
            add(
                "simulated annealing",
                simulated_annealing(inst, Budget(max_evaluations=budget), rng=seed).best.value,
            )
            add(
                "reactive TS",
                reactive_tabu_search(inst, Budget(max_evaluations=budget), rng=seed).best.value,
            )
            add(
                "REM TS",
                rem_tabu_search(inst, Budget(max_evaluations=budget), rng=seed).best.value,
            )
            add(
                "critical-event TS",
                critical_event_tabu_search(
                    inst, Budget(max_evaluations=budget), rng=seed
                ).best.value,
            )
            add(
                "SEQ (paper thread)",
                solve_seq(inst, rng_seed=seed, max_evaluations=budget).best.value,
            )
            add(
                "CTS2 (full system)",
                solve_cts2(
                    inst,
                    n_slaves=8,
                    n_rounds=8,
                    rng_seed=seed,
                    max_evaluations=budget,  # per-processor, Table-2 regime
                ).best.value,
            )
    n = len(SEEDS) * len(INSTANCES)
    rows = sorted(
        ([name, round(total / n)] for name, total in methods.items()),
        key=lambda r: -r[1],
    )
    return rows


@pytest.mark.benchmark(group="baselines")
def test_baseline_panel(benchmark, capsys):
    rows = benchmark.pedantic(run_panel, rounds=1, iterations=1)
    body = render_generic(["method", "mean best (equal per-proc budget)"], rows)
    publish("baselines", "A7 — baseline panel on three GK instances", body, capsys)

    values = {r[0]: r[1] for r in rows}
    floor = values["greedy (density)"]
    # The paper-lineage TS methods beat the construction floor.  REM and SA
    # are *allowed* to fall below it — that they do is a finding, not a
    # failure: REM burns its budget on the O(iterations) running-list trace
    # (exactly the overhead §4.1 criticizes) and naive flip-SA explores far
    # less of the feasible boundary per evaluation.
    for name in ("reactive TS", "critical-event TS", "SEQ (paper thread)", "CTS2 (full system)"):
        assert values[name] >= floor * 0.98, f"{name} below the greedy floor"
    # The paper's system tops the panel at equal elapsed time.
    top = rows[0][1]
    assert values["CTS2 (full system)"] >= 0.995 * top
