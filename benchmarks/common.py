"""Shared infrastructure for the benchmark harness.

Every bench regenerates one artifact of the paper (see DESIGN.md §4's
experiment index).  Conventions:

* each bench is a pytest-benchmark test: the timed payload is the
  experiment itself (``benchmark.pedantic(..., rounds=1)``), so
  ``pytest benchmarks/ --benchmark-only`` runs the full harness;
* the paper-style table is printed live (capture disabled) *and* written
  to ``benchmarks/results/<name>.txt`` so ``bench_output.txt`` plus the
  results directory together record every reproduced artifact;
* ``REPRO_BENCH_SCALE`` (float, default 1.0) scales every search budget —
  set it below 1 for smoke runs, above 1 for higher-fidelity tables.
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> float:
    """Global budget multiplier from the environment."""
    try:
        scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    except ValueError as exc:
        raise ValueError("REPRO_BENCH_SCALE must be a float") from exc
    if scale <= 0:
        raise ValueError("REPRO_BENCH_SCALE must be positive")
    return scale


def scaled(budget: int | float) -> int:
    """Apply the global scale to an evaluation budget."""
    return max(1, int(budget * bench_scale()))


def publish(name: str, title: str, body: str, capsys=None) -> None:
    """Print a result table live and persist it under benchmarks/results/."""
    text = f"\n=== {title} ===\n{body}\n"
    if capsys is not None:
        with capsys.disabled():
            print(text)
    else:  # pragma: no cover - fallback
        print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text.lstrip("\n"), encoding="utf-8")
