"""Shared infrastructure for the benchmark harness.

Every bench regenerates one artifact of the paper (see DESIGN.md §4's
experiment index).  Conventions:

* each bench is a pytest-benchmark test: the timed payload is the
  experiment itself (``benchmark.pedantic(..., rounds=1)``), so
  ``pytest benchmarks/ --benchmark-only`` runs the full harness;
* the paper-style table is printed live (capture disabled) *and* written
  to ``benchmarks/results/<name>.txt`` so ``bench_output.txt`` plus the
  results directory together record every reproduced artifact;
* ``REPRO_BENCH_SCALE`` (float, default 1.0) scales every search budget —
  set it below 1 for smoke runs, above 1 for higher-fidelity tables.
* machine-readable results go through :func:`write_bench_json` (shared
  schema: ``schema_version``/``bench``/``metrics``/``gates``/``meta``) and
  are aggregated by :func:`rebuild_index` into ``BENCH_index.json`` — one
  perf trajectory over every ``BENCH_*.json``, legacy free-form files
  included.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: Version of the shared benchmark result schema written by
#: :func:`write_bench_json`.  Legacy free-form ``BENCH_*.json`` files
#: predate it and are indexed with ``schema_version: 0``.
BENCH_SCHEMA_VERSION = 1


def bench_scale() -> float:
    """Global budget multiplier from the environment."""
    try:
        scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    except ValueError as exc:
        raise ValueError("REPRO_BENCH_SCALE must be a float") from exc
    if scale <= 0:
        raise ValueError("REPRO_BENCH_SCALE must be positive")
    return scale


def scaled(budget: int | float) -> int:
    """Apply the global scale to an evaluation budget."""
    return max(1, int(budget * bench_scale()))


def publish(name: str, title: str, body: str, capsys=None) -> None:
    """Print a result table live and persist it under benchmarks/results/."""
    text = f"\n=== {title} ===\n{body}\n"
    if capsys is not None:
        with capsys.disabled():
            print(text)
    else:  # pragma: no cover - fallback
        print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text.lstrip("\n"), encoding="utf-8")


def write_bench_json(
    name: str,
    *,
    metrics: dict,
    gates: dict | None = None,
    meta: dict | None = None,
    out_dir: Path | None = None,
) -> Path:
    """Persist one bench's machine-readable result in the shared schema.

    ``metrics`` holds the measured figures, ``gates`` the pass/fail
    assertions the bench enforces (name → ``{"value", "threshold",
    "passed"}``-style entries), ``meta`` run context (instance, scale,
    python version...).  Writes ``BENCH_<name>.json`` and refreshes
    ``BENCH_index.json`` so the aggregate trajectory never goes stale.
    """
    out_dir = RESULTS_DIR if out_dir is None else out_dir
    out_dir.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "bench": name,
        "metrics": metrics,
        "gates": gates or {},
        "meta": meta or {},
    }
    path = out_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    rebuild_index(out_dir)
    return path


def rebuild_index(out_dir: Path | None = None) -> Path:
    """Aggregate every ``BENCH_*.json`` into one ``BENCH_index.json``.

    Shared-schema files contribute their ``metrics``/``gates``/``meta``
    directly; legacy free-form files are carried whole under ``data`` with
    ``schema_version: 0`` — so the index is the single machine-readable
    perf trajectory across all PRs, old and new.
    """
    out_dir = RESULTS_DIR if out_dir is None else out_dir
    out_dir.mkdir(parents=True, exist_ok=True)
    benches: dict[str, dict] = {}
    for path in sorted(out_dir.glob("BENCH_*.json")):
        if path.name == "BENCH_index.json":
            continue
        name = path.stem[len("BENCH_") :]
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            benches[name] = {"file": path.name, "error": str(exc)}
            continue
        if isinstance(data, dict) and data.get("schema_version"):
            benches[name] = {
                "file": path.name,
                "schema_version": data["schema_version"],
                "metrics": data.get("metrics", {}),
                "gates": data.get("gates", {}),
                "meta": data.get("meta", {}),
            }
        else:
            benches[name] = {
                "file": path.name,
                "schema_version": 0,
                "data": data,
            }
    index = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "n_benches": len(benches),
        "benches": benches,
    }
    path = out_dir / "BENCH_index.json"
    path.write_text(json.dumps(index, indent=2, sort_keys=True) + "\n")
    return path
