"""A4 — ablation: the §3.2 intensification procedures.

Runs sequential TS with each intensification mode — none, component swap,
depth-limited strategic oscillation, both — at an equal evaluation budget.

Expected shape: every intensifying mode is at least as good as `none` in
aggregate, and `both` (the paper's configuration) is competitive with the
best single mode.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_generic
from repro.core import (
    Budget,
    IntensificationKind,
    Strategy,
    TabuSearch,
    TabuSearchConfig,
    random_solution,
)
from repro.instances import gk_instance

from common import publish, scaled

SEEDS = range(5)
EVALS = 30_000
INSTANCES = (7, 11, 16)  # GK08 5x150, GK11 10x100, GK16 15x200


def run_sweep() -> list[list[object]]:
    rows = []
    for kind in IntensificationKind:
        total = 0.0
        for number in INSTANCES:
            inst = gk_instance(number)
            for seed in SEEDS:
                ts = TabuSearch(
                    inst,
                    Strategy(lt_length=10, nb_drop=2, nb_local=25),
                    TabuSearchConfig(nb_div=1_000_000, intensification=kind),
                    rng=seed,
                )
                result = ts.run(
                    x_init=random_solution(inst, rng=seed),
                    budget=Budget(max_evaluations=scaled(EVALS)),
                )
                total += result.best.value
        rows.append([kind.value, round(total / (len(SEEDS) * len(INSTANCES)))])
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_intensification(benchmark, capsys):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    body = render_generic(["intensification", "mean best (3 GK instances)"], rows)
    publish(
        "ablation_intensify",
        "A4 — intensification mode ablation (SEQ TS, equal budget)",
        body,
        capsys,
    )

    by_kind = {r[0]: r[1] for r in rows}
    assert by_kind["both"] >= 0.995 * by_kind["none"]
    assert max(by_kind["swap"], by_kind["oscillation"], by_kind["both"]) >= by_kind["none"]
