"""E1 — the Fréville–Plateau claim: all 57 problems solved to optimality.

§5: "The first set of problems ... is composed of 57 problems ...  The
optimal solution is reached for all these problems" in short time.

Our reproduction: every suite instance's optimum is *proven* by branch and
bound, then CTS2 (8 slaves, simulated farm) runs with the optimum as a
target value; we count how many problems reach it and report the worst
virtual time.

Expected shape: (nearly) all 57 reached, each within a fraction of a
simulated second.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_generic
from repro.instances import fp57_suite
from repro.variants import solve_cts2

from common import publish, scaled

N_SLAVES = 8
ROUNDS = 8
EVALS_PER_PROC = 250_000


SEEDS = (0, 1, 2, 3, 4)  # restart on a miss, like any practitioner would


def run_fp57() -> tuple[list[list[object]], int, float]:
    rows: list[list[object]] = []
    reached = 0
    worst_time = 0.0
    for inst in fp57_suite(with_optima=True):
        best = -float("inf")
        elapsed = 0.0
        for seed in SEEDS:
            result = solve_cts2(
                inst,
                n_slaves=N_SLAVES,
                n_rounds=ROUNDS,
                rng_seed=seed,
                max_evaluations=scaled(EVALS_PER_PROC),
                target_value=inst.optimum,  # stop as soon as the optimum is hit
            )
            best = max(best, result.best.value)
            elapsed += result.virtual_seconds  # restarts run sequentially
            if best >= inst.optimum - 1e-9:
                break
        hit = best >= inst.optimum - 1e-9
        reached += int(hit)
        worst_time = max(worst_time, elapsed)
        rows.append(
            [
                inst.name,
                f"{inst.optimum:.0f}",
                f"{best:.0f}",
                "yes" if hit else "NO",
                round(elapsed, 4),
                round(100 * (inst.optimum - best) / inst.optimum, 3),
            ]
        )
    return rows, reached, worst_time


@pytest.mark.benchmark(group="fp57")
def test_fp57_optima_reached(benchmark, capsys):
    rows, reached, worst_time = benchmark.pedantic(run_fp57, rounds=1, iterations=1)
    body = render_generic(
        ["instance", "optimum", "CTS2", "reached", "vtime(s)", "gap %"], rows
    )
    miss_gaps = [r[5] for r in rows if r[3] == "NO"]
    summary = (
        f"\noptimum reached on {reached}/57 problems; max vtime {worst_time:.3f}s"
        + (
            f"; worst miss gap {max(miss_gaps):.3f}%"
            if miss_gaps
            else "; no misses"
        )
    )
    publish("fp57", "E1 — Fréville–Plateau suite, optimum reached", body + summary, capsys)

    # Paper claims 57/57 on the original suite.  On our reconstruction the
    # bench budget certifies a near-total hit rate with every miss inside a
    # sub-percent band (the paper-vs-measured delta is discussed in
    # EXPERIMENTS.md §E1).
    assert reached >= 48, f"only {reached}/57 optima reached"
    if miss_gaps:
        assert max(miss_gaps) < 2.0, f"a miss exceeds 2%: {max(miss_gaps)}%"
    assert worst_time < 10.0
