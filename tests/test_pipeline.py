"""Tests for the bounded-staleness pipelined master (DESIGN.md §5.9).

Pins the async-mode contracts the ISSUE-9 tentpole promises:

* config validation for ``pipeline`` / ``max_staleness`` / ``queue_depth`` /
  ``burst_timeout_s`` and the runner's keyword wiring,
* seeded determinism under :class:`SerialBackend` replay (inline execution
  makes arrival order equal dispatch order),
* the sync default stays the default — an explicit ``pipeline="sync"`` is
  bit-identical to a plain run,
* round-compatible windows: an async run still yields one
  :class:`RoundStats` per round with a monotone incumbent,
* the staleness bound holds (``pipeline_stats["max_staleness"]`` never
  exceeds the configured cap),
* chaos legs over both the pipe and shm transports: a straggler inflates
  only its own burst latency, a crashed worker is failed + respawned, a
  duplicated report is counted and folded once, a dropped report is timed
  out without deadlocking,
* the recorder stream stays schema-valid and carries one
  ``burst_telemetry`` event per (slave, burst) resolution.

The CI transport job replays this module under ``REPRO_TRANSPORT=shm`` on
both fork and spawn start methods.
"""

from __future__ import annotations

import os

import pytest

from repro.core import Budget, Strategy, TabuSearchConfig, random_solution
from repro.farm import ALPHA_FARM
from repro.master import MasterConfig, MasterProcess
from repro.obs import RunRecorder, validate_stream
from repro.parallel import (
    FaultEvent,
    FaultKind,
    FaultPlan,
    MultiprocessingBackend,
    SerialBackend,
    SlaveTask,
)
from repro.variants import solve_cts1, solve_cts2

ENV_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "101"))

N_SLAVES = 3
N_ROUNDS = 4
EVALS = 2_000


def solve_async(instance, *, backend=None, rng_seed=7, n_slaves=N_SLAVES,
                n_rounds=N_ROUNDS, **kwargs):
    return solve_cts2(
        instance,
        n_slaves=n_slaves,
        n_rounds=n_rounds,
        rng_seed=rng_seed,
        max_evaluations=EVALS,
        backend=backend,
        pipeline="async",
        **kwargs,
    )


class TestConfigValidation:
    def test_unknown_pipeline_rejected(self):
        with pytest.raises(ValueError, match="pipeline"):
            MasterConfig(n_slaves=2, n_rounds=2, pipeline="turbo")

    def test_max_staleness_floor(self):
        with pytest.raises(ValueError, match="max_staleness"):
            MasterConfig(n_slaves=2, n_rounds=2, max_staleness=0)

    def test_queue_depth_floor(self):
        with pytest.raises(ValueError, match="queue_depth"):
            MasterConfig(n_slaves=2, n_rounds=2, queue_depth=0)

    def test_burst_timeout_positive_or_none(self):
        with pytest.raises(ValueError, match="burst_timeout_s"):
            MasterConfig(n_slaves=2, n_rounds=2, burst_timeout_s=0.0)
        cfg = MasterConfig(n_slaves=2, n_rounds=2, burst_timeout_s=None)
        assert cfg.burst_timeout_s is None

    def test_defaults_are_sync_double_buffer(self):
        cfg = MasterConfig(n_slaves=2, n_rounds=2)
        assert cfg.pipeline == "sync"
        assert cfg.max_staleness == 2
        assert cfg.queue_depth == 2


class TestRunnerWiring:
    def test_master_config_conflicts_with_pipeline_kwarg(self, small_instance):
        cfg = MasterConfig(n_slaves=2, n_rounds=2)
        with pytest.raises(ValueError, match="master_config"):
            solve_cts2(
                small_instance,
                max_evaluations=EVALS,
                master_config=cfg,
                pipeline="async",
            )
        with pytest.raises(ValueError, match="master_config"):
            solve_cts2(
                small_instance,
                max_evaluations=EVALS,
                master_config=cfg,
                max_staleness=3,
            )

    def test_explicit_sync_is_bit_identical_to_default(self, small_instance):
        base = solve_cts2(
            small_instance, n_slaves=N_SLAVES, n_rounds=N_ROUNDS,
            rng_seed=7, max_evaluations=EVALS,
        )
        explicit = solve_cts2(
            small_instance, n_slaves=N_SLAVES, n_rounds=N_ROUNDS,
            rng_seed=7, max_evaluations=EVALS, pipeline="sync",
        )
        assert base.pipeline == explicit.pipeline == "sync"
        assert base.pipeline_stats == explicit.pipeline_stats == {}
        assert base.best.value == explicit.best.value
        assert base.value_history == explicit.value_history
        assert base.total_evaluations == explicit.total_evaluations

    def test_cts1_supports_async_too(self, small_instance):
        result = solve_cts1(
            small_instance, n_slaves=N_SLAVES, n_rounds=N_ROUNDS,
            rng_seed=7, max_evaluations=EVALS, pipeline="async",
        )
        assert result.pipeline == "async"
        assert result.n_rounds == N_ROUNDS


class TestSerialAsync:
    def test_seeded_replay_is_deterministic(self, small_instance):
        a = solve_async(small_instance)
        b = solve_async(small_instance)
        assert a.best.value == b.best.value
        assert (a.best.items == b.best.items).all()
        assert a.value_history == b.value_history
        assert a.total_evaluations == b.total_evaluations
        # Wall-clock aggregates (reclaimed idle, master wait) jitter;
        # the schedule-derived stats must replay exactly.
        for key in ("bursts_completed", "burst_failures", "max_staleness",
                    "mean_queue_depth"):
            assert a.pipeline_stats[key] == b.pipeline_stats[key]

    def test_round_compatible_result_shape(self, small_instance):
        result = solve_async(small_instance)
        assert result.pipeline == "async"
        assert result.n_rounds == N_ROUNDS
        assert [s.round_index for s in result.rounds] == list(range(N_ROUNDS))
        history = result.value_history
        assert history == sorted(history), "incumbent regressed"
        assert result.best.value == history[-1]
        assert result.best.is_feasible(small_instance)
        # Async is pure wall-clock: no virtual-farm makespan to report.
        assert result.virtual_seconds == 0.0
        assert result.trace is None

    def test_pipeline_stats_populated_and_bounded(self, small_instance):
        result = solve_async(small_instance)
        stats = result.pipeline_stats
        assert stats["bursts_completed"] == N_SLAVES * N_ROUNDS
        assert stats["burst_failures"] == 0
        assert 0 <= stats["max_staleness"] <= 2  # config default cap
        assert stats["mean_queue_depth"] >= 0.0

    def test_custom_staleness_cap_holds(self, small_instance):
        cfg = MasterConfig(
            n_slaves=N_SLAVES, n_rounds=6, pipeline="async", max_staleness=3
        )
        backend = SerialBackend(N_SLAVES)
        master = MasterProcess(small_instance, cfg, backend, rng_seed=7)
        try:
            result = master.run(budget_per_slave=Budget(max_evaluations=EVALS))
        finally:
            backend.shutdown()
        assert result.pipeline_stats["max_staleness"] <= 3

    def test_recorder_stream_schema_and_burst_events(
        self, small_instance, tmp_path
    ):
        path = tmp_path / "async.jsonl"
        cfg = MasterConfig(n_slaves=N_SLAVES, n_rounds=N_ROUNDS, pipeline="async")
        backend = SerialBackend(N_SLAVES)
        recorder = RunRecorder(path)
        master = MasterProcess(
            small_instance, cfg, backend, rng_seed=7, recorder=recorder
        )
        try:
            master.run(budget_per_slave=Budget(max_evaluations=EVALS))
        finally:
            recorder.close()
            backend.shutdown()
        lines = path.read_text(encoding="utf-8").splitlines()
        assert validate_stream(lines) == []
        kinds = [e["event"] for e in recorder.events]
        # One resolution per (slave, burst); the sync-shaped round group
        # still closes once per burst window.
        assert kinds.count("burst_telemetry") == N_SLAVES * N_ROUNDS
        assert kinds.count("round_start") == N_ROUNDS
        assert kinds.count("round_end") == N_ROUNDS
        bursts = [e for e in recorder.events if e["event"] == "burst_telemetry"]
        assert all(b["outcome"] == "report" for b in bursts)
        assert all(b["staleness"] <= 2 for b in bursts)
        assert recorder.metrics.counter_value(
            "repro_bursts_total", outcome="report"
        ) == N_SLAVES * N_ROUNDS


class TestAsyncGuards:
    def test_farm_model_is_rejected(self, small_instance):
        cfg = MasterConfig(n_slaves=2, n_rounds=2, pipeline="async")
        backend = SerialBackend(2)
        master = MasterProcess(
            small_instance, cfg, backend, rng_seed=0, farm=ALPHA_FARM
        )
        try:
            with pytest.raises(ValueError, match="virtual-farm"):
                master.run(budget_per_slave=Budget(max_evaluations=500))
        finally:
            backend.shutdown()

    def test_sync_only_backend_is_rejected(self, small_instance):
        class SyncOnlyBackend:
            """run_round-only contract (pre-pipeline third-party backend)."""

            def __init__(self, inner):
                self._inner = inner
                self.n_slaves = inner.n_slaves

            def start(self, instance, config):
                return self._inner.start(instance, config)

            def run_round(self, tasks):
                return self._inner.run_round(tasks)

            def shutdown(self):
                return self._inner.shutdown()

        backend = SyncOnlyBackend(SerialBackend(2))
        cfg = MasterConfig(n_slaves=2, n_rounds=2, pipeline="async")
        master = MasterProcess(small_instance, cfg, backend, rng_seed=0)
        try:
            with pytest.raises(TypeError, match="dispatch"):
                master.run(budget_per_slave=Budget(max_evaluations=500))
        finally:
            backend.shutdown()


def _warmup_tasks(instance, n, round_index=99):
    """One cheap task per slave, indexed past any fault schedule."""
    return [
        SlaveTask(
            x_init=random_solution(instance, rng=k),
            strategy=Strategy(8, 2, 10),
            budget=Budget(max_evaluations=200),
            seed=1000 + k,
            round_index=round_index,
            seq_id=round_index * n + k,
        )
        for k in range(n)
    ]


def run_async_master(
    instance,
    backend,
    *,
    n_slaves,
    n_rounds=N_ROUNDS,
    burst_timeout_s=30.0,
    rng_seed=7,
):
    """Async solve with a pinned burst timeout (the runner keeps the
    default; loss-detection tests need a short one)."""
    cfg = MasterConfig(
        n_slaves=n_slaves,
        n_rounds=n_rounds,
        pipeline="async",
        burst_timeout_s=burst_timeout_s,
    )
    master = MasterProcess(instance, cfg, backend, rng_seed=rng_seed)
    return master.run(budget_per_slave=Budget(max_evaluations=EVALS))


def _chaos_backend(transport, n_slaves, plan, **kwargs):
    """MP backend over the requested transport; skip if shm is unavailable."""
    backend = MultiprocessingBackend(
        n_slaves, transport=transport, fault_plan=plan, **kwargs
    )
    return backend


def _skip_if_degraded(backend, transport):
    if transport == "shm" and backend.transport != "shm":
        backend.shutdown()
        pytest.skip("POSIX shared memory unavailable")


@pytest.mark.slow
@pytest.mark.chaos
@pytest.mark.parametrize("transport", ["pipe", "shm"])
class TestMultiprocessingAsyncChaos:
    def test_straggler_stalls_only_its_own_bursts(self, small_instance, transport):
        # Factor 15 => the worker sleeps min(0.05 * 14, 1.0) = 0.7 s at
        # burst 1 before reporting.
        plan = FaultPlan(
            events=(FaultEvent(1, 0, FaultKind.STRAGGLE, factor=15.0),)
        )
        backend = _chaos_backend(transport, N_SLAVES, plan)
        with backend:
            backend.start(small_instance, TabuSearchConfig(nb_div=100))
            _skip_if_degraded(backend, transport)
            # Warm-up round past the fault schedule: worker startup must
            # not pollute the burst latencies asserted below.
            backend.run_round(_warmup_tasks(small_instance, N_SLAVES))
            result = solve_async(small_instance, backend=backend)
        history = result.value_history
        assert history == sorted(history), "incumbent regressed under straggle"
        assert result.pipeline_stats["burst_failures"] == 0
        # Window 1's latency map attributes the sleep to slave 0 alone.
        idle = result.rounds[1].gather_idle_s
        assert idle[0] >= 0.6
        assert all(idle[k] < 0.5 for k in idle if k != 0)

    def test_crashed_worker_is_failed_and_respawned(self, small_instance, transport):
        plan = FaultPlan(events=(FaultEvent(0, 0, FaultKind.CRASH),))
        backend = _chaos_backend(transport, 2, plan, round_timeout_s=30.0)
        with backend:
            backend.start(small_instance, TabuSearchConfig(nb_div=100))
            _skip_if_degraded(backend, transport)
            result = solve_async(
                small_instance, backend=backend, n_slaves=2, n_rounds=6
            )
            # The dead worker's in-flight bursts were failed, the fleet
            # respawned it lazily on the next dispatch, and it served again.
            assert backend.respawns[0] >= 1
        assert result.fault_summary["failed"] >= 1
        assert result.pipeline_stats["burst_failures"] >= 1
        history = result.value_history
        assert history == sorted(history), "incumbent regressed under crash"
        assert result.n_rounds == 6

    def test_duplicate_report_is_counted_and_folded_once(
        self, small_instance, transport
    ):
        plan = FaultPlan(events=(FaultEvent(0, 1, FaultKind.DUPLICATE_REPORT),))
        backend = _chaos_backend(transport, N_SLAVES, plan)
        with backend:
            backend.start(small_instance, TabuSearchConfig(nb_div=100))
            _skip_if_degraded(backend, transport)
            result = solve_async(small_instance, backend=backend)
        assert result.fault_summary.get("duplicates", 0) >= 1
        # The duplicate never double-resolves a burst: all P*R bursts
        # complete exactly once.
        assert result.pipeline_stats["bursts_completed"] == N_SLAVES * N_ROUNDS
        history = result.value_history
        assert history == sorted(history)

    def test_dropped_report_times_out_not_deadlocks(
        self, small_instance, transport
    ):
        plan = FaultPlan(events=(FaultEvent(0, 1, FaultKind.DROP_REPORT),))
        backend = _chaos_backend(transport, 2, plan)
        with backend:
            backend.start(small_instance, TabuSearchConfig(nb_div=100))
            _skip_if_degraded(backend, transport)
            result = run_async_master(
                small_instance, backend, n_slaves=2, burst_timeout_s=1.0
            )
        assert result.fault_summary["failed"] >= 1
        assert result.n_rounds == N_ROUNDS
        history = result.value_history
        assert history == sorted(history)

    def test_seeded_chaos_solve_keeps_incumbent_monotone(
        self, small_instance, transport
    ):
        plan = FaultPlan.from_seed(
            ENV_SEED,
            n_slaves=N_SLAVES,
            n_rounds=N_ROUNDS,
            crash_rate=0.1,
            report_drop_rate=0.1,
            duplicate_rate=0.15,
            delay_rate=0.15,
            straggle_rate=0.2,
        )
        backend = _chaos_backend(transport, N_SLAVES, plan)
        with backend:
            backend.start(small_instance, TabuSearchConfig(nb_div=100))
            _skip_if_degraded(backend, transport)
            result = run_async_master(
                small_instance, backend, n_slaves=N_SLAVES, burst_timeout_s=2.0
            )
        history = [float(v) for v in result.value_history]
        assert history, "chaos run produced no incumbent history"
        assert history == sorted(history), "incumbent regressed under chaos"
        assert result.best.value == history[-1]
        assert result.n_rounds == N_ROUNDS


@pytest.mark.slow
class TestMultiprocessingAsyncFaultFree:
    def test_completes_with_all_bursts(self, small_instance, mp_context):
        backend = MultiprocessingBackend(N_SLAVES, mp_context=mp_context)
        with backend:
            backend.start(small_instance, TabuSearchConfig(nb_div=100))
            result = solve_async(small_instance, backend=backend)
        assert result.pipeline == "async"
        assert result.pipeline_stats["bursts_completed"] == N_SLAVES * N_ROUNDS
        assert result.pipeline_stats["burst_failures"] == 0
        assert result.fault_summary == {}
        history = result.value_history
        assert history == sorted(history)
