"""Unit tests for :mod:`repro.instances.generators`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.instances import correlated_instance, make_instance, uncorrelated_instance
from repro.instances.generators import WEIGHT_MAX


class TestUncorrelated:
    def test_shape_and_validity(self):
        inst = uncorrelated_instance(4, 30, rng=0)
        assert inst.shape == (4, 30)
        assert np.all(inst.weights >= 1) and np.all(inst.weights <= WEIGHT_MAX)
        assert np.all(inst.profits >= 1)

    def test_seed_reproducibility(self):
        a = uncorrelated_instance(3, 20, rng=5)
        b = uncorrelated_instance(3, 20, rng=5)
        np.testing.assert_array_equal(a.weights, b.weights)
        np.testing.assert_array_equal(a.profits, b.profits)

    def test_different_seeds_differ(self):
        a = uncorrelated_instance(3, 20, rng=5)
        b = uncorrelated_instance(3, 20, rng=6)
        assert not np.array_equal(a.weights, b.weights)

    def test_tightness_sets_capacities(self):
        inst = uncorrelated_instance(3, 50, tightness=0.25, rng=0)
        rows = inst.weights.sum(axis=1)
        # floor(0.25 * sum) unless the single-item floor dominates
        expected = np.maximum(np.floor(0.25 * rows), inst.weights.max(axis=1))
        np.testing.assert_allclose(inst.capacities, expected)

    def test_every_item_fits_alone(self):
        inst = uncorrelated_instance(5, 40, tightness=0.05, rng=1)
        assert np.all(inst.weights.max(axis=1) <= inst.capacities)

    def test_invalid_tightness(self):
        with pytest.raises(ValueError):
            uncorrelated_instance(2, 5, tightness=0.0, rng=0)
        with pytest.raises(ValueError):
            uncorrelated_instance(2, 5, tightness=1.5, rng=0)


class TestCorrelated:
    def test_profit_weight_correlation(self):
        inst = correlated_instance(5, 300, rng=2)
        mean_weights = inst.weights.mean(axis=0)
        corr = np.corrcoef(mean_weights, inst.profits)[0, 1]
        assert corr > 0.5  # strongly correlated by construction

    def test_uncorrelated_is_less_correlated(self):
        corr_inst = correlated_instance(5, 300, rng=2)
        unc_inst = uncorrelated_instance(5, 300, rng=2)
        c1 = np.corrcoef(corr_inst.weights.mean(axis=0), corr_inst.profits)[0, 1]
        c0 = np.corrcoef(unc_inst.weights.mean(axis=0), unc_inst.profits)[0, 1]
        assert c1 > c0 + 0.3

    def test_noise_scale_validation(self):
        with pytest.raises(ValueError):
            correlated_instance(2, 5, correlation=-1.0, rng=0)

    def test_profits_positive(self):
        inst = correlated_instance(3, 100, correlation=0.0, rng=3)
        assert np.all(inst.profits >= 1)


class TestMakeInstance:
    def test_dispatch(self):
        a = make_instance(2, 10, correlated=True, rng=0)
        b = make_instance(2, 10, correlated=False, rng=0)
        assert a.name.startswith("corr-")
        assert b.name.startswith("uncorr-")

    def test_custom_name(self):
        inst = make_instance(2, 10, rng=0, name="custom")
        assert inst.name == "custom"

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            make_instance(0, 10)
        with pytest.raises(ValueError):
            make_instance(2, 0)
