"""Unit and behaviour tests for :mod:`repro.core.tabu_search`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Budget,
    IntensificationKind,
    Strategy,
    TabuSearch,
    TabuSearchConfig,
    greedy_solution,
)


def small_config(**overrides) -> TabuSearchConfig:
    defaults = dict(nb_div=2, elite_size=5)
    defaults.update(overrides)
    return TabuSearchConfig(**defaults)


class TestRun:
    def test_best_is_feasible(self, small_instance):
        ts = TabuSearch(small_instance, Strategy(8, 2, 15), small_config(), rng=0)
        result = ts.run(budget=Budget(max_moves=200))
        assert result.best.is_feasible(small_instance)

    def test_best_at_least_initial(self, small_instance):
        x0 = greedy_solution(small_instance)
        ts = TabuSearch(small_instance, Strategy(8, 2, 15), small_config(), rng=0)
        result = ts.run(x_init=x0, budget=Budget(max_moves=200))
        assert result.best.value >= x0.value
        assert result.initial_value == x0.value

    def test_beats_greedy_on_tiny(self, tiny_instance):
        """TS must climb from the greedy local optimum (13) to 18."""
        ts = TabuSearch(tiny_instance, Strategy(2, 1, 10), small_config(), rng=0)
        result = ts.run(
            x_init=greedy_solution(tiny_instance), budget=Budget(max_moves=100)
        )
        assert result.best.value == 18.0

    def test_deterministic_given_seed(self, small_instance):
        def run():
            ts = TabuSearch(
                small_instance, Strategy(8, 2, 15), small_config(), rng=77
            )
            return ts.run(
                x_init=greedy_solution(small_instance), budget=Budget(max_moves=150)
            )

        a, b = run(), run()
        assert a.best == b.best
        assert a.evaluations == b.evaluations
        assert a.value_trace == b.value_trace

    def test_seeds_decorrelate(self, medium_instance):
        bests = set()
        for seed in range(6):
            ts = TabuSearch(
                medium_instance, Strategy(8, 2, 15), small_config(), rng=seed
            )
            r = ts.run(budget=Budget(max_moves=60))
            bests.add(r.best.x.tobytes())
        assert len(bests) > 1

    def test_rejects_infeasible_init(self, tiny_instance):
        from repro.core import Solution

        bad = Solution(np.array([1, 1, 1, 1]), 28.0)
        ts = TabuSearch(tiny_instance, Strategy(2, 1, 5), small_config(), rng=0)
        with pytest.raises(ValueError, match="feasible"):
            ts.run(x_init=bad)

    def test_default_init_is_random_feasible(self, small_instance):
        ts = TabuSearch(small_instance, Strategy(8, 2, 15), small_config(), rng=1)
        result = ts.run(budget=Budget(max_moves=50))
        assert result.initial_value > 0


class TestBudgets:
    def test_move_budget_respected(self, small_instance):
        ts = TabuSearch(small_instance, Strategy(8, 2, 15), small_config(), rng=0)
        result = ts.run(budget=Budget(max_moves=30))
        assert result.moves <= 30

    def test_evaluation_budget_respected_approximately(self, small_instance):
        """Evaluations may overshoot by at most one compound move's worth."""
        cap = 3000
        ts = TabuSearch(small_instance, Strategy(8, 2, 15), small_config(), rng=0)
        result = ts.run(budget=Budget(max_evaluations=cap))
        # one compound move evaluates O(n) candidates a few times
        assert result.evaluations < cap + 20 * small_instance.n_items

    def test_target_value_stops_early(self, tiny_instance):
        ts = TabuSearch(tiny_instance, Strategy(2, 1, 10), small_config(), rng=0)
        result = ts.run(
            x_init=greedy_solution(tiny_instance),
            budget=Budget(max_moves=10_000, target_value=18.0),
        )
        assert result.best.value >= 18.0
        assert result.moves < 10_000

    def test_structural_budget_only(self, small_instance):
        """Without an explicit budget the Nb_div/Nb_int loops terminate."""
        config = TabuSearchConfig(nb_div=1, elite_size=3)
        strategy = Strategy(5, 4, 5)  # nb_it = 600//4 = 150 loops... keep small
        config = TabuSearchConfig(
            nb_div=1,
            elite_size=3,
            bounds=type(config.bounds)(base_iterations=8),
        )
        ts = TabuSearch(small_instance, strategy, config, rng=0)
        result = ts.run()
        assert result.local_search_loops == 2  # base_iterations // nb_drop = 2
        assert result.diversifications == 1


class TestResultAccounting:
    def test_counters_consistent(self, small_instance):
        ts = TabuSearch(small_instance, Strategy(8, 2, 15), small_config(), rng=0)
        result = ts.run(budget=Budget(max_moves=100))
        assert result.moves > 0
        assert result.evaluations > result.moves  # each move evaluates many
        assert len(result.value_trace) == result.moves + 1
        assert result.value_trace == sorted(result.value_trace)  # incumbent is monotone

    def test_improved_flag(self, tiny_instance):
        ts = TabuSearch(tiny_instance, Strategy(2, 1, 10), small_config(), rng=0)
        result = ts.run(
            x_init=greedy_solution(tiny_instance), budget=Budget(max_moves=100)
        )
        assert result.improved  # 13 -> 18

    def test_elite_sorted_and_distinct(self, small_instance):
        ts = TabuSearch(small_instance, Strategy(8, 2, 15), small_config(), rng=0)
        result = ts.run(budget=Budget(max_moves=150))
        values = [s.value for s in result.elite]
        assert values == sorted(values, reverse=True)
        vectors = {s.x.tobytes() for s in result.elite}
        assert len(vectors) == len(result.elite)

    def test_elite_contains_best(self, small_instance):
        ts = TabuSearch(small_instance, Strategy(8, 2, 15), small_config(), rng=0)
        result = ts.run(budget=Budget(max_moves=150))
        assert result.best.value == result.elite[0].value


class TestIntensificationModes:
    @pytest.mark.parametrize("kind", list(IntensificationKind))
    def test_all_modes_run(self, small_instance, kind):
        config = small_config(intensification=kind)
        ts = TabuSearch(small_instance, Strategy(8, 2, 10), config, rng=0)
        result = ts.run(budget=Budget(max_moves=80))
        assert result.best.is_feasible(small_instance)

    def test_none_mode_does_no_intensification_work(self, small_instance):
        config = small_config(intensification=IntensificationKind.NONE)
        ts = TabuSearch(small_instance, Strategy(8, 2, 10), config, rng=0)
        ts.run(budget=Budget(max_moves=80))
        assert ts._intensify_stats.evaluations == 0


class TestConfigValidation:
    def test_bad_nb_div(self):
        with pytest.raises(ValueError):
            TabuSearchConfig(nb_div=0)

    def test_bad_elite(self):
        with pytest.raises(ValueError):
            TabuSearchConfig(elite_size=0)

    def test_bad_depth(self):
        with pytest.raises(ValueError):
            TabuSearchConfig(oscillation_depth=-1)


class TestOnMoveHook:
    def test_hook_called_per_move(self, small_instance):
        calls = []
        ts = TabuSearch(
            small_instance,
            Strategy(8, 2, 15),
            small_config(),
            rng=0,
            on_move=lambda t: calls.append(t.state.value),
        )
        result = ts.run(budget=Budget(max_moves=40))
        assert len(calls) == result.moves
