"""White-box tests for the asynchronous variant's internal semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Solution
from repro.farm import EventKind
from repro.variants import AsyncConfig, solve_cts_async
from repro.variants.cts_async import _Peer, _Posting


class TestEventOrdering:
    def test_compute_events_per_peer_are_contiguous(self, small_instance):
        """Each peer's compute events must be non-overlapping and ordered —
        the discrete-event loop's core invariant."""
        result = solve_cts_async(
            small_instance, n_threads=3, rng_seed=0, max_evaluations=15_000
        )
        by_peer: dict[int, list] = {}
        for e in result.trace.events:
            if e.kind is EventKind.COMPUTE:
                by_peer.setdefault(e.proc, []).append(e)
        assert set(by_peer) == {0, 1, 2}
        for events in by_peer.values():
            for a, b in zip(events, events[1:]):
                assert b.t_start >= a.t_end - 1e-12

    def test_every_peer_consumes_its_budget(self, small_instance):
        budget = 12_000
        result = solve_cts_async(
            small_instance, n_threads=3, rng_seed=0, max_evaluations=budget
        )
        compute = result.trace.per_proc_by_kind(EventKind.COMPUTE)
        # Each peer computed a roughly equal share (equal budgets, same
        # speed): within 2x of one another.
        values = list(compute.values())
        assert max(values) <= 2.0 * min(values)

    def test_total_evaluations_close_to_p_times_budget(self, small_instance):
        budget = 12_000
        result = solve_cts_async(
            small_instance, n_threads=4, rng_seed=0, max_evaluations=budget
        )
        assert result.total_evaluations >= 4 * budget * 0.8
        # overshoot bounded by one segment per peer
        assert result.total_evaluations <= 4 * (budget + 25_000)


class TestBlackboardSemantics:
    def test_posting_is_frozen_record(self):
        sol = Solution(np.array([1, 0], dtype=np.int8), 5.0)
        posting = _Posting(1.5, 0, sol)
        with pytest.raises(AttributeError):
            posting.t = 2.0  # type: ignore[misc]

    def test_peer_dataclass_defaults(self):
        sol = Solution(np.array([1, 0], dtype=np.int8), 5.0)
        peer = _Peer(peer_id=0, strategy=None, current=sol)
        assert peer.clock == 0.0
        assert peer.best is None
        assert peer.elite == []


class TestCooperationEffects:
    def test_blackboard_adoption_controlled_by_alpha(self):
        """alpha gates blackboard adoption: at 1.0 laggards pool onto the
        visible best; at 0.5 (bests never 2x apart here) they never do.
        The per-segment ISP records make this observable."""
        from repro.instances import mk_suite

        inst = mk_suite()[0]
        def pool_count(alpha):
            config = AsyncConfig(n_threads=3, alpha=alpha, segment_evaluations=4_000)
            result = solve_cts_async(
                inst, n_threads=3, rng_seed=0, max_evaluations=20_000, config=config
            )
            return sum(s.isp_rules.get("pool", 0) for s in result.rounds)

        assert pool_count(1.0) > 0
        assert pool_count(0.5) == 0

    def test_segment_size_controls_communication_frequency(self, small_instance):
        fine = solve_cts_async(
            small_instance, n_threads=2, rng_seed=0, max_evaluations=16_000,
            config=AsyncConfig(n_threads=2, segment_evaluations=2_000),
        )
        coarse = solve_cts_async(
            small_instance, n_threads=2, rng_seed=0, max_evaluations=16_000,
            config=AsyncConfig(n_threads=2, segment_evaluations=16_000),
        )
        assert fine.n_rounds > coarse.n_rounds
        assert fine.bytes_sent > coarse.bytes_sent
