"""Unit tests for :mod:`repro.core.instance`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MKPInstance


class TestConstruction:
    def test_basic_shape(self, tiny_instance):
        assert tiny_instance.n_items == 4
        assert tiny_instance.n_constraints == 2
        assert tiny_instance.shape == (2, 4)
        assert tiny_instance.size_label == "2*4"

    def test_arrays_are_readonly(self, tiny_instance):
        with pytest.raises(ValueError):
            tiny_instance.weights[0, 0] = 99.0
        with pytest.raises(ValueError):
            tiny_instance.capacities[0] = 99.0
        with pytest.raises(ValueError):
            tiny_instance.profits[0] = 99.0

    def test_rejects_wrong_weight_ndim(self):
        with pytest.raises(ValueError, match="2-D"):
            MKPInstance(
                weights=np.ones(4),
                capacities=np.ones(1),
                profits=np.ones(4),
            )

    def test_rejects_capacity_shape_mismatch(self):
        with pytest.raises(ValueError, match="capacities"):
            MKPInstance(
                weights=np.ones((2, 4)),
                capacities=np.ones(3),
                profits=np.ones(4),
            )

    def test_rejects_profit_shape_mismatch(self):
        with pytest.raises(ValueError, match="profits"):
            MKPInstance(
                weights=np.ones((2, 4)),
                capacities=np.ones(2),
                profits=np.ones(5),
            )

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            MKPInstance(
                weights=np.ones((0, 4)).reshape(0, 4),
                capacities=np.ones(0),
                profits=np.ones(4),
            )

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError, match="non-negative"):
            MKPInstance.from_lists([[1, -2]], [3], [1, 1])

    def test_rejects_nonpositive_profits(self):
        with pytest.raises(ValueError, match="strictly positive"):
            MKPInstance.from_lists([[1, 2]], [3], [1, 0])

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            MKPInstance.from_lists([[1, np.inf]], [3], [1, 1])


class TestDerived:
    def test_density(self, tiny_instance):
        expected = tiny_instance.weights.sum(axis=0) / tiny_instance.profits
        np.testing.assert_allclose(tiny_instance.density, expected)

    def test_density_cached_identity(self, tiny_instance):
        assert tiny_instance.density is tiny_instance.density

    def test_tightness(self, tiny_instance):
        expected = tiny_instance.capacities / tiny_instance.weights.sum(axis=1)
        np.testing.assert_allclose(tiny_instance.tightness, expected)


class TestEvaluation:
    def test_objective(self, tiny_instance):
        x = np.array([1, 0, 1, 0])
        assert tiny_instance.objective(x) == 18.0

    def test_loads(self, tiny_instance):
        x = np.array([1, 0, 1, 0])
        np.testing.assert_allclose(tiny_instance.loads(x), [9.0, 8.0])

    def test_feasible_optimum(self, tiny_instance):
        assert tiny_instance.is_feasible(np.array([1, 0, 1, 0]))

    def test_infeasible_all_ones(self, tiny_instance):
        assert not tiny_instance.is_feasible(np.array([1, 1, 1, 1]))

    def test_is_feasible_rejects_non_binary(self, tiny_instance):
        with pytest.raises(ValueError, match="0/1"):
            tiny_instance.is_feasible(np.array([2, 0, 0, 0]))

    def test_is_feasible_rejects_bad_shape(self, tiny_instance):
        with pytest.raises(ValueError, match="shape"):
            tiny_instance.is_feasible(np.array([1, 0, 1]))

    def test_violation_zero_iff_feasible(self, tiny_instance):
        assert tiny_instance.violation(np.array([1, 0, 1, 0])) == 0.0
        assert tiny_instance.violation(np.array([1, 1, 1, 1])) > 0.0

    def test_violation_value(self, tiny_instance):
        x = np.array([1, 1, 1, 1])
        loads = tiny_instance.loads(x)
        expected = sum(
            max(0.0, loads[i] - tiny_instance.capacities[i]) for i in range(2)
        )
        assert tiny_instance.violation(x) == pytest.approx(expected)


class TestReferenceValues:
    def test_gap_with_optimum(self, tiny_instance):
        assert tiny_instance.gap_to_reference(18.0) == pytest.approx(0.0)
        assert tiny_instance.gap_to_reference(17.1) == pytest.approx(5.0)

    def test_gap_without_reference(self, small_instance):
        assert small_instance.gap_to_reference(100.0) is None

    def test_with_reference_roundtrip(self, small_instance):
        tagged = small_instance.with_reference(best_known=123.0)
        assert tagged.best_known == 123.0
        assert tagged.optimum is None
        assert tagged.name == small_instance.name
        # Original untouched (immutability)
        assert small_instance.best_known is None

    def test_best_known_used_when_no_optimum(self, small_instance):
        tagged = small_instance.with_reference(best_known=200.0)
        assert tagged.gap_to_reference(100.0) == pytest.approx(50.0)

    def test_renamed(self, small_instance):
        other = small_instance.renamed("other")
        assert other.name == "other"
        np.testing.assert_array_equal(other.weights, small_instance.weights)


class TestContentHash:
    def test_stable_across_equal_content(self, small_instance):
        from repro.core import MKPInstance

        copy = MKPInstance(
            weights=small_instance.weights.copy(),
            capacities=small_instance.capacities.copy(),
            profits=small_instance.profits.copy(),
        )
        assert copy.content_hash() == small_instance.content_hash()

    def test_metadata_does_not_change_hash(self, small_instance):
        renamed = small_instance.renamed("something else")
        tagged = small_instance.with_reference(best_known=999.0)
        assert renamed.content_hash() == small_instance.content_hash()
        assert tagged.content_hash() == small_instance.content_hash()

    def test_any_data_change_changes_hash(self, tiny_instance):
        from repro.core import MKPInstance

        base = tiny_instance.content_hash()

        def variant(**overrides):
            fields = {
                "weights": tiny_instance.weights.copy(),
                "capacities": tiny_instance.capacities.copy(),
                "profits": tiny_instance.profits.copy(),
            }
            fields.update(overrides)
            return MKPInstance(**fields)

        profits = tiny_instance.profits.copy()
        profits[0] += 1.0
        weights = tiny_instance.weights.copy()
        weights[1, 2] += 1.0
        capacities = tiny_instance.capacities.copy()
        capacities[0] += 1.0
        hashes = {
            base,
            variant(profits=profits).content_hash(),
            variant(weights=weights).content_hash(),
            variant(capacities=capacities).content_hash(),
        }
        assert len(hashes) == 4  # no collisions among the single-field edits

    def test_shape_is_part_of_identity(self):
        from repro.core import MKPInstance

        flat = MKPInstance(
            weights=np.arange(1.0, 7.0).reshape(1, 6),
            capacities=np.asarray([100.0]),
            profits=np.arange(1.0, 7.0),
        )
        tall = MKPInstance(
            weights=np.arange(1.0, 7.0).reshape(2, 3),
            capacities=np.asarray([100.0, 100.0]),
            profits=np.arange(1.0, 4.0),
        )
        # same weight bytes, different shape -> different problem
        assert flat.content_hash() != tall.content_hash()

    def test_hash_is_cached(self, small_instance):
        first = small_instance.content_hash()
        assert small_instance.content_hash() is first  # memoized string

    def test_hex_digest_format(self, tiny_instance):
        digest = tiny_instance.content_hash()
        assert len(digest) == 64
        assert set(digest) <= set("0123456789abcdef")
