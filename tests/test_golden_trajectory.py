"""Golden-trajectory determinism tests for the kernel-backed hot path.

These fingerprints were recorded from a seed-era run (pre ``EvalKernel``)
on a fixed GK instance with fixed seeds.  The flat-array kernel layer is a
*refactor*, not a rewrite: every candidate scan, tie-break and evaluation
count must be bit-identical to the naive implementation it replaced, so the
SEQ/ITS/CTS2 value histories, the per-move incumbent trace, and the
evaluation ledgers must all reproduce exactly — no ``approx`` anywhere.

If an intentional algorithmic change ever invalidates these values, they
must be re-recorded in the same commit and the change called out loudly;
silent drift here means the farm's virtual-time results are no longer
comparable across PRs.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.core.strategy import Strategy
from repro.core.tabu_search import TabuSearch, TabuSearchConfig
from repro.instances import gk_suite
from repro.variants import solve_cts2, solve_its, solve_seq

GOLDEN_SEQ = {
    "best": 22346.0,
    "evaluations": 20028,
    "value_history": [
        17487.0, 18939.0, 18939.0, 19182.0, 19182.0, 19182.0, 19182.0,
        19243.0, 20005.0, 20103.0, 20103.0, 20103.0, 20103.0, 20103.0,
        20103.0, 20103.0, 20103.0, 20103.0, 21858.0, 21858.0, 21858.0,
        21858.0, 21858.0, 22346.0, 22346.0, 22346.0, 22346.0, 22346.0,
        22346.0, 22346.0, 22346.0, 22346.0, 22346.0, 22346.0, 22346.0,
        22346.0, 22346.0, 22346.0, 22346.0, 22346.0, 22346.0, 22346.0,
        22346.0, 22346.0, 22346.0, 22346.0, 22346.0, 22346.0, 22346.0,
    ],
}

GOLDEN_ITS = {
    "best": 21380.0,
    "evaluations": 27761,
    "value_history": [
        17889.0, 19648.0, 20237.0, 20659.0, 21061.0, 21376.0, 21376.0,
        21376.0, 21380.0, 21380.0, 21380.0,
    ],
}

GOLDEN_CTS2 = {
    "best": 21344.0,
    "evaluations": 27144,
    "value_history": [
        17889.0, 19648.0, 19825.0, 20335.0, 20966.0, 20966.0, 21197.0,
        21197.0, 21197.0, 21247.0, 21344.0,
    ],
}

#: One raw tabu-search thread, seed 42, Strategy(8, 2, 10), nb_div=2:
#: the full 6008-entry incumbent trace is pinned by SHA-256 (of the
#: float64 byte stream) plus redundant scalar aggregates for diagnosis.
GOLDEN_THREAD = {
    "trace_len": 6008,
    "trace_sum": 136680984.0,
    "best": 22794.0,
    "evaluations": 1284961,
    "moves": 6007,
    "trace_sha256": "10cda7ea00c892fecb9032e68e7c89e46e5f7f316e3959ede66331f16188d261",
    "elite": [22794.0, 22786.0, 22778.0, 22728.0, 22714.0, 22688.0, 22663.0, 22647.0],
}


def _instance():
    return gk_suite()[9]  # GK10, 10*100


class TestVariantTrajectories:
    def test_seq_reproduces_golden_run(self):
        result = solve_seq(_instance(), rng_seed=7, max_evaluations=20_000)
        assert result.best.value == GOLDEN_SEQ["best"]
        assert result.total_evaluations == GOLDEN_SEQ["evaluations"]
        assert [float(v) for v in result.value_history] == GOLDEN_SEQ["value_history"]

    def test_its_reproduces_golden_run(self):
        result = solve_its(_instance(), n_slaves=3, rng_seed=7, max_evaluations=8_000)
        assert result.best.value == GOLDEN_ITS["best"]
        assert result.total_evaluations == GOLDEN_ITS["evaluations"]
        assert [float(v) for v in result.value_history] == GOLDEN_ITS["value_history"]

    def test_cts2_reproduces_golden_run(self):
        result = solve_cts2(_instance(), n_slaves=3, rng_seed=7, max_evaluations=8_000)
        assert result.best.value == GOLDEN_CTS2["best"]
        assert result.total_evaluations == GOLDEN_CTS2["evaluations"]
        assert [float(v) for v in result.value_history] == GOLDEN_CTS2["value_history"]


class TestThreadTrace:
    def test_move_level_trace_is_bit_identical(self):
        ts = TabuSearch(
            _instance(), Strategy(8, 2, 10), config=TabuSearchConfig(nb_div=2), rng=42
        )
        result = ts.run()
        trace = np.asarray(result.value_trace, dtype=np.float64)
        assert len(trace) == GOLDEN_THREAD["trace_len"]
        assert float(trace.sum()) == GOLDEN_THREAD["trace_sum"]
        assert result.best.value == GOLDEN_THREAD["best"]
        assert result.evaluations == GOLDEN_THREAD["evaluations"]
        assert result.moves == GOLDEN_THREAD["moves"]
        assert hashlib.sha256(trace.tobytes()).hexdigest() == GOLDEN_THREAD["trace_sha256"]
        assert [s.value for s in result.elite] == GOLDEN_THREAD["elite"]

    def test_counter_ledger_is_consistent(self):
        """The unified KernelCounters must agree with the TSResult totals."""
        ts = TabuSearch(
            _instance(), Strategy(8, 2, 10), config=TabuSearchConfig(nb_div=2), rng=42
        )
        result = ts.run()
        assert ts.counters.total == result.evaluations
        assert ts.counters.move_evaluations == ts.engine.evaluations
        assert ts.counters.intensify_evaluations == ts._intensify_stats.evaluations
        assert ts.counters.move_evaluations + ts.counters.intensify_evaluations == (
            result.evaluations
        )
        assert ts.counters.moves == result.moves


class TestTransportBatchGolden:
    """ISSUE-7: the RunResult v2 serialization is byte-identical across
    transport ∈ {pipe, shm} × batch K ∈ {1, 4}, and the shm/batched path
    reproduces the golden CTS2 fingerprint exactly.

    The canonical form strips only wall-clock measurements (see
    ``tests/differential``); everything else — value history, per-round
    accounting, byte ledgers, the structured trace — must match the
    pipe/K=1 reference byte for byte.
    """

    _MATRIX = [("pipe", 1), ("pipe", 4), ("shm", 1), ("shm", 4)]
    _cache: dict = {}

    @classmethod
    def _canonical(cls, transport: str, batch_k: int) -> bytes:
        from repro.parallel.backends import MultiprocessingBackend

        from tests.differential import run_canonical

        key = (transport, batch_k)
        if key not in cls._cache:
            cls._cache[key] = run_canonical(
                _instance(),
                backend_factory=lambda: MultiprocessingBackend(
                    4, transport=transport, batch_k=batch_k
                ),
                max_evaluations=2_000,
            )
        return cls._cache[key]

    @pytest.mark.parametrize(("transport", "batch_k"), _MATRIX[1:])
    def test_serialization_is_byte_identical_to_pipe_reference(
        self, transport, batch_k
    ):
        reference = self._canonical("pipe", 1)
        assert self._canonical(transport, batch_k) == reference

    def test_cts2_golden_fingerprint_over_shm_batched_backend(self):
        from repro.parallel.backends import MultiprocessingBackend

        backend = MultiprocessingBackend(3, transport="shm", batch_k=3)
        try:
            result = solve_cts2(
                _instance(),
                n_slaves=3,
                rng_seed=7,
                max_evaluations=8_000,
                backend=backend,
            )
        finally:
            backend.shutdown()
        assert result.best.value == GOLDEN_CTS2["best"]
        assert result.total_evaluations == GOLDEN_CTS2["evaluations"]
        assert [float(v) for v in result.value_history] == GOLDEN_CTS2["value_history"]


class TestCoreRatioGolden:
    """ISSUE-8: ``core_ratio=1.0`` is the degenerate full-space setting —
    the LP-core machinery must be a strict no-op on it.  The explicit knob
    (not just the ``None`` default) must reproduce the golden CTS2
    fingerprint bit for bit on every backend/transport, proving that the
    Strategy wire form, the SGP bounds plumbing, and the runtime's pattern
    dispatch add zero drift when no variable is actually fixed.
    """

    @staticmethod
    def _assert_golden(result):
        assert result.best.value == GOLDEN_CTS2["best"]
        assert result.total_evaluations == GOLDEN_CTS2["evaluations"]
        assert [float(v) for v in result.value_history] == GOLDEN_CTS2["value_history"]

    def test_cts2_core_ratio_one_reproduces_golden_run(self):
        result = solve_cts2(
            _instance(), n_slaves=3, rng_seed=7, max_evaluations=8_000, core_ratio=1.0
        )
        self._assert_golden(result)

    def test_cts2_pinned_unit_bounds_reproduce_golden_run(self):
        # An explicit degenerate range (lo == hi == 1.0) exercises the
        # tuple branch of the knob; still bit-identical.
        result = solve_cts2(
            _instance(),
            n_slaves=3,
            rng_seed=7,
            max_evaluations=8_000,
            core_ratio=(1.0, 1.0),
        )
        self._assert_golden(result)

    @pytest.mark.parametrize(("transport", "batch_k"), [("pipe", 1), ("shm", 3)])
    def test_cts2_core_ratio_one_golden_over_mp_backends(self, transport, batch_k):
        from repro.parallel.backends import MultiprocessingBackend

        backend = MultiprocessingBackend(3, transport=transport, batch_k=batch_k)
        try:
            result = solve_cts2(
                _instance(),
                n_slaves=3,
                rng_seed=7,
                max_evaluations=8_000,
                backend=backend,
                core_ratio=1.0,
            )
        finally:
            backend.shutdown()
        self._assert_golden(result)
