"""Unit and property tests for the message-passing layer."""

from __future__ import annotations

import multiprocessing as mp
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Budget, Solution, Strategy
from repro.parallel import (
    CommClosedError,
    CommTimeout,
    InProcComm,
    MessageRouter,
    PipeComm,
    SlaveReport,
    SlaveTask,
    payload_nbytes,
)


class TestRouter:
    def test_send_recv_roundtrip(self):
        router = MessageRouter()
        a = InProcComm(router, rank=0)
        b = InProcComm(router, rank=1)
        a.send({"hello": 1}, dest=1, tag=5)
        assert b.recv(source=0, tag=5) == {"hello": 1}

    def test_fifo_order(self):
        router = MessageRouter()
        a = InProcComm(router, rank=0)
        b = InProcComm(router, rank=1)
        for k in range(5):
            a.send(k, dest=1, tag=0)
        assert [b.recv(source=0) for _ in range(5)] == list(range(5))

    def test_tags_isolate_streams(self):
        router = MessageRouter()
        a = InProcComm(router, rank=0)
        b = InProcComm(router, rank=1)
        a.send("x", dest=1, tag=1)
        a.send("y", dest=1, tag=2)
        assert b.recv(source=0, tag=2) == "y"
        assert b.recv(source=0, tag=1) == "x"

    def test_empty_recv_raises(self):
        router = MessageRouter()
        b = InProcComm(router, rank=1)
        with pytest.raises(RuntimeError, match="empty mailbox"):
            b.recv(source=0)

    def test_byte_accounting(self):
        router = MessageRouter()
        a = InProcComm(router, rank=0)
        b = InProcComm(router, rank=1)
        payload = list(range(100))
        a.send(payload, dest=1)
        expected = payload_nbytes(payload)
        assert a.bytes_sent == expected
        assert router.total_bytes == expected
        b.recv(source=0)
        assert b.bytes_received == expected

    def test_probe(self):
        router = MessageRouter()
        a = InProcComm(router, rank=0)
        b = InProcComm(router, rank=1)
        assert not b.probe()
        a.send(1, dest=1)
        assert b.probe()
        b.recv(source=0)
        assert not b.probe()

    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 2)),
            max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_message_conservation(self, sends):
        """Every message sent is received exactly once, in FIFO order per
        (dest, tag) mailbox."""
        router = MessageRouter()
        comms = [InProcComm(router, rank=r) for r in range(4)]
        expected: dict[tuple[int, int], list[int]] = {}
        for idx, (src, dest, tag) in enumerate(sends):
            comms[src].send(idx, dest=dest, tag=tag)
            expected.setdefault((dest, tag), []).append(idx)
        for (dest, tag), payloads in expected.items():
            got = [comms[dest].recv(source=-1, tag=tag) for _ in payloads]
            assert got == payloads
        assert router.total_messages == len(sends)


class TestMessages:
    def test_task_pickles(self):
        import pickle

        task = SlaveTask(
            x_init=Solution(np.array([1, 0, 1]), 5.0),
            strategy=Strategy(10, 2, 20),
            budget=Budget(max_evaluations=100),
            seed=42,
            round_index=3,
        )
        clone = pickle.loads(pickle.dumps(task))
        assert clone.seed == 42
        assert clone.strategy == task.strategy
        assert clone.x_init == task.x_init

    def test_report_improved_flag(self):
        best = Solution(np.array([1, 0]), 10.0)
        assert SlaveReport(0, best, initial_value=9.0).improved
        assert not SlaveReport(0, best, initial_value=10.0).improved

    def test_payload_nbytes_positive_and_monotone(self):
        small = payload_nbytes(np.zeros(10, dtype=np.int8))
        large = payload_nbytes(np.zeros(10_000, dtype=np.int8))
        assert 0 < small < large


class TestRouterEdgeCases:
    """Mailbox-fabric corner cases the chaos suite leans on."""

    def test_unknown_destination_parks_message(self):
        # The router is rendezvous-free: a send to a rank nobody has claimed
        # yet is parked, conserved, and drainable by a late joiner (exactly
        # what a respawned slave does).
        router = MessageRouter()
        a = InProcComm(router, rank=0)
        a.send("orphan", dest=7, tag=3)
        assert router.pending(7, 3) == 1
        assert router.total_messages == 1
        late = InProcComm(router, rank=7)
        assert late.recv(source=0, tag=3) == "orphan"
        assert router.pending(7, 3) == 0

    def test_recv_from_never_used_mailbox_raises(self):
        router = MessageRouter()
        b = InProcComm(router, rank=1)
        with pytest.raises(RuntimeError, match="empty mailbox"):
            b.recv(source=3, tag=9)

    def test_interleaved_send_recv_keeps_per_tag_fifo(self):
        router = MessageRouter()
        a = InProcComm(router, rank=0)
        b = InProcComm(router, rank=1)
        a.send("t1-first", dest=1, tag=1)
        a.send("t2-first", dest=1, tag=2)
        assert b.recv(source=0, tag=1) == "t1-first"
        a.send("t1-second", dest=1, tag=1)
        assert b.recv(source=0, tag=2) == "t2-first"
        a.send("t2-second", dest=1, tag=2)
        assert b.recv(source=0, tag=1) == "t1-second"
        assert b.recv(source=0, tag=2) == "t2-second"
        assert not b.probe(tag=1) and not b.probe(tag=2)

    def test_probe_is_tag_specific(self):
        router = MessageRouter()
        a = InProcComm(router, rank=0)
        b = InProcComm(router, rank=1)
        a.send(1, dest=1, tag=1)
        assert b.probe(tag=1)
        assert not b.probe(tag=2)


class TestPipeCommLifecycle:
    def test_double_close_is_noop(self):
        here, there = mp.Pipe()
        comm = PipeComm(here)
        comm.close()
        comm.close()  # second close must not raise
        assert comm.closed
        there.close()

    def test_closed_endpoint_rejects_operations(self):
        here, there = mp.Pipe()
        comm = PipeComm(here)
        comm.close()
        with pytest.raises(CommClosedError):
            comm.send("x")
        with pytest.raises(CommClosedError):
            comm.recv()
        assert comm.poll() is False
        there.close()


def _die_after_partial_frame(conn) -> None:
    """Write half a frame on the raw handle, then die without cleanup.

    Reproduces the crash window: the parent's ``poll(timeout)`` sees a
    readable handle, but the frame can never complete — ``Connection.recv``
    then raises a bare ``EOFError``/``OSError`` mid-read.
    """
    import os

    # A multiprocessing frame is a 4-byte big-endian length + payload;
    # claim 64 bytes, deliver 4, and vanish.
    os.write(conn.fileno(), b"\x00\x00\x00\x40" + b"dead")
    os._exit(9)


class TestPipeCommCrashWindow:
    """Regression: a peer dying mid-frame must surface as CommClosedError."""

    def test_recv_normalizes_peer_closed_before_frame(self):
        here, there = mp.Pipe()
        comm = PipeComm(here)
        there.close()  # peer gone; poll() reports readable (EOF) instantly
        with pytest.raises(CommClosedError):
            comm.recv(timeout=1.0)
        comm.close()

    def test_recv_normalizes_killed_peer_partial_frame(self, mp_context):
        ctx = mp.get_context(mp_context)
        here, there = ctx.Pipe()
        proc = ctx.Process(target=_die_after_partial_frame, args=(there,))
        proc.start()
        there.close()  # only the child holds the peer end now
        comm = PipeComm(here)
        proc.join(timeout=10)
        # poll(timeout) returns True — bytes ARE waiting — yet the frame is
        # torn: recv must report a closed peer, not a raw OS exception.
        with pytest.raises(CommClosedError):
            comm.recv(timeout=5.0)
        comm.close()

    def test_send_normalizes_broken_pipe(self):
        here, there = mp.Pipe()
        comm = PipeComm(here)
        there.close()
        with pytest.raises(CommClosedError):
            for _ in range(64):  # first sends may land in the OS buffer
                comm.send("x")
        comm.close()

    def test_timeout_is_not_mislabelled_as_closed(self):
        # TimeoutError is an OSError subclass since Python 3.3: a silent
        # (but live) peer must still raise CommTimeout, never be swallowed
        # by the closed-peer normalization.
        here, there = mp.Pipe()
        comm = PipeComm(here)
        with pytest.raises(CommTimeout):
            comm.recv(timeout=0.01)
        assert issubclass(CommTimeout, OSError)  # the trap being guarded
        comm.close()
        there.close()


@st.composite
def solutions(draw):
    bits = draw(st.lists(st.integers(0, 1), min_size=1, max_size=12))
    value = draw(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)
    )
    return Solution(np.array(bits, dtype=np.int8), value)


@st.composite
def strategies_(draw):
    return Strategy(
        lt_length=draw(st.integers(1, 100)),
        nb_drop=draw(st.integers(1, 10)),
        nb_local=draw(st.integers(1, 100)),
    )


class TestMessageIdRoundTrip:
    """Serialization property tests over the idempotency ids (satellite 1)."""

    @given(
        sol=solutions(),
        strategy=strategies_(),
        seed=st.integers(0, 2**31 - 1),
        round_index=st.integers(0, 500),
        seq_id=st.integers(0, 100_000),
    )
    @settings(max_examples=50, deadline=None)
    def test_slave_task_round_trips(self, sol, strategy, seed, round_index, seq_id):
        task = SlaveTask(
            x_init=sol,
            strategy=strategy,
            budget=Budget(max_evaluations=100),
            seed=seed,
            round_index=round_index,
            seq_id=seq_id,
        )
        clone = pickle.loads(pickle.dumps(task))
        assert clone == task
        assert (clone.round_index, clone.seq_id) == (round_index, seq_id)
        # Same object shape survives the in-process transport.
        router = MessageRouter()
        a = InProcComm(router, rank=0)
        b = InProcComm(router, rank=1)
        a.send(task, dest=1, tag=1)
        assert b.recv(source=0, tag=1) == task

    @given(
        best=solutions(),
        elite=st.lists(solutions(), max_size=4),
        slave_id=st.integers(0, 63),
        initial_value=st.floats(
            min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
        ),
        evaluations=st.integers(0, 10**7),
        round_index=st.integers(0, 500),
        seq_id=st.integers(0, 100_000),
    )
    @settings(max_examples=50, deadline=None)
    def test_slave_report_round_trips(
        self, best, elite, slave_id, initial_value, evaluations, round_index, seq_id
    ):
        report = SlaveReport(
            slave_id=slave_id,
            best=best,
            elite=elite,
            initial_value=initial_value,
            evaluations=evaluations,
            round_index=round_index,
            seq_id=seq_id,
        )
        clone = pickle.loads(pickle.dumps(report))
        assert clone == report
        assert (clone.round_index, clone.seq_id) == (round_index, seq_id)
        assert clone.improved == (best.value > initial_value)
