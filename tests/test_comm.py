"""Unit and property tests for the message-passing layer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Budget, Solution, Strategy
from repro.parallel import (
    InProcComm,
    MessageRouter,
    SlaveReport,
    SlaveTask,
    payload_nbytes,
)


class TestRouter:
    def test_send_recv_roundtrip(self):
        router = MessageRouter()
        a = InProcComm(router, rank=0)
        b = InProcComm(router, rank=1)
        a.send({"hello": 1}, dest=1, tag=5)
        assert b.recv(source=0, tag=5) == {"hello": 1}

    def test_fifo_order(self):
        router = MessageRouter()
        a = InProcComm(router, rank=0)
        b = InProcComm(router, rank=1)
        for k in range(5):
            a.send(k, dest=1, tag=0)
        assert [b.recv(source=0) for _ in range(5)] == list(range(5))

    def test_tags_isolate_streams(self):
        router = MessageRouter()
        a = InProcComm(router, rank=0)
        b = InProcComm(router, rank=1)
        a.send("x", dest=1, tag=1)
        a.send("y", dest=1, tag=2)
        assert b.recv(source=0, tag=2) == "y"
        assert b.recv(source=0, tag=1) == "x"

    def test_empty_recv_raises(self):
        router = MessageRouter()
        b = InProcComm(router, rank=1)
        with pytest.raises(RuntimeError, match="empty mailbox"):
            b.recv(source=0)

    def test_byte_accounting(self):
        router = MessageRouter()
        a = InProcComm(router, rank=0)
        b = InProcComm(router, rank=1)
        payload = list(range(100))
        a.send(payload, dest=1)
        expected = payload_nbytes(payload)
        assert a.bytes_sent == expected
        assert router.total_bytes == expected
        b.recv(source=0)
        assert b.bytes_received == expected

    def test_probe(self):
        router = MessageRouter()
        a = InProcComm(router, rank=0)
        b = InProcComm(router, rank=1)
        assert not b.probe()
        a.send(1, dest=1)
        assert b.probe()
        b.recv(source=0)
        assert not b.probe()

    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 2)),
            max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_message_conservation(self, sends):
        """Every message sent is received exactly once, in FIFO order per
        (dest, tag) mailbox."""
        router = MessageRouter()
        comms = [InProcComm(router, rank=r) for r in range(4)]
        expected: dict[tuple[int, int], list[int]] = {}
        for idx, (src, dest, tag) in enumerate(sends):
            comms[src].send(idx, dest=dest, tag=tag)
            expected.setdefault((dest, tag), []).append(idx)
        for (dest, tag), payloads in expected.items():
            got = [comms[dest].recv(source=-1, tag=tag) for _ in payloads]
            assert got == payloads
        assert router.total_messages == len(sends)


class TestMessages:
    def test_task_pickles(self):
        import pickle

        task = SlaveTask(
            x_init=Solution(np.array([1, 0, 1]), 5.0),
            strategy=Strategy(10, 2, 20),
            budget=Budget(max_evaluations=100),
            seed=42,
            round_index=3,
        )
        clone = pickle.loads(pickle.dumps(task))
        assert clone.seed == 42
        assert clone.strategy == task.strategy
        assert clone.x_init == task.x_init

    def test_report_improved_flag(self):
        best = Solution(np.array([1, 0]), 10.0)
        assert SlaveReport(0, best, initial_value=9.0).improved
        assert not SlaveReport(0, best, initial_value=10.0).improved

    def test_payload_nbytes_positive_and_monotone(self):
        small = payload_nbytes(np.zeros(10, dtype=np.int8))
        large = payload_nbytes(np.zeros(10_000, dtype=np.int8))
        assert 0 < small < large
