"""Property-based tests over the search drivers themselves."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Budget,
    MKPInstance,
    Strategy,
    StrategyBounds,
    TabuSearch,
    TabuSearchConfig,
)


@st.composite
def search_cases(draw):
    m = draw(st.integers(1, 4))
    n = draw(st.integers(3, 14))
    weights = draw(
        st.lists(
            st.lists(st.integers(1, 30), min_size=n, max_size=n),
            min_size=m,
            max_size=m,
        )
    )
    profits = draw(st.lists(st.integers(1, 60), min_size=n, max_size=n))
    capacities = draw(st.lists(st.integers(5, 120), min_size=m, max_size=m))
    inst = MKPInstance.from_lists(weights, capacities, profits)
    strategy = Strategy(
        lt_length=draw(st.integers(0, 12)),
        nb_drop=draw(st.integers(1, 4)),
        nb_local=draw(st.integers(1, 15)),
    )
    seed = draw(st.integers(0, 2**16))
    return inst, strategy, seed


class TestTabuSearchInvariants:
    @given(search_cases())
    @settings(max_examples=60, deadline=None)
    def test_best_always_feasible(self, case):
        inst, strategy, seed = case
        ts = TabuSearch(inst, strategy, TabuSearchConfig(nb_div=2), rng=seed)
        result = ts.run(budget=Budget(max_moves=40))
        assert result.best.is_feasible(inst)
        # value is consistent with the vector
        assert result.best.value == float(inst.objective(result.best.x))

    @given(search_cases())
    @settings(max_examples=60, deadline=None)
    def test_incumbent_trace_monotone_and_consistent(self, case):
        inst, strategy, seed = case
        ts = TabuSearch(inst, strategy, TabuSearchConfig(nb_div=2), rng=seed)
        result = ts.run(budget=Budget(max_moves=40))
        trace = result.value_trace
        assert all(b >= a for a, b in zip(trace, trace[1:]))
        assert result.best.value >= trace[-1] - 1e-9

    @given(search_cases())
    @settings(max_examples=40, deadline=None)
    def test_elite_members_feasible_and_sorted(self, case):
        inst, strategy, seed = case
        ts = TabuSearch(inst, strategy, TabuSearchConfig(nb_div=2), rng=seed)
        result = ts.run(budget=Budget(max_moves=40))
        values = [s.value for s in result.elite]
        assert values == sorted(values, reverse=True)
        for sol in result.elite:
            assert sol.is_feasible(inst)

    @given(search_cases())
    @settings(max_examples=30, deadline=None)
    def test_determinism(self, case):
        inst, strategy, seed = case
        def go():
            ts = TabuSearch(inst, strategy, TabuSearchConfig(nb_div=2), rng=seed)
            return ts.run(budget=Budget(max_moves=30))
        a, b = go(), go()
        assert a.best == b.best
        assert a.evaluations == b.evaluations


class TestStrategyProperties:
    @given(
        st.integers(0, 60),
        st.integers(1, 10),
        st.integers(1, 120),
        st.integers(0, 2**16),
    )
    @settings(max_examples=100, deadline=None)
    def test_mutations_always_within_bounds(self, lt, drop, local, seed):
        bounds = StrategyBounds()
        st_clipped = bounds.clip(Strategy(lt, drop, local))
        rng = np.random.default_rng(seed)
        current = st_clipped
        for _ in range(5):
            current = (
                current.diversified(bounds)
                if rng.random() < 0.5
                else current.intensified(bounds)
            )
            assert bounds.lt_length[0] <= current.lt_length <= bounds.lt_length[1]
            assert bounds.nb_drop[0] <= current.nb_drop <= bounds.nb_drop[1]
            assert bounds.nb_local[0] <= current.nb_local <= bounds.nb_local[1]

    @given(st.integers(1, 10))
    @settings(max_examples=50, deadline=None)
    def test_nb_it_load_balance_bound(self, drop):
        """Total drop work nb_it * nb_drop is within a factor 2 across all
        admissible nb_drop values (the balancing rule's purpose)."""
        bounds = StrategyBounds(base_iterations=240)
        drop = min(drop, bounds.nb_drop[1])
        strategy = Strategy(10, max(1, drop), 20)
        work = bounds.nb_it(strategy) * strategy.nb_drop
        assert bounds.base_iterations / 2 <= work <= bounds.base_iterations * 2
