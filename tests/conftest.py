"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import MKPInstance
from repro.instances import correlated_instance, uncorrelated_instance


@pytest.fixture
def tiny_instance() -> MKPInstance:
    """A hand-checkable 2-constraint, 4-item instance.

    Items: profits [10, 7, 8, 3]; optimum is {0, 2} with value 18:
      weights row0: 5 + 4 = 9 <= 10, row1: 3 + 5 = 8 <= 8.
    """
    return MKPInstance.from_lists(
        weights=[[5, 6, 4, 2], [3, 4, 5, 1]],
        capacities=[10, 8],
        profits=[10, 7, 8, 3],
        name="tiny",
        optimum=18.0,
    )


@pytest.fixture
def small_instance() -> MKPInstance:
    """A small seeded instance for fast algorithm tests (5x30)."""
    return correlated_instance(5, 30, rng=42, name="small-5x30")


@pytest.fixture
def medium_instance() -> MKPInstance:
    """A medium seeded instance (10x80)."""
    return uncorrelated_instance(10, 80, rng=43, name="medium-10x80")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def mp_context() -> str:
    """Multiprocessing start method for process-backed tests.

    Defaults to ``fork`` (fast); the CI spawn leg exports
    ``REPRO_MP_CONTEXT=spawn`` to run the same suites under the start
    method macOS/Windows use, where workers re-import instead of
    inheriting memory.
    """
    return os.environ.get("REPRO_MP_CONTEXT", "fork")
