"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MKPInstance
from repro.instances import correlated_instance, uncorrelated_instance


@pytest.fixture
def tiny_instance() -> MKPInstance:
    """A hand-checkable 2-constraint, 4-item instance.

    Items: profits [10, 7, 8, 3]; optimum is {0, 2} with value 18:
      weights row0: 5 + 4 = 9 <= 10, row1: 3 + 5 = 8 <= 8.
    """
    return MKPInstance.from_lists(
        weights=[[5, 6, 4, 2], [3, 4, 5, 1]],
        capacities=[10, 8],
        profits=[10, 7, 8, 3],
        name="tiny",
        optimum=18.0,
    )


@pytest.fixture
def small_instance() -> MKPInstance:
    """A small seeded instance for fast algorithm tests (5x30)."""
    return correlated_instance(5, 30, rng=42, name="small-5x30")


@pytest.fixture
def medium_instance() -> MKPInstance:
    """A medium seeded instance (10x80)."""
    return uncorrelated_instance(10, 80, rng=43, name="medium-10x80")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
