"""Tests for wall-clock budgets in the variant drivers."""

from __future__ import annotations

import time

import pytest

from repro.variants import solve_cts2, solve_seq


class TestWallClockBudgets:
    def test_seq_respects_wall_budget(self, small_instance):
        t0 = time.perf_counter()
        result = solve_seq(small_instance, rng_seed=0, wall_seconds=0.15)
        elapsed = time.perf_counter() - t0
        assert result.best.is_feasible(small_instance)
        # generous upper bound: budget + per-move overhead
        assert elapsed < 2.0

    def test_cts2_respects_wall_budget(self, small_instance):
        t0 = time.perf_counter()
        result = solve_cts2(
            small_instance, n_slaves=2, n_rounds=2, rng_seed=0, wall_seconds=0.1
        )
        elapsed = time.perf_counter() - t0
        assert result.best.is_feasible(small_instance)
        assert elapsed < 3.0

    def test_exactly_one_budget_kind(self, small_instance):
        with pytest.raises(ValueError, match="exactly one"):
            solve_seq(
                small_instance, rng_seed=0, max_evaluations=100, wall_seconds=0.1
            )
        with pytest.raises(ValueError, match="exactly one"):
            solve_cts2(
                small_instance,
                rng_seed=0,
                virtual_seconds=0.1,
                wall_seconds=0.1,
            )

    def test_nonpositive_wall_rejected(self, small_instance):
        with pytest.raises(ValueError, match="positive"):
            solve_seq(small_instance, rng_seed=0, wall_seconds=0.0)

    def test_wall_budget_does_real_work(self, small_instance):
        result = solve_seq(small_instance, rng_seed=0, wall_seconds=0.1)
        assert result.total_evaluations > 1_000
