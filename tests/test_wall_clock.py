"""Tests for wall-clock budgets in the variant drivers."""

from __future__ import annotations

import time

import pytest

from repro.variants import solve_cts2, solve_seq


class TestWallClockBudgets:
    def test_seq_respects_wall_budget(self, small_instance):
        t0 = time.perf_counter()
        result = solve_seq(small_instance, rng_seed=0, wall_seconds=0.15)
        elapsed = time.perf_counter() - t0
        assert result.best.is_feasible(small_instance)
        # generous upper bound: budget + per-move overhead
        assert elapsed < 2.0

    def test_cts2_respects_wall_budget(self, small_instance):
        t0 = time.perf_counter()
        result = solve_cts2(
            small_instance, n_slaves=2, n_rounds=2, rng_seed=0, wall_seconds=0.1
        )
        elapsed = time.perf_counter() - t0
        assert result.best.is_feasible(small_instance)
        assert elapsed < 3.0

    def test_exactly_one_budget_kind(self, small_instance):
        with pytest.raises(ValueError, match="exactly one"):
            solve_seq(
                small_instance, rng_seed=0, max_evaluations=100, wall_seconds=0.1
            )
        with pytest.raises(ValueError, match="exactly one"):
            solve_cts2(
                small_instance,
                rng_seed=0,
                virtual_seconds=0.1,
                wall_seconds=0.1,
            )

    def test_nonpositive_wall_rejected(self, small_instance):
        with pytest.raises(ValueError, match="positive"):
            solve_seq(small_instance, rng_seed=0, wall_seconds=0.0)

    def test_wall_budget_does_real_work(self, small_instance):
        result = solve_seq(small_instance, rng_seed=0, wall_seconds=0.1)
        assert result.total_evaluations > 1_000


def _tasks(instance, n, *, round_index, evals=400):
    from repro.core import Budget, Strategy, random_solution
    from repro.parallel import SlaveTask

    return [
        SlaveTask(
            x_init=random_solution(instance, rng=k),
            strategy=Strategy(8, 2, 10),
            budget=Budget(max_evaluations=evals),
            seed=1000 + k,
            round_index=round_index,
            seq_id=round_index * n + k,
        )
        for k in range(n)
    ]


@pytest.mark.slow
class TestDelayChargesFarmClockNotWall:
    """Regression (ISSUE-7 satellite 4): a DELAY_REPORT fault must cost
    *virtual* time only.  The worker holds the delayed report and flushes
    it with its next round's traffic; the master learns at scatter time
    that the report is deferred, so the gather neither sleeps on it nor
    waits for the round deadline.  Before the fix, the delay burned real
    wall seconds inside the gather loop."""

    def test_mp_delay_does_not_stall_the_gather(self, small_instance):
        import time as _time

        from repro.core import TabuSearchConfig
        from repro.parallel import (
            FaultEvent,
            FaultKind,
            FaultPlan,
            MultiprocessingBackend,
        )

        plan = FaultPlan(events=(FaultEvent(0, 0, FaultKind.DELAY_REPORT),))
        with MultiprocessingBackend(
            2, fault_plan=plan, round_timeout_s=30.0
        ) as backend:
            backend.start(small_instance, TabuSearchConfig(nb_div=100))
            # Fault-free warm-up so spawn cost stays out of the measurement.
            backend.run_round(_tasks(small_instance, 2, round_index=1))

            t0 = _time.perf_counter()
            reports = backend.run_round(_tasks(small_instance, 2, round_index=0))
            wall = _time.perf_counter() - t0
            # Only the undelayed slave reports this round — and the gather
            # returns immediately instead of draining the 30 s deadline.
            assert [r.slave_id for r in reports] == [1]
            assert wall < 1.0, f"delayed report still stalls the gather ({wall:.2f}s)"

            # Next round the held report rides along: the stale copy is
            # delivered and its bytes are charged on the *arrival* round.
            reports = backend.run_round(_tasks(small_instance, 2, round_index=2))
            by_slave = sorted(r.slave_id for r in reports)
            assert by_slave == [0, 0, 1]
            rounds_seen = sorted(r.round_index for r in reports if r.slave_id == 0)
            assert rounds_seen == [0, 2]  # stale + fresh
            assert (
                backend.last_report_nbytes[0] > backend.last_report_nbytes[1]
            ), "stale report bytes were not charged on the arrival round"
