"""Tests for the deep-exchange polishing module."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    MKPInstance,
    PolishStats,
    SearchState,
    exchange_11,
    exchange_12,
    exchange_21,
    greedy_solution,
    polish,
)


@pytest.fixture
def swap12_instance() -> MKPInstance:
    """Crafted so that the optimum needs a (1,2) exchange from greedy.

    Item 0: profit 10, weight 4 (density 0.4 — greedy's first pick).
    Items 1+2: profit 6 each, weight 3 each (density 0.5).  Capacity 6:
    after packing item 0 nothing else fits, so greedy stops at value 10;
    the optimum {1, 2} has value 12 and is reachable only by a 1→2 trade.
    """
    return MKPInstance.from_lists(
        weights=[[4, 3, 3]],
        capacities=[6],
        profits=[10, 6, 6],
    )


@pytest.fixture
def swap21_instance() -> MKPInstance:
    """Mirror case: optimum needs a (2,1) exchange.

    Items 0+1: profit 5 each, weight 3 each (density 0.6).  Item 2:
    profit 11, weight 6 (density 6/11≈0.55 — better density, but the
    greedy fill in density order takes 2 first and then nothing fits...
    so build the start state manually at {0, 1}.
    """
    return MKPInstance.from_lists(
        weights=[[3, 3, 6]],
        capacities=[6],
        profits=[5, 5, 11],
    )


class TestExchange12:
    def test_closes_crafted_gap(self, swap12_instance):
        state = SearchState.from_solution(
            swap12_instance, greedy_solution(swap12_instance)
        )
        assert state.value == 10.0  # greedy packs item 0
        stats = PolishStats()
        assert exchange_12(state, stats)
        assert state.value == 12.0
        assert stats.swaps_12 == 1
        assert state.is_feasible

    def test_noop_at_optimum(self, swap12_instance):
        state = SearchState(swap12_instance, np.array([0, 1, 1], dtype=np.int8))
        assert not exchange_12(state)


class TestExchange21:
    def test_closes_crafted_gap(self, swap21_instance):
        state = SearchState(swap21_instance, np.array([1, 1, 0], dtype=np.int8))
        stats = PolishStats()
        assert exchange_21(state, stats)
        assert state.value == 11.0
        assert list(state.packed_items()) == [2]
        assert stats.swaps_21 == 1

    def test_requires_strict_improvement(self):
        inst = MKPInstance.from_lists(
            weights=[[3, 3, 6]], capacities=[6], profits=[5, 5, 10]
        )
        state = SearchState(inst, np.array([1, 1, 0], dtype=np.int8))
        assert not exchange_21(state)  # 10 == 5 + 5, no strict gain


class TestExchange11:
    def test_simple_swap(self, tiny_instance):
        state = SearchState.from_solution(
            tiny_instance, greedy_solution(tiny_instance)
        )  # {0, 3}, value 13
        stats = PolishStats()
        assert exchange_11(state, stats)
        assert state.value > 13.0


class TestPolish:
    def test_fixpoint_and_monotonicity(self, medium_instance):
        state = SearchState.from_solution(
            medium_instance, greedy_solution(medium_instance)
        )
        before = state.value
        result = polish(state)
        assert result.value >= before
        assert result.is_feasible(medium_instance)
        # Fixpoint: second polish changes nothing.
        again = polish(state)
        assert again == result

    def test_reaches_tiny_optimum(self, tiny_instance):
        state = SearchState.from_solution(
            tiny_instance, greedy_solution(tiny_instance)
        )
        result = polish(state)
        assert result.value == 18.0

    def test_max_exchanges_cap(self, medium_instance):
        state = SearchState.from_solution(
            medium_instance, greedy_solution(medium_instance)
        )
        stats = PolishStats()
        polish(state, max_exchanges=1, stats=stats)
        assert stats.total <= 1

    def test_invalid_cap(self, medium_instance):
        state = SearchState.empty(medium_instance)
        with pytest.raises(ValueError):
            polish(state, max_exchanges=-1)

    def test_never_leaves_feasible_region(self, small_instance):
        for seed in range(3):
            from repro.core import random_solution

            state = SearchState.from_solution(
                small_instance, random_solution(small_instance, rng=seed)
            )
            result = polish(state)
            assert result.is_feasible(small_instance)
