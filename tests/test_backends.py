"""Unit tests for the serial and multiprocessing backends."""

from __future__ import annotations

import time

import pytest

from repro.core import Budget, Strategy, TabuSearchConfig, random_solution
from repro.parallel import MultiprocessingBackend, SerialBackend, SlaveTask


def make_tasks(instance, n, evals=2000):
    tasks = []
    for k in range(n):
        tasks.append(
            SlaveTask(
                x_init=random_solution(instance, rng=k),
                strategy=Strategy(8, 2, 10),
                budget=Budget(max_evaluations=evals),
                seed=1000 + k,
                round_index=0,
            )
        )
    return tasks


class TestSerialBackend:
    def test_round_returns_reports_in_order(self, small_instance):
        backend = SerialBackend(3)
        backend.start(small_instance, TabuSearchConfig(nb_div=100))
        reports = backend.run_round(make_tasks(small_instance, 3))
        assert [r.slave_id for r in reports] == [0, 1, 2]

    def test_requires_start(self, small_instance):
        backend = SerialBackend(2)
        with pytest.raises(RuntimeError, match="not started"):
            backend.run_round(make_tasks(small_instance, 2))

    def test_task_count_checked(self, small_instance):
        backend = SerialBackend(2)
        backend.start(small_instance, TabuSearchConfig(nb_div=100))
        with pytest.raises(ValueError, match="expected 2 tasks"):
            backend.run_round(make_tasks(small_instance, 3))

    def test_message_sizes_recorded(self, small_instance):
        backend = SerialBackend(2)
        backend.start(small_instance, TabuSearchConfig(nb_div=100))
        backend.run_round(make_tasks(small_instance, 2))
        assert sorted(backend.last_task_nbytes) == [0, 1]
        assert sorted(backend.last_report_nbytes) == [0, 1]
        assert all(b > 0 for b in backend.last_task_nbytes.values())
        assert all(b > 0 for b in backend.last_report_nbytes.values())

    def test_reports_carry_results(self, small_instance):
        backend = SerialBackend(2)
        backend.start(small_instance, TabuSearchConfig(nb_div=100))
        tasks = make_tasks(small_instance, 2)
        reports = backend.run_round(tasks)
        for task, report in zip(tasks, reports):
            assert report.best.value >= task.x_init.value
            assert report.evaluations > 0
            assert report.best.is_feasible(small_instance)

    def test_invalid_slave_count(self):
        with pytest.raises(ValueError):
            SerialBackend(0)

    def test_context_manager(self, small_instance):
        with SerialBackend(1) as backend:
            backend.start(small_instance, TabuSearchConfig(nb_div=100))
            backend.run_round(make_tasks(small_instance, 1))

    def test_phase_wall_counters_recorded(self, small_instance):
        backend = SerialBackend(2)
        backend.start(small_instance, TabuSearchConfig(nb_div=100))
        backend.run_round(make_tasks(small_instance, 2))
        assert set(backend.last_phase_seconds) == {"scatter", "compute", "gather"}
        assert all(v >= 0.0 for v in backend.last_phase_seconds.values())
        # Inline slaves do all the work in the compute phase.
        assert backend.last_phase_seconds["compute"] > 0.0
        assert backend.last_master_wait_s == 0.0
        first_compute = backend.phase_totals["compute"]
        backend.run_round(make_tasks(small_instance, 2))
        assert backend.phase_totals["compute"] > first_compute


@pytest.mark.slow
class TestMultiprocessingBackend:
    def test_round_matches_serial(self, small_instance, mp_context):
        """Same tasks + same seeds => bit-identical reports across backends
        (the property that transfers simulated results to real hardware)."""
        config = TabuSearchConfig(nb_div=100)
        tasks = make_tasks(small_instance, 2)

        serial = SerialBackend(2)
        serial.start(small_instance, config)
        serial_reports = serial.run_round(tasks)

        with MultiprocessingBackend(2, mp_context=mp_context) as mp_backend:
            mp_backend.start(small_instance, config)
            mp_reports = mp_backend.run_round(tasks)

        for a, b in zip(serial_reports, mp_reports):
            assert a.best == b.best
            assert a.evaluations == b.evaluations
            assert a.initial_value == b.initial_value

    def test_multiple_rounds_reuse_workers(self, small_instance, mp_context):
        with MultiprocessingBackend(2, mp_context=mp_context) as backend:
            backend.start(small_instance, TabuSearchConfig(nb_div=100))
            r1 = backend.run_round(make_tasks(small_instance, 2, evals=800))
            r2 = backend.run_round(make_tasks(small_instance, 2, evals=800))
            assert len(r1) == len(r2) == 2

    def test_double_start_is_warm_reuse(self, small_instance):
        # start() on a live backend used to raise; the service lease model
        # makes it a warm no-op for the same problem (see TestMultiprocessing-
        # WarmLeasing for the rebind path).
        with MultiprocessingBackend(1) as backend:
            backend.start(small_instance, TabuSearchConfig(nb_div=100))
            backend.start(small_instance, TabuSearchConfig(nb_div=100))
            assert backend.warm_reuses == 1

    def test_requires_start(self, small_instance):
        backend = MultiprocessingBackend(1)
        with pytest.raises(RuntimeError, match="not started"):
            backend.run_round(make_tasks(small_instance, 1))

    def test_shutdown_idempotent(self, small_instance):
        backend = MultiprocessingBackend(1)
        backend.start(small_instance, TabuSearchConfig(nb_div=100))
        backend.run_round(make_tasks(small_instance, 1, evals=500))
        backend.shutdown()
        backend.shutdown()  # second call is a no-op

    def test_phase_and_idle_counters(self, small_instance, mp_context):
        with MultiprocessingBackend(2, mp_context=mp_context) as backend:
            backend.start(small_instance, TabuSearchConfig(nb_div=100))
            backend.run_round(make_tasks(small_instance, 2, evals=500))
            assert set(backend.last_phase_seconds) == {"scatter", "compute", "gather"}
            # Every reporting slave gets a collection latency, and the
            # master's blocked time is bounded by the gather wall.
            assert sorted(backend.last_gather_idle_s) == [0, 1]
            gather = backend.last_phase_seconds["gather"]
            assert all(0.0 <= v <= gather for v in backend.last_gather_idle_s.values())
            assert 0.0 <= backend.last_master_wait_s <= gather + 1e-6
            assert backend.phase_totals["gather"] >= gather

    def test_healthy_shutdown_is_prompt(self, small_instance, mp_context):
        backend = MultiprocessingBackend(
            4, mp_context=mp_context, shutdown_timeout_s=10.0
        )
        backend.start(small_instance, TabuSearchConfig(nb_div=100))
        backend.run_round(make_tasks(small_instance, 4, evals=300))
        t0 = time.perf_counter()
        backend.shutdown()
        # Shared deadline: 4 healthy workers stop in well under one
        # per-worker timeout, let alone 4 x 10 s of sequential joins.
        assert time.perf_counter() - t0 < 5.0

    def test_shutdown_timeout_validated(self):
        with pytest.raises(ValueError, match="shutdown_timeout_s"):
            MultiprocessingBackend(1, shutdown_timeout_s=0.0)


def reports_values(reports):
    return [(r.slave_id, r.best.value, r.evaluations) for r in reports]


class TestSerialWarmLeasing:
    def test_same_problem_restart_is_warm_noop(self, small_instance):
        backend = SerialBackend(2)
        config = TabuSearchConfig(nb_div=100)
        backend.start(small_instance, config)
        runtimes = list(backend._runtimes)
        backend.start(small_instance, config)
        assert backend.warm_reuses == 1
        assert backend.rebinds == 0
        # warm path keeps the exact runtime objects (arenas preserved)
        assert all(a is b for a, b in zip(runtimes, backend._runtimes))

    def test_rebind_matches_cold_backend(self, small_instance, medium_instance):
        config = TabuSearchConfig(nb_div=100)
        warm = SerialBackend(2)
        warm.start(small_instance, config)
        warm.run_round(make_tasks(small_instance, 2, evals=800))
        warm.start(medium_instance, config)  # in-place rebind
        assert warm.rebinds == 1
        cold = SerialBackend(2)
        cold.start(medium_instance, config)
        warm_reports = warm.run_round(make_tasks(medium_instance, 2, evals=800))
        cold_reports = cold.run_round(make_tasks(medium_instance, 2, evals=800))
        assert reports_values(warm_reports) == reports_values(cold_reports)

    def test_config_change_forces_rebind(self, small_instance):
        backend = SerialBackend(2)
        backend.start(small_instance, TabuSearchConfig(nb_div=100))
        backend.start(small_instance, TabuSearchConfig(nb_div=50))
        assert backend.warm_reuses == 0
        assert backend.rebinds == 1

    def test_shutdown_idempotent_and_revivable(self, small_instance):
        config = TabuSearchConfig(nb_div=100)
        backend = SerialBackend(2)
        backend.start(small_instance, config)
        backend.run_round(make_tasks(small_instance, 2, evals=500))
        backend.shutdown()
        backend.shutdown()  # repeated shutdown is a no-op
        with pytest.raises(RuntimeError, match="not started"):
            backend.run_round(make_tasks(small_instance, 2, evals=500))
        backend.start(small_instance, config)  # revival cold-starts
        reports = backend.run_round(make_tasks(small_instance, 2, evals=500))
        cold = SerialBackend(2)
        cold.start(small_instance, config)
        assert reports_values(reports) == reports_values(
            cold.run_round(make_tasks(small_instance, 2, evals=500))
        )


class TestMultiprocessingWarmLeasing:
    def test_same_problem_restart_keeps_workers(self, small_instance, mp_context):
        config = TabuSearchConfig(nb_div=100)
        with MultiprocessingBackend(2, mp_context=mp_context) as backend:
            backend.start(small_instance, config)
            backend.run_round(make_tasks(small_instance, 2, evals=500))
            pids = [p.pid for p in backend._procs]
            backend.start(small_instance, config)
            assert backend.warm_reuses == 1
            assert [p.pid for p in backend._procs] == pids
            backend.run_round(make_tasks(small_instance, 2, evals=500))

    def test_rebind_without_respawn_matches_cold(
        self, small_instance, medium_instance, mp_context
    ):
        config = TabuSearchConfig(nb_div=100)
        with MultiprocessingBackend(2, mp_context=mp_context) as warm:
            warm.start(small_instance, config)
            warm.run_round(make_tasks(small_instance, 2, evals=500))
            pids = [p.pid for p in warm._procs]
            warm.start(medium_instance, config)
            assert warm.rebinds == 1
            # same live workers: rebind is a pipe message, not a respawn
            assert [p.pid for p in warm._procs] == pids
            warm_reports = warm.run_round(
                make_tasks(medium_instance, 2, evals=500)
            )
        with MultiprocessingBackend(2, mp_context=mp_context) as cold:
            cold.start(medium_instance, config)
            cold_reports = cold.run_round(
                make_tasks(medium_instance, 2, evals=500)
            )
        assert reports_values(warm_reports) == reports_values(cold_reports)

    def test_shutdown_idempotent_and_revivable(self, small_instance, mp_context):
        config = TabuSearchConfig(nb_div=100)
        backend = MultiprocessingBackend(2, mp_context=mp_context)
        backend.start(small_instance, config)
        backend.run_round(make_tasks(small_instance, 2, evals=300))
        backend.shutdown()
        backend.shutdown()
        backend.shutdown()  # any number of repeats stays a no-op
        backend.start(small_instance, config)  # fresh workers after revival
        try:
            reports = backend.run_round(make_tasks(small_instance, 2, evals=300))
            assert [r.slave_id for r in reports] == [0, 1]
        finally:
            backend.shutdown()


class TestBatchedKernel:
    """The (K, n) kernel path must agree with K scalar resets bit-for-bit."""

    def test_batch_values_loads_feasible_match_scalar(self, small_instance, rng):
        import numpy as np

        from repro.core.kernels import EvalKernel

        kernel = EvalKernel(small_instance)
        X = (rng.random((6, small_instance.n_items)) < 0.4).astype(np.int8)
        values = kernel.batch_values(X)
        loads = kernel.batch_loads(X)
        feasible = kernel.batch_feasible(X)
        assert values.shape == (6,)
        assert loads.shape == (6, small_instance.n_constraints)
        for i in range(6):
            kernel.reset(X[i])
            assert values[i] == kernel.value
            assert np.array_equal(loads[i], kernel.load)
            assert feasible[i] == kernel.is_feasible

    def test_single_row_is_promoted_to_2d(self, small_instance):
        import numpy as np

        from repro.core.kernels import EvalKernel

        kernel = EvalKernel(small_instance)
        x = np.zeros(small_instance.n_items, dtype=np.int8)
        assert kernel.batch_values(x).shape == (1,)
        assert bool(kernel.batch_feasible(x)[0])  # empty knapsack is feasible


class TestBatchedBackends:
    """batch_k groups slaves onto shared runtimes without changing reports."""

    def test_serial_batched_reports_match_per_slave(self, small_instance):
        tasks = make_tasks(small_instance, 4, evals=600)
        with SerialBackend(4) as ref, SerialBackend(4, batch_k=3) as batched:
            ref.start(small_instance, TabuSearchConfig(nb_div=100))
            batched.start(small_instance, TabuSearchConfig(nb_div=100))
            a = ref.run_round(list(tasks))
            b = batched.run_round(list(tasks))
            # 4 slaves over groups of 3 → two warm runtimes, not four.
            assert len(batched._runtimes) == 2
        assert [r.slave_id for r in b] == [r.slave_id for r in a]
        assert [r.best.value for r in b] == [r.best.value for r in a]
        assert [r.evaluations for r in b] == [r.evaluations for r in a]

    def test_mp_batched_spawns_fewer_workers(self, small_instance):
        with MultiprocessingBackend(4, batch_k=2) as backend:
            backend.start(small_instance, TabuSearchConfig(nb_div=100))
            assert backend.n_workers == 2
            assert len(backend._procs) == 2
            reports = backend.run_round(make_tasks(small_instance, 4, evals=600))
            assert [r.slave_id for r in reports] == [0, 1, 2, 3]

    def test_batch_k_validation(self):
        with pytest.raises(ValueError):
            SerialBackend(2, batch_k=0)
        with pytest.raises(ValueError):
            MultiprocessingBackend(2, batch_k=0)

    def test_batched_runtime_audit_rejects_corrupt_x_init(self, small_instance):
        from repro.core import TabuSearchConfig as _Cfg
        from repro.parallel.runtime import SlaveRuntime

        runtime = SlaveRuntime(small_instance, _Cfg(nb_div=100), slave_id=0)
        tasks = make_tasks(small_instance, 2, evals=100)
        bad = SlaveTask(
            x_init=type(tasks[1].x_init).trusted(
                tasks[1].x_init.x, tasks[1].x_init.value + 1.0
            ),
            strategy=tasks[1].strategy,
            budget=tasks[1].budget,
            seed=tasks[1].seed,
            round_index=tasks[1].round_index,
            seq_id=tasks[1].seq_id,
        )
        with pytest.raises(ValueError, match="corrupt x_init"):
            runtime.execute_batch([tasks[0], bad], [0, 1])
