"""Unit tests for :mod:`repro.core.intensification`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    IntensificationStats,
    SearchState,
    greedy_solution,
    strategic_oscillation,
    swap_intensification,
)


class TestSwap:
    def test_never_decreases_value(self, small_instance):
        state = SearchState.from_solution(
            small_instance, greedy_solution(small_instance)
        )
        before = state.value
        result = swap_intensification(state)
        assert result.value >= before

    def test_preserves_feasibility(self, small_instance):
        state = SearchState.from_solution(
            small_instance, greedy_solution(small_instance)
        )
        swap_intensification(state)
        assert state.is_feasible

    def test_finds_tiny_improving_swap(self, tiny_instance):
        # Greedy packs {0, 3} (value 13); swapping 3 -> 2 yields {0, 2} = 18.
        state = SearchState.from_solution(
            tiny_instance, greedy_solution(tiny_instance)
        )
        result = swap_intensification(state)
        assert result.value == 18.0
        assert set(result.items) == {0, 2}

    def test_stats_counted(self, small_instance):
        stats = IntensificationStats()
        state = SearchState.from_solution(
            small_instance, greedy_solution(small_instance)
        )
        swap_intensification(state, stats)
        assert stats.evaluations > 0

    def test_fixed_point(self, small_instance):
        """Applying swap intensification twice changes nothing the 2nd time."""
        state = SearchState.from_solution(
            small_instance, greedy_solution(small_instance)
        )
        first = swap_intensification(state)
        second = swap_intensification(state)
        assert first == second

    def test_empty_state_noop(self, small_instance):
        state = SearchState.empty(small_instance)
        result = swap_intensification(state)
        assert result.value == 0.0


class TestStrategicOscillation:
    def test_result_is_feasible(self, small_instance, rng):
        state = SearchState.from_solution(
            small_instance, greedy_solution(small_instance)
        )
        result = strategic_oscillation(state, depth=5, rng=rng)
        assert state.is_feasible
        assert result.is_feasible(small_instance)

    def test_zero_depth_projects_only(self, small_instance, rng):
        state = SearchState.from_solution(
            small_instance, greedy_solution(small_instance)
        )
        before = state.value
        result = strategic_oscillation(state, depth=0, rng=rng)
        # Already feasible and maximal: nothing to add, nothing to repair.
        assert result.value == before

    def test_negative_depth_rejected(self, small_instance, rng):
        state = SearchState.empty(small_instance)
        with pytest.raises(ValueError):
            strategic_oscillation(state, depth=-1, rng=rng)

    def test_oscillation_counter(self, small_instance, rng):
        stats = IntensificationStats()
        state = SearchState.from_solution(
            small_instance, greedy_solution(small_instance)
        )
        strategic_oscillation(state, depth=3, rng=rng, stats=stats)
        strategic_oscillation(state, depth=3, rng=rng, stats=stats)
        assert stats.oscillations == 2

    def test_can_escape_greedy_local_optimum(self, tiny_instance, rng):
        """The excursion can land somewhere the greedy fill cannot reach."""
        state = SearchState.from_solution(
            tiny_instance, greedy_solution(tiny_instance)
        )
        values = set()
        for seed in range(10):
            state.restore(greedy_solution(tiny_instance))
            result = strategic_oscillation(
                state, depth=2, rng=np.random.default_rng(seed)
            )
            values.add(result.value)
        # At least reaches the greedy value; often finds something else too.
        assert max(values) >= 13.0
