"""Reusable differential harness: reference path vs shm/batched path.

The tabu-search reproduction defines correctness as *bit-identical
incumbent trajectories*: two executions of the same (instance, seed,
variant) must agree on every solution, every round statistic, and every
byte charged to the farm clock — regardless of which transport carried
the messages or how many slaves shared a worker.  This module packages
that contract so any test can assert it in one call:

``run_canonical``
    Solve a variant with an optional externally-constructed backend and
    return the **canonical serialization**: the FORMAT_VERSION-2
    ``result_to_dict`` payload with every wall-measured field zeroed
    (wall time is the one thing two runs legitimately disagree on).

``assert_differential``
    Run one case under several backend factories and assert every
    canonical payload is byte-identical to the reference's, reporting
    the first differing JSON path on failure.

Wall-measured fields canonicalized away (everything else — virtual
seconds, byte ledgers, value histories, per-slave accounting — must
match exactly):

* top-level ``wall_seconds``;
* per-round ``phase_wall_seconds`` and ``gather_idle_s``;
* the trace's ``wall_phases`` records.
"""

from __future__ import annotations

import copy
import json
from typing import Any, Callable, Mapping

from repro.analysis.serialize import result_to_dict
from repro.core.instance import MKPInstance
from repro.master.result import ParallelRunResult
from repro.parallel.backends import Backend
from repro.variants.runner import solve_cts1, solve_cts2, solve_its

__all__ = [
    "VARIANTS",
    "assert_differential",
    "canonical_bytes",
    "canonicalize",
    "first_difference",
    "run_canonical",
]

VARIANTS: Mapping[str, Callable[..., ParallelRunResult]] = {
    "its": solve_its,
    "cts1": solve_cts1,
    "cts2": solve_cts2,
}


def canonicalize(data: dict) -> dict:
    """Strip wall-clock measurements from a ``result_to_dict`` payload."""
    out = copy.deepcopy(data)
    out["wall_seconds"] = 0.0
    for rnd in out.get("rounds", []):
        rnd["phase_wall_seconds"] = {}
        rnd["gather_idle_s"] = {}
    trace = out.get("trace")
    if isinstance(trace, dict):
        trace["wall_phases"] = []
    return out


def canonical_bytes(result: ParallelRunResult) -> bytes:
    """Canonical serialized form of a run, suitable for equality asserts."""
    return json.dumps(
        canonicalize(result_to_dict(result)), sort_keys=True
    ).encode()


def run_canonical(
    instance: MKPInstance,
    *,
    variant: str = "cts2",
    backend_factory: Callable[[], Backend] | None = None,
    n_slaves: int = 4,
    n_rounds: int = 3,
    rng_seed: int = 7,
    max_evaluations: int = 1_500,
) -> bytes:
    """Solve ``variant`` once and return its canonical serialization.

    ``backend_factory`` builds the backend to run on (``None`` = the
    runner's default serial backend); the harness owns its shutdown, so
    factories can hand over freshly-constructed multiprocessing backends
    without leaking workers on assertion failure.
    """
    solver = VARIANTS[variant]
    backend = backend_factory() if backend_factory is not None else None
    try:
        result = solver(
            instance,
            n_slaves=n_slaves,
            n_rounds=n_rounds,
            rng_seed=rng_seed,
            max_evaluations=max_evaluations,
            backend=backend,
        )
    finally:
        if backend is not None:
            backend.shutdown()
    return canonical_bytes(result)


def first_difference(a: Any, b: Any, path: str = "$") -> str | None:
    """Human-readable JSON path of the first disagreement (None if equal)."""
    if type(a) is not type(b):
        return f"{path}: type {type(a).__name__} != {type(b).__name__}"
    if isinstance(a, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a or key not in b:
                return f"{path}.{key}: present in only one payload"
            diff = first_difference(a[key], b[key], f"{path}.{key}")
            if diff:
                return diff
        return None
    if isinstance(a, list):
        if len(a) != len(b):
            return f"{path}: length {len(a)} != {len(b)}"
        for i, (x, y) in enumerate(zip(a, b)):
            diff = first_difference(x, y, f"{path}[{i}]")
            if diff:
                return diff
        return None
    if a != b:
        return f"{path}: {a!r} != {b!r}"
    return None


def assert_differential(
    instance: MKPInstance,
    factories: Mapping[str, Callable[[], Backend] | None],
    **case_kwargs: Any,
) -> None:
    """Assert every factory's run is byte-identical to the first's.

    ``factories`` maps a label (used in the failure message) to a backend
    factory; the first entry is the reference path.  ``case_kwargs``
    forward to :func:`run_canonical` (variant, seed, budgets, ...).
    """
    if len(factories) < 2:
        raise ValueError("need a reference and at least one candidate")
    labels = list(factories)
    payloads = {
        label: run_canonical(
            instance, backend_factory=factories[label], **case_kwargs
        )
        for label in labels
    }
    reference = payloads[labels[0]]
    for label in labels[1:]:
        if payloads[label] != reference:
            diff = first_difference(
                json.loads(reference), json.loads(payloads[label])
            )
            raise AssertionError(
                f"run {label!r} diverged from reference {labels[0]!r}: {diff}"
            )
