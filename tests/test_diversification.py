"""Unit tests for :mod:`repro.core.diversification`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DiversificationConfig,
    History,
    SearchState,
    TabuList,
    diversify,
    greedy_solution,
)


def loaded_history(n: int, hot: list[int], cold: list[int], iters: int = 10) -> History:
    """History where ``hot`` items were always 1 and ``cold`` always 0."""
    h = History(n)
    x = np.zeros(n, dtype=np.int8)
    x[hot] = 1
    # everything not hot/cold sits at 50% frequency
    mid = [j for j in range(n) if j not in hot and j not in cold]
    for it in range(iters):
        x[mid] = it % 2
        h.record(x)
    return h


class TestConfig:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            DiversificationConfig(high_threshold=0.2, low_threshold=0.5)
        with pytest.raises(ValueError):
            DiversificationConfig(high_threshold=1.5)
        with pytest.raises(ValueError):
            DiversificationConfig(lock_iterations=-1)


class TestDiversify:
    def test_forces_overused_out(self, small_instance):
        n = small_instance.n_items
        history = loaded_history(n, hot=[0, 1], cold=[2, 3])
        state = SearchState.from_solution(
            small_instance, greedy_solution(small_instance)
        )
        tabu = TabuList(n, 5)
        config = DiversificationConfig(high_threshold=0.8, low_threshold=0.1)
        result = diversify(state, history, tabu, config)
        assert result.x[0] == 0
        assert result.x[1] == 0

    def test_forces_underused_in_when_feasible(self, small_instance):
        n = small_instance.n_items
        history = loaded_history(n, hot=[], cold=[4])
        state = SearchState.empty(small_instance)
        tabu = TabuList(n, 5)
        config = DiversificationConfig(high_threshold=0.9, low_threshold=0.1)
        result = diversify(state, history, tabu, config)
        # 4 was forced in from an empty state — it must fit alone.
        assert result.x[4] == 1

    def test_result_feasible(self, small_instance):
        n = small_instance.n_items
        history = loaded_history(n, hot=list(range(5)), cold=list(range(5, 15)))
        state = SearchState.from_solution(
            small_instance, greedy_solution(small_instance)
        )
        tabu = TabuList(n, 5)
        result = diversify(state, history, tabu, DiversificationConfig())
        assert result.is_feasible(small_instance)
        assert state.is_feasible

    def test_forced_components_locked(self, small_instance):
        n = small_instance.n_items
        history = loaded_history(n, hot=[0], cold=[7])
        state = SearchState.from_solution(
            small_instance, greedy_solution(small_instance)
        )
        tabu = TabuList(n, 2)
        config = DiversificationConfig(
            high_threshold=0.8, low_threshold=0.1, lock_iterations=10
        )
        diversify(state, history, tabu, config)
        # locked far beyond ordinary tenure
        assert tabu.remaining(0) > 2
        assert tabu.remaining(7) > 2

    def test_no_forcing_with_extreme_thresholds(self, small_instance):
        """Thresholds at 1/0 force nothing; solution unchanged up to fill."""
        n = small_instance.n_items
        history = loaded_history(n, hot=[0], cold=[7])
        start = greedy_solution(small_instance)
        state = SearchState.from_solution(small_instance, start)
        tabu = TabuList(n, 2)
        config = DiversificationConfig(
            high_threshold=1.0, low_threshold=0.0, lock_iterations=5
        )
        result = diversify(state, history, tabu, config)
        assert result == start
        assert tabu.active_count() == 0
