"""Edge-case tests across modules (final coverage pass)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Budget,
    MKPInstance,
    SearchState,
    Solution,
    Strategy,
    TabuSearch,
    TabuSearchConfig,
    greedy_solution,
)


class TestDegenerateInstances:
    def test_single_item_single_constraint(self):
        inst = MKPInstance.from_lists(weights=[[3]], capacities=[5], profits=[7])
        ts = TabuSearch(inst, Strategy(2, 1, 5), TabuSearchConfig(nb_div=1), rng=0)
        result = ts.run(budget=Budget(max_moves=10))
        assert result.best.value == 7.0

    def test_item_never_fits(self):
        inst = MKPInstance.from_lists(weights=[[10]], capacities=[5], profits=[7])
        ts = TabuSearch(inst, Strategy(2, 1, 5), TabuSearchConfig(nb_div=1), rng=0)
        result = ts.run(budget=Budget(max_moves=10))
        assert result.best.value == 0.0

    def test_all_items_fit(self):
        inst = MKPInstance.from_lists(
            weights=[[1, 1, 1]], capacities=[10], profits=[2, 3, 4]
        )
        ts = TabuSearch(inst, Strategy(2, 1, 5), TabuSearchConfig(nb_div=1), rng=0)
        result = ts.run(budget=Budget(max_moves=20))
        assert result.best.value == 9.0

    def test_zero_capacity_constraint(self):
        """A zero capacity row forbids every item with weight there."""
        inst = MKPInstance.from_lists(
            weights=[[1, 0], [1, 1]], capacities=[0, 5], profits=[9, 4]
        )
        # item 0 has weight 1 in the zero-capacity row: only item 1 fits.
        sol = greedy_solution(inst)
        assert sol.value == 4.0

    def test_exact_handles_degenerate(self):
        from repro.exact import branch_and_bound

        inst = MKPInstance.from_lists(weights=[[10]], capacities=[5], profits=[7])
        result = branch_and_bound(inst)
        assert result.proven and result.value == 0.0


class TestSolutionEdgeCases:
    def test_empty_solution_items(self):
        sol = Solution(np.zeros(5, dtype=np.int8), 0.0)
        assert sol.items.size == 0

    def test_full_solution_items(self):
        sol = Solution(np.ones(3, dtype=np.int8), 6.0)
        assert list(sol.items) == [0, 1, 2]

    def test_search_state_on_single_item(self):
        inst = MKPInstance.from_lists(weights=[[3]], capacities=[5], profits=[7])
        state = SearchState.empty(inst)
        assert state.fitting_items().size == 1
        state.add(0)
        assert state.fitting_items().size == 0
        assert state.free_items().size == 0


class TestBudgetInteractions:
    def test_target_and_evals_combined(self, small_instance):
        """Whichever limit hits first stops the run."""
        budget = Budget(max_evaluations=10**9, target_value=0.0)
        ts = TabuSearch(
            small_instance, Strategy(5, 1, 5), TabuSearchConfig(nb_div=1), rng=0
        )
        result = ts.run(budget=budget)
        # target 0 is met by the initial solution: immediate stop
        assert result.moves == 0

    def test_zero_move_budget(self, small_instance):
        ts = TabuSearch(
            small_instance, Strategy(5, 1, 5), TabuSearchConfig(nb_div=1), rng=0
        )
        result = ts.run(budget=Budget(max_moves=0))
        assert result.moves == 0
        assert result.best.is_feasible(small_instance)


class TestGanttCommGlyph:
    def test_comm_events_render(self):
        from repro.analysis import render_gantt
        from repro.farm import EventKind, FarmTrace

        trace = FarmTrace()
        trace.record(0, EventKind.SEND, 0.0, 1.0)
        art = render_gantt(trace, width=4)
        assert "▒" in art


class TestDecompositionSubInstance:
    def test_block_capacity_shares_sum_to_whole(self, medium_instance):
        from repro.variants.decomposition import _sub_instance, partition_items

        blocks = partition_items(medium_instance, 4)
        share = 1.0 / len(blocks)
        total = sum(
            _sub_instance(medium_instance, b, share).capacities
            for b in blocks
        )
        np.testing.assert_allclose(total, medium_instance.capacities)

    def test_sub_instance_columns_match(self, medium_instance):
        from repro.variants.decomposition import _sub_instance, partition_items

        block = partition_items(medium_instance, 3)[1]
        sub = _sub_instance(medium_instance, block, 0.5)
        np.testing.assert_allclose(sub.weights, medium_instance.weights[:, block])
        np.testing.assert_allclose(sub.profits, medium_instance.profits[block])


class TestPipeCommProtocol:
    def test_tag_mismatch_detected(self):
        import multiprocessing as mp

        from repro.parallel import PipeComm

        a, b = mp.get_context("fork").Pipe(duplex=True)
        left, right = PipeComm(a), PipeComm(b)
        left.send("hello", tag=5)
        with pytest.raises(RuntimeError, match="protocol error"):
            right.recv(tag=6)
        left.close()
        right.close()

    def test_byte_counters(self):
        import multiprocessing as mp

        from repro.parallel import PipeComm

        a, b = mp.get_context("fork").Pipe(duplex=True)
        left, right = PipeComm(a), PipeComm(b)
        left.send([1, 2, 3], tag=1)
        got = right.recv(tag=1)
        assert got == [1, 2, 3]
        assert left.bytes_sent == right.bytes_received > 0
        left.close()
        right.close()


class TestGeneratorCapacityFloor:
    def test_every_item_fits_alone_even_at_tiny_tightness(self):
        from repro.instances import uncorrelated_instance

        inst = uncorrelated_instance(4, 30, tightness=0.01, rng=0)
        for j in range(inst.n_items):
            x = np.zeros(inst.n_items, dtype=np.int8)
            x[j] = 1
            assert inst.is_feasible(x), f"item {j} does not fit alone"


class TestOscillationDepthEffect:
    def test_deeper_excursions_explore_more(self, medium_instance, rng):
        """Depth controls how far the oscillation wanders: deeper
        excursions eject more items on projection (on average)."""
        from repro.core import strategic_oscillation

        def result_distance(depth, seed):
            state = SearchState.from_solution(
                medium_instance, greedy_solution(medium_instance)
            )
            start = state.snapshot()
            out = strategic_oscillation(
                state, depth, np.random.default_rng(seed)
            )
            return int(np.count_nonzero(out.x != start.x))

        shallow = np.mean([result_distance(1, s) for s in range(10)])
        deep = np.mean([result_distance(12, s) for s in range(10)])
        assert deep >= shallow
