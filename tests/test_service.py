"""Tests for the solver service layer (pool, cache, job manager, server).

The load-bearing guarantees pinned here:

* a job solved on a warm leased backend is **bit-identical** to the same
  seed/config through the direct blocking API, for both backend kinds;
* cancellation is observed at a round boundary well under a second, and a
  cancelled job hands its backend back warm and immediately reusable;
* 16+ concurrent submits multiplex correctly onto a 2-slot pool.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.service import (
    DEFAULT_PORT,
    InstanceCache,
    JobManager,
    JobRequest,
    JobState,
    LeaseCancelled,
    ServiceServer,
    SolverPool,
    request,
    stream_events,
)
from repro.variants import solve_cts2, solve_its


def run(coro):
    """Drive one async scenario to completion (no pytest-asyncio needed)."""
    return asyncio.run(coro)


def assert_same_run(service_result, direct_result):
    """Bit-identical trajectory: incumbent, history, per-round aggregates."""
    assert service_result.best.value == direct_result.best.value
    assert service_result.best.items.tolist() == direct_result.best.items.tolist()
    assert service_result.value_history == direct_result.value_history
    assert service_result.total_evaluations == direct_result.total_evaluations
    for ours, theirs in zip(service_result.rounds, direct_result.rounds):
        assert ours.best_value == theirs.best_value
        assert ours.evaluations == theirs.evaluations


# ---------------------------------------------------------------------- #
# InstanceCache
# ---------------------------------------------------------------------- #
class TestInstanceCache:
    def test_canonicalizes_equal_content(self, small_instance, tiny_instance):
        from repro.core import MKPInstance

        cache = InstanceCache()
        copy = MKPInstance(
            weights=small_instance.weights.copy(),
            capacities=small_instance.capacities.copy(),
            profits=small_instance.profits.copy(),
            name="a different label",
        )
        first = cache.canonical(small_instance)
        second = cache.canonical(copy)
        assert first is small_instance
        assert second is small_instance  # same content -> same object
        assert cache.canonical(tiny_instance) is tiny_instance
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 2

    def test_hot_tables_prebuilt_and_shared(self, small_instance):
        cache = InstanceCache()
        canonical = cache.canonical(small_instance)
        # eager build: the arena exists without any solve having run
        assert canonical.hot is not None
        assert cache.canonical(small_instance).hot is canonical.hot

    def test_lru_eviction(self, small_instance, tiny_instance, medium_instance):
        cache = InstanceCache(max_entries=2)
        cache.canonical(small_instance)
        cache.canonical(tiny_instance)
        cache.canonical(medium_instance)  # evicts small (least recent)
        assert small_instance.content_hash() not in cache
        assert tiny_instance.content_hash() in cache
        assert cache.stats()["evictions"] == 1


# ---------------------------------------------------------------------- #
# SolverPool leasing
# ---------------------------------------------------------------------- #
class TestSolverPool:
    def test_rejects_mixed_widths(self):
        from repro.parallel import SerialBackend

        with pytest.raises(ValueError, match="agree on n_slaves"):
            SolverPool([SerialBackend(2), SerialBackend(3)])

    def test_affinity_prefers_matching_slot(self, small_instance, tiny_instance):
        async def scenario():
            pool = SolverPool.serial(2, 2)
            h_small = small_instance.content_hash()
            h_tiny = tiny_instance.content_hash()
            lease_a = await pool.acquire(h_small)
            lease_b = await pool.acquire(h_tiny)
            await pool.release(lease_a, bound_hash=h_small)
            await pool.release(lease_b, bound_hash=h_tiny)
            # both free: each hash should land back on "its" slot
            lease = await pool.acquire(h_tiny)
            hit_slot = lease.slot.slot_id
            await pool.release(lease, bound_hash=h_tiny)
            return hit_slot, lease_b.slot.slot_id, pool.affinity_hits

        hit_slot, tiny_slot, hits = run(scenario())
        assert hit_slot == tiny_slot
        assert hits == 1

    def test_never_bound_slot_preferred_over_eviction(
        self, small_instance, tiny_instance
    ):
        async def scenario():
            pool = SolverPool.serial(2, 2)
            h_small = small_instance.content_hash()
            lease = await pool.acquire(h_small)
            await pool.release(lease, bound_hash=h_small)
            # a different instance should take the cold slot, not slot 0
            lease = await pool.acquire(tiny_instance.content_hash())
            return lease.slot.bound_hash

        assert run(scenario()) is None

    def test_cancelled_wait_raises(self):
        async def scenario():
            pool = SolverPool.serial(1, 2)
            lease = await pool.acquire(None)
            flag = asyncio.Event()
            waiter = asyncio.create_task(pool.acquire(None, cancelled=flag))
            await asyncio.sleep(0.01)
            flag.set()
            await pool.kick()
            with pytest.raises(LeaseCancelled):
                await waiter
            await pool.release(lease, bound_hash=None)

        run(scenario())

    def test_acquire_after_shutdown_raises(self):
        async def scenario():
            pool = SolverPool.serial(1, 2)
            pool.shutdown()
            with pytest.raises(RuntimeError, match="shut down"):
                await pool.acquire(None)

        run(scenario())


# ---------------------------------------------------------------------- #
# JobManager on the serial backend
# ---------------------------------------------------------------------- #
class TestJobManagerSerial:
    def test_sixteen_concurrent_jobs_bit_identical(self, small_instance):
        """16 concurrent submits on a 2-slot pool, every trajectory exact."""
        seeds = list(range(16))

        async def scenario():
            pool = SolverPool.serial(2, 2)
            manager = JobManager(pool)
            ids = {
                seed: manager.submit(
                    JobRequest(
                        small_instance,
                        n_rounds=3,
                        rng_seed=seed,
                        max_evaluations=4000,
                    )
                )
                for seed in seeds
            }
            statuses = {s: await manager.wait(i) for s, i in ids.items()}
            results = {s: manager.result(i) for s, i in ids.items()}
            stats = (pool.leases, pool.affinity_hits)
            await manager.close()
            return statuses, results, stats

        statuses, results, (leases, affinity_hits) = run(scenario())
        assert all(s.state is JobState.DONE for s in statuses.values())
        assert leases == 16
        # every lease after the first two rebinds lands warm on the instance
        assert affinity_hits >= 14
        for seed in seeds:
            direct = solve_cts2(
                small_instance,
                n_slaves=2,
                n_rounds=3,
                rng_seed=seed,
                max_evaluations=4000,
            )
            assert_same_run(results[seed], direct)

    def test_its_variant_bit_identical(self, small_instance):
        async def scenario():
            pool = SolverPool.serial(1, 2)
            manager = JobManager(pool)
            job_id = manager.submit(
                JobRequest(
                    small_instance,
                    variant="its",
                    n_rounds=2,
                    rng_seed=7,
                    max_evaluations=3000,
                )
            )
            await manager.wait(job_id)
            result = manager.result(job_id)
            await manager.close()
            return result

        direct = solve_its(
            small_instance, n_slaves=2, n_rounds=2, rng_seed=7, max_evaluations=3000
        )
        assert_same_run(run(scenario()), direct)

    def test_cancel_mid_round_is_fast_and_partial(self, small_instance):
        async def scenario():
            pool = SolverPool.serial(1, 2)
            manager = JobManager(pool)
            job_id = manager.submit(
                JobRequest(
                    small_instance, n_rounds=5000, max_evaluations=5_000_000
                )
            )
            while manager.status(job_id).rounds_completed < 2:
                await asyncio.sleep(0.005)
            t0 = time.monotonic()
            assert await manager.cancel(job_id)
            status = await manager.wait(job_id)
            elapsed = time.monotonic() - t0
            result = manager.result(job_id)
            await manager.close()
            return status, elapsed, result

        status, elapsed, result = run(scenario())
        assert status.state is JobState.CANCELLED
        assert elapsed < 1.0  # observed at the next round boundary
        assert 0 < status.rounds_completed < 5000
        # the partial result is real: rounds completed so far are kept
        assert result is not None
        assert len(result.rounds) == status.rounds_completed

    def test_cancelled_job_leaves_backend_reusable(self, small_instance):
        async def scenario():
            pool = SolverPool.serial(1, 2)
            manager = JobManager(pool)
            victim = manager.submit(
                JobRequest(
                    small_instance, n_rounds=5000, max_evaluations=5_000_000
                )
            )
            while manager.status(victim).rounds_completed < 1:
                await asyncio.sleep(0.005)
            await manager.cancel(victim)
            await manager.wait(victim)
            follow_up = manager.submit(
                JobRequest(small_instance, n_rounds=2, max_evaluations=2000)
            )
            status = await manager.wait(follow_up)
            result = manager.result(follow_up)
            slot = pool.slots()[0]
            backend = slot.backend
            stats = (slot.jobs_served, backend.warm_reuses)
            await manager.close()
            return status, result, stats

        status, result, (jobs_served, warm_reuses) = run(scenario())
        assert status.state is JobState.DONE
        assert jobs_served == 2
        assert warm_reuses >= 1  # same instance: the follow-up reused warm state
        direct = solve_cts2(
            small_instance, n_slaves=2, n_rounds=2, rng_seed=0, max_evaluations=2000
        )
        assert_same_run(result, direct)

    def test_cancel_queued_job_never_runs(self, small_instance):
        async def scenario():
            pool = SolverPool.serial(1, 2)
            manager = JobManager(pool)
            runner = manager.submit(
                JobRequest(
                    small_instance, n_rounds=5000, max_evaluations=5_000_000
                )
            )
            queued = manager.submit(
                JobRequest(small_instance, n_rounds=2, max_evaluations=2000)
            )
            await asyncio.sleep(0.02)
            assert manager.status(queued).state is JobState.QUEUED
            await manager.cancel(queued)
            queued_status = await manager.wait(queued)
            await manager.cancel(runner)
            await manager.wait(runner)
            await manager.close()
            return queued_status

        status = run(scenario())
        assert status.state is JobState.CANCELLED
        assert status.started_s is None  # never acquired a lease

    def test_cancel_finished_job_returns_false(self, small_instance):
        async def scenario():
            pool = SolverPool.serial(1, 2)
            manager = JobManager(pool)
            job_id = manager.submit(
                JobRequest(small_instance, n_rounds=1, max_evaluations=1000)
            )
            await manager.wait(job_id)
            outcome = await manager.cancel(job_id)
            await manager.close()
            return outcome

        assert run(scenario()) is False

    def test_stream_replays_then_finishes(self, small_instance):
        async def scenario():
            pool = SolverPool.serial(1, 2)
            manager = JobManager(pool)
            job_id = manager.submit(
                JobRequest(small_instance, n_rounds=3, max_evaluations=3000)
            )
            live = [e async for e in manager.stream(job_id)]
            # after completion, a second stream replays the same events
            replay = [e async for e in manager.stream(job_id)]
            await manager.close()
            return live, replay

        live, replay = run(scenario())
        kinds = [e["event"] for e in live]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        assert kinds.count("round_end") == 3
        assert replay == live

    def test_max_pending_backpressure(self, small_instance):
        async def scenario():
            pool = SolverPool.serial(1, 2)
            manager = JobManager(pool, max_pending=1)
            first = manager.submit(
                JobRequest(
                    small_instance, n_rounds=5000, max_evaluations=5_000_000
                )
            )
            with pytest.raises(RuntimeError, match="max_pending"):
                manager.submit(
                    JobRequest(small_instance, n_rounds=1, max_evaluations=1000)
                )
            await manager.cancel(first)
            await manager.wait(first)
            # backlog drained: admission reopens
            second = manager.submit(
                JobRequest(small_instance, n_rounds=1, max_evaluations=1000)
            )
            status = await manager.wait(second)
            await manager.close()
            return status

        assert run(scenario()).state is JobState.DONE

    def test_failed_job_quarantines_then_recovers(
        self, small_instance, monkeypatch
    ):
        from repro.service import jobs as jobs_module

        def boom(*args, **kwargs):
            raise RuntimeError("synthetic solver crash")

        async def scenario():
            pool = SolverPool.serial(1, 2)
            manager = JobManager(pool)
            monkeypatch.setitem(jobs_module._SOLVERS, "cts2", boom)
            failed = manager.submit(
                JobRequest(small_instance, n_rounds=1, max_evaluations=1000)
            )
            failed_status = await manager.wait(failed)
            monkeypatch.setitem(jobs_module._SOLVERS, "cts2", solve_cts2)
            # the failed job's backend was shut down and unbound...
            assert pool.slots()[0].bound_hash is None
            # ...but the slot still serves the next job correctly
            ok = manager.submit(
                JobRequest(small_instance, n_rounds=2, max_evaluations=2000)
            )
            ok_status = await manager.wait(ok)
            result = manager.result(ok)
            await manager.close()
            return failed_status, ok_status, result

        failed_status, ok_status, result = run(scenario())
        assert failed_status.state is JobState.FAILED
        assert "synthetic solver crash" in failed_status.error
        assert ok_status.state is JobState.DONE
        direct = solve_cts2(
            small_instance, n_slaves=2, n_rounds=2, rng_seed=0, max_evaluations=2000
        )
        assert_same_run(result, direct)

    def test_submit_after_close_rejected(self, small_instance):
        async def scenario():
            pool = SolverPool.serial(1, 2)
            manager = JobManager(pool)
            await manager.close()
            with pytest.raises(RuntimeError, match="closed"):
                manager.submit(
                    JobRequest(small_instance, n_rounds=1, max_evaluations=1000)
                )

        run(scenario())

    def test_request_validation(self, small_instance):
        with pytest.raises(ValueError, match="unknown variant"):
            JobRequest(small_instance, variant="seq")
        with pytest.raises(ValueError, match="at most one"):
            JobRequest(small_instance, max_evaluations=10, virtual_seconds=1.0)
        with pytest.raises(ValueError, match="n_rounds"):
            JobRequest(small_instance, n_rounds=0)


# ---------------------------------------------------------------------- #
# JobManager on the multiprocessing backend
# ---------------------------------------------------------------------- #
class TestJobManagerMultiprocessing:
    def test_jobs_bit_identical_to_direct_mp(self, small_instance, mp_context):
        """Warm leased MP backends match a cold direct MP run, per seed."""
        from repro.parallel import MultiprocessingBackend

        seeds = [0, 1, 2, 3]

        async def scenario():
            pool = SolverPool.multiprocessing(2, 2, mp_context=mp_context)
            manager = JobManager(pool)
            ids = {
                seed: manager.submit(
                    JobRequest(
                        small_instance,
                        n_rounds=2,
                        rng_seed=seed,
                        max_evaluations=3000,
                    )
                )
                for seed in seeds
            }
            statuses = {s: await manager.wait(i) for s, i in ids.items()}
            results = {s: manager.result(i) for s, i in ids.items()}
            await manager.close()
            return statuses, results

        statuses, results = run(scenario())
        assert all(s.state is JobState.DONE for s in statuses.values())
        for seed in seeds:
            backend = MultiprocessingBackend(2, mp_context=mp_context)
            direct = solve_cts2(
                small_instance,
                n_slaves=2,
                n_rounds=2,
                rng_seed=seed,
                max_evaluations=3000,
                backend=backend,
            )
            assert_same_run(results[seed], direct)

    def test_cancel_on_mp_backend(self, small_instance, mp_context):
        async def scenario():
            pool = SolverPool.multiprocessing(1, 2, mp_context=mp_context)
            manager = JobManager(pool)
            job_id = manager.submit(
                JobRequest(
                    small_instance, n_rounds=5000, max_evaluations=5_000_000
                )
            )
            while manager.status(job_id).rounds_completed < 1:
                await asyncio.sleep(0.01)
            t0 = time.monotonic()
            await manager.cancel(job_id)
            status = await manager.wait(job_id)
            elapsed = time.monotonic() - t0
            follow_up = manager.submit(
                JobRequest(small_instance, n_rounds=1, max_evaluations=1000)
            )
            follow_status = await manager.wait(follow_up)
            await manager.close()
            return status, elapsed, follow_status

        status, elapsed, follow_status = run(scenario())
        assert status.state is JobState.CANCELLED
        assert elapsed < 1.0
        assert follow_status.state is JobState.DONE


# ---------------------------------------------------------------------- #
# Latency accounting
# ---------------------------------------------------------------------- #
class TestLatencyAccounting:
    def test_job_stamps_share_the_backend_clock(self, small_instance):
        """Accounting invariant: every latency stamp is one clock's reading.

        The job layer used to stamp ``submitted_s``/``started_s``/
        ``finished_s`` with ``time.monotonic()`` while the backends phase
        against ``time.perf_counter()`` — two monotonic clocks with
        different epochs, so cross-derived numbers (queue wait vs phase
        seconds) carried a platform-dependent skew.  With everything on
        :func:`repro.obs.monotonic_s`, a job's stamps must interleave with
        readings taken around it on that same clock.
        """
        from repro.obs import monotonic_s

        async def scenario():
            pool = SolverPool.serial(1, 2)
            manager = JobManager(pool)
            t0 = monotonic_s()
            job_id = manager.submit(
                JobRequest(small_instance, n_rounds=2, max_evaluations=1000)
            )
            status = await manager.wait(job_id)
            t1 = monotonic_s()
            await manager.close()
            assert t0 <= status.submitted_s <= t1
            assert status.started_s is not None
            assert status.finished_s is not None
            assert status.submitted_s <= status.started_s
            assert status.started_s <= status.finished_s <= t1
            # Sanity on magnitude: the whole job ran inside [t0, t1], so
            # derived latencies must fit in that window — impossible to
            # satisfy if two different clock epochs were mixed.
            assert status.finished_s - status.submitted_s <= t1 - t0

        asyncio.run(scenario())


# ---------------------------------------------------------------------- #
# TCP transport
# ---------------------------------------------------------------------- #
class TestServiceServer:
    def test_default_port_documented(self):
        assert DEFAULT_PORT == 7621

    def test_port_zero_reports_bound_port(self, small_instance):
        async def scenario():
            pool = SolverPool.serial(1, 2)
            manager = JobManager(pool)
            server = ServiceServer(manager, port=0)
            host, port = await server.start()
            assert port > 0
            assert server.port == port  # re-reads see the real port
            server._shutdown.set()
            await server.serve_until_shutdown()

        asyncio.run(scenario())

    def test_taken_port_raises_actionable_error(self, small_instance):
        async def scenario():
            pool = SolverPool.serial(1, 2)
            manager = JobManager(pool)
            first = ServiceServer(manager, port=0)
            host, port = await first.start()
            second = ServiceServer(manager, port=port)
            with pytest.raises(RuntimeError, match="--port 0"):
                await second.start()
            first._shutdown.set()
            await first.serve_until_shutdown()

        asyncio.run(scenario())

    def test_round_trip(self, small_instance):
        spec = {
            "name": "inline-test",
            "profits": small_instance.profits.tolist(),
            "weights": small_instance.weights.tolist(),
            "capacities": small_instance.capacities.tolist(),
        }

        async def scenario():
            pool = SolverPool.serial(1, 2)
            manager = JobManager(pool)
            server = ServiceServer(manager, port=0)
            host, port = await server.start()
            loop = asyncio.get_running_loop()

            def call(payload):
                return request(host, port, payload)

            pong = await loop.run_in_executor(None, call, {"op": "ping"})
            assert pong["pong"] is True
            submitted = await loop.run_in_executor(
                None,
                call,
                {"op": "submit", "instance": spec, "rounds": 2, "evals": 2000},
            )
            job_id = submitted["job_id"]
            events = await loop.run_in_executor(
                None, lambda: list(stream_events(host, port, job_id))
            )
            status = await loop.run_in_executor(
                None, call, {"op": "status", "job_id": job_id}
            )
            stats = await loop.run_in_executor(None, call, {"op": "stats"})
            with pytest.raises(RuntimeError, match="unknown job id"):
                await loop.run_in_executor(
                    None, call, {"op": "status", "job_id": "job-999999"}
                )
            with pytest.raises(RuntimeError, match="unknown op"):
                await loop.run_in_executor(None, call, {"op": "frobnicate"})
            await loop.run_in_executor(None, call, {"op": "shutdown"})
            await server.serve_until_shutdown()
            return job_id, events, status, stats

        job_id, events, status, stats = run(scenario())
        assert events[-1]["kind"] == "end"
        assert events[-1]["status"]["state"] == "done"
        kinds = [e["event"] for e in events[:-1]]
        assert kinds[0] == "run_start" and kinds[-1] == "run_end"
        assert status["status"]["state"] == "done"
        assert status["status"]["rounds_completed"] == 2
        assert stats["pool"]["size"] == 1
        assert stats["jobs"] == 1

    def test_string_spec_requires_loader(self, small_instance):
        async def scenario():
            pool = SolverPool.serial(1, 2)
            manager = JobManager(pool)
            server = ServiceServer(manager, port=0)  # no loader wired
            host, port = await server.start()
            loop = asyncio.get_running_loop()
            with pytest.raises(RuntimeError, match="no instance loader"):
                await loop.run_in_executor(
                    None,
                    lambda: request(
                        host, port, {"op": "submit", "instance": "FP05"}
                    ),
                )
            await loop.run_in_executor(
                None, lambda: request(host, port, {"op": "shutdown"})
            )
            await server.serve_until_shutdown()

        run(scenario())


# ---------------------------------------------------------------------- #
# Pipelined async jobs (ISSUE-9 satellite)
# ---------------------------------------------------------------------- #
class TestAsyncPipelineJobs:
    def test_invalid_pipeline_rejected(self, small_instance):
        with pytest.raises(ValueError, match="pipeline"):
            JobRequest(small_instance, pipeline="turbo")

    def test_async_job_bit_identical_to_direct(self, small_instance):
        async def scenario():
            pool = SolverPool.serial(1, 2)
            manager = JobManager(pool)
            job_id = manager.submit(
                JobRequest(
                    small_instance,
                    n_rounds=3,
                    rng_seed=7,
                    max_evaluations=3000,
                    pipeline="async",
                )
            )
            await manager.wait(job_id)
            result = manager.result(job_id)
            await manager.close()
            return result

        direct = solve_cts2(
            small_instance,
            n_slaves=2,
            n_rounds=3,
            rng_seed=7,
            max_evaluations=3000,
            pipeline="async",
        )
        service_result = run(scenario())
        assert service_result.pipeline == "async"
        assert_same_run(service_result, direct)

    def test_cancel_async_job_at_burst_boundary(self, small_instance):
        """Cancelling an async run takes effect at the next burst boundary:
        under a second, with the rounds closed so far kept as a partial
        result and the backend handed back clean."""

        async def scenario():
            pool = SolverPool.serial(1, 2)
            manager = JobManager(pool)
            victim = manager.submit(
                JobRequest(
                    small_instance,
                    n_rounds=5000,
                    max_evaluations=5_000_000,
                    pipeline="async",
                )
            )
            while manager.status(victim).rounds_completed < 2:
                await asyncio.sleep(0.005)
            t0 = time.monotonic()
            assert await manager.cancel(victim)
            status = await manager.wait(victim)
            elapsed = time.monotonic() - t0
            result = manager.result(victim)
            # the slot is immediately reusable for a follow-up sync job
            follow_up = manager.submit(
                JobRequest(small_instance, n_rounds=2, max_evaluations=2000)
            )
            follow_status = await manager.wait(follow_up)
            await manager.close()
            return status, elapsed, result, follow_status

        status, elapsed, result, follow_status = run(scenario())
        assert status.state is JobState.CANCELLED
        assert elapsed < 1.0  # observed at the next burst boundary
        assert 0 < status.rounds_completed < 5000
        assert result is not None
        assert result.pipeline == "async"
        assert len(result.rounds) == status.rounds_completed
        assert follow_status.state is JobState.DONE
