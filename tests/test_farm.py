"""Unit tests for the farm machine model, virtual clock, and traces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.farm import (
    ALPHA_FARM,
    CrossbarModel,
    EventKind,
    FarmEvent,
    FarmModel,
    FarmTrace,
    ProcessorModel,
    VirtualClock,
)
from repro.farm.machine import EVAL_BASE_OPS, EVAL_OPS_PER_CONSTRAINT


class TestProcessorModel:
    def test_compute_seconds_formula(self):
        proc = ProcessorModel(mips=500.0)
        secs = proc.compute_seconds(1000, n_constraints=10)
        expected = 1000 * (EVAL_BASE_OPS + 10 * EVAL_OPS_PER_CONSTRAINT) / 500e6
        assert secs == pytest.approx(expected)

    def test_inverse_roundtrip(self):
        proc = ProcessorModel()
        evals = proc.evaluations_for_seconds(2.0, n_constraints=5)
        assert proc.compute_seconds(evals, 5) <= 2.0
        assert proc.compute_seconds(evals + 1, 5) > 2.0

    def test_more_constraints_cost_more(self):
        proc = ProcessorModel()
        assert proc.compute_seconds(100, 25) > proc.compute_seconds(100, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessorModel(mips=0)
        with pytest.raises(ValueError):
            ProcessorModel().compute_seconds(-1, 2)


class TestCrossbarModel:
    def test_transfer_time_grows_with_size(self):
        net = CrossbarModel()
        assert net.transfer_seconds(10_000) > net.transfer_seconds(100)

    def test_latency_floor(self):
        net = CrossbarModel(latency_seconds=1e-3)
        assert net.transfer_seconds(0) >= 1e-3

    def test_bandwidth_formula(self):
        net = CrossbarModel(
            link_bandwidth_mbps=200.0, latency_seconds=0.0, overhead_bytes=0
        )
        # 200 Mb/s = 25 MB/s: 25 MB takes 1 second
        assert net.transfer_seconds(25_000_000) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CrossbarModel(link_bandwidth_mbps=0)
        with pytest.raises(ValueError):
            CrossbarModel().transfer_seconds(-1)


class TestFarmModel:
    def test_alpha_farm_defaults(self):
        assert ALPHA_FARM.n_processors == 16
        assert ALPHA_FARM.processor.mips == 500.0
        assert ALPHA_FARM.network.link_bandwidth_mbps == 200.0

    def test_scatter_serializes_master_link(self):
        farm = FarmModel(n_processors=4)
        single = farm.transfer_seconds(1000)
        assert farm.scatter_seconds([1000] * 4) == pytest.approx(4 * single)

    def test_validation(self):
        with pytest.raises(ValueError):
            FarmModel(n_processors=0)


class TestVirtualClock:
    def test_advance_and_now(self):
        clock = VirtualClock(3)
        clock.advance(0, 1.0)
        clock.advance(1, 2.5)
        assert clock.now == 2.5
        assert clock.time_of(0) == 1.0

    def test_barrier_returns_idle(self):
        clock = VirtualClock(3)
        clock.advance(0, 1.0)
        clock.advance(1, 3.0)
        idle = clock.barrier()
        np.testing.assert_allclose(idle, [2.0, 0.0, 3.0])
        np.testing.assert_allclose(clock.times, [3.0, 3.0, 3.0])

    def test_wait_until(self):
        clock = VirtualClock(2)
        clock.advance(0, 5.0)
        idle = clock.wait_until(1, 5.0)
        assert idle == 5.0
        # waiting for the past costs nothing
        assert clock.wait_until(0, 1.0) == 0.0
        assert clock.time_of(0) == 5.0

    def test_advance_all(self):
        clock = VirtualClock(2)
        clock.advance_all(1.5)
        np.testing.assert_allclose(clock.times, [1.5, 1.5])

    def test_negative_rejected(self):
        clock = VirtualClock(2)
        with pytest.raises(ValueError):
            clock.advance(0, -1.0)
        with pytest.raises(ValueError):
            clock.advance_all(-1.0)

    def test_monotonicity_property(self):
        """Clocks never go backwards under any operation mix."""
        rng = np.random.default_rng(0)
        clock = VirtualClock(4)
        prev = clock.times
        for _ in range(200):
            op = rng.integers(0, 3)
            if op == 0:
                clock.advance(int(rng.integers(0, 4)), float(rng.random()))
            elif op == 1:
                clock.barrier()
            else:
                clock.wait_until(int(rng.integers(0, 4)), float(rng.random() * 5))
            now = clock.times
            assert np.all(now >= prev - 1e-12)
            prev = now


class TestTrace:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            FarmEvent(0, EventKind.COMPUTE, 2.0, 1.0)

    def test_aggregations(self):
        trace = FarmTrace()
        trace.record(0, EventKind.COMPUTE, 0.0, 2.0)
        trace.record(1, EventKind.COMPUTE, 0.0, 1.0)
        trace.record(1, EventKind.BARRIER_WAIT, 1.0, 2.0)
        trace.record(0, EventKind.SEND, 2.0, 2.1)
        assert trace.total_by_kind(EventKind.COMPUTE) == pytest.approx(3.0)
        assert trace.per_proc_by_kind(EventKind.COMPUTE) == {0: 2.0, 1: 1.0}
        assert trace.idle_ratio() == pytest.approx(1.0 / 4.0)
        assert trace.communication_seconds() == pytest.approx(0.1)

    def test_busy_fraction(self):
        trace = FarmTrace()
        trace.record(0, EventKind.COMPUTE, 0.0, 2.0)
        frac = trace.busy_fraction(4.0)
        assert frac == {0: 0.5}
        assert trace.busy_fraction(0.0) == {}

    def test_len(self):
        trace = FarmTrace()
        assert len(trace) == 0
        trace.record(0, EventKind.COMPUTE, 0.0, 1.0)
        assert len(trace) == 1


class TestHeterogeneousFarm:
    def test_speed_factors_scale_compute_time(self):
        farm = FarmModel(n_processors=2, speed_factors=(1.0, 0.5))
        base = farm.compute_seconds_on(0, 1000, 5)
        slow = farm.compute_seconds_on(1, 1000, 5)
        assert slow == pytest.approx(2 * base)

    def test_homogeneous_default(self):
        farm = FarmModel(n_processors=2)
        assert farm.compute_seconds_on(0, 100, 3) == farm.compute_seconds_on(1, 100, 3)
        assert farm.compute_seconds_on(0, 100, 3) == farm.compute_seconds(100, 3)

    def test_validation(self):
        with pytest.raises(ValueError, match="speed factors"):
            FarmModel(n_processors=3, speed_factors=(1.0, 0.5))
        with pytest.raises(ValueError, match="positive"):
            FarmModel(n_processors=2, speed_factors=(1.0, 0.0))

    def test_master_charges_heterogeneous_speeds(self, small_instance):
        """On a farm with one slow slave, that slave's compute interval in
        the trace is longer for the same evaluation budget."""
        from repro.core import Budget
        from repro.master import MasterConfig, MasterProcess
        from repro.parallel import SerialBackend

        farm = FarmModel(n_processors=3, speed_factors=(1.0, 0.25, 1.0))
        config = MasterConfig(n_slaves=2, n_rounds=1)
        backend = SerialBackend(2)
        master = MasterProcess(
            small_instance, config, backend, rng_seed=0, farm=farm
        )
        result = master.run(budget_per_slave=Budget(max_evaluations=5_000))
        per_proc = result.trace.per_proc_by_kind(EventKind.COMPUTE)
        # slave 1 runs at quarter speed: roughly 4x the compute time
        assert per_proc[1] > 2.0 * per_proc[0]
