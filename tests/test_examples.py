"""Smoke tests: every example script runs to completion.

Examples are part of the public deliverable; they must not rot.  Budgets
inside the scripts are modest, but to keep the test suite fast we execute
them in-process with a trimmed virtual-time budget via monkeypatched
defaults where the script exposes them.
"""

from __future__ import annotations

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "CTS2 best value" in out
        assert "improvement over greedy" in out

    def test_capital_budgeting(self, capsys):
        out = run_example("capital_budgeting.py", capsys)
        assert "exact optimum" in out
        assert "utilized" in out

    def test_resource_allocation(self, capsys):
        out = run_example("resource_allocation.py", capsys)
        assert "winner" in out
        assert "admits" in out

    def test_dynamic_tuning_demo(self, capsys):
        out = run_example("dynamic_tuning_demo.py", capsys)
        assert "final best" in out
        assert "round" in out

    def test_parallel_farm_sim(self, capsys):
        out = run_example("parallel_farm_sim.py", capsys)
        assert "barrier idle ratio" in out
        assert "CTS-async" in out
