"""Warm-runtime reset contract and warm-vs-cold golden equivalence.

DESIGN.md §5.4: a :class:`~repro.parallel.runtime.SlaveRuntime` rebinds one
resident :class:`~repro.core.tabu_search.TabuSearch` per task instead of
reconstructing it, and the resulting trajectory must be *bit-identical* to
a cold construction.  These tests pin that contract at every layer: the
individual ``reset()`` paths, ``TabuSearch.rebind``, the runtime itself,
and both backends across several consecutive rounds (including fork and
spawn multiprocessing contexts).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import Budget, Strategy, TabuSearchConfig, random_solution
from repro.core.kernels import EvalKernel
from repro.core.solution import SearchState
from repro.core.tabu_list import TabuList
from repro.core.tabu_search import TabuSearch
from repro.parallel import (
    MultiprocessingBackend,
    SerialBackend,
    SlaveRuntime,
    SlaveTask,
    execute_task,
)

CONFIG = TabuSearchConfig(nb_div=100)

#: Deliberately heterogeneous tasks: different strategies, seeds, starts
#: and budgets, so any state leaking across a rebind changes a trajectory.
TASK_SPECS = [
    (Strategy(8, 2, 10), 1000, 0, 1500),
    (Strategy(4, 1, 6), 2000, 1, 800),
    (Strategy(12, 3, 15), 3000, 2, 1200),
    (Strategy(8, 2, 10), 1000, 3, 1500),  # same params as task 0, later round
]


def make_task(instance, spec, slave_id=0, n_slaves=1):
    strategy, seed, round_index, evals = spec
    return SlaveTask(
        x_init=random_solution(instance, rng=seed % 7),
        strategy=strategy,
        budget=Budget(max_evaluations=evals),
        seed=seed,
        round_index=round_index,
        seq_id=round_index * n_slaves + slave_id,
    )


def round_tasks(instance, n, round_index, evals=900):
    return [
        SlaveTask(
            x_init=random_solution(instance, rng=10 * round_index + k),
            strategy=Strategy(6 + k, 1 + k % 3, 8 + 2 * k),
            budget=Budget(max_evaluations=evals),
            seed=500 + 97 * round_index + k,
            round_index=round_index,
            seq_id=round_index * n + k,
        )
        for k in range(n)
    ]


def report_key(r):
    return (
        r.slave_id,
        r.seq_id,
        r.best,
        tuple(r.elite),
        r.initial_value,
        r.evaluations,
        r.moves,
    )


# --------------------------------------------------------------------- #
# Reset-contract units
# --------------------------------------------------------------------- #
class TestResetContract:
    def test_tabu_list_reset_matches_fresh(self):
        tl = TabuList(10, tenure=3)
        for _ in range(5):
            tl.tick()
        tl.make_tabu(np.array([1, 4, 7]))
        assert tl.is_tabu(4)
        tl.reset(tenure=5)
        fresh = TabuList(10, tenure=5)
        assert tl.clock == fresh.clock == 0
        assert tl.tenure == fresh.tenure == 5
        np.testing.assert_array_equal(tl._expiry, fresh._expiry)
        assert not any(tl.is_tabu(i) for i in range(10))

    def test_tabu_list_reset_keeps_tenure_when_omitted(self):
        tl = TabuList(4, tenure=7)
        tl.make_tabu(0)
        tl.reset()
        assert tl.tenure == 7 and tl.clock == 0 and not tl.is_tabu(0)

    def test_search_state_reset_is_empty_state(self, small_instance):
        state = SearchState.empty(small_instance)
        for j in (0, 3, 5):
            state.add(j)
        assert state.value > 0
        state.reset()
        fresh = SearchState.empty(small_instance)
        assert state.value == fresh.value == 0.0
        np.testing.assert_array_equal(state.packed_items(), fresh.packed_items())
        assert state.snapshot() == fresh.snapshot()

    def test_kernel_reset_clears_exclusions(self, small_instance):
        kernel = EvalKernel(small_instance)
        baseline = kernel.fitting_items().copy()
        kernel.set_exclusions([0, 1, 2])
        assert kernel.fitting_items().size < baseline.size
        kernel.reset(None)
        np.testing.assert_array_equal(kernel.fitting_items(), baseline)

    def test_rebind_matches_fresh_construction(self, small_instance):
        strategy, seed, _, evals = TASK_SPECS[0]
        x0 = random_solution(small_instance, rng=9)
        budget = Budget(max_evaluations=evals)

        fresh = TabuSearch(small_instance, strategy, config=CONFIG, rng=seed)
        want = fresh.run(x_init=x0, budget=budget)

        warm = TabuSearch(small_instance, Strategy(3, 1, 4), config=CONFIG, rng=7)
        warm.run(x_init=random_solution(small_instance, rng=2), budget=Budget(max_evaluations=600))
        got = warm.rebind(strategy, seed).run(x_init=x0, budget=budget)

        assert got.best == want.best
        assert tuple(got.elite) == tuple(want.elite)
        assert got.evaluations == want.evaluations
        assert got.moves == want.moves
        assert got.initial_value == want.initial_value


# --------------------------------------------------------------------- #
# SlaveRuntime warm == cold
# --------------------------------------------------------------------- #
class TestSlaveRuntime:
    def test_warm_reports_equal_cold_across_tasks(self, small_instance):
        runtime = SlaveRuntime(small_instance, CONFIG, slave_id=0)
        for spec in TASK_SPECS:
            task = make_task(small_instance, spec)
            warm = runtime.execute(task)
            cold = execute_task(small_instance, CONFIG, task, slave_id=0)
            assert report_key(warm) == report_key(cold)
        assert runtime.tasks_served == len(TASK_SPECS)

    def test_arena_nbytes_positive(self, small_instance):
        runtime = SlaveRuntime(small_instance, CONFIG, slave_id=3)
        assert runtime.arena_nbytes() > 0
        assert runtime.slave_id == 3

    def test_idle_telemetry_counts_gaps_between_tasks(self, small_instance):
        runtime = SlaveRuntime(small_instance, CONFIG, slave_id=0)
        assert runtime.total_idle_s == 0.0

        runtime.execute(make_task(small_instance, TASK_SPECS[0]))
        # The first task has no predecessor: no starvation charged yet.
        assert runtime.last_idle_s == 0.0
        assert runtime.total_idle_s == 0.0

        time.sleep(0.02)
        runtime.execute(make_task(small_instance, TASK_SPECS[1]))
        assert runtime.last_idle_s >= 0.02
        assert runtime.total_idle_s == pytest.approx(runtime.last_idle_s)

        runtime.execute(make_task(small_instance, TASK_SPECS[2]))
        assert runtime.total_idle_s > runtime.last_idle_s


# --------------------------------------------------------------------- #
# Backend-level golden equivalence (>= 3 consecutive rounds)
# --------------------------------------------------------------------- #
N_ROUNDS = 3
N_SLAVES = 2


class TestBackendWarmEqualsCold:
    def test_serial_backend(self, small_instance):
        warm = SerialBackend(N_SLAVES, warm_runtime=True)
        cold = SerialBackend(N_SLAVES, warm_runtime=False)
        warm.start(small_instance, CONFIG)
        cold.start(small_instance, CONFIG)
        assert warm._runtimes and not cold._runtimes
        for r in range(N_ROUNDS):
            tasks = round_tasks(small_instance, N_SLAVES, r)
            a = warm.run_round(tasks)
            b = cold.run_round(tasks)
            assert [report_key(x) for x in a] == [report_key(x) for x in b]
        assert all(rt.tasks_served == N_ROUNDS for rt in warm._runtimes)

    @pytest.mark.slow
    @pytest.mark.parametrize("context", ["fork", "spawn"])
    def test_multiprocessing_backend(self, small_instance, context):
        keys = {}
        for warm_runtime in (True, False):
            backend = MultiprocessingBackend(
                N_SLAVES, mp_context=context, warm_runtime=warm_runtime
            )
            with backend:
                backend.start(small_instance, CONFIG)
                keys[warm_runtime] = [
                    [report_key(x) for x in backend.run_round(
                        round_tasks(small_instance, N_SLAVES, r, evals=600)
                    )]
                    for r in range(N_ROUNDS)
                ]
        assert keys[True] == keys[False]
        assert all(len(per_round) == N_SLAVES for per_round in keys[True])
