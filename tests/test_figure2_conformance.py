"""Conformance of :class:`MasterProcess` to the paper's Figure 2.

The master must: distribute the problem data once, then per search
iteration run SGP and ISP, send tasks, and receive reports — in that order.
"""

from __future__ import annotations

from repro.core import Budget
from repro.master import MasterConfig, MasterProcess
from repro.parallel import SerialBackend


def run_master(instance, *, communicate=True, adapt=True, rounds=3, slaves=3):
    config = MasterConfig(
        n_slaves=slaves,
        n_rounds=rounds,
        communicate=communicate,
        adapt_strategies=adapt,
    )
    backend = SerialBackend(slaves)
    master = MasterProcess(instance, config, backend, rng_seed=0)
    trace = master.enable_phase_trace()
    result = master.run(budget_per_slave=Budget(max_evaluations=9_000))
    return trace, result


class TestPhaseOrder:
    def test_problem_distributed_first(self, small_instance):
        trace, _ = run_master(small_instance)
        assert trace[0] == "distribute_problem"
        assert trace.count("distribute_problem") == 1

    def test_rounds_follow_send_receive_sgp_isp_cycle(self, small_instance):
        trace, _ = run_master(small_instance, rounds=3)
        body = trace[1:]
        # Per round: send_tasks, receive_reports, sgp, isp
        expected_round = ["send_tasks", "receive_reports", "sgp", "isp"]
        assert body == expected_round * 3

    def test_its_skips_sgp_and_isp(self, small_instance):
        trace, _ = run_master(small_instance, communicate=False, adapt=False)
        assert "sgp" not in trace
        assert "isp" not in trace
        assert trace[1:] == ["send_tasks", "receive_reports"] * 3

    def test_cts1_runs_isp_only(self, small_instance):
        trace, _ = run_master(small_instance, communicate=True, adapt=False)
        assert "sgp" not in trace
        assert trace.count("isp") == 3

    def test_receive_always_follows_send(self, small_instance):
        trace, _ = run_master(small_instance)
        sends = [i for i, t in enumerate(trace) if t == "send_tasks"]
        recvs = [i for i, t in enumerate(trace) if t == "receive_reports"]
        assert len(sends) == len(recvs)
        assert all(r == s + 1 for s, r in zip(sends, recvs))


class TestMasterResults:
    def test_rounds_recorded(self, small_instance):
        _, result = run_master(small_instance, rounds=4)
        assert result.n_rounds == 4
        assert [r.round_index for r in result.rounds] == [0, 1, 2, 3]

    def test_global_best_monotone_across_rounds(self, small_instance):
        _, result = run_master(small_instance, rounds=4)
        values = [r.best_value for r in result.rounds]
        assert values == sorted(values)

    def test_best_is_feasible(self, small_instance):
        _, result = run_master(small_instance)
        assert result.best.is_feasible(small_instance)

    def test_variant_name_derivation(self, small_instance):
        _, r_cts2 = run_master(small_instance, communicate=True, adapt=True)
        _, r_cts1 = run_master(small_instance, communicate=True, adapt=False)
        _, r_its = run_master(small_instance, communicate=False, adapt=False)
        assert (r_cts2.variant, r_cts1.variant, r_its.variant) == (
            "CTS2",
            "CTS1",
            "ITS",
        )
