"""Cross-module integration tests: search quality and end-to-end claims."""

from __future__ import annotations

import pytest

from repro.exact import branch_and_bound
from repro.instances import correlated_instance, fp57_instance, uncorrelated_instance
from repro.master import MasterConfig
from repro.parallel import MultiprocessingBackend
from repro.variants import solve_cts2, solve_its, solve_seq


class TestReachesOptimum:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_cts2_finds_proven_optimum_small(self, seed):
        """E1-style check: the full algorithm closes small instances."""
        inst = uncorrelated_instance(5, 25, rng=300 + seed)
        opt = branch_and_bound(inst)
        assert opt.proven
        result = solve_cts2(
            inst, n_slaves=4, n_rounds=4, rng_seed=seed, max_evaluations=60_000
        )
        assert result.best.value == pytest.approx(opt.value)

    def test_cts2_closes_fp_sample(self):
        """A sample of the FP-57 suite is solved to proven optimality."""
        for index in (0, 7, 21, 35, 50):
            inst = fp57_instance(index, with_optimum=True)
            best = -float("inf")
            # Two independent seeds — restarting on a miss is standard
            # practice and keeps the check robust to seed noise.
            for seed in (0, 1):
                result = solve_cts2(
                    inst,
                    n_slaves=8,
                    n_rounds=8,
                    rng_seed=seed,
                    max_evaluations=200_000,
                    target_value=inst.optimum,
                )
                best = max(best, result.best.value)
                if best >= inst.optimum:
                    break
            gap = inst.gap_to_reference(best)
            assert gap is not None and gap <= 0.0 + 1e-9, (
                f"{inst.name}: got {best}, optimum {inst.optimum}"
            )


class TestCooperationHelps:
    def test_parallel_beats_or_ties_sequential_in_equal_time(self):
        """Table 2's headline shape, averaged over seeds on one hard
        instance: CTS2 >= SEQ in equal virtual time."""
        inst = correlated_instance(10, 120, rng=77, name="hard")
        evals = 40_000
        seq_vals = []
        cts_vals = []
        for seed in range(3):
            seq_vals.append(
                solve_seq(inst, rng_seed=seed, max_evaluations=evals).best.value
            )
            cts_vals.append(
                solve_cts2(
                    inst,
                    n_slaves=6,
                    n_rounds=4,
                    rng_seed=seed,
                    max_evaluations=evals,
                ).best.value
            )
        assert sum(cts_vals) >= sum(seq_vals)

    def test_its_runs_p_times_the_work(self, small_instance):
        seq = solve_seq(small_instance, rng_seed=0, max_evaluations=20_000)
        its = solve_its(
            small_instance, n_slaves=4, n_rounds=2, rng_seed=0, max_evaluations=20_000
        )
        assert its.total_evaluations > 3 * seq.total_evaluations


@pytest.mark.slow
class TestBackendsAgreeEndToEnd:
    def test_cts2_identical_across_backends(self, small_instance):
        """The full master loop produces the same answer on the serial and
        multiprocessing backends for the same seed."""
        config = MasterConfig(n_slaves=2, n_rounds=2)
        serial = solve_cts2(
            small_instance,
            rng_seed=13,
            max_evaluations=10_000,
            master_config=config,
        )
        with MultiprocessingBackend(2) as backend:
            parallel = solve_cts2(
                small_instance,
                rng_seed=13,
                max_evaluations=10_000,
                master_config=config,
                backend=backend,
            )
        assert serial.best == parallel.best
        assert serial.total_evaluations == parallel.total_evaluations


class TestBudgetHonesty:
    def test_fixed_time_runs_report_comparable_virtual_times(self, small_instance):
        """All variants handed the same virtual-seconds budget must report
        virtual makespans within a small factor of each other — the 'fixed
        execution time' contract behind Table 2."""
        budget = 0.03
        times = []
        for solver, kw in [
            (solve_seq, {}),
            (solve_its, dict(n_slaves=3, n_rounds=2)),
            (solve_cts2, dict(n_slaves=3, n_rounds=2)),
        ]:
            result = solver(
                small_instance, rng_seed=0, virtual_seconds=budget, **kw
            )
            times.append(result.virtual_seconds)
        assert max(times) <= 2.0 * min(times)
