"""Property and stress tests for the shared-memory transport (ISSUE-7).

Three layers, matching :mod:`repro.parallel.shm`:

* **ShmRing** — frame round-trips at arbitrary sizes (1..4096 B),
  wrap-around at *every* physical offset, and seqlock torn-read detection
  (stuck-odd ``wseq``, out-of-sequence frame numbers, impossible lengths);
* **WireCodec** — property round-trips for tasks, reports and their
  batched envelopes, including every budget-flag combination;
* **ShmComm** — a live master↔worker endpoint pair over a real pipe
  doorbell, the tiny-ring overflow → in-band fallback, and a
  cross-process writer/reader stress run whose pacing is driven by a
  PR-2 chaos fault plan.

Everything here is skipped wholesale on hosts without working POSIX
shared memory (``shm_available()``), where the backend auto-degrades to
pipes and the differential suite still covers the transport contract.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import random
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.solution import Solution
from repro.core.strategy import Strategy
from repro.core.termination import Budget
from repro.parallel import shm as shm_mod
from repro.parallel.comm import PipeComm
from repro.parallel.faults import FaultPlan
from repro.parallel.message import RESULT_TAG, TASK_TAG, SlaveReport, SlaveTask
from repro.parallel.shm import (
    FrameTooLarge,
    RingEmpty,
    RingFull,
    ShmComm,
    ShmRing,
    TornFrameError,
    WireCodec,
    resolve_transport,
    shm_available,
)

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable on this host"
)


@contextlib.contextmanager
def fresh_ring(capacity: int, *, spin: int = 10_000):
    ring = ShmRing.create(capacity, spin=spin)
    try:
        yield ring
    finally:
        ring.close()
        ring.unlink()


# ---------------------------------------------------------------------- #
# Ring: round-trips and wrap-around
# ---------------------------------------------------------------------- #


class TestRingRoundTrip:
    @given(st.lists(st.binary(min_size=1, max_size=4096), min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_frames_round_trip_in_order(self, payloads):
        # Write/read interleaved so arbitrarily long streams fit any ring.
        with fresh_ring(1 << 13) as ring:
            for payload in payloads:
                fseq_before = ring._get(shm_mod._OFF_FRAMES_WRITTEN)
                assert ring.write(payload) == (fseq_before + 1) & 0xFFFF_FFFF
                assert ring.poll()
                assert ring.read() == payload
            assert not ring.poll()

    @given(
        st.lists(st.binary(min_size=1, max_size=600), min_size=1, max_size=8),
        st.integers(0, 5),
    )
    @settings(max_examples=60, deadline=None)
    def test_queued_frames_preserve_fifo_order(self, payloads, extra_reads):
        with fresh_ring(1 << 13) as ring:
            for payload in payloads:
                ring.write(payload)
            assert ring.used() >= sum(len(p) for p in payloads)
            for payload in payloads:
                assert ring.read() == payload
            for _ in range(extra_reads):
                with pytest.raises(RingEmpty):
                    ring.read()

    def test_wrap_around_at_every_physical_offset(self):
        # Filler frames are 9 bytes (8-byte header + 1 payload byte); 9 is
        # coprime with the 64-byte capacity, so j write/read pairs park the
        # cursors at physical offset (9*j) % 64 — all 64 offsets in turn.
        capacity = 64
        boundary_payload = bytes(range(48))
        for j in range(capacity):
            with fresh_ring(capacity) as ring:
                for i in range(j):
                    ring.write(bytes([i & 0xFF]))
                    ring.read()
                assert ring._get(shm_mod._OFF_WIDX) == 9 * j
                ring.write(boundary_payload)
                assert ring.read() == boundary_payload
                assert ring.free() == capacity

    def test_cursors_are_logical_and_monotone(self):
        with fresh_ring(64) as ring:
            for _ in range(100):  # total bytes far beyond capacity
                ring.write(b"x" * 20)
                ring.read()
            assert ring._get(shm_mod._OFF_WIDX) == 100 * 28
            assert ring._get(shm_mod._OFF_FRAMES_WRITTEN) == 100
            assert ring._get(shm_mod._OFF_FRAMES_READ) == 100


class TestRingCapacity:
    def test_full_ring_raises_and_recovers(self):
        with fresh_ring(64) as ring:
            ring.write(b"a" * 40)
            with pytest.raises(RingFull):
                ring.write(b"b" * 20)
            assert ring.try_write(b"b" * 20) is None
            assert ring.read() == b"a" * 40
            ring.write(b"b" * 20)  # freed space is reusable
            assert ring.read() == b"b" * 20

    def test_oversized_frame_is_rejected_outright(self):
        with fresh_ring(64) as ring:
            with pytest.raises(FrameTooLarge):
                ring.write(b"x" * 64)

    def test_empty_ring_raises_ring_empty(self):
        with fresh_ring(64) as ring:
            assert not ring.poll()
            with pytest.raises(RingEmpty):
                ring.read()


# ---------------------------------------------------------------------- #
# Ring: seqlock torn-read detection
# ---------------------------------------------------------------------- #


class TestSeqlockTornReads:
    def test_stuck_odd_wseq_raises_torn_frame(self):
        # A writer that died mid-frame leaves wseq odd forever; the reader
        # must give up after its spin budget, not return garbage.
        with fresh_ring(256, spin=50) as ring:
            ring.write(b"payload")
            ring._set(shm_mod._OFF_WSEQ, ring._get(shm_mod._OFF_WSEQ) + 1)
            with pytest.raises(TornFrameError, match="seqlock"):
                ring.read()

    def test_out_of_sequence_frame_number_raises(self):
        with fresh_ring(256) as ring:
            ring.write(b"payload")
            # Corrupt the frame's sequence number in place (physical offset
            # 0 on a fresh ring: header bytes [4:8] after the length word).
            lo = shm_mod._HEADER_NBYTES + 4
            ring._shm.buf[lo : lo + 4] = (99).to_bytes(4, "little")
            with pytest.raises(TornFrameError, match="sequence"):
                ring.read()

    def test_impossible_frame_length_raises(self):
        with fresh_ring(256) as ring:
            ring.write(b"payload")
            lo = shm_mod._HEADER_NBYTES  # length word of the first frame
            ring._shm.buf[lo : lo + 4] = (10_000).to_bytes(4, "little")
            with pytest.raises(TornFrameError, match="payload bytes"):
                ring.read()

    def test_partial_frame_header_raises(self):
        with fresh_ring(256) as ring:
            ring._set(shm_mod._OFF_WIDX, 4)  # fewer bytes than a header
            with pytest.raises(TornFrameError, match="partial"):
                ring.read()

    def test_poll_reports_torn_ring_as_readable(self):
        # poll() must not swallow the diagnosis: it reports "readable" and
        # lets read() raise.
        with fresh_ring(256, spin=50) as ring:
            ring._set(shm_mod._OFF_WSEQ, 1)
            ring._set(shm_mod._OFF_WIDX, 20)
            assert ring.poll()
            with pytest.raises(TornFrameError):
                ring.read()

    def test_attach_rejects_foreign_segment(self):
        from multiprocessing import shared_memory

        seg = shared_memory.SharedMemory(create=True, size=128)
        try:
            with pytest.raises(ValueError, match="not a ShmRing"):
                ShmRing.attach(seg.name)
        finally:
            seg.close()
            seg.unlink()


# ---------------------------------------------------------------------- #
# Codec properties
# ---------------------------------------------------------------------- #


def _random_solution(rnd: random.Random, n_items: int) -> Solution:
    x = np.array([rnd.randint(0, 1) for _ in range(n_items)], dtype=np.int8)
    return Solution.trusted(x, float(rnd.randint(0, 10**6)))


def _random_task(rnd: random.Random, n_items: int) -> SlaveTask:
    return SlaveTask(
        x_init=_random_solution(rnd, n_items),
        strategy=Strategy(rnd.randint(1, 50), rnd.randint(1, 20), rnd.randint(1, 99)),
        budget=Budget(
            max_evaluations=rnd.choice([None, rnd.randint(0, 2**40)]),
            max_moves=rnd.choice([None, rnd.randint(0, 2**40)]),
            wall_seconds=rnd.choice([None, rnd.random() * 100]),
            target_value=rnd.choice([None, float(rnd.randint(0, 10**6))]),
        ),
        seed=rnd.randint(-(2**62), 2**62),
        round_index=rnd.randint(0, 10_000),
        seq_id=rnd.randint(0, 2**40),
    )


def _random_report(rnd: random.Random, n_items: int) -> SlaveReport:
    return SlaveReport(
        slave_id=rnd.randint(0, 1000),
        best=_random_solution(rnd, n_items),
        elite=[_random_solution(rnd, n_items) for _ in range(rnd.randint(0, 5))],
        initial_value=float(rnd.randint(0, 10**6)),
        evaluations=rnd.randint(0, 2**40),
        moves=rnd.randint(0, 2**40),
        round_index=rnd.randint(0, 10_000),
        seq_id=rnd.randint(0, 2**40),
    )


def _assert_tasks_equal(a: SlaveTask, b: SlaveTask) -> None:
    assert np.array_equal(a.x_init.x, b.x_init.x)
    assert a.x_init.value == b.x_init.value
    assert a.strategy.as_tuple() == b.strategy.as_tuple()
    assert (
        a.budget.max_evaluations,
        a.budget.max_moves,
        a.budget.wall_seconds,
        a.budget.target_value,
    ) == (
        b.budget.max_evaluations,
        b.budget.max_moves,
        b.budget.wall_seconds,
        b.budget.target_value,
    )
    assert (a.seed, a.round_index, a.seq_id) == (b.seed, b.round_index, b.seq_id)


def _assert_reports_equal(a: SlaveReport, b: SlaveReport) -> None:
    assert a.slave_id == b.slave_id
    assert np.array_equal(a.best.x, b.best.x)
    assert a.best.value == b.best.value
    assert len(a.elite) == len(b.elite)
    for ea, eb in zip(a.elite, b.elite):
        assert np.array_equal(ea.x, eb.x)
        assert ea.value == eb.value
    assert a.initial_value == b.initial_value
    assert (a.evaluations, a.moves) == (b.evaluations, b.moves)
    assert (a.round_index, a.seq_id) == (b.round_index, b.seq_id)


class TestWireCodec:
    @given(st.integers(1, 300), st.integers(0, 2**32))
    @settings(max_examples=60, deadline=None)
    def test_task_round_trip(self, n_items, seed):
        rnd = random.Random(seed)
        codec = WireCodec(n_items)
        task = _random_task(rnd, n_items)
        frame = codec.encode_task(task)
        _assert_tasks_equal(codec.decode_task(frame), task)
        assert codec.decode(frame).seq_id == task.seq_id  # kind dispatch

    @given(st.integers(1, 300), st.integers(0, 2**32))
    @settings(max_examples=60, deadline=None)
    def test_report_round_trip(self, n_items, seed):
        rnd = random.Random(seed)
        codec = WireCodec(n_items)
        report = _random_report(rnd, n_items)
        frame = codec.encode_report(report)
        _assert_reports_equal(codec.decode_report(frame), report)

    @given(st.integers(1, 120), st.integers(1, 6), st.integers(0, 2**32))
    @settings(max_examples=40, deadline=None)
    def test_batch_round_trips_and_size_ledger(self, n_items, count, seed):
        rnd = random.Random(seed)
        codec = WireCodec(n_items)
        entries = [(k, _random_task(rnd, n_items)) for k in range(count)]
        frame, sizes = codec.encode_task_batch(entries)
        decoded, entry_sizes = codec.decode_task_batch(frame)
        assert [k for k, _ in decoded] == [k for k, _ in entries]
        for (_, a), (_, b) in zip(entries, decoded):
            _assert_tasks_equal(b, a)
        # Per-entry sizes must equal the standalone frame lengths — the
        # cross-K byte-ledger contract.
        assert entry_sizes == [len(codec.encode_task(t)) for _, t in entries]
        assert sizes == {k: len(codec.encode_task(t)) for k, t in entries}

        reports = [_random_report(rnd, n_items) for _ in range(count)]
        rframe, rsizes = codec.encode_report_batch(reports)
        rdecoded, rentry_sizes = codec.decode_report_batch(rframe)
        for a, b in zip(reports, rdecoded):
            _assert_reports_equal(b, a)
        assert rentry_sizes == rsizes
        assert rsizes == [len(codec.encode_report(r)) for r in reports]

    def test_kind_mismatch_is_loud(self):
        codec = WireCodec(10)
        rnd = random.Random(0)
        task_frame = codec.encode_task(_random_task(rnd, 10))
        with pytest.raises(ValueError, match="not a report frame"):
            codec.decode_report(task_frame)
        with pytest.raises(ValueError, match="unknown frame kind"):
            codec.decode(bytes([99]) + task_frame[1:])


# ---------------------------------------------------------------------- #
# ShmComm endpoint pair
# ---------------------------------------------------------------------- #


@contextlib.contextmanager
def comm_pair(n_items: int, ring_capacity: int = 1 << 13):
    """Master/worker ShmComm pair over a real pipe + two rings."""
    parent_conn, child_conn = multiprocessing.Pipe()
    task_ring = ShmRing.create(ring_capacity)
    report_ring = ShmRing.create(ring_capacity)
    master = ShmComm(
        PipeComm(parent_conn),
        WireCodec(n_items),
        send_ring=task_ring,
        recv_ring=report_ring,
    )
    worker = ShmComm(
        PipeComm(child_conn),
        WireCodec(n_items),
        send_ring=report_ring,
        recv_ring=task_ring,
    )
    try:
        yield master, worker
    finally:
        master.close()
        worker.close()
        task_ring.unlink()
        report_ring.unlink()


class TestShmComm:
    def test_task_and_report_travel_through_rings_only(self):
        rnd = random.Random(7)
        with comm_pair(40) as (master, worker):
            task = _random_task(rnd, 40)
            master.send(task, tag=TASK_TAG)
            tag, got = worker.recv_message(timeout=5.0)
            assert tag == TASK_TAG
            _assert_tasks_equal(got, task)

            report = _random_report(rnd, 40)
            worker.send(report, tag=RESULT_TAG)
            got_report = master.recv(tag=RESULT_TAG, timeout=5.0)
            _assert_reports_equal(got_report, report)

            # Zero payload bytes crossed the pipe; ledgers agree end-to-end.
            assert master.pipe_payload_bytes == 0
            assert worker.pipe_payload_bytes == 0
            assert master.ring_overflows == 0
            assert master.bytes_sent == worker.bytes_received
            assert worker.bytes_sent == master.bytes_received

    def test_batched_send_charges_per_entry_sizes(self):
        rnd = random.Random(11)
        with comm_pair(25) as (master, worker):
            entries = [(k, _random_task(rnd, 25)) for k in range(4)]
            sizes = master.send_tasks(entries)
            tag, got = worker.recv_message(timeout=5.0)
            assert tag == TASK_TAG
            assert [k for k, _ in got] == [0, 1, 2, 3]
            assert worker.last_entry_nbytes == [sizes[k] for k, _ in entries]
            assert master.bytes_sent == sum(sizes.values())
            assert worker.bytes_received == sum(sizes.values())

    def test_ring_overflow_falls_back_in_band(self):
        rnd = random.Random(13)
        with comm_pair(600, ring_capacity=80) as (master, worker):
            # A 600-item report cannot fit an 80-byte ring: payload must
            # ride the pipe, and the message must still decode identically.
            report = _random_report(rnd, 600)
            worker.send(report, tag=RESULT_TAG)
            got = master.recv(tag=RESULT_TAG, timeout=5.0)
            _assert_reports_equal(got, report)
            assert worker.ring_overflows == 1
            assert worker.pipe_payload_bytes > 0
            # The byte ledger is carrier-independent: same charge as shm.
            assert worker.bytes_sent == master.bytes_received

    def test_ringless_endpoint_is_plain_pipe_transport(self):
        parent_conn, child_conn = multiprocessing.Pipe()
        a = ShmComm(PipeComm(parent_conn), WireCodec(10))
        b = ShmComm(PipeComm(child_conn), WireCodec(10))
        try:
            assert a.transport == "pipe"
            task = _random_task(random.Random(3), 10)
            a.send(task, tag=TASK_TAG)
            tag, got = b.recv_message(timeout=5.0)
            assert tag == TASK_TAG
            _assert_tasks_equal(got, task)
            assert a.pipe_payload_bytes == a.bytes_sent > 0
        finally:
            a.close()
            b.close()

    def test_control_messages_keep_the_pickled_path(self):
        with comm_pair(10) as (master, worker):
            master.send(("instance", "config"), tag=5)
            tag, body = worker.recv_message(timeout=5.0)
            assert tag == 5
            assert body == ("instance", "config")
            assert master.bytes_sent > 0


# ---------------------------------------------------------------------- #
# Cross-process writer/reader stress (chaos-paced)
# ---------------------------------------------------------------------- #

_STRESS_FRAMES = 400
_STRESS_SEED = 20260808


def _stress_payloads(n_frames: int) -> list[bytes]:
    rnd = random.Random(_STRESS_SEED)
    return [rnd.randbytes(rnd.randint(1, 200)) for _ in range(n_frames)]


def _stress_writer(ring_name: str, n_frames: int, plan_seed: int) -> None:
    """Child: write the seeded frame stream with chaos-plan pacing."""
    plan = FaultPlan.from_seed(
        plan_seed, n_slaves=8, n_rounds=n_frames // 8 + 1,
        delay_rate=0.3, straggle_rate=0.3, duplicate_rate=0.2,
    )
    ring = ShmRing.attach(ring_name)
    try:
        for i, payload in enumerate(_stress_payloads(n_frames)):
            round_index, slave_id = divmod(i, 8)
            if plan.delays_report(round_index, slave_id):
                time.sleep(0.002)  # jitter the seqlock window
            if plan.straggle_factor(round_index, slave_id) > 1.0:
                time.sleep(0.001)
            while ring.try_write(payload) is None:
                time.sleep(0.0005)  # reader backpressure
    finally:
        ring.close()


class TestCrossProcessStress:
    def test_chaos_paced_writer_reader_stream(self):
        """A real second process writes 400 frames through a small ring.

        The writer's pacing comes from a PR-2 chaos plan (delays and
        straggles land mid-stream, duplicates stress the backpressure
        loop); the reader validates every frame's content *and* order, so
        any torn read, lost wakeup or cursor race fails loudly.
        """
        expected = _stress_payloads(_STRESS_FRAMES)
        ring = ShmRing.create(1 << 11)  # small: forces many wrap-arounds
        proc = multiprocessing.get_context("fork").Process(
            target=_stress_writer, args=(ring.name, _STRESS_FRAMES, 42)
        )
        proc.start()
        got: list[bytes] = []
        deadline = time.monotonic() + 60.0
        try:
            while len(got) < _STRESS_FRAMES:
                assert time.monotonic() < deadline, (
                    f"stress reader stalled at frame {len(got)}"
                )
                try:
                    got.append(ring.read())
                except RingEmpty:
                    time.sleep(0.0002)
            assert got == expected
            assert ring._get(shm_mod._OFF_FRAMES_READ) == _STRESS_FRAMES
        finally:
            proc.join(timeout=10.0)
            assert proc.exitcode == 0
            ring.close()
            ring.unlink()


# ---------------------------------------------------------------------- #
# Transport selection
# ---------------------------------------------------------------------- #


class TestTransportSelection:
    def test_explicit_choice_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRANSPORT", "pipe")
        assert resolve_transport("shm") == "shm"
        assert resolve_transport("pipe") == "pipe"

    def test_env_choice_applies(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRANSPORT", "pipe")
        assert resolve_transport() == "pipe"
        monkeypatch.setenv("REPRO_TRANSPORT", "SHM")  # case-insensitive
        assert resolve_transport() == "shm"

    def test_auto_prefers_shm_where_available(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRANSPORT", raising=False)
        assert resolve_transport() == "shm"

    def test_unknown_transport_is_rejected(self):
        with pytest.raises(ValueError, match="unknown transport"):
            resolve_transport("carrier-pigeon")

    def test_shm_request_degrades_without_posix_shm(self, monkeypatch):
        monkeypatch.setattr(shm_mod, "_AVAILABLE", False)
        assert resolve_transport("shm") == "pipe"
        assert resolve_transport() == "pipe"
