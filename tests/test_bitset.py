"""Tests for the packed-bitset codec layer (``repro.core.bitset``) and the
exactness contract of everything built on it: codec round-trips (Hypothesis),
the prefix-bitmask fitting scan vs. the generic float path, the word-level
swap intensification, the packed Hamming/dispersion statistics, the
:class:`Solution` wire codec, and the ``set_exclusions`` no-op short-circuit.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    MKPInstance,
    MoveEngine,
    SearchState,
    Solution,
    TabuList,
    greedy_solution,
    mean_pairwise_distance,
    set_wire_codec,
    wire_codec_enabled,
)
from repro.core.bitset import (
    bytes_to_words,
    hamming_words,
    mean_pairwise_hamming,
    n_words,
    pack_bits,
    pack_rows,
    pairwise_hamming,
    popcount,
    unpack_bits,
    words_to_bytes,
)
from repro.core.intensification import IntensificationStats, swap_intensification
from repro.core.strategy import Strategy
from repro.core.termination import Budget
from repro.parallel.message import SlaveReport, SlaveTask

#: Word-boundary sizes the ISSUE pins: single word, 63/64/65 edges, GK-scale.
BOUNDARY_SIZES = (1, 63, 64, 65, 500)


def bit_vectors(n: int):
    return st.lists(st.integers(0, 1), min_size=n, max_size=n).map(
        lambda bits: np.asarray(bits, dtype=np.int8)
    )


def random_integer_instance(rng: np.random.Generator) -> MKPInstance:
    m = int(rng.integers(2, 8))
    n = int(rng.integers(5, 90))
    weights = rng.integers(1, 50, size=(m, n)).astype(float)
    capacities = (
        weights.sum(axis=1) * rng.uniform(0.3, 0.7, m)
    ).astype(int).astype(float) + 1
    profits = rng.integers(1, 100, size=n).astype(float)
    return MKPInstance(weights, capacities, profits)


# --------------------------------------------------------------------------- #
# Codec round-trips (Hypothesis, satellite task)
# --------------------------------------------------------------------------- #
class TestCodecRoundTrip:
    @pytest.mark.parametrize("n", BOUNDARY_SIZES)
    def test_pack_unpack_roundtrip(self, n):
        @given(bit_vectors(n))
        @settings(max_examples=25, deadline=None)
        def check(x):
            words = pack_bits(x)
            assert words.shape == (n_words(n),)
            assert np.array_equal(unpack_bits(words, n), x)

        check()

    @pytest.mark.parametrize("n", BOUNDARY_SIZES)
    def test_popcount_matches_sum(self, n):
        @given(bit_vectors(n))
        @settings(max_examples=25, deadline=None)
        def check(x):
            assert popcount(pack_bits(x)) == int(np.sum(x))

        check()

    @pytest.mark.parametrize("n", BOUNDARY_SIZES)
    def test_hamming_matches_elementwise(self, n):
        @given(bit_vectors(n), bit_vectors(n))
        @settings(max_examples=25, deadline=None)
        def check(a, b):
            expected = int(np.count_nonzero(a != b))
            assert hamming_words(pack_bits(a), pack_bits(b)) == expected

        check()

    @pytest.mark.parametrize("n", BOUNDARY_SIZES)
    def test_bytes_frame_roundtrip(self, n):
        rng = np.random.default_rng(n)
        x = (rng.random(n) < 0.5).astype(np.int8)
        words = pack_bits(x)
        frame = words_to_bytes(words, n)
        assert len(frame) == (n + 7) // 8
        assert np.array_equal(bytes_to_words(frame, n), words)

    def test_bytes_frame_length_checked(self):
        with pytest.raises(ValueError, match="payload bytes"):
            bytes_to_words(b"\x00" * 3, 500)

    def test_tail_bits_are_zero(self):
        # Codec contract: bits beyond n stay zero, so popcounts need no mask.
        x = np.ones(65, dtype=np.int8)
        words = pack_bits(x)
        assert words[1] == np.uint64(1)
        assert popcount(words) == 65


class TestPairwiseHamming:
    def test_matrix_matches_reference(self):
        rng = np.random.default_rng(3)
        rows = (rng.random((7, 130)) < 0.4).astype(np.int8)
        packed = pack_rows(rows)
        got = pairwise_hamming(packed)
        for i in range(7):
            for j in range(7):
                assert got[i, j] == int(np.count_nonzero(rows[i] != rows[j]))

    def test_mean_matches_gram_formula(self):
        rng = np.random.default_rng(4)
        rows = (rng.random((6, 500)) < 0.3).astype(np.int8)
        xs = rows.astype(np.int64)
        gram = xs @ xs.T
        ones = xs.sum(axis=1)
        expected = int((ones[:, None] + ones[None, :] - 2 * gram).sum()) / (6 * 5)
        assert mean_pairwise_hamming(pack_rows(rows)) == expected

    def test_solution_layer_uses_identical_statistic(self):
        rng = np.random.default_rng(5)
        sols = [
            Solution((rng.random(500) < 0.3).astype(np.int8), float(k))
            for k in range(5)
        ]
        xs = np.stack([s.x for s in sols]).astype(np.int64)
        gram = xs @ xs.T
        ones = xs.sum(axis=1)
        expected = int((ones[:, None] + ones[None, :] - 2 * gram).sum()) / (5 * 4)
        assert mean_pairwise_distance(sols) == expected
        assert mean_pairwise_distance(sols[:1]) == 0.0


# --------------------------------------------------------------------------- #
# Kernel: bitset fitting scan vs. the generic float path
# --------------------------------------------------------------------------- #
class TestFittingEquivalence:
    def test_fitting_items_identical_across_paths(self):
        rng = np.random.default_rng(11)
        for _ in range(25):
            inst = random_integer_instance(rng)
            x = greedy_solution(inst).x
            bit = SearchState(inst, x.copy())
            gen = SearchState(inst, x.copy())
            assert bit.kernel.use_bitset
            gen.kernel.use_bitset = False
            assert np.array_equal(bit.fitting_items(), gen.fitting_items())
            # ... and with exclusions layered on top.
            excl = set(map(int, rng.integers(0, inst.n_items, size=3)))
            bit.kernel.set_exclusions(excl)
            gen.kernel.set_exclusions(excl)
            assert np.array_equal(
                bit.kernel.fitting_items(), gen.kernel.fitting_items()
            )

    def test_float_instance_falls_back_to_generic(self):
        inst = MKPInstance(
            weights=np.array([[0.5, 1.25, 2.0]]),
            capacities=np.array([2.5]),
            profits=np.array([1.0, 2.0, 3.0]),
        )
        state = SearchState.empty(inst)
        assert not state.kernel.use_bitset
        assert np.array_equal(state.fitting_items(), [0, 1, 2])

    def test_trajectory_identical_across_paths(self):
        # The strongest equivalence statement: same seeds, same instance,
        # whole compound-move trajectories coincide move for move —
        # including the shared evaluation ledger the farm model charges.
        rng = np.random.default_rng(12)
        for _ in range(5):
            inst = random_integer_instance(rng)
            x0 = greedy_solution(inst).x
            records = []
            for use_bitset in (True, False):
                state = SearchState(inst, x0.copy())
                state.kernel.use_bitset = use_bitset
                tabu = TabuList(inst.n_items, 5)
                engine = MoveEngine(state, tabu, np.random.default_rng(99))
                best = state.value
                trace = []
                for _move in range(40):
                    record = engine.apply(2, best)
                    best = max(best, state.value)
                    tabu.tick()
                    if record.touched:
                        tabu.make_tabu(np.asarray(record.touched))
                    trace.append((tuple(record.dropped), tuple(record.added)))
                records.append((trace, state.value, engine.evaluations))
            assert records[0] == records[1]


class TestSwapIntensificationEquivalence:
    def test_word_path_matches_generic(self):
        rng = np.random.default_rng(7)
        for _ in range(15):
            inst = random_integer_instance(rng)
            sol = greedy_solution(inst)
            out = []
            for use_bitset in (True, False):
                state = SearchState(inst, sol.x.copy())
                state.kernel.use_bitset = use_bitset
                stats = IntensificationStats()
                result = swap_intensification(state, stats)
                out.append(
                    (result.x.tobytes(), result.value, stats.evaluations,
                     stats.swaps_applied)
                )
            assert out[0] == out[1]


# --------------------------------------------------------------------------- #
# set_exclusions no-op short-circuit (satellite regression)
# --------------------------------------------------------------------------- #
class TestExclusionShortCircuit:
    def test_unchanged_mask_keeps_generic_pool_warm(self):
        rng = np.random.default_rng(21)
        inst = random_integer_instance(rng)
        state = SearchState.empty(inst)
        kernel = state.kernel
        kernel.use_bitset = False
        kernel.set_exclusions({1, 3})
        kernel.fitting_items()
        assert kernel._pool is not None
        # Re-installing the identical mask must not invalidate the pool.
        kernel.set_exclusions({3, 1})
        assert kernel._pool is not None
        # Clearing when nothing is excluded is likewise free.
        kernel.clear_exclusions()
        kernel.fitting_items()
        pool = kernel._pool
        kernel.set_exclusions(None)
        kernel.clear_exclusions()
        assert kernel._pool is pool
        # A genuinely different mask still invalidates.
        kernel.set_exclusions({2})
        assert kernel._pool is None

    def test_unchanged_mask_still_correct_on_bitset_path(self):
        rng = np.random.default_rng(22)
        inst = random_integer_instance(rng)
        state = SearchState.empty(inst)
        kernel = state.kernel
        kernel.set_exclusions({0, 2})
        first = kernel.fitting_items().copy()
        kernel.set_exclusions({2, 0})
        assert np.array_equal(kernel.fitting_items(), first)
        assert 0 not in first and 2 not in first


# --------------------------------------------------------------------------- #
# Wire codec
# --------------------------------------------------------------------------- #
class TestWireCodec:
    @pytest.mark.parametrize("n", BOUNDARY_SIZES)
    def test_solution_pickle_roundtrip(self, n):
        rng = np.random.default_rng(n)
        x = (rng.random(n) < 0.4).astype(np.int8)
        sol = Solution(x, float(x.sum()))
        clone = pickle.loads(pickle.dumps(sol))
        assert clone == sol
        assert clone.x.dtype == np.int8
        # The unpickled copy arrives with its packing memo pre-seeded.
        assert "_packed_words" in clone.__dict__

    def test_codec_off_roundtrip_and_size(self):
        rng = np.random.default_rng(500)
        x = (rng.random(500) < 0.4).astype(np.int8)
        sol = Solution(x, 7.0)
        assert wire_codec_enabled()
        packed_size = len(pickle.dumps(sol))
        try:
            set_wire_codec(False)
            assert not wire_codec_enabled()
            dense_blob = pickle.dumps(sol)
            assert pickle.loads(dense_blob) == sol
        finally:
            set_wire_codec(True)
        # The ISSUE's headline: ~64 payload bytes on the wire for 500 items
        # instead of a pickled dense ndarray.
        assert packed_size < 160
        assert len(dense_blob) > 5 * packed_size - 100  # dense carries n bytes
        assert len(dense_blob) / packed_size > 4.0

    def test_message_roundtrip(self):
        rng = np.random.default_rng(9)
        x = (rng.random(120) < 0.4).astype(np.int8)
        sol = Solution(x, 5.0)
        task = SlaveTask(
            x_init=sol,
            strategy=Strategy(lt_length=9, nb_drop=2, nb_local=40),
            budget=Budget(max_evaluations=1000, target_value=99.0),
            seed=7,
            round_index=3,
            seq_id=12,
        )
        got = pickle.loads(pickle.dumps(task))
        assert got == task
        report = SlaveReport(
            slave_id=2,
            best=sol,
            elite=[sol, Solution(np.zeros(120, dtype=np.int8), 0.0)],
            initial_value=1.0,
            evaluations=123,
            moves=4,
            round_index=3,
            seq_id=12,
        )
        got = pickle.loads(pickle.dumps(report))
        assert got == report

    def test_budget_wire_form_drops_clock_state(self):
        budget = Budget(max_evaluations=10, wall_seconds=30.0).start()
        clone = pickle.loads(pickle.dumps(budget))
        assert clone.max_evaluations == 10
        assert clone.wall_seconds == 30.0
        assert not clone._started

    def test_solution_memoized_packing_is_shared(self):
        x = np.ones(100, dtype=np.int8)
        sol = Solution(x, 100.0)
        assert sol.packed_words() is sol.packed_words()
        assert sol.packed_bytes() == words_to_bytes(pack_bits(x), 100)
        assert sol.distance(Solution(np.zeros(100, dtype=np.int8), 0.0)) == 100
