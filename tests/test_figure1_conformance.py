"""Conformance of :class:`TabuSearch` to the paper's Figure 1 control flow.

Checks that the phase sequence is exactly
``Nb_div × (Nb_int × [local_search, intensification] + diversification)``
and that the step-level bookkeeping (incumbent, X_local, History, tabu list)
matches the pseudocode's ordering.
"""

from __future__ import annotations


from repro.core import Strategy, StrategyBounds, TabuSearch, TabuSearchConfig
from repro.core.tabu_search import expected_phase_sequence


def make_ts(instance, nb_div=2, base_iterations=6, nb_drop=2, rng=0):
    bounds = StrategyBounds(base_iterations=base_iterations)
    config = TabuSearchConfig(nb_div=nb_div, elite_size=4, bounds=bounds)
    strategy = Strategy(lt_length=6, nb_drop=nb_drop, nb_local=5)
    return TabuSearch(instance, strategy, config, rng=rng), bounds, strategy


class TestPhaseOrder:
    def test_phase_sequence_matches_figure1(self, small_instance):
        ts, bounds, strategy = make_ts(small_instance)
        trace = ts.enable_control_flow_trace()
        ts.run()
        nb_int = bounds.nb_it(strategy)
        assert trace == expected_phase_sequence(nb_div=2, nb_int=nb_int)

    def test_nb_int_scales_inversely_with_nb_drop(self, small_instance):
        """The same driver runs fewer cycles when moves are heavier."""
        ts1, bounds, s1 = make_ts(small_instance, base_iterations=8, nb_drop=1)
        ts4, _, s4 = make_ts(small_instance, base_iterations=8, nb_drop=4)
        t1 = ts1.enable_control_flow_trace()
        t4 = ts4.enable_control_flow_trace()
        ts1.run()
        ts4.run()
        assert t1.count("local_search") == 2 * 8
        assert t4.count("local_search") == 2 * 2

    def test_expected_sequence_helper_validation(self):
        import pytest

        with pytest.raises(ValueError):
            expected_phase_sequence(0, 1)


class TestStepSemantics:
    def test_history_updated_once_per_move(self, small_instance):
        ts, _, _ = make_ts(small_instance)
        result = ts.run()
        assert ts.history.iterations == result.moves

    def test_tabu_clock_ticks_once_per_move(self, small_instance):
        ts, _, _ = make_ts(small_instance)
        result = ts.run()
        assert ts.tabu.clock == result.moves

    def test_moved_attributes_are_tabu_immediately_after_move(self, small_instance):
        """Step 9: "Lt = Lt + X" — audit via the on_move hook."""
        records = []

        def hook(thread):
            # engine state right after a move: recently-touched attributes
            # must be tabu (the hook runs after make_tabu in the driver).
            records.append(thread.tabu.active_count())

        ts, _, _ = make_ts(small_instance)
        ts.on_move = hook
        ts.run()
        assert all(count > 0 for count in records[1:])

    def test_incumbent_monotone_through_all_phases(self, small_instance):
        ts, _, _ = make_ts(small_instance)
        result = ts.run()
        trace = result.value_trace
        assert all(b >= a for a, b in zip(trace, trace[1:]))

    def test_aspiration_leaves_tabu_barrier(self, tiny_instance):
        """A tabu item must still be addable when it beats the incumbent:
        on the tiny instance the optimum requires re-adding a recently
        dropped item, so reaching 18 under a long tenure proves aspiration
        works (without it the search would be stuck below)."""
        from repro.core import Budget, greedy_solution

        config = TabuSearchConfig(nb_div=3, elite_size=4)
        ts = TabuSearch(tiny_instance, Strategy(4, 1, 8), config, rng=1)
        result = ts.run(
            x_init=greedy_solution(tiny_instance), budget=Budget(max_moves=60)
        )
        assert result.best.value == 18.0
