"""Unit tests for the FP-57 / GK / MK benchmark suites and the registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.instances import (
    FP57_DIMENSIONS,
    GK_GROUPS,
    attach_optimum,
    available,
    fp57_instance,
    fp57_suite,
    get_instance,
    gk_group,
    gk_instance,
    gk_suite,
    mk_suite,
)


class TestFP57:
    def test_exactly_57_problems(self):
        assert len(FP57_DIMENSIONS) == 57
        assert len(fp57_suite()) == 57

    def test_published_shape_envelope(self):
        """Paper: n from 6 up to 105, m from 2 up to 30."""
        ms = [m for m, _ in FP57_DIMENSIONS]
        ns = [n for _, n in FP57_DIMENSIONS]
        assert min(ns) == 6 and max(ns) == 105
        assert min(ms) == 2 and max(ms) == 30

    def test_instances_deterministic(self):
        a = fp57_instance(10)
        b = fp57_instance(10)
        np.testing.assert_array_equal(a.weights, b.weights)

    def test_index_bounds(self):
        with pytest.raises(IndexError):
            fp57_instance(57)
        with pytest.raises(IndexError):
            fp57_instance(-1)

    def test_optimum_attachment(self):
        inst = fp57_instance(0, with_optimum=True)
        assert inst.optimum is not None
        # proven optimum must dominate a heuristic
        from repro.core import greedy_solution

        assert inst.optimum >= greedy_solution(inst).value

    def test_attach_optimum_cached(self):
        a = fp57_instance(1, with_optimum=True)
        b = attach_optimum(fp57_instance(1))
        assert a.optimum == b.optimum

    def test_attach_rejects_foreign_instance(self, small_instance):
        with pytest.raises(ValueError):
            attach_optimum(small_instance)

    def test_names(self):
        inst = fp57_instance(0)
        assert inst.name == "FP01-2x6"


class TestGK:
    def test_24_problems_in_7_groups(self):
        assert len(gk_suite()) == 24
        assert len(GK_GROUPS) == 7

    def test_size_envelope(self):
        """Paper: sizes from 3*10 up to 25*500."""
        suite = gk_suite()
        shapes = [inst.shape for inst in suite]
        assert (3, 10) in shapes
        assert (25, 500) in shapes
        assert all(3 <= m <= 25 and 10 <= n <= 500 for m, n in shapes)

    def test_group_lookup(self):
        group = gk_group("9to14")
        assert len(group) == 6
        assert all(inst.n_constraints == 10 for inst in group)

    def test_group_unknown(self):
        with pytest.raises(KeyError):
            gk_group("nope")

    def test_instance_by_number_matches_suite(self):
        suite = gk_suite()
        for k in (1, 5, 13, 24):
            np.testing.assert_array_equal(
                gk_instance(k).weights, suite[k - 1].weights
            )

    def test_instance_number_bounds(self):
        with pytest.raises(IndexError):
            gk_instance(25)

    def test_last_two_differ_in_tightness(self):
        """Problems 23 and 24 stand in for the two individually-reported
        large instances — one tighter, one looser."""
        p23, p24 = gk_instance(23), gk_instance(24)
        assert p23.shape == p24.shape == (25, 500)
        assert p23.capacities.sum() < p24.capacities.sum()


class TestMK:
    def test_five_problems(self):
        suite = mk_suite()
        assert [i.name for i in suite] == ["MK1", "MK2", "MK3", "MK4", "MK5"]

    def test_large_sizes(self):
        for inst in mk_suite():
            assert inst.n_items >= 250
            assert inst.n_constraints >= 10


class TestRegistry:
    def test_available_count(self):
        assert len(available()) == 57 + 24 + 5

    def test_lookup_families(self):
        assert get_instance("FP05").name.startswith("FP05")
        assert get_instance("GK10").name.startswith("GK10")
        assert get_instance("MK4").name == "MK4"

    def test_case_insensitive(self):
        assert get_instance("gk03").name == get_instance("GK03").name

    def test_bad_names(self):
        with pytest.raises(KeyError):
            get_instance("XX1")
        with pytest.raises(KeyError):
            get_instance("FP99")
        with pytest.raises(KeyError):
            get_instance("MK9")

    def test_every_advertised_name_resolves(self):
        for name in available()[:10] + available()[-10:]:
            assert get_instance(name) is not None
