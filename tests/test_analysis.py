"""Tests for the analysis/reporting layer."""

from __future__ import annotations

import pytest

from repro.analysis import (
    Table1Row,
    Table2Row,
    deviation_percent,
    efficiency,
    load_balance,
    render_generic,
    render_table1,
    render_table2,
    speedup,
)
from repro.farm import EventKind, FarmTrace


class TestStats:
    def test_deviation(self):
        assert deviation_percent(95.0, 100.0) == pytest.approx(5.0)
        assert deviation_percent(100.0, 100.0) == 0.0

    def test_deviation_invalid_reference(self):
        with pytest.raises(ValueError):
            deviation_percent(5.0, 0.0)

    def test_speedup_and_efficiency(self):
        assert speedup(10.0, 2.5) == 4.0
        assert efficiency(10.0, 2.5, 8) == 0.5

    def test_speedup_validation(self):
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)
        with pytest.raises(ValueError):
            efficiency(1.0, 1.0, 0)

    def test_load_balance(self):
        trace = FarmTrace()
        trace.record(0, EventKind.COMPUTE, 0.0, 3.0)
        trace.record(1, EventKind.COMPUTE, 0.0, 1.0)
        trace.record(1, EventKind.BARRIER_WAIT, 1.0, 3.0)
        lb = load_balance(trace)
        assert lb.compute_seconds == 4.0
        assert lb.idle_seconds == 2.0
        assert lb.idle_ratio == pytest.approx(2.0 / 6.0)
        assert lb.imbalance == pytest.approx(3.0 / 2.0)

    def test_load_balance_empty(self):
        lb = load_balance(FarmTrace())
        assert lb.idle_ratio == 0.0
        assert lb.imbalance == 1.0


class TestTableRenderers:
    def test_table1_contains_rows(self):
        rows = [
            Table1Row("1to4", "3*100", 1.25, 0.1),
            Table1Row("18to22", "25*500", 30.0, 0.9),
        ]
        text = render_table1(rows)
        assert "1to4" in text and "25*500" in text
        assert "Dev. in %" in text

    def test_table2_renders_and_picks_winner(self):
        row = Table2Row(
            problem="MK1", seq=100, its=105, cts1=108, cts2=110, exec_time=12.0
        )
        assert row.winner() == "CTS2"
        text = render_table2([row])
        assert "MK1" in text and "CTS2" in text

    def test_table2_extras(self):
        row = Table2Row(
            problem="MK1",
            seq=100,
            its=105,
            cts1=108,
            cts2=110,
            exec_time=12.0,
            extras={"CTS-async": 120.0},
        )
        assert row.winner() == "CTS-async"
        assert "CTS-async" in render_table2([row])

    def test_generic_table(self):
        text = render_generic(
            ["a", "b"], [[1, 2.34567], ["x", 0.5]], precision=2
        )
        assert "2.35" in text
        assert "a" in text and "x" in text

    def test_generic_table_validates_shape(self):
        with pytest.raises(ValueError):
            render_generic(["a"], [[1, 2]])
