"""Deeper behaviour tests for :class:`MasterProcess` and its config."""

from __future__ import annotations

import pytest

from repro.core import Budget, Strategy
from repro.farm import ALPHA_FARM
from repro.master import MasterConfig, MasterProcess
from repro.parallel import SerialBackend


def run(instance, config, budget=None, seed=0, farm=ALPHA_FARM):
    backend = SerialBackend(config.n_slaves)
    master = MasterProcess(instance, config, backend, rng_seed=seed, farm=farm)
    return master.run(budget_per_slave=budget)


class TestConfigValidation:
    def test_bad_counts(self):
        with pytest.raises(ValueError):
            MasterConfig(n_slaves=0)
        with pytest.raises(ValueError):
            MasterConfig(n_rounds=0)
        with pytest.raises(ValueError):
            MasterConfig(elite_capacity=0)

    def test_initial_strategies_length_checked(self):
        with pytest.raises(ValueError, match="one entry per slave"):
            MasterConfig(n_slaves=3, initial_strategies=(Strategy(10, 2, 20),))

    def test_backend_slave_count_checked(self, small_instance):
        config = MasterConfig(n_slaves=3, n_rounds=1)
        backend = SerialBackend(2)
        with pytest.raises(ValueError, match="backend has 2 slaves"):
            MasterProcess(small_instance, config, backend)


class TestInitialStrategies:
    def test_explicit_strategies_used_in_round_zero(self, small_instance):
        marker = Strategy(lt_length=33, nb_drop=3, nb_local=44)
        config = MasterConfig(
            n_slaves=2,
            n_rounds=1,
            adapt_strategies=False,
            initial_strategies=(marker, marker),
        )
        backend = SerialBackend(2)
        seen: list[Strategy] = []
        original = backend.run_round

        def spy(tasks):
            seen.extend(t.strategy for t in tasks)
            return original(tasks)

        backend.run_round = spy  # type: ignore[method-assign]
        master = MasterProcess(small_instance, config, backend, rng_seed=0)
        master.run(budget_per_slave=Budget(max_evaluations=2_000))
        assert seen == [marker, marker]


class TestTargetEarlyExit:
    def test_stops_after_target_round(self, small_instance):
        from repro.exact import branch_and_bound

        opt = branch_and_bound(small_instance).value
        config = MasterConfig(n_slaves=4, n_rounds=20)
        result = run(
            small_instance,
            config,
            budget=Budget(max_evaluations=200_000, target_value=opt),
        )
        assert result.best.value >= opt
        assert result.n_rounds < 20


class TestDynamicAlpha:
    def test_static_alpha_keeps_config_value(self, small_instance):
        config = MasterConfig(n_slaves=3, n_rounds=4, dynamic_alpha=False)
        backend = SerialBackend(3)
        master = MasterProcess(small_instance, config, backend, rng_seed=0)
        master.run(budget_per_slave=Budget(max_evaluations=8_000))
        # Controller untouched when dynamic_alpha is off.
        assert master.alpha_controller.alpha == config.isp.alpha

    def test_dynamic_alpha_moves(self, small_instance):
        config = MasterConfig(n_slaves=3, n_rounds=6, dynamic_alpha=True)
        backend = SerialBackend(3)
        master = MasterProcess(small_instance, config, backend, rng_seed=0)
        master.run(budget_per_slave=Budget(max_evaluations=12_000))
        assert master.alpha_controller.alpha != config.isp.alpha


class TestFarmAccounting:
    def test_no_farm_means_zero_virtual_time(self, small_instance):
        config = MasterConfig(n_slaves=2, n_rounds=2)
        result = run(small_instance, config, budget=Budget(max_evaluations=4_000), farm=None)
        assert result.virtual_seconds == 0.0
        assert result.trace is None

    def test_round_times_sum_to_makespan(self, small_instance):
        config = MasterConfig(n_slaves=3, n_rounds=3)
        result = run(small_instance, config, budget=Budget(max_evaluations=9_000))
        total = sum(r.round_virtual_seconds for r in result.rounds)
        assert total == pytest.approx(result.virtual_seconds, rel=1e-9)

    def test_compute_time_matches_evaluations(self, small_instance):
        config = MasterConfig(n_slaves=2, n_rounds=2)
        result = run(small_instance, config, budget=Budget(max_evaluations=6_000))
        from repro.farm import EventKind

        compute = result.trace.total_by_kind(EventKind.COMPUTE)
        expected = ALPHA_FARM.compute_seconds(
            result.total_evaluations, small_instance.n_constraints
        )
        assert compute == pytest.approx(expected, rel=1e-9)

    def test_bytes_counted(self, small_instance):
        config = MasterConfig(n_slaves=2, n_rounds=2)
        result = run(small_instance, config, budget=Budget(max_evaluations=6_000))
        assert result.bytes_sent > 0


class TestEliteCapacity:
    def test_entries_respect_capacity(self, small_instance):
        config = MasterConfig(n_slaves=2, n_rounds=4, elite_capacity=3)
        backend = SerialBackend(2)
        master = MasterProcess(small_instance, config, backend, rng_seed=0)
        # Reach into the loop by running and re-deriving entries is awkward;
        # instead check via the datastruct contract directly.
        from repro.master import SlaveEntry
        from repro.core import Solution
        import numpy as np

        entry = SlaveEntry(
            slave_id=0,
            strategy=Strategy(10, 2, 20),
            init_solution=Solution(np.zeros(4, dtype=np.int8), 0.0),
        )
        sols = [
            Solution(np.eye(4, dtype=np.int8)[k % 4], float(k)) for k in range(4)
        ]
        entry.absorb_elite(sols, capacity=config.elite_capacity)
        assert len(entry.best_solutions) <= 3
