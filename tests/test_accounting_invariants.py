"""Cross-cutting accounting invariants of the simulated farm runs.

These tie the variants, master, farm and trace layers together: whatever
the configuration, the books must balance — trace events fit inside the
makespan, compute time matches the evaluation counters, and the per-round
statistics sum to the totals.
"""

from __future__ import annotations

import pytest

from repro.farm import ALPHA_FARM, EventKind
from repro.variants import (
    solve_cts1,
    solve_cts2,
    solve_cts_async,
    solve_its,
    solve_seq,
)

EVALS = 15_000


def all_variant_results(instance, seed=0):
    yield solve_seq(instance, rng_seed=seed, max_evaluations=EVALS)
    for solver in (solve_its, solve_cts1, solve_cts2):
        yield solver(
            instance, n_slaves=3, n_rounds=3, rng_seed=seed, max_evaluations=EVALS
        )
    yield solve_cts_async(
        instance, n_threads=3, rng_seed=seed, max_evaluations=EVALS
    )


class TestBooksBalance:
    def test_trace_events_fit_inside_makespan(self, small_instance):
        for result in all_variant_results(small_instance):
            for event in result.trace.events:
                assert event.t_start >= -1e-12, result.variant
                assert event.t_end <= result.virtual_seconds + 1e-9, result.variant

    def test_compute_time_matches_evaluations(self, small_instance):
        m = small_instance.n_constraints
        for result in all_variant_results(small_instance):
            compute = result.trace.total_by_kind(EventKind.COMPUTE)
            expected = ALPHA_FARM.compute_seconds(result.total_evaluations, m)
            assert compute == pytest.approx(expected, rel=1e-9), result.variant

    def test_round_evaluations_sum_to_total(self, small_instance):
        for result in all_variant_results(small_instance):
            assert sum(r.evaluations for r in result.rounds) == result.total_evaluations, (
                result.variant
            )

    def test_round_best_values_monotone(self, small_instance):
        for result in all_variant_results(small_instance):
            values = [r.best_value for r in result.rounds]
            assert values == sorted(values), result.variant

    def test_final_best_matches_last_round(self, small_instance):
        for result in all_variant_results(small_instance):
            assert result.best.value == pytest.approx(
                max(r.best_value for r in result.rounds)
            ), result.variant

    def test_value_history_ends_at_best(self, small_instance):
        for result in all_variant_results(small_instance):
            assert result.value_history[-1] == pytest.approx(result.best.value), (
                result.variant
            )


class TestVariantSpecificBooks:
    def test_seq_has_no_communication(self, small_instance):
        result = solve_seq(small_instance, rng_seed=0, max_evaluations=EVALS)
        assert result.bytes_sent == 0
        assert result.trace.communication_seconds() == 0.0

    def test_its_never_pools_or_restarts_via_isp(self, small_instance):
        result = solve_its(
            small_instance, n_slaves=3, n_rounds=4, rng_seed=0, max_evaluations=EVALS
        )
        for stats in result.rounds:
            assert stats.isp_rules.get("pool", 0) == 0
            assert stats.isp_rules.get("restart", 0) == 0
            assert stats.sgp_actions == {}

    def test_cts1_never_adapts_strategies(self, small_instance):
        result = solve_cts1(
            small_instance, n_slaves=3, n_rounds=4, rng_seed=0, max_evaluations=EVALS
        )
        for stats in result.rounds:
            assert stats.sgp_actions == {}

    def test_parallel_variants_communicate(self, small_instance):
        for solver in (solve_its, solve_cts1, solve_cts2):
            result = solver(
                small_instance, n_slaves=3, n_rounds=2, rng_seed=0,
                max_evaluations=EVALS,
            )
            # even ITS ships tasks/reports over the fabric
            assert result.bytes_sent > 0, result.variant

    def test_equal_budgets_give_comparable_total_work(self, small_instance):
        """All three synchronous parallel variants burn the same per-slave
        budget, so total evaluations agree within one round's slack."""
        totals = []
        for solver in (solve_its, solve_cts1, solve_cts2):
            result = solver(
                small_instance, n_slaves=3, n_rounds=3, rng_seed=0,
                max_evaluations=EVALS,
            )
            totals.append(result.total_evaluations)
        assert max(totals) <= 1.25 * min(totals)
