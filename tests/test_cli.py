"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestSolve:
    def test_solve_registry_instance(self, capsys):
        code = main(["solve", "FP05", "--variant", "seq", "--evals", "5000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "SEQ" in out
        assert "packed items" in out

    def test_solve_cts2_with_trace(self, capsys):
        code = main(
            [
                "solve", "FP05", "--variant", "cts2", "--slaves", "2",
                "--rounds", "2", "--evals", "4000", "--trace",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "round 0" in out
        assert "round 1" in out

    def test_solve_async(self, capsys):
        code = main(
            ["solve", "FP05", "--variant", "async", "--slaves", "2", "--evals", "4000"]
        )
        assert code == 0
        assert "CTS-async" in capsys.readouterr().out

    def test_solve_file(self, tmp_path, capsys, small_instance):
        from repro.instances import write_instance

        path = tmp_path / "prob.txt"
        write_instance(small_instance, path)
        code = main(["solve", str(path), "--variant", "seq", "--evals", "3000"])
        assert code == 0

    def test_unknown_instance(self):
        with pytest.raises(SystemExit, match="neither a file nor"):
            main(["solve", "NOPE99", "--evals", "100"])


class TestExact:
    def test_exact_proves_small(self, capsys):
        code = main(["exact", "FP01"])
        out = capsys.readouterr().out
        assert code == 0
        assert "proven optimal" in out

    def test_exact_node_limit_exit_code(self, capsys):
        code = main(["exact", "MK1", "--node-limit", "10"])
        out = capsys.readouterr().out
        assert code == 2
        assert "node limit reached" in out


class TestGenerateAndInfo:
    def test_generate_roundtrip(self, tmp_path, capsys):
        out_path = tmp_path / "gen.txt"
        code = main(
            ["generate", "3", "20", "--correlated", "--seed", "4", "--out", str(out_path)]
        )
        assert code == 0
        assert out_path.exists()
        code = main(["info", str(out_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "3*20" in out
        assert "LP bound" in out

    def test_suite_lists_names(self, capsys):
        code = main(["suite"])
        out = capsys.readouterr().out
        assert code == 0
        assert "GK01" in out and "MK5" in out and "FP57" in out

    def test_info_registry(self, capsys):
        code = main(["info", "GK01"])
        out = capsys.readouterr().out
        assert code == 0
        assert "3*10" in out


class TestServiceCommands:
    @pytest.fixture()
    def live_service(self):
        """A real server on an ephemeral port, in a background thread."""
        import asyncio
        import threading

        from repro.cli import _load_instance
        from repro.service import JobManager, ServiceServer, SolverPool, request

        started = threading.Event()
        box: dict[str, int] = {}

        def runner():
            async def go():
                pool = SolverPool.serial(1, 2)
                manager = JobManager(pool)
                server = ServiceServer(
                    manager, port=0, instance_loader=_load_instance
                )
                _, port = await server.start()
                box["port"] = port
                started.set()
                await server.serve_until_shutdown()

            asyncio.run(go())

        thread = threading.Thread(target=runner, daemon=True)
        thread.start()
        assert started.wait(10), "service thread never bound"
        yield box["port"]
        try:
            request("127.0.0.1", box["port"], {"op": "shutdown"})
        except (OSError, RuntimeError):
            pass
        thread.join(timeout=15)

    def test_submit_stream_status_cancel(self, live_service, capsys):
        port = str(live_service)
        code = main(
            [
                "submit", "FP05", "--port", port, "--rounds", "2",
                "--evals", "2000", "--stream",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "run_end" in out
        assert "done" in out
        job_id = out.strip().splitlines()[0]

        assert main(["status", job_id, "--port", port]) == 0
        assert "done" in capsys.readouterr().out

        # cancelling a finished job reports "already finished", exit 1
        assert main(["cancel", job_id, "--port", port]) == 1
        assert "already finished" in capsys.readouterr().out

    def test_status_unknown_job(self, live_service):
        with pytest.raises(SystemExit, match="unknown job id"):
            main(["status", "job-999999", "--port", str(live_service)])

    def test_unreachable_service(self):
        with pytest.raises(SystemExit, match="cannot reach service"):
            main(["status", "job-000001", "--port", "1"])

    def test_submit_validates_instance_locally(self):
        with pytest.raises(SystemExit, match="neither a file nor"):
            main(["submit", "definitely-not-an-instance", "--port", "1"])
