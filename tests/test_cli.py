"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestSolve:
    def test_solve_registry_instance(self, capsys):
        code = main(["solve", "FP05", "--variant", "seq", "--evals", "5000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "SEQ" in out
        assert "packed items" in out

    def test_solve_cts2_with_trace(self, capsys):
        code = main(
            [
                "solve", "FP05", "--variant", "cts2", "--slaves", "2",
                "--rounds", "2", "--evals", "4000", "--trace",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "round 0" in out
        assert "round 1" in out

    def test_solve_async(self, capsys):
        code = main(
            ["solve", "FP05", "--variant", "async", "--slaves", "2", "--evals", "4000"]
        )
        assert code == 0
        assert "CTS-async" in capsys.readouterr().out

    def test_solve_file(self, tmp_path, capsys, small_instance):
        from repro.instances import write_instance

        path = tmp_path / "prob.txt"
        write_instance(small_instance, path)
        code = main(["solve", str(path), "--variant", "seq", "--evals", "3000"])
        assert code == 0

    def test_unknown_instance(self):
        with pytest.raises(SystemExit, match="neither a file nor"):
            main(["solve", "NOPE99", "--evals", "100"])


class TestExact:
    def test_exact_proves_small(self, capsys):
        code = main(["exact", "FP01"])
        out = capsys.readouterr().out
        assert code == 0
        assert "proven optimal" in out

    def test_exact_node_limit_exit_code(self, capsys):
        code = main(["exact", "MK1", "--node-limit", "10"])
        out = capsys.readouterr().out
        assert code == 2
        assert "node limit reached" in out


class TestGenerateAndInfo:
    def test_generate_roundtrip(self, tmp_path, capsys):
        out_path = tmp_path / "gen.txt"
        code = main(
            ["generate", "3", "20", "--correlated", "--seed", "4", "--out", str(out_path)]
        )
        assert code == 0
        assert out_path.exists()
        code = main(["info", str(out_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "3*20" in out
        assert "LP bound" in out

    def test_suite_lists_names(self, capsys):
        code = main(["suite"])
        out = capsys.readouterr().out
        assert code == 0
        assert "GK01" in out and "MK5" in out and "FP57" in out

    def test_info_registry(self, capsys):
        code = main(["info", "GK01"])
        out = capsys.readouterr().out
        assert code == 0
        assert "3*10" in out
