"""Property-based tests (hypothesis) for core solution invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    MKPInstance,
    SearchState,
    Solution,
    hamming_distance,
    mean_pairwise_distance,
    repair,
)


@st.composite
def instances(draw, max_m: int = 6, max_n: int = 15) -> MKPInstance:
    """Random small valid instances."""
    m = draw(st.integers(1, max_m))
    n = draw(st.integers(1, max_n))
    weights = draw(
        st.lists(
            st.lists(st.integers(0, 50), min_size=n, max_size=n),
            min_size=m,
            max_size=m,
        )
    )
    profits = draw(st.lists(st.integers(1, 100), min_size=n, max_size=n))
    capacities = draw(st.lists(st.integers(0, 200), min_size=m, max_size=m))
    return MKPInstance.from_lists(weights, capacities, profits)


@st.composite
def instance_and_flips(draw):
    inst = draw(instances())
    n_flips = draw(st.integers(0, 30))
    flips = draw(
        st.lists(
            st.integers(0, inst.n_items - 1), min_size=n_flips, max_size=n_flips
        )
    )
    return inst, flips


class TestIncrementalEvaluation:
    """The central hot-path invariant: incremental ≡ from-scratch."""

    @given(instance_and_flips())
    @settings(max_examples=200, deadline=None)
    def test_load_and_value_match_recomputation(self, case):
        inst, flips = case
        state = SearchState.empty(inst)
        for j in flips:
            state.flip(j)
        np.testing.assert_allclose(
            state.load, inst.weights @ state.x.astype(float), atol=1e-9
        )
        assert state.value == float(inst.profits @ state.x.astype(float))

    @given(instance_and_flips())
    @settings(max_examples=100, deadline=None)
    def test_feasibility_agrees_with_instance(self, case):
        inst, flips = case
        state = SearchState.empty(inst)
        for j in flips:
            state.flip(j)
        assert state.is_feasible == inst.is_feasible(state.x)

    @given(instance_and_flips())
    @settings(max_examples=100, deadline=None)
    def test_fitting_items_really_fit(self, case):
        inst, flips = case
        state = SearchState.empty(inst)
        for j in flips:
            state.flip(j)
        if not state.is_feasible:
            return
        for j in state.fitting_items():
            clone = state.copy()
            clone.add(int(j))
            assert clone.is_feasible


class TestRepair:
    @given(instance_and_flips())
    @settings(max_examples=100, deadline=None)
    def test_repair_always_feasible(self, case):
        inst, flips = case
        state = SearchState.empty(inst)
        for j in flips:
            state.flip(j)
        repair(state)
        assert state.is_feasible

    @given(instance_and_flips())
    @settings(max_examples=100, deadline=None)
    def test_repair_noop_on_feasible(self, case):
        inst, flips = case
        state = SearchState.empty(inst)
        for j in flips:
            state.flip(j)
        if not state.is_feasible:
            return
        before = state.x.copy()
        dropped = repair(state)
        assert dropped == 0
        np.testing.assert_array_equal(state.x, before)


class TestHammingMetric:
    @given(
        st.lists(st.lists(st.integers(0, 1), min_size=8, max_size=8), min_size=3, max_size=3)
    )
    @settings(max_examples=100, deadline=None)
    def test_metric_axioms(self, vectors):
        a, b, c = (np.array(v) for v in vectors)
        assert hamming_distance(a, a) == 0
        assert hamming_distance(a, b) == hamming_distance(b, a)
        assert hamming_distance(a, c) <= hamming_distance(a, b) + hamming_distance(b, c)

    @given(
        st.lists(
            st.lists(st.integers(0, 1), min_size=6, max_size=6),
            min_size=2,
            max_size=6,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_mean_pairwise_bounds(self, vectors):
        sols = [Solution(np.array(v), float(i)) for i, v in enumerate(vectors)]
        mean = mean_pairwise_distance(sols)
        assert 0.0 <= mean <= 6.0
