"""Tests for the Lagrangian relaxation bound."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import greedy_solution
from repro.exact import (
    branch_and_bound,
    lagrangian_bound,
    lagrangian_value,
    solve_lp_relaxation,
)
from repro.instances import correlated_instance, uncorrelated_instance


class TestLagrangianValue:
    def test_zero_multipliers_give_sum_of_positive_profits(self, small_instance):
        value, x = lagrangian_value(
            small_instance, np.zeros(small_instance.n_constraints)
        )
        assert value == pytest.approx(float(small_instance.profits.sum()))
        assert np.all(x == 1)

    def test_validation(self, small_instance):
        with pytest.raises(ValueError):
            lagrangian_value(small_instance, np.zeros(small_instance.n_constraints + 1))
        with pytest.raises(ValueError):
            lagrangian_value(small_instance, -np.ones(small_instance.n_constraints))

    def test_any_multiplier_is_upper_bound(self, small_instance, rng):
        opt = branch_and_bound(small_instance).value
        for _ in range(10):
            u = rng.random(small_instance.n_constraints) * 0.5
            value, _ = lagrangian_value(small_instance, u)
            assert value >= opt - 1e-6


class TestLagrangianBound:
    def test_dominates_optimum(self):
        for seed in range(4):
            inst = uncorrelated_instance(3, 15, rng=400 + seed)
            opt = branch_and_bound(inst).value
            lag = lagrangian_bound(inst)
            assert lag.bound >= opt - 1e-6

    def test_converges_toward_lp(self):
        """By the integrality property, min_u L(u) = LP value; after enough
        subgradient steps the bound should be within a few percent."""
        inst = correlated_instance(5, 60, rng=11)
        lp = solve_lp_relaxation(inst).value
        lag = lagrangian_bound(inst, iterations=400)
        assert lag.bound >= lp - 1e-6
        assert lag.bound <= lp * 1.05

    def test_tighter_than_trivial(self, small_instance):
        trivial = float(small_instance.profits.sum())
        lag = lagrangian_bound(small_instance)
        assert lag.bound < trivial

    def test_multipliers_nonnegative(self, small_instance):
        lag = lagrangian_bound(small_instance)
        assert np.all(lag.multipliers >= 0)

    def test_warm_lower_bound_accepted(self, small_instance):
        warm = greedy_solution(small_instance).value
        lag = lagrangian_bound(small_instance, lower_bound=warm)
        assert lag.bound >= warm - 1e-6

    def test_validation(self, small_instance):
        with pytest.raises(ValueError):
            lagrangian_bound(small_instance, iterations=0)
        with pytest.raises(ValueError):
            lagrangian_bound(small_instance, initial_step=0.0)
        with pytest.raises(ValueError):
            lagrangian_bound(small_instance, halve_after=0)


class TestLagrangianProperties:
    @given(st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_bound_validity_random_instances(self, seed):
        inst = uncorrelated_instance(2, 10, rng=seed)
        opt = branch_and_bound(inst).value
        lag = lagrangian_bound(inst, iterations=100)
        assert lag.bound >= opt - 1e-6
