"""Unit tests for :mod:`repro.core.moves` (the Drop/Add compound move)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MoveEngine, SearchState, TabuList, greedy_solution


def make_engine(instance, rng, tenure=3):
    state = SearchState.from_solution(instance, greedy_solution(instance))
    tabu = TabuList(instance.n_items, tenure)
    return MoveEngine(state, tabu, rng), state, tabu


class TestDropRule:
    def test_drop_follows_saturated_constraint_rule(self, small_instance, rng):
        engine, state, _ = make_engine(small_instance, rng)
        i_star = state.most_saturated_constraint()
        packed = state.packed_items()
        ratios = (
            small_instance.weights[i_star, packed] / small_instance.profits[packed]
        )
        expected_best = ratios.max()
        j = engine.select_drop()
        actual = small_instance.weights[i_star, j] / small_instance.profits[j]
        assert actual == pytest.approx(expected_best)

    def test_drop_skips_tabu(self, small_instance, rng):
        engine, state, tabu = make_engine(small_instance, rng)
        i_star = state.most_saturated_constraint()
        packed = state.packed_items()
        ratios = small_instance.weights[i_star, packed] / small_instance.profits[packed]
        worst = packed[int(np.argmax(ratios))]
        tabu.make_tabu(worst)
        j = engine.select_drop()
        assert j != worst

    def test_drop_fallback_when_all_tabu(self, small_instance, rng):
        engine, state, tabu = make_engine(small_instance, rng)
        tabu.make_tabu(state.packed_items())
        assert engine.select_drop() is not None

    def test_drop_none_on_empty(self, small_instance, rng):
        state = SearchState.empty(small_instance)
        engine = MoveEngine(state, TabuList(small_instance.n_items, 3), rng)
        assert engine.select_drop() is None

    def test_drop_step_count(self, small_instance, rng):
        engine, state, _ = make_engine(small_instance, rng)
        dropped = engine.drop_step(3)
        assert len(dropped) == 3
        assert all(state.x[j] == 0 for j in dropped)


class TestAddRule:
    def test_add_never_violates_feasibility(self, small_instance, rng):
        engine, state, _ = make_engine(small_instance, rng)
        engine.drop_step(2)
        engine.add_step(best_value=float("inf"))
        assert state.is_feasible

    def test_add_until_maximal(self, small_instance, rng):
        engine, state, _ = make_engine(small_instance, rng)
        engine.drop_step(2)
        engine.add_step(best_value=float("inf"))
        # tabu items may still "fit" but be inadmissible; non-tabu fitting
        # set must be empty
        fitting = state.fitting_items()
        tabu_mask = engine.tabu.tabu_mask(fitting)
        assert fitting[~tabu_mask].size == 0

    def test_add_respects_tabu_without_aspiration(self, small_instance, rng):
        engine, state, tabu = make_engine(small_instance, rng)
        engine.drop_step(1)
        fitting = state.fitting_items()
        assert fitting.size > 0
        tabu.make_tabu(fitting)
        # best so high that no aspiration possible
        assert engine.select_add(best_value=1e12) is None

    def test_aspiration_admits_tabu_item(self, small_instance, rng):
        engine, state, tabu = make_engine(small_instance, rng)
        engine.drop_step(1)
        fitting = state.fitting_items()
        tabu.make_tabu(fitting)
        # incumbent low enough that any add beats it
        j = engine.select_add(best_value=state.value)
        assert j is not None
        assert tabu.is_tabu(j)


class TestCompoundMove:
    def test_apply_returns_record(self, small_instance, rng):
        engine, state, _ = make_engine(small_instance, rng)
        record = engine.apply(2, best_value=state.value)
        assert record.dropped and len(record.dropped) <= 2
        assert record.touched == record.dropped + record.added
        assert record.hamming_step == len(record.touched)

    def test_apply_keeps_feasibility(self, small_instance, rng):
        engine, state, tabu = make_engine(small_instance, rng)
        best = state.value
        for _ in range(50):
            record = engine.apply(2, best)
            best = max(best, state.value)
            tabu.tick()
            if record.touched:
                tabu.make_tabu(np.asarray(record.touched))
            assert state.is_feasible

    def test_evaluation_counter_monotone(self, small_instance, rng):
        engine, state, _ = make_engine(small_instance, rng)
        assert engine.evaluations == 0
        engine.apply(1, best_value=state.value)
        first = engine.evaluations
        assert first > 0
        engine.apply(1, best_value=state.value)
        assert engine.evaluations > first

    def test_nb_drop_zero_is_pure_add(self, small_instance, rng):
        engine, state, _ = make_engine(small_instance, rng)
        record = engine.apply(0, best_value=state.value)
        assert record.dropped == []


class TestTieBreaking:
    def test_random_ties_follow_rng(self):
        """With an all-symmetric instance, different seeds pick different
        drops — the mechanism that decorrelates parallel threads."""
        from repro.core import MKPInstance

        inst = MKPInstance.from_lists(
            weights=[[1, 1, 1, 1, 1, 1]],
            capacities=[3],
            profits=[1, 1, 1, 1, 1, 1],
        )
        picks = set()
        for seed in range(20):
            state = SearchState(inst, np.array([1, 1, 1, 0, 0, 0], dtype=np.int8))
            engine = MoveEngine(
                state, TabuList(6, 2), np.random.default_rng(seed)
            )
            picks.add(engine.select_drop())
        assert len(picks) > 1
