"""Chaos tests for the fault-injection layer itself.

Covers the :class:`~repro.parallel.faults.FaultPlan` schedule (determinism,
rate handling, crash caps), the :class:`~repro.parallel.faults.ChaosComm`
wrapper over both ``InProcComm`` and ``PipeComm``, fault injection through
:class:`~repro.parallel.SerialBackend`, the hardened multiprocessing
backend (timeout + respawn), and the asynchronous variant's degraded mode.

Everything here is seed-deterministic: the same fault seed must reproduce
the same fault schedule, so these are ordinary tests, never flaky.  The CI
chaos job re-runs them over a fixed seed matrix (see ``REPRO_CHAOS_SEED``).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time

import pytest

from repro.core import Budget, Strategy, TabuSearchConfig, random_solution
from repro.parallel import (
    RESULT_TAG,
    ChaosComm,
    CommClosedError,
    CommTimeout,
    FaultEvent,
    FaultKind,
    FaultPlan,
    InProcComm,
    MessageRouter,
    MultiprocessingBackend,
    PipeComm,
    SerialBackend,
    SlaveReport,
    SlaveTask,
)
from repro.variants import solve_cts_async

#: The CI chaos job exports REPRO_CHAOS_SEED to sweep a fixed seed matrix;
#: locally the default keeps a single representative seed in play.
ENV_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "101"))
SEEDS = sorted({ENV_SEED, 101})

pytestmark = pytest.mark.chaos


def make_tasks(instance, n, evals=1500, round_index=0):
    return [
        SlaveTask(
            x_init=random_solution(instance, rng=k),
            strategy=Strategy(8, 2, 10),
            budget=Budget(max_evaluations=evals),
            seed=1000 + k,
            round_index=round_index,
            seq_id=round_index * n + k,
        )
        for k in range(n)
    ]


def make_core_tasks(instance, pattern, n, evals=1500, round_index=0):
    """Tasks carrying an ISSUE-8 fixation pattern (core_ratio < 1)."""
    return [
        SlaveTask(
            x_init=random_solution(instance, rng=k),
            strategy=Strategy(8, 2, 10, core_ratio=0.5),
            budget=Budget(max_evaluations=evals),
            seed=1000 + k,
            round_index=round_index,
            seq_id=round_index * n + k,
            pattern=pattern,
        )
        for k in range(n)
    ]


class TestFaultPlan:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_seed_same_schedule(self, seed):
        kwargs = dict(
            crash_rate=0.2,
            report_drop_rate=0.2,
            duplicate_rate=0.1,
            delay_rate=0.1,
            straggle_rate=0.1,
        )
        a = FaultPlan.from_seed(seed, n_slaves=8, n_rounds=20, **kwargs)
        b = FaultPlan.from_seed(seed, n_slaves=8, n_rounds=20, **kwargs)
        assert a.events == b.events
        assert a.fingerprint() == b.fingerprint()

    def test_different_seeds_differ(self):
        a = FaultPlan.from_seed(1, 8, 20, crash_rate=0.3)
        b = FaultPlan.from_seed(2, 8, 20, crash_rate=0.3)
        assert a.fingerprint() != b.fingerprint()

    def test_zero_rates_empty(self):
        plan = FaultPlan.from_seed(0, 16, 50)
        assert plan.is_empty
        assert plan.n_events == 0
        assert FaultPlan.none().is_empty

    def test_crash_cap_leaves_a_survivor_every_round(self):
        plan = FaultPlan.from_seed(3, n_slaves=4, n_rounds=40, crash_rate=1.0)
        for r in range(40):
            crashed = sum(plan.crashes(r, k) for k in range(4))
            assert crashed <= 3

    def test_queries_match_events(self):
        plan = FaultPlan(
            events=(
                FaultEvent(0, 1, FaultKind.CRASH),
                FaultEvent(1, 0, FaultKind.DROP_REPORT),
                FaultEvent(1, 2, FaultKind.DUPLICATE_REPORT),
                FaultEvent(2, 0, FaultKind.DELAY_REPORT),
                FaultEvent(2, 1, FaultKind.STRAGGLE, factor=3.0),
                FaultEvent(3, 2, FaultKind.DROP_TASK),
            )
        )
        assert plan.crashes(0, 1) and not plan.crashes(0, 0)
        assert plan.drops_report(1, 0)
        assert plan.duplicates_report(1, 2)
        assert plan.delays_report(2, 0)
        assert plan.straggle_factor(2, 1) == 3.0
        assert plan.straggle_factor(0, 0) == 1.0
        assert plan.drops_task(3, 2)
        assert plan.crashed_slaves() == {1}

    def test_validation(self):
        with pytest.raises(ValueError, match="crash_rate"):
            FaultPlan.from_seed(0, 4, 4, crash_rate=1.5)
        with pytest.raises(ValueError, match="n_slaves"):
            FaultPlan.from_seed(0, 0, 4)
        with pytest.raises(ValueError, match="straggle factor"):
            FaultEvent(0, 0, FaultKind.STRAGGLE, factor=1.0)


class TestChaosCommInProc:
    def _pair(self, actions):
        router = MessageRouter()
        sender = ChaosComm(InProcComm(router, rank=0), actions=actions)
        receiver = InProcComm(router, rank=1)
        return sender, receiver

    def test_drop_loses_message(self):
        sender, receiver = self._pair(["drop", "ok"])
        sender.send("lost", dest=1)
        sender.send("kept", dest=1)
        assert receiver.recv(source=0) == "kept"
        assert not receiver.probe()
        assert sender.dropped == 1 and sender.sent == 1

    def test_dup_delivers_twice(self):
        sender, receiver = self._pair(["dup"])
        sender.send("x", dest=1)
        assert receiver.recv(source=0) == "x"
        assert receiver.recv(source=0) == "x"
        assert sender.duplicated == 1

    def test_delay_holds_until_flush(self):
        sender, receiver = self._pair(["delay"])
        sender.send("late", dest=1)
        assert not receiver.probe()
        assert sender.pending_delayed == 1
        assert sender.flush_delayed() == 1
        assert receiver.recv(source=0) == "late"

    def test_exhausted_script_passes_through(self):
        sender, receiver = self._pair(["drop"])
        sender.send("a", dest=1)
        sender.send("b", dest=1)
        assert receiver.recv(source=0) == "b"

    def test_plan_addressing_on_slave_report(self, small_instance):
        """Report-direction faults resolve by the report's own ids."""
        plan = FaultPlan(events=(FaultEvent(0, 1, FaultKind.DROP_REPORT),))
        router = MessageRouter()
        chaos0 = ChaosComm(InProcComm(router, rank=0), plan, direction="report")
        chaos1 = ChaosComm(InProcComm(router, rank=1), plan, direction="report")
        master = InProcComm(router, rank=2)
        sol = random_solution(small_instance, rng=0)
        chaos0.send(SlaveReport(slave_id=0, best=sol, round_index=0), dest=2)
        chaos1.send(SlaveReport(slave_id=1, best=sol, round_index=0), dest=2)
        got = master.recv(source=-1)
        assert got.slave_id == 0
        assert not master.probe()
        assert chaos1.dropped == 1

    def test_bad_action_rejected(self):
        router = MessageRouter()
        with pytest.raises(ValueError, match="unknown chaos actions"):
            ChaosComm(InProcComm(router, rank=0), actions=["explode"])

    def test_counters_pass_through_to_inner(self):
        sender, _ = self._pair(["ok"])
        sender.send("x", dest=1)
        assert sender.bytes_sent > 0  # resolved on the wrapped endpoint


class TestChaosCommPipe:
    def test_drop_and_dup_over_pipe(self):
        here, there = mp.Pipe(duplex=True)
        sender = ChaosComm(PipeComm(here), actions=["drop", "dup"])
        receiver = PipeComm(there)
        sender.send("lost", tag=5)
        sender.send("twice", tag=5)
        assert receiver.recv(tag=5) == "twice"
        assert receiver.recv(tag=5) == "twice"
        assert not receiver.poll(0)
        receiver.close()
        sender.inner.close()


class TestSerialBackendChaos:
    def _run(self, instance, plan, n=3, round_index=0):
        backend = SerialBackend(n, fault_plan=plan)
        backend.start(instance, TabuSearchConfig(nb_div=100))
        reports = backend.run_round(make_tasks(instance, n, round_index=round_index))
        return backend, reports

    def test_crash_removes_report(self, small_instance):
        plan = FaultPlan(events=(FaultEvent(0, 1, FaultKind.CRASH),))
        backend, reports = self._run(small_instance, plan)
        assert [r.slave_id for r in reports] == [0, 2]
        assert backend.fault_counters["crash"] == 1

    def test_task_drop_removes_report(self, small_instance):
        plan = FaultPlan(events=(FaultEvent(0, 0, FaultKind.DROP_TASK),))
        backend, reports = self._run(small_instance, plan)
        assert [r.slave_id for r in reports] == [1, 2]
        assert 0 not in backend.last_task_nbytes

    def test_duplicate_report_delivered_twice(self, small_instance):
        plan = FaultPlan(events=(FaultEvent(0, 2, FaultKind.DUPLICATE_REPORT),))
        _, reports = self._run(small_instance, plan)
        assert [r.slave_id for r in reports] == [0, 1, 2, 2]
        a, b = reports[2], reports[3]
        assert a.seq_id == b.seq_id and a.best == b.best

    def test_delayed_report_arrives_next_round_stale(self, small_instance):
        plan = FaultPlan(events=(FaultEvent(0, 1, FaultKind.DELAY_REPORT),))
        backend = SerialBackend(3, fault_plan=plan)
        backend.start(small_instance, TabuSearchConfig(nb_div=100))
        first = backend.run_round(make_tasks(small_instance, 3, round_index=0))
        assert [r.slave_id for r in first] == [0, 2]
        second = backend.run_round(make_tasks(small_instance, 3, round_index=1))
        by_slave = [(r.slave_id, r.round_index) for r in second]
        # Slave 1 delivers twice in round 1: the stale round-0 report plus
        # the fresh round-1 one.
        assert by_slave.count((1, 0)) == 1
        assert by_slave.count((1, 1)) == 1

    def test_straggle_recorded_for_clock(self, small_instance):
        plan = FaultPlan(events=(FaultEvent(0, 0, FaultKind.STRAGGLE, factor=5.0),))
        backend, reports = self._run(small_instance, plan)
        assert len(reports) == 3  # straggler still reports
        assert backend.last_slowdowns == {0: 5.0}

    def test_none_task_sits_out(self, small_instance):
        backend = SerialBackend(3)
        backend.start(small_instance, TabuSearchConfig(nb_div=100))
        tasks = make_tasks(small_instance, 3)
        tasks[1] = None
        reports = backend.run_round(tasks)
        assert [r.slave_id for r in reports] == [0, 2]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_seeded_chaos_round_is_reproducible(self, small_instance, seed):
        plan = FaultPlan.from_seed(
            seed, 4, 1, crash_rate=0.4, report_drop_rate=0.3, duplicate_rate=0.3
        )
        runs = []
        for _ in range(2):
            backend = SerialBackend(4, fault_plan=plan)
            backend.start(small_instance, TabuSearchConfig(nb_div=100))
            reports = backend.run_round(make_tasks(small_instance, 4))
            runs.append([(r.slave_id, r.seq_id, r.best.value) for r in reports])
        assert runs[0] == runs[1]


class TestPipeCommHardening:
    def test_recv_timeout_raises(self):
        here, there = mp.Pipe(duplex=True)
        comm = PipeComm(here)
        with pytest.raises(CommTimeout, match="no message within"):
            comm.recv(timeout=0.05)
        comm.close()
        PipeComm(there).close()

    def test_close_is_idempotent(self):
        here, there = mp.Pipe(duplex=True)
        comm = PipeComm(here)
        comm.close()
        comm.close()  # second close is a no-op
        assert comm.closed
        with pytest.raises(CommClosedError):
            comm.send("x")
        with pytest.raises(CommClosedError):
            comm.recv()
        assert comm.poll(0) is False
        PipeComm(there).close()


@pytest.mark.slow
class TestMultiprocessingChaos:
    def test_worker_crash_is_survived_and_respawned(self, small_instance):
        plan = FaultPlan(events=(FaultEvent(0, 0, FaultKind.CRASH),))
        with MultiprocessingBackend(2, fault_plan=plan, round_timeout_s=30.0) as backend:
            backend.start(small_instance, TabuSearchConfig(nb_div=100))
            first = backend.run_round(make_tasks(small_instance, 2, evals=500))
            assert [r.slave_id for r in first] == [1]
            # Round 1: the dead worker is respawned and serves again.
            second = backend.run_round(
                make_tasks(small_instance, 2, evals=500, round_index=1)
            )
            assert [r.slave_id for r in second] == [0, 1]
            assert backend.respawns[0] == 1

    def test_crashed_worker_recores_from_the_task_alone(self, small_instance):
        """ISSUE-8: a respawned worker rebuilds its reduced instance from
        the :class:`FixationPattern` on the wire — no master-side replay.

        Worker 0 dies mid-round while serving reduced tasks; the fresh
        process it is replaced by has never seen the pattern, so round 1
        only succeeds if the re-core happens from the task alone.  Reports
        must still lift to feasible full-space solutions with the
        out-of-core coordinates pinned to the pattern's values.
        """
        import numpy as np

        from repro.core.reduction import CoreSelector

        pattern = CoreSelector(small_instance).pattern(0.5, variant=0)
        out = ~pattern.core_mask
        plan = FaultPlan(events=(FaultEvent(0, 0, FaultKind.CRASH),))
        with MultiprocessingBackend(2, fault_plan=plan, round_timeout_s=30.0) as backend:
            backend.start(small_instance, TabuSearchConfig(nb_div=100))
            first = backend.run_round(
                make_core_tasks(small_instance, pattern, 2, evals=500)
            )
            assert [r.slave_id for r in first] == [1]
            second = backend.run_round(
                make_core_tasks(small_instance, pattern, 2, evals=500, round_index=1)
            )
            assert [r.slave_id for r in second] == [0, 1]
            assert backend.respawns[0] == 1
            for report in first + second:
                x = report.best.x
                assert x.shape == (small_instance.n_items,)
                assert small_instance.is_feasible(x)
                assert report.best.value == float(small_instance.objective(x))
                assert np.array_equal(x[out], pattern.fixed_values[out])

    def test_dropped_report_times_out_not_deadlocks(self, small_instance):
        plan = FaultPlan(events=(FaultEvent(0, 1, FaultKind.DROP_REPORT),))
        with MultiprocessingBackend(2, fault_plan=plan, round_timeout_s=2.0) as backend:
            backend.start(small_instance, TabuSearchConfig(nb_div=100))
            reports = backend.run_round(make_tasks(small_instance, 2, evals=500))
            assert [r.slave_id for r in reports] == [0]
            assert backend.fault_counters["gather_lost"] == 1

    def test_duplicate_report_drained_same_round(self, small_instance):
        plan = FaultPlan(events=(FaultEvent(0, 0, FaultKind.DUPLICATE_REPORT),))
        with MultiprocessingBackend(2, fault_plan=plan, round_timeout_s=30.0) as backend:
            backend.start(small_instance, TabuSearchConfig(nb_div=100))
            reports = backend.run_round(make_tasks(small_instance, 2, evals=500))
            ids = [r.slave_id for r in reports]
            assert ids.count(0) == 2 and ids.count(1) == 1

    def test_duplicate_report_adds_no_grace_sleep(self, small_instance):
        """Regression: the old gather granted a duplicated report a fixed
        1.0 s poll window; the multiplexed gather folds the drain into the
        same select, so the round ends as soon as all copies are in."""
        plan = FaultPlan(events=(FaultEvent(0, 0, FaultKind.DUPLICATE_REPORT),))
        with MultiprocessingBackend(2, fault_plan=plan, round_timeout_s=30.0) as backend:
            backend.start(small_instance, TabuSearchConfig(nb_div=100))
            backend.run_round(make_tasks(small_instance, 2, evals=300))  # warm-up
            t0 = time.perf_counter()
            reports = backend.run_round(
                make_tasks(small_instance, 2, evals=300, round_index=0)
            )
            wall = time.perf_counter() - t0
            assert len(reports) == 3  # both slaves + the duplicate copy
            assert wall < 1.0, f"duplicate drain still costs a grace sleep ({wall:.2f}s)"

    def test_straggler_does_not_delay_peers(self, small_instance, mp_context):
        """A straggling slave inflates only its own collection latency.

        Factor 15 makes worker 0 sleep 0.7 s before reporting; with the
        multiplexed gather slaves 1..P-1 are collected the moment they
        report, so their gather-idle stays far below the straggler's —
        gather cost is bounded by the single slowest slave, not the
        rank-order sum of timeouts.
        """
        plan = FaultPlan(events=(FaultEvent(0, 0, FaultKind.STRAGGLE, factor=15.0),))
        with MultiprocessingBackend(
            3, mp_context=mp_context, fault_plan=plan, round_timeout_s=30.0
        ) as backend:
            backend.start(small_instance, TabuSearchConfig(nb_div=100))
            # Warm-up on a fault-free round: under the spawn context the
            # first task also pays interpreter startup, which would drown
            # the latencies this test measures.
            backend.run_round(make_tasks(small_instance, 3, evals=300, round_index=1))
            reports = backend.run_round(make_tasks(small_instance, 3, evals=500))
            assert [r.slave_id for r in reports] == [0, 1, 2]
            idle = backend.last_gather_idle_s
            assert sorted(idle) == [0, 1, 2]
            # The injected sleep is min(0.05 * (15 - 1), 1.0) = 0.7 s.
            assert idle[0] >= 0.6
            assert idle[1] < 0.5 and idle[2] < 0.5
            # The whole gather is bounded by the slowest slave, not by a
            # sum over ranks.
            assert backend.last_phase_seconds["gather"] < 0.7 + 2.0


class TestAsyncDegraded:
    def test_no_plan_matches_empty_plan(self, small_instance):
        base = solve_cts_async(
            small_instance, n_threads=3, rng_seed=5, max_evaluations=3000
        )
        empty = solve_cts_async(
            small_instance,
            n_threads=3,
            rng_seed=5,
            max_evaluations=3000,
            fault_plan=FaultPlan.none(),
        )
        assert base.best.value == empty.best.value
        assert base.value_history == empty.value_history
        assert base.total_evaluations == empty.total_evaluations

    def test_peer_crash_survived(self, small_instance):
        plan = FaultPlan(events=(FaultEvent(0, 0, FaultKind.CRASH),))
        result = solve_cts_async(
            small_instance,
            n_threads=3,
            rng_seed=5,
            max_evaluations=3000,
            fault_plan=plan,
            config=None,
        )
        assert result.fault_summary.get("crashed_peers") == 1
        assert result.best.value > 0
        assert result.best.is_feasible(small_instance)
        # Monotone incumbent despite the dead peer.
        hist = result.value_history
        assert all(b >= a for a, b in zip(hist, hist[1:]))

    def test_dropped_publication_counted(self, small_instance):
        plan = FaultPlan(events=(FaultEvent(0, 1, FaultKind.DROP_REPORT),))
        result = solve_cts_async(
            small_instance,
            n_threads=3,
            rng_seed=5,
            max_evaluations=3000,
            fault_plan=plan,
        )
        assert result.fault_summary.get("dropped_publications", 0) >= 1

    @pytest.mark.parametrize("seed", SEEDS)
    def test_fault_seed_reproducible(self, small_instance, seed):
        plan = FaultPlan.from_seed(seed, 3, 10, crash_rate=0.1, report_drop_rate=0.2)
        a = solve_cts_async(
            small_instance, n_threads=3, rng_seed=5, max_evaluations=3000, fault_plan=plan
        )
        b = solve_cts_async(
            small_instance, n_threads=3, rng_seed=5, max_evaluations=3000, fault_plan=plan
        )
        assert a.best.value == b.best.value
        assert a.value_history == b.value_history


class TestBackendRESULTTagUnchanged:
    def test_result_tag_constant(self):
        # The wire protocol stays frozen: chaos wraps it, never rewrites it.
        assert RESULT_TAG == 2


@pytest.mark.slow
class TestShmTransportChaos:
    """ISSUE-7 satellite: the chaos matrix replayed over the shm transport.

    The shm rings are per-worker resources, so every fault the pipe path
    survives must be survived here too — plus two shm-only hazards: a
    crashed worker must come back with *fresh* rings (the old segment died
    with its seqlock possibly mid-write), and a host that cannot allocate
    segments must degrade to pipe doorbell semantics without changing a
    single report.
    """

    def test_worker_crash_respawns_with_fresh_rings(self, small_instance):
        plan = FaultPlan(events=(FaultEvent(0, 0, FaultKind.CRASH),))
        with MultiprocessingBackend(
            2, transport="shm", fault_plan=plan, round_timeout_s=30.0
        ) as backend:
            backend.start(small_instance, TabuSearchConfig(nb_div=100))
            if backend.transport != "shm":
                pytest.skip("POSIX shared memory unavailable")
            old_ring_names = {r.name for r in backend._rings[0]}
            first = backend.run_round(make_tasks(small_instance, 2, evals=500))
            assert [r.slave_id for r in first] == [1]
            second = backend.run_round(
                make_tasks(small_instance, 2, evals=500, round_index=1)
            )
            assert [r.slave_id for r in second] == [0, 1]
            assert backend.respawns[0] == 1
            # The respawned worker speaks shm again, over *new* segments.
            assert backend.worker_transports[0] == "shm"
            assert {r.name for r in backend._rings[0]}.isdisjoint(old_ring_names)

    def test_crashed_worker_recores_over_fresh_rings(self, small_instance):
        """ISSUE-8 x ISSUE-7: the re-core-from-task guarantee holds when the
        respawned worker also has to renegotiate shm rings — the pattern
        travels through the binary codec, not the pickle fallback."""
        import numpy as np

        from repro.core.reduction import CoreSelector

        pattern = CoreSelector(small_instance).pattern(0.5, variant=1)
        out = ~pattern.core_mask
        plan = FaultPlan(events=(FaultEvent(0, 0, FaultKind.CRASH),))
        with MultiprocessingBackend(
            2, transport="shm", fault_plan=plan, round_timeout_s=30.0
        ) as backend:
            backend.start(small_instance, TabuSearchConfig(nb_div=100))
            if backend.transport != "shm":
                pytest.skip("POSIX shared memory unavailable")
            first = backend.run_round(
                make_core_tasks(small_instance, pattern, 2, evals=500)
            )
            assert [r.slave_id for r in first] == [1]
            second = backend.run_round(
                make_core_tasks(small_instance, pattern, 2, evals=500, round_index=1)
            )
            assert [r.slave_id for r in second] == [0, 1]
            assert backend.respawns[0] == 1
            assert backend.worker_transports[0] == "shm"
            for report in first + second:
                x = report.best.x
                assert small_instance.is_feasible(x)
                assert np.array_equal(x[out], pattern.fixed_values[out])

    def test_ring_allocation_failure_degrades_to_pipe(self, small_instance):
        from repro.parallel import backends as backends_mod

        plan = FaultPlan(events=(FaultEvent(0, 1, FaultKind.STRAGGLE, factor=4.0),))
        original_create = backends_mod.ShmRing.create

        def failing_create(*args, **kwargs):
            raise OSError("no space on /dev/shm")

        backends_mod.ShmRing.create = failing_create
        try:
            with MultiprocessingBackend(
                2, transport="shm", fault_plan=plan, round_timeout_s=30.0
            ) as backend:
                backend.start(small_instance, TabuSearchConfig(nb_div=100))
                # Degraded: doorbell-only pipes, but the same chaos replay.
                assert backend.worker_transports == ["pipe", "pipe"]
                assert backend.fault_counters["shm_fallback"] == 2
                reports = backend.run_round(make_tasks(small_instance, 2, evals=500))
                assert [r.slave_id for r in reports] == [0, 1]
        finally:
            backends_mod.ShmRing.create = original_create

    def test_straggler_idle_attribution_over_shm(self, small_instance):
        plan = FaultPlan(events=(FaultEvent(0, 0, FaultKind.STRAGGLE, factor=15.0),))
        with MultiprocessingBackend(
            3, transport="shm", fault_plan=plan, round_timeout_s=30.0
        ) as backend:
            backend.start(small_instance, TabuSearchConfig(nb_div=100))
            if backend.transport != "shm":
                pytest.skip("POSIX shared memory unavailable")
            backend.run_round(make_tasks(small_instance, 3, evals=300, round_index=1))
            reports = backend.run_round(make_tasks(small_instance, 3, evals=500))
            assert [r.slave_id for r in reports] == [0, 1, 2]
            idle = backend.last_gather_idle_s
            assert idle[0] >= 0.6
            assert idle[1] < 0.5 and idle[2] < 0.5

    @pytest.mark.parametrize("batch_k", [1, 2])
    def test_seeded_chaos_solve_keeps_incumbent_monotone(
        self, small_instance, batch_k
    ):
        from repro.variants import solve_cts2

        plan = FaultPlan.from_seed(
            int(os.environ.get("REPRO_CHAOS_SEED", "404")),
            n_slaves=3,
            n_rounds=4,
            crash_rate=0.1,
            report_drop_rate=0.1,
            duplicate_rate=0.15,
            delay_rate=0.15,
            straggle_rate=0.2,
        )
        backend = MultiprocessingBackend(
            3,
            transport="shm",
            batch_k=batch_k,
            fault_plan=plan,
            round_timeout_s=2.0,
        )
        try:
            result = solve_cts2(
                small_instance,
                n_slaves=3,
                n_rounds=4,
                rng_seed=11,
                max_evaluations=600,
                backend=backend,
            )
        finally:
            backend.shutdown()
        history = [float(v) for v in result.value_history]
        assert history, "chaos run produced no incumbent history"
        assert history == sorted(history), "incumbent regressed under chaos"
        assert result.best.value == history[-1]


class TestSocketBackendChaos:
    """Elastic socket backend under worker death (DESIGN.md §5.10).

    A scheduled :class:`FaultKind.CRASH` in a ``repro worker`` agent is a
    hard ``os._exit`` mid-batch — from the master's side indistinguishable
    from a SIGKILLed worker: the TCP stream dies mid-round, the member is
    buried, its shard re-dealt to the survivor.  Both pipelines must absorb
    that with a monotone incumbent and no hang.
    """

    @staticmethod
    def _elastic_backend(mp_context):
        """3-slave farm on 2 workers; the first worker dies in round 1.

        The crash plan covers every slave id, so whichever shard the doomed
        worker holds when round 1 arrives triggers it; the second worker is
        fault-free and absorbs the re-dealt shard.  Both workers must hold
        a shard before the run so the death actually buries slave ids.
        """
        from repro.parallel import SocketBackend

        doomed = FaultPlan(
            events=tuple(
                FaultEvent(round_index=1, slave_id=k, kind=FaultKind.CRASH)
                for k in range(3)
            )
        )
        backend = SocketBackend(3, round_timeout_s=2.0, heartbeat_timeout_s=5.0)
        backend.attach_local_workers(
            2, mp_context=mp_context, fault_plans=[doomed, None]
        )
        deadline = time.perf_counter() + 10.0
        while backend.joins < 2 and time.perf_counter() < deadline:
            backend._pump(0.05)
        assert backend.joins == 2, "workers never connected"
        return backend

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("pipeline", ["sync", "async"])
    def test_worker_killed_mid_round_keeps_incumbent_monotone(
        self, small_instance, mp_context, seed, pipeline
    ):
        from repro.variants import solve_cts2

        backend = self._elastic_backend(mp_context)
        try:
            result = solve_cts2(
                small_instance,
                n_slaves=3,
                n_rounds=4,
                rng_seed=seed,
                max_evaluations=600,
                backend=backend,
                pipeline=pipeline,
            )
        finally:
            counters = dict(backend.fault_counters)
            swept = backend.drain_dead_slaves()
            backend.shutdown()
        history = [float(v) for v in result.value_history]
        assert history, "chaos run produced no incumbent history"
        assert history == sorted(history), "incumbent regressed under chaos"
        assert result.best.value == history[-1]
        # The dead member is buried in the fault telemetry...
        assert counters.get("worker_lost", 0) >= 1
        if pipeline == "sync":
            # ...and its shard surfaces through the dead-slave sweep (the
            # async master consumes the sweep itself during the run).
            assert swept != []

    @pytest.mark.parametrize("seed", SEEDS)
    def test_seeded_worker_chaos_matrix(self, small_instance, mp_context, seed):
        """Randomized worker-side schedule: crashes + stragglers, no hang."""
        from repro.parallel import SocketBackend
        from repro.variants import solve_cts2

        plan = FaultPlan.from_seed(
            seed,
            n_slaves=3,
            n_rounds=4,
            crash_rate=0.1,
            straggle_rate=0.3,
        )
        backend = SocketBackend(3, round_timeout_s=2.0, heartbeat_timeout_s=5.0)
        backend.attach_local_workers(
            2, mp_context=mp_context, fault_plans=[plan, None]
        )
        try:
            result = solve_cts2(
                small_instance,
                n_slaves=3,
                n_rounds=4,
                rng_seed=seed,
                max_evaluations=600,
                backend=backend,
            )
        finally:
            backend.shutdown()
        history = [float(v) for v in result.value_history]
        assert history == sorted(history), "incumbent regressed under chaos"
        assert result.best.value == history[-1]
