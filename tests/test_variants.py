"""Tests for the SEQ/ITS/CTS1/CTS2 drivers and the result records."""

from __future__ import annotations

import pytest

from repro.master import MasterConfig
from repro.variants import (
    budget_for_virtual_seconds,
    solve_cts1,
    solve_cts2,
    solve_its,
    solve_seq,
)

EVALS = 25_000


class TestSeq:
    def test_runs_and_labels(self, small_instance):
        result = solve_seq(small_instance, rng_seed=0, max_evaluations=EVALS)
        assert result.variant == "SEQ"
        assert result.n_slaves == 1
        assert result.best.is_feasible(small_instance)
        assert result.total_evaluations >= EVALS * 0.5

    def test_virtual_time_accounted(self, small_instance):
        result = solve_seq(small_instance, rng_seed=0, max_evaluations=EVALS)
        assert result.virtual_seconds > 0
        assert result.trace is not None and len(result.trace) == 1

    def test_deterministic(self, small_instance):
        a = solve_seq(small_instance, rng_seed=3, max_evaluations=EVALS)
        b = solve_seq(small_instance, rng_seed=3, max_evaluations=EVALS)
        assert a.best == b.best
        assert a.virtual_seconds == b.virtual_seconds

    def test_budget_argument_validation(self, small_instance):
        with pytest.raises(ValueError, match="exactly one"):
            solve_seq(small_instance, rng_seed=0)
        with pytest.raises(ValueError, match="exactly one"):
            solve_seq(
                small_instance, rng_seed=0, max_evaluations=10, virtual_seconds=1.0
            )


class TestParallelVariants:
    @pytest.mark.parametrize(
        "solver,variant",
        [(solve_its, "ITS"), (solve_cts1, "CTS1"), (solve_cts2, "CTS2")],
    )
    def test_runs_and_labels(self, small_instance, solver, variant):
        result = solver(
            small_instance,
            n_slaves=4,
            n_rounds=3,
            rng_seed=0,
            max_evaluations=EVALS,
        )
        assert result.variant == variant
        assert result.n_slaves == 4
        assert result.n_rounds == 3
        assert result.best.is_feasible(small_instance)

    def test_deterministic(self, small_instance):
        a = solve_cts2(
            small_instance, n_slaves=3, n_rounds=2, rng_seed=9, max_evaluations=EVALS
        )
        b = solve_cts2(
            small_instance, n_slaves=3, n_rounds=2, rng_seed=9, max_evaluations=EVALS
        )
        assert a.best == b.best
        assert a.virtual_seconds == b.virtual_seconds
        assert a.bytes_sent == b.bytes_sent

    def test_parallel_time_tracks_slowest_not_sum(self, small_instance):
        """Virtual makespan must be ~per-slave work, not P× it."""
        seq = solve_seq(small_instance, rng_seed=0, max_evaluations=EVALS)
        par = solve_cts2(
            small_instance, n_slaves=4, n_rounds=2, rng_seed=0, max_evaluations=EVALS
        )
        assert par.total_evaluations > 2.5 * seq.total_evaluations
        assert par.virtual_seconds < 2.0 * seq.virtual_seconds

    def test_communication_traffic_recorded(self, small_instance):
        result = solve_cts1(
            small_instance, n_slaves=3, n_rounds=2, rng_seed=0, max_evaluations=EVALS
        )
        assert result.bytes_sent > 0
        assert all(r.communication_seconds > 0 for r in result.rounds)

    def test_master_config_consistency_enforced(self, small_instance):
        bad = MasterConfig(n_slaves=2, n_rounds=2, communicate=False, adapt_strategies=False)
        with pytest.raises(ValueError):
            solve_cts2(small_instance, max_evaluations=EVALS, master_config=bad)
        with pytest.raises(ValueError):
            solve_cts1(small_instance, max_evaluations=EVALS, master_config=bad)
        good_its = MasterConfig(
            n_slaves=2, n_rounds=2, communicate=True, adapt_strategies=True
        )
        with pytest.raises(ValueError):
            solve_its(small_instance, max_evaluations=EVALS, master_config=good_its)


class TestBudgetHelpers:
    def test_budget_for_virtual_seconds(self, small_instance):
        budget = budget_for_virtual_seconds(small_instance, 1.0)
        assert budget.max_evaluations > 0

    def test_virtual_seconds_entrypoint(self, small_instance):
        result = solve_seq(small_instance, rng_seed=0, virtual_seconds=0.05)
        # the run must stop within ~1 move of the requested virtual time
        assert result.virtual_seconds == pytest.approx(0.05, rel=0.2)


class TestResultMethods:
    def test_best_value_at(self, small_instance):
        result = solve_cts2(
            small_instance, n_slaves=3, n_rounds=3, rng_seed=0, max_evaluations=EVALS
        )
        early = result.best_value_at(result.virtual_seconds / 3)
        late = result.best_value_at(result.virtual_seconds * 2)
        assert early <= late
        assert late == max(r.best_value for r in result.rounds)

    def test_summary_contains_variant(self, small_instance):
        result = solve_seq(small_instance, rng_seed=0, max_evaluations=EVALS)
        assert "SEQ" in result.summary()
