"""Unit tests for the Strategy Generation Procedure (SGP)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Solution, Strategy, StrategyBounds
from repro.master import SGPConfig, SlaveEntry, classify_dispersion, update_strategies
from repro.parallel import SlaveReport


def sol(bits: list[int], value: float) -> Solution:
    return Solution(np.array(bits, dtype=np.int8), value)


def make_entry(slave_id=0, score=4, elite=None) -> SlaveEntry:
    e = SlaveEntry(
        slave_id=slave_id,
        strategy=Strategy(20, 4, 50),
        init_solution=sol([1, 0, 0, 0, 0, 0, 0, 0, 0, 0], 1.0),
        score=score,
    )
    e.best_solutions = elite or []
    return e


def report(slave_id=0, improved=True) -> SlaveReport:
    best = sol([1, 1, 0, 0, 0, 0, 0, 0, 0, 0], 10.0 if improved else 1.0)
    return SlaveReport(slave_id=slave_id, best=best, initial_value=5.0)


N_ITEMS = 10
BOUNDS = StrategyBounds()
RNG = np.random.default_rng(0)


class TestScoring:
    def test_increment_on_improvement(self):
        entry = make_entry(score=4)
        update_strategies([entry], [report(improved=True)], BOUNDS, SGPConfig(), N_ITEMS, RNG)
        assert entry.score == 5

    def test_decrement_on_failure(self):
        entry = make_entry(score=4)
        update_strategies([entry], [report(improved=False)], BOUNDS, SGPConfig(), N_ITEMS, RNG)
        assert entry.score == 3

    def test_keep_decision_while_score_positive(self):
        entry = make_entry(score=4)
        decisions = update_strategies(
            [entry], [report(improved=False)], BOUNDS, SGPConfig(), N_ITEMS, RNG
        )
        assert decisions[0].action == "keep"
        assert entry.strategy == Strategy(20, 4, 50)

    def test_regeneration_at_zero_resets_score(self):
        entry = make_entry(score=1)
        decisions = update_strategies(
            [entry], [report(improved=False)], BOUNDS, SGPConfig(), N_ITEMS, RNG
        )
        assert decisions[0].action != "keep"
        assert entry.score == SGPConfig().initial_score
        assert entry.regenerations == 1


class TestRegenerationDirection:
    def test_clustered_elite_diversifies(self):
        """B best solutions in close areas => raise lt/nb_drop (§4.2)."""
        clustered = [
            sol([1, 1, 1, 0, 0, 0, 0, 0, 0, 0], 5.0),
            sol([1, 1, 0, 1, 0, 0, 0, 0, 0, 0], 4.0),  # distance 2 < 10%*10... use close
        ]
        # make them distance 0.. hamming 2 / 10 items = 0.2 -> need < close_fraction
        config = SGPConfig(close_fraction=0.3, far_fraction=0.6)
        entry = make_entry(score=1, elite=clustered)
        old = entry.strategy
        decisions = update_strategies(
            [entry], [report(improved=False)], BOUNDS, config, N_ITEMS, RNG
        )
        assert decisions[0].action == "diversify"
        assert entry.strategy.lt_length > old.lt_length
        assert entry.strategy.nb_drop > old.nb_drop

    def test_dispersed_elite_intensifies(self):
        dispersed = [
            sol([1, 1, 1, 1, 1, 0, 0, 0, 0, 0], 5.0),
            sol([0, 0, 0, 0, 0, 1, 1, 1, 1, 1], 4.0),  # distance 10
        ]
        config = SGPConfig(close_fraction=0.1, far_fraction=0.5)
        entry = make_entry(score=1, elite=dispersed)
        old = entry.strategy
        decisions = update_strategies(
            [entry], [report(improved=False)], BOUNDS, config, N_ITEMS, RNG
        )
        assert decisions[0].action == "intensify"
        assert entry.strategy.lt_length < old.lt_length
        assert entry.strategy.nb_drop < old.nb_drop

    def test_insufficient_elite_goes_random(self):
        entry = make_entry(score=1, elite=[sol([1] + [0] * 9, 5.0)])
        decisions = update_strategies(
            [entry], [report(improved=False)], BOUNDS, SGPConfig(), N_ITEMS, RNG
        )
        assert decisions[0].action == "random"

    def test_middle_dispersion_goes_random(self):
        assert classify_dispersion(2.0, 10, SGPConfig(close_fraction=0.1, far_fraction=0.5)) == "random"

    def test_classify_edges(self):
        config = SGPConfig(close_fraction=0.1, far_fraction=0.5)
        assert classify_dispersion(0.5, 10, config) == "diversify"
        assert classify_dispersion(6.0, 10, config) == "intensify"
        with pytest.raises(ValueError):
            classify_dispersion(1.0, 0, config)


class TestValidation:
    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            update_strategies([make_entry()], [], BOUNDS, SGPConfig(), N_ITEMS, RNG)

    def test_misaligned_ids(self):
        with pytest.raises(ValueError, match="misaligned"):
            update_strategies(
                [make_entry(slave_id=0)],
                [report(slave_id=1)],
                BOUNDS,
                SGPConfig(),
                N_ITEMS,
                RNG,
            )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SGPConfig(initial_score=0)
        with pytest.raises(ValueError):
            SGPConfig(close_fraction=0.5, far_fraction=0.2)
        with pytest.raises(ValueError):
            SGPConfig(mutation_intensity=0.0)
