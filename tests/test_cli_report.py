"""Tests for the CLI report command (separate from the core CLI tests)."""

from __future__ import annotations

from repro.cli import main


class TestReportCommand:
    def test_report_to_stdout(self, tmp_path, capsys):
        (tmp_path / "fp57.txt").write_text("E1 MARKER", encoding="utf-8")
        code = main(["report", "--results-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "E1 MARKER" in out
        assert "# Benchmark results" in out

    def test_report_to_file(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "table1_gk.txt").write_text("T1 MARKER", encoding="utf-8")
        out_file = tmp_path / "REPORT.md"
        code = main(
            ["report", "--results-dir", str(results), "--out", str(out_file)]
        )
        assert code == 0
        assert "T1 MARKER" in out_file.read_text(encoding="utf-8")
        assert "wrote report" in capsys.readouterr().out

    def test_report_empty_dir(self, tmp_path, capsys):
        code = main(["report", "--results-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "not yet generated" in out
