"""Unit tests for :mod:`repro.instances.io` (OR-Library text format)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.instances import (
    read_instance,
    read_orlib_file,
    uncorrelated_instance,
    write_instance,
    write_orlib_file,
)


class TestSingleInstance:
    def test_roundtrip(self, tmp_path, small_instance):
        path = tmp_path / "inst.txt"
        write_instance(small_instance, path)
        loaded = read_instance(path)
        np.testing.assert_allclose(loaded.weights, small_instance.weights)
        np.testing.assert_allclose(loaded.capacities, small_instance.capacities)
        np.testing.assert_allclose(loaded.profits, small_instance.profits)

    def test_roundtrip_preserves_optimum(self, tmp_path, tiny_instance):
        path = tmp_path / "tiny.txt"
        write_instance(tiny_instance, path)
        loaded = read_instance(path)
        assert loaded.optimum == 18.0

    def test_unknown_optimum_is_zero_header(self, tmp_path, small_instance):
        path = tmp_path / "inst.txt"
        write_instance(small_instance, path)
        header = path.read_text().splitlines()[0].split()
        assert header == ["30", "5", "0"]
        assert read_instance(path).optimum is None

    def test_name_from_stem(self, tmp_path, small_instance):
        path = tmp_path / "myproblem.txt"
        write_instance(small_instance, path)
        assert read_instance(path).name == "myproblem"

    def test_comments_ignored(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text(
            "# a comment\n2 1 0  # inline comment\n3 4\n1 2\n5\n"
        )
        inst = read_instance(path)
        assert inst.n_items == 2
        np.testing.assert_allclose(inst.profits, [3, 4])

    def test_truncated_file(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("5 2 0\n1 2 3\n")
        with pytest.raises(ValueError, match="truncated"):
            read_instance(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        with pytest.raises(ValueError):
            read_instance(path)

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 0\n")
        with pytest.raises(ValueError, match="invalid header"):
            read_instance(path)


class TestMultiInstance:
    def test_roundtrip(self, tmp_path):
        suite = [uncorrelated_instance(2, 6, rng=k) for k in range(3)]
        path = tmp_path / "suite.txt"
        write_orlib_file(suite, path)
        loaded = read_orlib_file(path)
        assert len(loaded) == 3
        for orig, got in zip(suite, loaded):
            np.testing.assert_allclose(got.weights, orig.weights)

    def test_names_enumerated(self, tmp_path):
        suite = [uncorrelated_instance(2, 6, rng=k) for k in range(2)]
        path = tmp_path / "suite.txt"
        write_orlib_file(suite, path)
        loaded = read_orlib_file(path)
        assert [i.name for i in loaded] == ["suite-1", "suite-2"]

    def test_bad_count(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(ValueError, match="invalid instance count"):
            read_orlib_file(path)

    def test_fractional_data_roundtrip(self, tmp_path):
        from repro.core import MKPInstance

        inst = MKPInstance.from_lists(
            weights=[[1.5, 2.25]], capacities=[3.75], profits=[1.5, 2.0]
        )
        path = tmp_path / "frac.txt"
        write_instance(inst, path)
        loaded = read_instance(path)
        np.testing.assert_allclose(loaded.weights, inst.weights)
        np.testing.assert_allclose(loaded.capacities, inst.capacities)
