"""Tests for the decentralized asynchronous variant (future-work §6)."""

from __future__ import annotations

import pytest

from repro.analysis import load_balance
from repro.farm import EventKind
from repro.variants import AsyncConfig, solve_cts_async

EVALS = 20_000


class TestRun:
    def test_basic_run(self, small_instance):
        result = solve_cts_async(
            small_instance, n_threads=4, rng_seed=0, max_evaluations=EVALS
        )
        assert result.variant == "CTS-async"
        assert result.n_slaves == 4
        assert result.best.is_feasible(small_instance)
        assert result.total_evaluations >= 4 * EVALS * 0.5

    def test_deterministic(self, small_instance):
        a = solve_cts_async(
            small_instance, n_threads=3, rng_seed=5, max_evaluations=EVALS
        )
        b = solve_cts_async(
            small_instance, n_threads=3, rng_seed=5, max_evaluations=EVALS
        )
        assert a.best == b.best
        assert a.virtual_seconds == b.virtual_seconds

    def test_no_barrier_idle_time(self, small_instance):
        """Asynchrony's selling point: zero barrier-wait events."""
        result = solve_cts_async(
            small_instance, n_threads=4, rng_seed=0, max_evaluations=EVALS
        )
        assert result.trace is not None
        assert result.trace.total_by_kind(EventKind.BARRIER_WAIT) == 0.0
        assert load_balance(result.trace).idle_ratio == 0.0

    def test_publishes_to_blackboard(self, small_instance):
        result = solve_cts_async(
            small_instance, n_threads=3, rng_seed=0, max_evaluations=EVALS
        )
        assert result.bytes_sent > 0
        sends = result.trace.total_by_kind(EventKind.SEND)
        assert sends > 0

    def test_segments_recorded_as_rounds(self, small_instance):
        config = AsyncConfig(n_threads=2, segment_evaluations=5_000)
        result = solve_cts_async(
            small_instance,
            n_threads=2,
            rng_seed=0,
            max_evaluations=EVALS,
            config=config,
        )
        # ~ EVALS/segment per thread segments in total
        assert result.n_rounds >= 2 * (EVALS // 5_000) - 2

    def test_monotone_value_history(self, small_instance):
        result = solve_cts_async(
            small_instance, n_threads=3, rng_seed=0, max_evaluations=EVALS
        )
        hist = result.value_history
        assert all(b >= a for a, b in zip(hist, hist[1:]))

    def test_budget_validation(self, small_instance):
        with pytest.raises(ValueError, match="exactly one"):
            solve_cts_async(small_instance, rng_seed=0)

    def test_config_thread_mismatch(self, small_instance):
        with pytest.raises(ValueError, match="conflicts"):
            solve_cts_async(
                small_instance,
                n_threads=4,
                rng_seed=0,
                max_evaluations=100,
                config=AsyncConfig(n_threads=2),
            )

    def test_virtual_seconds_entrypoint(self, small_instance):
        result = solve_cts_async(
            small_instance, n_threads=2, rng_seed=0, virtual_seconds=0.02
        )
        assert result.virtual_seconds == pytest.approx(0.02, rel=0.5)


class TestAsyncConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AsyncConfig(n_threads=0)
        with pytest.raises(ValueError):
            AsyncConfig(segment_evaluations=0)
        with pytest.raises(ValueError):
            AsyncConfig(alpha=0.0)
        with pytest.raises(ValueError):
            AsyncConfig(stagnation_segments=0)
        with pytest.raises(ValueError):
            AsyncConfig(initial_score=0)
