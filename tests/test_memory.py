"""Unit tests for :mod:`repro.core.memory` (History + EliteArray)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EliteArray, History, Solution


def sol(bits: list[int], value: float) -> Solution:
    return Solution(np.array(bits, dtype=np.int8), value)


class TestHistory:
    def test_counts_accumulate(self):
        h = History(3)
        h.record(np.array([1, 0, 1]))
        h.record(np.array([1, 0, 0]))
        np.testing.assert_array_equal(h.counts, [2, 0, 1])
        assert h.iterations == 2

    def test_frequency(self):
        h = History(3)
        h.record(np.array([1, 0, 1]))
        h.record(np.array([1, 0, 0]))
        np.testing.assert_allclose(h.frequency(), [1.0, 0.0, 0.5])

    def test_frequency_empty(self):
        h = History(3)
        np.testing.assert_array_equal(h.frequency(), [0.0, 0.0, 0.0])

    def test_thresholds(self):
        h = History(3)
        h.record(np.array([1, 0, 1]))
        h.record(np.array([1, 0, 0]))
        assert list(h.overused(0.8)) == [0]
        assert list(h.underused(0.2)) == [1]

    def test_reset(self):
        h = History(2)
        h.record(np.array([1, 1]))
        h.reset()
        assert h.iterations == 0
        np.testing.assert_array_equal(h.counts, [0, 0])

    def test_merged(self):
        a, b = History(2), History(2)
        a.record(np.array([1, 0]))
        b.record(np.array([1, 1]))
        merged = a.merged_with(b)
        np.testing.assert_array_equal(merged.counts, [2, 1])
        assert merged.iterations == 2

    def test_merge_size_mismatch(self):
        with pytest.raises(ValueError):
            History(2).merged_with(History(3))

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            History(0)


class TestEliteArray:
    def test_keeps_best_sorted(self):
        elite = EliteArray(3)
        for v, bits in [(5, [1, 0, 0]), (9, [0, 1, 0]), (7, [0, 0, 1])]:
            assert elite.offer(sol(bits, v))
        assert [s.value for s in elite] == [9, 7, 5]
        assert elite.best.value == 9

    def test_eviction_at_capacity(self):
        elite = EliteArray(2)
        elite.offer(sol([1, 0, 0], 5))
        elite.offer(sol([0, 1, 0], 9))
        assert elite.offer(sol([0, 0, 1], 7))  # evicts 5
        assert [s.value for s in elite] == [9, 7]

    def test_rejects_below_worst_when_full(self):
        elite = EliteArray(2)
        elite.offer(sol([1, 0, 0], 5))
        elite.offer(sol([0, 1, 0], 9))
        assert not elite.offer(sol([0, 0, 1], 4))

    def test_distinctness_by_vector(self):
        elite = EliteArray(3)
        assert elite.offer(sol([1, 0], 5))
        assert not elite.offer(sol([1, 0], 5))
        assert len(elite) == 1

    def test_plateau_distinct_vectors_accepted(self):
        elite = EliteArray(3)
        assert elite.offer(sol([1, 0], 5))
        assert elite.offer(sol([0, 1], 5))
        assert len(elite) == 2

    def test_qualifies(self):
        elite = EliteArray(2)
        assert elite.qualifies(0.0)  # not yet full
        elite.offer(sol([1, 0], 5))
        elite.offer(sol([0, 1], 9))
        assert elite.qualifies(6.0)
        assert not elite.qualifies(5.0)

    def test_worst_value(self):
        elite = EliteArray(2)
        assert elite.worst_value == float("-inf")
        elite.offer(sol([1, 0], 5))
        assert elite.worst_value == float("-inf")  # still not full
        elite.offer(sol([0, 1], 9))
        assert elite.worst_value == 5

    def test_to_list_is_copy(self):
        elite = EliteArray(2)
        elite.offer(sol([1, 0], 5))
        listed = elite.to_list()
        listed.clear()
        assert len(elite) == 1

    def test_clear(self):
        elite = EliteArray(2)
        elite.offer(sol([1, 0], 5))
        elite.clear()
        assert len(elite) == 0
        assert elite.best is None
        # after clear the same vector can re-enter
        assert elite.offer(sol([1, 0], 5))

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            EliteArray(0)
