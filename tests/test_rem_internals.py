"""White-box tests for the Reverse Elimination Method's trace logic."""

from __future__ import annotations

from repro.baselines.rem_tabu import _reverse_elimination


class TestReverseElimination:
    def test_immediate_undo_forbidden(self):
        """After flipping {3}, flipping {3} again recreates the previous
        solution — REM must mark attribute 3 tabu."""
        tabu, steps = _reverse_elimination([[3]], None)
        assert tabu == {3}
        assert steps == 1

    def test_two_step_cycle_detected(self):
        """Moves [{1}, {2}] leave residual {1,2} vs the origin and {2} vs
        the mid state: only 2 is a one-flip return."""
        tabu, _ = _reverse_elimination([[1], [2]], None)
        assert tabu == {2}

    def test_cancellation_across_moves(self):
        """Moves [{1}, {2}, {1}] : walking back, residuals are {1}, {1,2},
        {2} — both 1 (undo last move) and 2 (return to the post-move-1
        state) are one flip away."""
        tabu, _ = _reverse_elimination([[1], [2], [1]], None)
        assert tabu == {1, 2}

    def test_compound_moves_not_blocked_as_singletons(self):
        """A compound move {1, 2} leaves a residual of size 2 — no single
        flip recreates the previous solution, so nothing is tabu."""
        tabu, _ = _reverse_elimination([[1, 2]], None)
        assert tabu == set()

    def test_trace_limit_caps_lookback(self):
        running = [[k] for k in range(100)]
        _, steps = _reverse_elimination(running, trace_limit=7)
        assert steps == 7

    def test_full_trace_is_linear_in_history(self):
        running = [[k] for k in range(50)]
        _, steps = _reverse_elimination(running, None)
        assert steps == 50

    def test_exactness_against_brute_force(self):
        """REM's tabu set == the set of attributes whose flip recreates a
        previously visited solution (checked by replaying the walk)."""
        moves = [[1], [2, 3], [1], [4], [2]]
        # replay: visited solutions as frozensets of set bits
        visited = [frozenset()]
        current: set[int] = set()
        for flips in moves:
            current ^= set(flips)
            visited.append(frozenset(current))
        expected = {
            attr
            for attr in range(6)
            if frozenset(current ^ {attr}) in visited[:-1]
        }
        tabu, _ = _reverse_elimination(moves, None)
        assert tabu == expected
