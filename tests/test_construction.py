"""Unit tests for :mod:`repro.core.construction`."""

from __future__ import annotations

import numpy as np

from repro.core import (
    SearchState,
    fill_greedily,
    greedy_solution,
    random_solution,
    repair,
)


class TestGreedy:
    def test_feasible(self, small_instance):
        sol = greedy_solution(small_instance)
        assert sol.is_feasible(small_instance)

    def test_maximal(self, small_instance):
        """Greedy output is maximal: no further item fits."""
        sol = greedy_solution(small_instance)
        state = SearchState.from_solution(small_instance, sol)
        assert state.fitting_items().size == 0

    def test_deterministic(self, small_instance):
        assert greedy_solution(small_instance) == greedy_solution(small_instance)

    def test_tiny_greedy_value(self, tiny_instance):
        # Density order packs {0, 3} (value 13) — maximal but sub-optimal,
        # which is exactly the gap tabu search must close (optimum 18).
        sol = greedy_solution(tiny_instance)
        assert sol.value == 13.0
        assert set(sol.items) == {0, 3}


class TestRandom:
    def test_feasible_and_maximal(self, small_instance):
        sol = random_solution(small_instance, rng=7)
        assert sol.is_feasible(small_instance)
        state = SearchState.from_solution(small_instance, sol)
        assert state.fitting_items().size == 0

    def test_seed_reproducibility(self, small_instance):
        assert random_solution(small_instance, rng=5) == random_solution(
            small_instance, rng=5
        )

    def test_different_seeds_diverge(self, medium_instance):
        sols = {random_solution(medium_instance, rng=s).x.tobytes() for s in range(8)}
        assert len(sols) > 1


class TestFillGreedily:
    def test_respects_order(self, tiny_instance):
        state = SearchState.empty(tiny_instance)
        fill_greedily(state, order=np.array([1, 0, 2, 3]))
        # item1 (6,4) fits first; then item0 (5,3) does not (11 > 10);
        # item2 (4,5) fits? load (6,4)+(4,5)=(10,9) -> 9 > 8 no; item3 (2,1) fits.
        assert list(state.packed_items()) == [1, 3]

    def test_skips_packed(self, tiny_instance):
        state = SearchState.empty(tiny_instance)
        state.add(0)
        fill_greedily(state, order=np.array([0, 3]))
        assert state.x[0] == 1 and state.x[3] == 1


class TestRepairOrder:
    def test_ejects_worst_density_first(self, tiny_instance):
        state = SearchState.empty(tiny_instance)
        for j in range(4):
            state.add(j)
        assert not state.is_feasible
        repair(state)
        assert state.is_feasible
        # Worst density item(s) must be gone; density = col sums / profit.
        density = tiny_instance.density
        packed = set(state.packed_items())
        dropped = set(range(4)) - packed
        assert dropped, "repair must drop something on an overloaded state"
        assert max(density[list(dropped)]) >= max(
            density[list(packed)].min(), 0
        )

    def test_returns_drop_count(self, tiny_instance):
        state = SearchState.empty(tiny_instance)
        for j in range(4):
            state.add(j)
        count = repair(state)
        assert count == 4 - len(state.packed_items())
