"""Unit tests for :mod:`repro.core.tabu_list`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TabuList


class TestBasics:
    def test_initially_free(self):
        tl = TabuList(5, tenure=3)
        assert not any(tl.is_tabu(j) for j in range(5))
        assert tl.active_count() == 0

    def test_tabu_for_exactly_tenure_ticks(self):
        tl = TabuList(5, tenure=3)
        tl.make_tabu(2)
        for _ in range(3):
            assert tl.is_tabu(2)
            tl.tick()
        assert not tl.is_tabu(2)

    def test_zero_tenure_disables(self):
        tl = TabuList(5, tenure=0)
        tl.make_tabu(1)
        assert not tl.is_tabu(1)

    def test_extra_tenure(self):
        tl = TabuList(5, tenure=2)
        tl.make_tabu(0, extra_tenure=3)
        for _ in range(5):
            assert tl.is_tabu(0)
            tl.tick()
        assert not tl.is_tabu(0)

    def test_remaining(self):
        tl = TabuList(5, tenure=4)
        tl.make_tabu(3)
        assert tl.remaining(3) == 4
        tl.tick()
        assert tl.remaining(3) == 3
        assert tl.remaining(0) == 0

    def test_re_tabu_does_not_shorten(self):
        tl = TabuList(5, tenure=5)
        tl.make_tabu(1, extra_tenure=10)
        tl.tick()
        tl.make_tabu(1)  # plain tenure would expire earlier
        assert tl.remaining(1) == 14  # 15 from start, one tick passed

    def test_clear(self):
        tl = TabuList(5, tenure=3)
        tl.make_tabu(np.array([0, 1, 2]))
        tl.clear()
        assert tl.active_count() == 0


class TestVectorized:
    def test_mask_all_items(self):
        tl = TabuList(4, tenure=2)
        tl.make_tabu(np.array([1, 3]))
        np.testing.assert_array_equal(
            tl.tabu_mask(), [False, True, False, True]
        )

    def test_mask_subset(self):
        tl = TabuList(4, tenure=2)
        tl.make_tabu(np.array([1, 3]))
        np.testing.assert_array_equal(
            tl.tabu_mask(np.array([3, 0])), [True, False]
        )

    def test_admissible(self):
        tl = TabuList(6, tenure=2)
        tl.make_tabu(np.array([0, 2, 4]))
        np.testing.assert_array_equal(
            tl.admissible(np.arange(6)), [1, 3, 5]
        )


class TestDynamicTenure:
    def test_set_tenure_applies_to_new_entries_only(self):
        tl = TabuList(5, tenure=2)
        tl.make_tabu(0)
        tl.set_tenure(10)
        tl.make_tabu(1)
        tl.tick()
        tl.tick()
        assert not tl.is_tabu(0)  # old entry expired on old tenure
        assert tl.is_tabu(1)

    def test_invalid_tenure(self):
        with pytest.raises(ValueError):
            TabuList(5, tenure=-1)
        tl = TabuList(5, tenure=2)
        with pytest.raises(ValueError):
            tl.set_tenure(-3)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            TabuList(0, tenure=1)


class TestAspiration:
    def test_strictly_better_required(self):
        assert TabuList.aspiration_met(10.5, 10.0)
        assert not TabuList.aspiration_met(10.0, 10.0)
        assert not TabuList.aspiration_met(9.0, 10.0)
