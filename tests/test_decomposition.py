"""Tests for the problem-decomposition variant (§2 source 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.variants import partition_items, solve_decomposition


class TestPartition:
    def test_partition_is_exact_cover(self, medium_instance):
        blocks = partition_items(medium_instance, 4)
        combined = np.sort(np.concatenate(blocks))
        np.testing.assert_array_equal(combined, np.arange(medium_instance.n_items))

    def test_block_sizes_balanced(self, medium_instance):
        blocks = partition_items(medium_instance, 3)
        sizes = [b.size for b in blocks]
        assert max(sizes) - min(sizes) <= 1

    def test_round_robin_mixes_density_ranks(self, medium_instance):
        """Every block's mean density *rank* matches the global mean rank —
        the round-robin guarantee (raw density is heavy-tailed, so raw
        means can still differ)."""
        blocks = partition_items(medium_instance, 4)
        ranks = np.empty(medium_instance.n_items)
        ranks[np.argsort(medium_instance.density, kind="stable")] = np.arange(
            medium_instance.n_items
        )
        global_mean_rank = ranks.mean()
        for block in blocks:
            assert abs(ranks[block].mean() - global_mean_rank) <= len(blocks)

    def test_k_larger_than_n(self, tiny_instance):
        blocks = partition_items(tiny_instance, 10)
        assert len(blocks) == tiny_instance.n_items

    def test_invalid_k(self, tiny_instance):
        with pytest.raises(ValueError):
            partition_items(tiny_instance, 0)


class TestSolveDecomposition:
    def test_feasible_result(self, medium_instance):
        result = solve_decomposition(
            medium_instance, n_blocks=4, rng_seed=0, max_evaluations=20_000
        )
        assert result.best.is_feasible(medium_instance)
        assert result.variant == "DECOMP"
        assert result.n_slaves == 4

    def test_deterministic(self, medium_instance):
        a = solve_decomposition(
            medium_instance, n_blocks=3, rng_seed=7, max_evaluations=15_000
        )
        b = solve_decomposition(
            medium_instance, n_blocks=3, rng_seed=7, max_evaluations=15_000
        )
        assert a.best == b.best

    def test_polish_never_hurts(self, medium_instance):
        result = solve_decomposition(
            medium_instance, n_blocks=4, rng_seed=0, max_evaluations=20_000
        )
        merged_value, final_value = result.value_history
        assert final_value >= merged_value

    def test_budget_validation(self, medium_instance):
        with pytest.raises(ValueError, match="exactly one"):
            solve_decomposition(medium_instance, rng_seed=0)
        with pytest.raises(ValueError, match="polish_fraction"):
            solve_decomposition(
                medium_instance, rng_seed=0, max_evaluations=100, polish_fraction=1.0
            )

    def test_virtual_seconds_entry(self, medium_instance):
        result = solve_decomposition(
            medium_instance, n_blocks=2, rng_seed=0, virtual_seconds=0.02
        )
        assert result.virtual_seconds > 0

    def test_loses_to_cooperative_search(self, medium_instance):
        """The documented limitation: decomposition is lossy vs CTS2.

        Not a strict per-seed guarantee, so compare aggregates of 3 seeds.
        """
        from repro.variants import solve_cts2

        dec = sum(
            solve_decomposition(
                medium_instance, n_blocks=4, rng_seed=s, max_evaluations=25_000
            ).best.value
            for s in range(3)
        )
        cts = sum(
            solve_cts2(
                medium_instance,
                n_slaves=4,
                n_rounds=5,
                rng_seed=s,
                max_evaluations=25_000,
            ).best.value
            for s in range(3)
        )
        assert cts >= dec
