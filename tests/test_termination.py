"""Unit tests for :mod:`repro.core.termination`."""

from __future__ import annotations

import pytest

from repro.core import Budget


class TestBudget:
    def test_unlimited_never_exhausts(self):
        b = Budget.unlimited()
        assert not b.exhausted(evaluations=10**12, moves=10**12, best_value=1e18)

    def test_max_evaluations(self):
        b = Budget(max_evaluations=100)
        assert not b.exhausted(evaluations=99, moves=0, best_value=0)
        assert b.exhausted(evaluations=100, moves=0, best_value=0)

    def test_max_moves(self):
        b = Budget(max_moves=5)
        assert not b.exhausted(evaluations=0, moves=4, best_value=0)
        assert b.exhausted(evaluations=0, moves=5, best_value=0)

    def test_target_value(self):
        b = Budget(target_value=50.0)
        assert not b.exhausted(evaluations=0, moves=0, best_value=49.9)
        assert b.exhausted(evaluations=0, moves=0, best_value=50.0)

    def test_wall_seconds(self):
        b = Budget(wall_seconds=0.0).start()
        assert b.exhausted(evaluations=0, moves=0, best_value=0)

    def test_wall_clock_auto_starts(self):
        b = Budget(wall_seconds=100.0)
        # First check arms the clock rather than crashing.
        assert not b.exhausted(evaluations=0, moves=0, best_value=0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Budget(max_evaluations=-1)
        with pytest.raises(ValueError):
            Budget(max_moves=-1)
        with pytest.raises(ValueError):
            Budget(wall_seconds=-0.1)

    def test_scaled(self):
        b = Budget(max_evaluations=100, max_moves=10, target_value=5.0)
        half = b.scaled(0.5)
        assert half.max_evaluations == 50
        assert half.max_moves == 5
        assert half.target_value == 5.0

    def test_scaled_preserves_none(self):
        b = Budget(max_evaluations=100)
        half = b.scaled(0.5)
        assert half.max_moves is None
        assert half.wall_seconds is None

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Budget(max_evaluations=10).scaled(0.0)

    def test_start_chains(self):
        b = Budget(wall_seconds=10.0)
        assert b.start() is b
