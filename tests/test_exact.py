"""Unit tests for branch & bound, DP, and preprocessing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MKPInstance, greedy_solution
from repro.exact import (
    branch_and_bound,
    reduce_instance,
    solve_instance_dp,
    solve_knapsack_dp,
)
from repro.instances import correlated_instance, uncorrelated_instance


def brute_force(instance: MKPInstance) -> float:
    """Exhaustive optimum for n <= ~16."""
    n = instance.n_items
    best = 0.0
    for mask in range(1 << n):
        x = np.array([(mask >> k) & 1 for k in range(n)], dtype=np.int8)
        if instance.is_feasible(x):
            best = max(best, instance.objective(x))
    return best


class TestDP:
    def test_simple(self):
        value, x = solve_knapsack_dp(
            np.array([60.0, 100.0, 120.0]), np.array([10.0, 20.0, 30.0]), 50
        )
        assert value == 220.0
        np.testing.assert_array_equal(x, [0, 1, 1])

    def test_zero_capacity(self):
        value, x = solve_knapsack_dp(np.array([5.0]), np.array([3.0]), 0)
        assert value == 0.0
        assert x[0] == 0

    def test_zero_weight_item_taken(self):
        value, x = solve_knapsack_dp(np.array([5.0, 4.0]), np.array([0.0, 2.0]), 1)
        assert value == 5.0
        assert x[0] == 1

    def test_solution_vector_consistent(self):
        rng = np.random.default_rng(3)
        p = rng.integers(1, 50, 12).astype(float)
        w = rng.integers(1, 30, 12).astype(float)
        cap = float(w.sum() // 3)
        value, x = solve_knapsack_dp(p, w, cap)
        assert x @ w <= cap
        assert value == pytest.approx(float(x @ p))

    def test_rejects_fractional_weights(self):
        with pytest.raises(ValueError, match="integer"):
            solve_knapsack_dp(np.array([1.0]), np.array([1.5]), 3)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            solve_knapsack_dp(np.array([1.0]), np.array([-1.0]), 3)
        with pytest.raises(ValueError):
            solve_knapsack_dp(np.array([1.0]), np.array([1.0]), -3)

    def test_instance_wrapper_requires_m1(self, small_instance):
        with pytest.raises(ValueError):
            solve_instance_dp(small_instance)


class TestBranchAndBound:
    def test_matches_brute_force_small(self):
        for seed in range(5):
            inst = uncorrelated_instance(3, 12, rng=seed)
            result = branch_and_bound(inst)
            assert result.proven
            assert result.value == pytest.approx(brute_force(inst))

    def test_matches_dp_single_constraint(self):
        for seed in range(5):
            inst = uncorrelated_instance(1, 18, rng=100 + seed)
            dp_value, _ = solve_instance_dp(inst)
            bb = branch_and_bound(inst)
            assert bb.proven
            assert bb.value == pytest.approx(dp_value)

    def test_solution_vector_is_feasible_and_consistent(self, small_instance):
        result = branch_and_bound(small_instance)
        assert result.solution.is_feasible(small_instance)
        assert result.value == pytest.approx(
            small_instance.objective(result.solution.x)
        )

    def test_at_least_greedy(self, medium_instance):
        result = branch_and_bound(medium_instance, node_limit=50_000)
        assert result.value >= greedy_solution(medium_instance).value

    def test_root_bound_valid(self, small_instance):
        result = branch_and_bound(small_instance)
        assert result.root_bound >= result.value - 1e-9
        assert 0.0 <= result.gap() <= 1.0

    def test_node_limit_returns_unproven(self):
        inst = correlated_instance(10, 60, rng=17)
        result = branch_and_bound(inst, node_limit=10)
        assert not result.proven
        assert result.solution.is_feasible(inst)

    def test_warm_start_respected(self, small_instance):
        warm = greedy_solution(small_instance)
        result = branch_and_bound(small_instance, incumbent=warm)
        assert result.value >= warm.value

    def test_warm_start_must_be_feasible(self, tiny_instance):
        from repro.core import Solution

        bad = Solution(np.array([1, 1, 1, 1]), 28.0)
        with pytest.raises(ValueError):
            branch_and_bound(tiny_instance, incumbent=bad)

    def test_tiny_instance_optimum(self, tiny_instance):
        result = branch_and_bound(tiny_instance)
        assert result.proven
        assert result.value == 18.0

    def test_invalid_node_limit(self, tiny_instance):
        with pytest.raises(ValueError):
            branch_and_bound(tiny_instance, node_limit=0)


class TestPreprocess:
    def test_redundant_constraint_removed(self):
        inst = MKPInstance.from_lists(
            weights=[[1, 1, 1], [100, 100, 100]],
            capacities=[2, 1000],  # second constraint can never bind
            profits=[3, 2, 1],
        )
        red = reduce_instance(inst)
        assert red.reduced.n_constraints == 1
        assert list(red.kept_constraints) == [0]

    def test_misfit_items_fixed_zero(self):
        inst = MKPInstance.from_lists(
            weights=[[5, 50, 3]],
            capacities=[10],
            profits=[1, 100, 1],
        )
        red = reduce_instance(inst)
        assert 1 in red.fixed_zero
        assert red.reduced.n_items == 2

    def test_lift_roundtrip(self):
        inst = MKPInstance.from_lists(
            weights=[[5, 50, 3]],
            capacities=[10],
            profits=[1, 100, 1],
        )
        red = reduce_instance(inst)
        x_red = np.ones(red.reduced.n_items, dtype=np.int8)
        x = red.lift(x_red)
        assert x.shape == (3,)
        assert x[1] == 0

    def test_reduction_preserves_optimum(self):
        for seed in range(4):
            inst = uncorrelated_instance(3, 12, rng=200 + seed)
            full = branch_and_bound(inst)
            incumbent = greedy_solution(inst)
            red = reduce_instance(inst, incumbent_value=incumbent.value)
            sub = branch_and_bound(red.reduced)
            assert sub.proven and full.proven
            lifted_value = red.lift_value(sub.value)
            assert lifted_value == pytest.approx(full.value)
            # lifted vector must be feasible in the original space
            assert inst.is_feasible(red.lift(sub.solution.x))

    def test_lift_shape_validation(self):
        inst = uncorrelated_instance(2, 8, rng=1)
        red = reduce_instance(inst)
        with pytest.raises(ValueError):
            red.lift(np.ones(red.reduced.n_items + 1, dtype=np.int8))

    def test_fixed_profit(self):
        inst = uncorrelated_instance(2, 8, rng=1)
        red = reduce_instance(inst)
        assert red.fixed_profit == pytest.approx(
            float(inst.profits[red.fixed_one].sum())
        )
