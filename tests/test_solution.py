"""Unit tests for :mod:`repro.core.solution`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    SearchState,
    Solution,
    hamming_distance,
    mean_pairwise_distance,
)


class TestSolution:
    def test_snapshot_roundtrip(self, tiny_instance):
        state = SearchState.empty(tiny_instance)
        state.add(0)
        snap = state.snapshot()
        assert snap.value == 10.0
        assert list(snap.items) == [0]

    def test_immutability(self, tiny_instance):
        sol = Solution(np.array([1, 0, 0, 0]), 10.0)
        with pytest.raises(ValueError):
            sol.x[0] = 0

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError, match="0/1"):
            Solution(np.array([0, 2]), 1.0)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            Solution(np.zeros((2, 2)), 0.0)

    def test_verified_recomputes(self, tiny_instance):
        sol = Solution(np.array([1, 0, 1, 0]), 999.0)
        assert sol.verified(tiny_instance).value == 18.0

    def test_equality_and_hash(self):
        a = Solution(np.array([1, 0]), 5.0)
        b = Solution(np.array([1, 0]), 5.0)
        c = Solution(np.array([0, 1]), 5.0)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_distance(self):
        a = Solution(np.array([1, 0, 1]), 1.0)
        b = Solution(np.array([0, 0, 1]), 1.0)
        assert a.distance(b) == 1


class TestHamming:
    def test_identity(self):
        x = np.array([1, 0, 1])
        assert hamming_distance(x, x) == 0

    def test_symmetry(self, rng):
        a = rng.integers(0, 2, 20)
        b = rng.integers(0, 2, 20)
        assert hamming_distance(a, b) == hamming_distance(b, a)

    def test_triangle_inequality(self, rng):
        a, b, c = (rng.integers(0, 2, 30) for _ in range(3))
        assert hamming_distance(a, c) <= hamming_distance(a, b) + hamming_distance(b, c)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            hamming_distance(np.zeros(3), np.zeros(4))

    def test_mean_pairwise_small_sets(self):
        assert mean_pairwise_distance([]) == 0.0
        assert mean_pairwise_distance([Solution(np.array([1, 0]), 1.0)]) == 0.0

    def test_mean_pairwise_value(self):
        sols = [
            Solution(np.array([0, 0, 0]), 1.0),
            Solution(np.array([1, 1, 0]), 2.0),
            Solution(np.array([1, 1, 1]), 3.0),
        ]
        # pairwise distances: 2, 3, 1 -> mean 2
        assert mean_pairwise_distance(sols) == pytest.approx(2.0)


class TestSearchState:
    def test_empty_state(self, tiny_instance):
        state = SearchState.empty(tiny_instance)
        assert state.value == 0.0
        assert state.is_feasible
        np.testing.assert_allclose(state.load, [0.0, 0.0])

    def test_add_updates_incrementally(self, tiny_instance):
        state = SearchState.empty(tiny_instance)
        state.add(1)
        assert state.value == 7.0
        np.testing.assert_allclose(state.load, [6.0, 4.0])

    def test_drop_reverses_add(self, tiny_instance):
        state = SearchState.empty(tiny_instance)
        state.add(1)
        state.drop(1)
        assert state.value == 0.0
        np.testing.assert_allclose(state.load, [0.0, 0.0])

    def test_add_twice_raises(self, tiny_instance):
        state = SearchState.empty(tiny_instance)
        state.add(0)
        with pytest.raises(ValueError, match="already"):
            state.add(0)

    def test_drop_absent_raises(self, tiny_instance):
        state = SearchState.empty(tiny_instance)
        with pytest.raises(ValueError, match="not in"):
            state.drop(0)

    def test_flip(self, tiny_instance):
        state = SearchState.empty(tiny_instance)
        state.flip(2)
        assert state.x[2] == 1
        state.flip(2)
        assert state.x[2] == 0

    def test_slack(self, tiny_instance):
        state = SearchState.empty(tiny_instance)
        state.add(0)
        np.testing.assert_allclose(state.slack, [5.0, 5.0])

    def test_violation_when_overloaded(self, tiny_instance):
        state = SearchState.empty(tiny_instance)
        for j in range(4):
            state.add(j)
        assert not state.is_feasible
        assert state.violation > 0

    def test_fitting_items(self, tiny_instance):
        state = SearchState.empty(tiny_instance)
        state.add(0)  # load (5,3); slack (5,5)
        fitting = set(state.fitting_items())
        # item1 (6,4) does not fit; item2 (4,5) fits; item3 (2,1) fits
        assert fitting == {2, 3}

    def test_most_saturated_constraint(self, tiny_instance):
        state = SearchState.empty(tiny_instance)
        state.add(2)  # load (4, 5); slack (6, 3) -> constraint 1 tightest
        assert state.most_saturated_constraint() == 1

    def test_restore(self, tiny_instance):
        state = SearchState.empty(tiny_instance)
        state.add(0)
        snap = state.snapshot()
        state.add(2)
        state.restore(snap)
        assert state.value == 10.0
        assert list(state.packed_items()) == [0]

    def test_restore_shape_mismatch(self, tiny_instance):
        state = SearchState.empty(tiny_instance)
        with pytest.raises(ValueError):
            state.restore(Solution(np.array([1, 0]), 1.0))

    def test_copy_is_independent(self, tiny_instance):
        state = SearchState.empty(tiny_instance)
        state.add(0)
        clone = state.copy()
        clone.add(2)
        assert state.value == 10.0
        assert clone.value == 18.0

    def test_recompute_matches_incremental(self, small_instance, rng):
        state = SearchState.empty(small_instance)
        for j in rng.permutation(small_instance.n_items)[:10]:
            state.flip(int(j))
        value_before, load_before = state.value, state.load.copy()
        state.recompute()
        assert state.value == pytest.approx(value_before)
        np.testing.assert_allclose(state.load, load_before)

    def test_rejects_non_binary_vector(self, tiny_instance):
        with pytest.raises(ValueError, match="0/1"):
            SearchState(tiny_instance, np.array([0, 1, 2, 0]))
