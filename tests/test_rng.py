"""Unit tests for :mod:`repro.rng`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rng import as_seed_list, derive_rng, make_rng, random_seed_from, spawn_rngs


class TestMakeRng:
    def test_accepts_int(self):
        a = make_rng(5).integers(0, 100, 10)
        b = make_rng(5).integers(0, 100, 10)
        np.testing.assert_array_equal(a, b)

    def test_passes_through_generator(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawn:
    def test_children_independent(self):
        children = spawn_rngs(7, 3)
        draws = [c.integers(0, 2**31, 5).tolist() for c in children]
        assert draws[0] != draws[1] != draws[2]

    def test_reproducible(self):
        a = spawn_rngs(7, 3)[1].integers(0, 2**31, 5)
        b = spawn_rngs(7, 3)[1].integers(0, 2**31, 5)
        np.testing.assert_array_equal(a, b)

    def test_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(7, -1)

    def test_zero_count(self):
        assert spawn_rngs(7, 0) == []


class TestDerive:
    def test_path_addressing_reproducible(self):
        a = derive_rng(9, 2, 5).integers(0, 2**31, 4)
        b = derive_rng(9, 2, 5).integers(0, 2**31, 4)
        np.testing.assert_array_equal(a, b)

    def test_different_paths_differ(self):
        a = derive_rng(9, 2, 5).integers(0, 2**31, 4)
        b = derive_rng(9, 2, 6).integers(0, 2**31, 4)
        c = derive_rng(9, 3, 5).integers(0, 2**31, 4)
        assert not np.array_equal(a, b)
        assert not np.array_equal(a, c)


class TestSeedHelpers:
    def test_random_seed_range(self):
        gen = make_rng(0)
        for _ in range(100):
            s = random_seed_from(gen)
            assert 0 <= s < 2**63

    def test_as_seed_list(self):
        seeds = as_seed_list(11, 4)
        assert len(seeds) == 4
        assert len(set(seeds)) == 4
        assert seeds == as_seed_list(11, 4)
