"""Tests for the report assembler."""

from __future__ import annotations

from repro.analysis.report import REPORT_ORDER, assemble_report


class TestAssemble:
    def test_missing_files_noted(self, tmp_path):
        report = assemble_report(tmp_path)
        assert report.count("not yet generated") == len(REPORT_ORDER)
        assert report.startswith("# Benchmark results")

    def test_present_files_embedded(self, tmp_path):
        (tmp_path / "fp57.txt").write_text("CONTENT-MARKER-123", encoding="utf-8")
        report = assemble_report(tmp_path)
        assert "CONTENT-MARKER-123" in report
        assert report.count("not yet generated") == len(REPORT_ORDER) - 1

    def test_all_sections_titled(self, tmp_path):
        report = assemble_report(tmp_path)
        for section in REPORT_ORDER:
            assert section.title in report

    def test_custom_title(self, tmp_path):
        report = assemble_report(tmp_path, title="My run")
        assert report.startswith("# My run")

    def test_order_matches_design_index(self):
        ids = [s.result_id for s in REPORT_ORDER]
        assert ids.index("table1_gk") < ids.index("table2_variants") < ids.index("fp57")
        assert len(ids) == len(set(ids))
