"""Tests for the Chu–Beasley extension suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.instances import cb_cell, cb_instance, cb_suite_index
from repro.instances.chu_beasley import CB_PER_CELL, CBKey


class TestGrid:
    def test_27_cells_270_instances(self):
        index = cb_suite_index()
        assert len(index) == 27
        assert len(index) * CB_PER_CELL == 270

    def test_cell_contents(self):
        cell = cb_cell(5, 100, 0.25)
        assert len(cell) == CB_PER_CELL
        for inst in cell:
            assert inst.shape == (5, 100)

    def test_names(self):
        inst = cb_instance(10, 250, 0.5, 3)
        assert inst.name == "CB-m10-n250-r0.5-03"

    def test_deterministic(self):
        a = cb_instance(5, 100, 0.25, 0)
        b = cb_instance(5, 100, 0.25, 0)
        np.testing.assert_array_equal(a.weights, b.weights)

    def test_all_seeds_distinct(self):
        seeds = {
            CBKey(m, n, r, k).seed
            for (m, n, r) in cb_suite_index()
            for k in range(CB_PER_CELL)
        }
        assert len(seeds) == 270

    def test_tightness_reflected_in_capacities(self):
        loose = cb_instance(5, 100, 0.75, 0)
        tight = cb_instance(5, 100, 0.25, 0)
        # Same weights (same position in grid ordering differs though), so
        # compare capacity-to-weight ratios instead of raw values.
        assert (loose.capacities / loose.weights.sum(axis=1)).mean() > (
            tight.capacities / tight.weights.sum(axis=1)
        ).mean()

    def test_validation(self):
        with pytest.raises(ValueError):
            cb_instance(7, 100, 0.25, 0)
        with pytest.raises(ValueError):
            cb_instance(5, 123, 0.25, 0)
        with pytest.raises(ValueError):
            cb_instance(5, 100, 0.33, 0)
        with pytest.raises(ValueError):
            cb_instance(5, 100, 0.25, 10)
