"""ISSUE-8 LP-core reduction substrate: patterns, lifts, re-core, identity.

Four layers under test:

* :class:`~repro.core.reduction.FixationPattern` — wire forms (packed
  blocks, pickle, :class:`~repro.parallel.shm.WireCodec` frames) round-trip
  at word-boundary sizes, and the historical byte forms are preserved when
  no pattern rides along (the bit-identity anchor).
* :func:`~repro.exact.preprocess.reduce_to_core` /
  :class:`~repro.exact.preprocess.Reduction` — Hypothesis round-trips for
  ``lift``/``lift_value`` plus the none-fixed / all-fixed-but-one /
  degenerate-LP edge cases and the feasibility invariant.
* :class:`~repro.core.reduction.CoreSelector` — ranking determinism,
  variant diversification, ``core_ratio=1.0`` fixing safety (nothing is
  ever fixed out), and the shared per-process / service-layer caches.
* :class:`~repro.parallel.runtime.SlaveRuntime` re-core — trivial patterns
  are bit-identical to the unpatterned path, reduced reports lift to
  feasible full-space solutions, and serial/mp x pipe/shm backends agree
  at ``core_ratio=0.5``.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Budget, MKPInstance, Strategy, TabuSearchConfig, random_solution
from repro.core.reduction import (
    CoreSelector,
    FixationPattern,
    clear_selector_cache,
    selector_cache_stats,
    shared_selector,
)
from repro.core.strategy import StrategyBounds
from repro.exact.bounds import solve_lp_relaxation
from repro.exact.preprocess import reduce_to_core
from repro.instances import gk_suite
from repro.parallel import SlaveTask
from repro.parallel.runtime import SlaveRuntime
from repro.parallel.shm import WireCodec
from repro.rng import make_rng

#: Word-boundary item counts for the packed two-block wire form.
BOUNDARY_NS = [1, 63, 64, 65, 500]


def _instance():
    return gk_suite()[9]  # GK10, 10*100


@st.composite
def patterned_instances(draw, ns=BOUNDARY_NS):
    """A generous-capacity instance plus a random consistent pattern.

    Capacities exceed the total weight per row, so *any* set of pinned-to-1
    items satisfies the reduce_to_core feasibility invariant — the
    Hypothesis layer probes the lift algebra, not the LP selection.
    """
    n = draw(st.sampled_from(ns))
    m = draw(st.integers(1, 3))
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    weights = rng.integers(1, 6, size=(m, n)).astype(float)
    profits = rng.integers(1, 50, size=n).astype(float)
    capacities = weights.sum(axis=1) + 1.0
    inst = MKPInstance(weights=weights, capacities=capacities, profits=profits)
    core_mask = np.zeros(n, dtype=bool)
    core_mask[draw(st.integers(0, n - 1))] = True  # at least one free
    core_mask |= rng.random(n) < draw(st.floats(0.0, 1.0))
    fixed_values = (rng.random(n) < 0.5).astype(np.int8)
    return inst, FixationPattern(core_mask=core_mask, fixed_values=fixed_values)


class TestFixationPattern:
    @given(patterned_instances())
    @settings(max_examples=60, deadline=None)
    def test_wire_and_pickle_round_trip(self, case):
        _, pattern = case
        rebuilt = pickle.loads(pickle.dumps(pattern))
        assert rebuilt == pattern
        assert np.array_equal(rebuilt.core_mask, pattern.core_mask)
        # Pinned values under the core mask are ignored by construction but
        # normalized to 0 by the packed wire form — re-encoding is stable.
        assert rebuilt.signature() == pickle.loads(pickle.dumps(rebuilt)).signature()
        nb = (pattern.n_items + 7) // 8
        assert len(pattern.packed_mask_bytes()) == nb
        assert len(pattern.packed_values_bytes()) == nb

    def test_trivial_pattern(self):
        pattern = FixationPattern.trivial(64)
        assert pattern.is_trivial
        assert pattern.n_core == 64
        assert FixationPattern.trivial(64) == pattern

    def test_validation(self):
        with pytest.raises(ValueError, match="matching 1-D"):
            FixationPattern(
                core_mask=np.ones((2, 2), dtype=bool),
                fixed_values=np.zeros(4, dtype=np.int8),
            )
        with pytest.raises(ValueError, match="0/1"):
            FixationPattern(
                core_mask=np.ones(4, dtype=bool),
                fixed_values=np.full(4, 2, dtype=np.int8),
            )


class TestReduceToCore:
    @given(patterned_instances())
    @settings(max_examples=60, deadline=None)
    def test_lift_round_trip(self, case):
        inst, pattern = case
        red = reduce_to_core(inst, pattern)
        assert red.kept_items.size == pattern.n_core
        rng = np.random.default_rng(0)
        x_red = (rng.random(red.kept_items.size) < 0.5).astype(np.int8)
        x = red.lift(x_red)
        assert np.array_equal(x[red.kept_items], x_red)
        assert np.all(x[red.fixed_one] == 1)
        assert np.all(x[red.fixed_zero] == 0)
        # Integer data: the lifted objective is exactly the reduced
        # objective plus the pinned profit.
        assert float(inst.objective(x)) == red.lift_value(
            float(red.reduced.objective(x_red))
        )
        assert red.lift_value(0.0) == red.fixed_profit

    def test_none_fixed_keeps_everything(self):
        inst = _instance()
        red = reduce_to_core(inst, FixationPattern.trivial(inst.n_items))
        assert np.array_equal(red.kept_items, np.arange(inst.n_items))
        assert red.fixed_one.size == 0 and red.fixed_zero.size == 0
        assert np.array_equal(red.reduced.capacities, inst.capacities)
        assert red.lift_value(123.0) == 123.0

    def test_all_fixed_but_one(self):
        inst = _instance()
        n = inst.n_items
        core_mask = np.zeros(n, dtype=bool)
        core_mask[3] = True
        red = reduce_to_core(
            inst,
            FixationPattern(core_mask=core_mask, fixed_values=np.zeros(n, np.int8)),
        )
        assert red.reduced.n_items == 1
        assert np.array_equal(red.lift(np.array([1])), np.eye(n, dtype=np.int8)[3])

    def test_rejects_all_fixed(self):
        with pytest.raises(ValueError, match="at least one"):
            reduce_to_core(
                _instance(),
                FixationPattern(
                    core_mask=np.zeros(100, dtype=bool),
                    fixed_values=np.zeros(100, np.int8),
                ),
            )

    def test_rejects_infeasible_fixation(self):
        inst = _instance()
        n = inst.n_items
        core_mask = np.zeros(n, dtype=bool)
        core_mask[0] = True
        with pytest.raises(RuntimeError, match="invariant"):
            reduce_to_core(
                inst,
                FixationPattern(
                    core_mask=core_mask, fixed_values=np.ones(n, np.int8)
                ),
            )

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="covers"):
            reduce_to_core(_instance(), FixationPattern.trivial(7))


class TestCoreSelector:
    def test_rank_is_deterministic_permutation(self):
        inst = _instance()
        s1, s2 = CoreSelector(inst), CoreSelector(inst)
        assert np.array_equal(np.sort(s1.rank), np.arange(inst.n_items))
        assert np.array_equal(s1.rank, s2.rank)
        assert np.array_equal(s1.lp_values, s2.lp_values)

    def test_core_ratio_one_fixes_nothing(self):
        """Reduced-cost fixing safety: a full core never loses any optimum."""
        selector = CoreSelector(_instance())
        for variant in range(4):
            pattern = selector.pattern(1.0, variant=variant)
            assert pattern.is_trivial
        assert selector.pattern(1.0, variant=0) is selector.pattern(1.0, variant=3)

    def test_core_size_and_validation(self):
        selector = CoreSelector(_instance())
        assert selector.core_size(1.0) == 100
        assert selector.core_size(0.5) == 50
        assert selector.core_size(0.001) == 1  # floor at one free variable
        with pytest.raises(ValueError, match="core_ratio"):
            selector.core_size(0.0)
        with pytest.raises(ValueError, match="core_ratio"):
            selector.core_size(1.5)

    def test_variants_diversify_but_share_size(self):
        selector = CoreSelector(_instance())
        patterns = [selector.pattern(0.5, variant=v) for v in range(4)]
        assert len({p.signature() for p in patterns}) > 1
        assert {p.n_core for p in patterns} == {50}

    def test_fixation_is_feasible_for_every_variant(self):
        """Pinned-to-1 sets always fit: the LP-upper-bound invariant."""
        inst = _instance()
        selector = CoreSelector(inst)
        at_one = np.flatnonzero(selector.lp_values == 1)
        for variant in range(6):
            pattern = selector.pattern(0.3, variant=variant)
            pinned_one = np.flatnonzero(~pattern.core_mask & (pattern.fixed_values == 1))
            assert np.isin(pinned_one, at_one).all()
            red = reduce_to_core(inst, pattern)  # raises if infeasible
            assert np.all(red.reduced.capacities >= 0)

    def test_degenerate_lp_all_at_upper_bound(self):
        """Capacities so loose the LP packs everything: all pinned to 1."""
        rng = np.random.default_rng(3)
        weights = rng.integers(1, 5, size=(2, 40)).astype(float)
        inst = MKPInstance(
            weights=weights,
            capacities=weights.sum(axis=1) + 10.0,
            profits=rng.integers(1, 9, size=40).astype(float),
        )
        lp = solve_lp_relaxation(inst)
        assert np.all(lp.x >= 1 - 1e-9)
        selector = CoreSelector(inst)
        pattern = selector.pattern(0.25)
        assert np.all(pattern.fixed_values[~pattern.core_mask] == 1)
        red = reduce_to_core(inst, pattern)
        assert np.all(red.reduced.capacities >= 0)


class TestSelectorCaches:
    def test_shared_selector_is_content_addressed(self):
        clear_selector_cache()
        inst = _instance()
        base = selector_cache_stats()
        s1 = shared_selector(inst)
        s2 = shared_selector(_instance())  # equal content, fresh object
        assert s1 is s2
        stats = selector_cache_stats()
        assert stats["lp_misses"] == base["lp_misses"] + 1
        assert stats["lp_hits"] == base["lp_hits"] + 1

    def test_instance_cache_lp_counters(self):
        from repro.service.cache import InstanceCache

        cache = InstanceCache()
        inst = _instance()
        s1 = cache.core_selector(inst)
        s2 = cache.core_selector(_instance())
        assert s1 is s2
        assert cache.lp_misses == 1 and cache.lp_hits == 1
        assert cache.lp_relaxation(inst) is s1.lp
        stats = cache.stats()
        assert stats["lp_misses"] == 1 and stats["lp_size"] == 1
        assert stats["lp_hits"] == 2  # second selector hit + lp_relaxation


class TestStrategyCoreKnob:
    def test_default_bounds_draw_no_core_variate(self):
        """Degenerate (1.0, 1.0) bounds must not touch the RNG stream."""
        a = StrategyBounds().random(make_rng(11))
        b = StrategyBounds(core_ratio=(1.0, 1.0)).random(make_rng(11))
        assert (a.lt_length, a.nb_drop, a.nb_local) == (
            b.lt_length, b.nb_drop, b.nb_local,
        )
        assert a.core_ratio == b.core_ratio == 1.0

    def test_adaptive_steps_stay_in_bounds(self):
        bounds = StrategyBounds(core_ratio=(0.4, 1.0))
        s = bounds.random(make_rng(5))
        assert 0.4 <= s.core_ratio <= 1.0
        wide = s.diversified(bounds, intensity=1.0)
        narrow = s.intensified(bounds, intensity=1.0)
        assert wide.core_ratio >= s.core_ratio
        assert narrow.core_ratio <= s.core_ratio
        assert 0.4 <= narrow.core_ratio <= wide.core_ratio <= 1.0

    def test_pickle_preserves_historical_form(self):
        plain = Strategy(8, 2, 10)
        assert len(plain.__reduce__()[1]) == 3  # the pre-ISSUE-8 wire form
        cored = Strategy(8, 2, 10, core_ratio=0.5)
        assert len(cored.__reduce__()[1]) == 4
        assert pickle.loads(pickle.dumps(cored)).core_ratio == 0.5

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            StrategyBounds(core_ratio=(0.0, 1.0))
        with pytest.raises(ValueError):
            StrategyBounds(core_ratio=(0.8, 0.5))
        with pytest.raises(ValueError):
            Strategy(8, 2, 10, core_ratio=1.5)


def _task(instance, pattern=None, *, seed=42, evals=1_500, core_ratio=1.0):
    return SlaveTask(
        x_init=random_solution(instance, rng=3),
        strategy=Strategy(8, 2, 10, core_ratio=core_ratio),
        budget=Budget(max_evaluations=evals),
        seed=seed,
        round_index=0,
        seq_id=0,
        pattern=pattern,
    )


class TestTaskWireForms:
    def test_pickle_without_pattern_is_byte_identical_to_historical(self):
        """The bit-identity anchor: no pattern => the pre-ISSUE-8 pickle."""
        inst = _instance()
        task = _task(inst)
        blob = pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL)
        assert b"FixationPattern" not in blob
        assert b"core_ratio" not in blob
        rebuilt = pickle.loads(blob)
        assert rebuilt.pattern is None
        assert rebuilt.strategy == task.strategy

    def test_pickle_round_trips_pattern(self):
        inst = _instance()
        pattern = CoreSelector(inst).pattern(0.5, variant=2)
        task = _task(inst, pattern, core_ratio=0.5)
        rebuilt = pickle.loads(pickle.dumps(task))
        assert rebuilt.pattern == pattern
        assert rebuilt.strategy.core_ratio == 0.5

    def test_codec_frame_without_pattern_is_byte_identical(self):
        inst = _instance()
        codec = WireCodec(inst.n_items)
        task = _task(inst)
        frame = codec.encode_task(task)
        patterned = codec.encode_task(
            _task(inst, CoreSelector(inst).pattern(0.5), core_ratio=0.5)
        )
        assert len(patterned) > len(frame)  # flags engage only when present
        decoded = codec.decode_task(frame)
        assert decoded.pattern is None
        assert decoded.strategy.core_ratio == 1.0

    def test_codec_round_trips_pattern_and_ratio(self):
        inst = _instance()
        codec = WireCodec(inst.n_items)
        pattern = CoreSelector(inst).pattern(0.5, variant=1)
        task = _task(inst, pattern, core_ratio=0.625)
        decoded = codec.decode_task(codec.encode_task(task))
        assert decoded.pattern == pattern
        assert decoded.strategy.core_ratio == 0.625
        assert decoded.strategy == task.strategy
        assert np.array_equal(decoded.x_init.x, task.x_init.x)


class TestRuntimeRecore:
    def test_trivial_pattern_is_bit_identical_to_plain(self):
        inst = _instance()
        runtime = SlaveRuntime(inst, TabuSearchConfig(nb_div=10_000), slave_id=0)
        plain = runtime.execute(_task(inst))
        trivial = runtime.execute(_task(inst, FixationPattern.trivial(inst.n_items)))
        assert trivial.best == plain.best
        assert trivial.elite == plain.elite
        assert trivial.evaluations == plain.evaluations
        assert trivial.moves == plain.moves
        assert runtime.recores == 0 and runtime.core_tasks == 0

    def test_reduced_report_lifts_to_feasible_full_space(self):
        inst = _instance()
        pattern = CoreSelector(inst).pattern(0.5, variant=1)
        runtime = SlaveRuntime(inst, TabuSearchConfig(nb_div=10_000), slave_id=0)
        report = runtime.execute(_task(inst, pattern, core_ratio=0.5))
        assert report.best.x.shape == (inst.n_items,)
        assert inst.is_feasible(report.best.x)
        assert report.best.value == float(inst.objective(report.best.x))
        # Out-of-core coordinates are pinned to the pattern's values.
        out = ~pattern.core_mask
        assert np.array_equal(report.best.x[out], pattern.fixed_values[out])
        for sol in report.elite:
            assert inst.is_feasible(sol.x)
            assert sol.value == float(inst.objective(sol.x))
        assert runtime.recores == 1 and runtime.core_tasks == 1

    def test_recore_cache_is_reused_per_signature(self):
        inst = _instance()
        selector = CoreSelector(inst)
        runtime = SlaveRuntime(inst, TabuSearchConfig(nb_div=10_000), slave_id=0)
        p1, p2 = selector.pattern(0.5, variant=0), selector.pattern(0.5, variant=1)
        runtime.execute(_task(inst, p1, core_ratio=0.5))
        runtime.execute(_task(inst, p1, core_ratio=0.5, seed=43))
        assert runtime.recores == 1  # same signature: arena reused
        runtime.execute(_task(inst, p2, core_ratio=0.5))
        assert runtime.recores == 2
        assert runtime.core_tasks == 3

    def test_reduced_run_is_deterministic(self):
        inst = _instance()
        pattern = CoreSelector(inst).pattern(0.5)
        r1 = SlaveRuntime(inst, TabuSearchConfig(nb_div=10_000), slave_id=0)
        r2 = SlaveRuntime(inst, TabuSearchConfig(nb_div=10_000), slave_id=0)
        a = r1.execute(_task(inst, pattern, core_ratio=0.5))
        b = r2.execute(_task(inst, pattern, core_ratio=0.5))
        assert a.best == b.best
        assert a.evaluations == b.evaluations


class TestCrossBackendIdentity:
    """core_ratio=0.5 trajectories agree across serial / mp x pipe / shm."""

    _histories: dict = {}

    @classmethod
    def _history(cls, backend_spec):
        from repro.parallel.backends import MultiprocessingBackend, SerialBackend
        from repro.variants import solve_cts2

        if backend_spec not in cls._histories:
            if backend_spec == "serial":
                backend = SerialBackend(3)
            else:
                transport, batch_k = backend_spec
                backend = MultiprocessingBackend(
                    3, transport=transport, batch_k=batch_k
                )
            try:
                result = solve_cts2(
                    _instance(),
                    n_slaves=3,
                    rng_seed=7,
                    max_evaluations=3_000,
                    backend=backend,
                    core_ratio=(0.5, 0.5),
                )
            finally:
                backend.shutdown()
            cls._histories[backend_spec] = (
                [float(v) for v in result.value_history],
                result.best.value,
                result.total_evaluations,
            )
        return cls._histories[backend_spec]

    @pytest.mark.parametrize("spec", [("pipe", 1), ("shm", 3)])
    def test_mp_matches_serial_reference(self, spec):
        assert self._history(spec) == self._history("serial")

    def test_reduced_run_beats_nothing_silently(self):
        """The reduced incumbent is a valid full-space solution."""
        history, best, _ = self._history("serial")
        inst = _instance()
        assert best == history[-1]
        assert best > 0
        assert len(history) == 11
