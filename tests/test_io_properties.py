"""Property-based round-trip tests for the OR-Library file I/O."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MKPInstance
from repro.instances import (
    read_instance,
    read_orlib_file,
    write_instance,
    write_orlib_file,
)


@st.composite
def instances(draw):
    m = draw(st.integers(1, 5))
    n = draw(st.integers(1, 12))
    weights = draw(
        st.lists(
            st.lists(st.integers(0, 999), min_size=n, max_size=n),
            min_size=m,
            max_size=m,
        )
    )
    profits = draw(st.lists(st.integers(1, 999), min_size=n, max_size=n))
    capacities = draw(st.lists(st.integers(0, 5000), min_size=m, max_size=m))
    optimum = draw(st.one_of(st.none(), st.integers(1, 10**6)))
    inst = MKPInstance.from_lists(weights, capacities, profits)
    if optimum is not None:
        inst = inst.with_reference(optimum=float(optimum))
    return inst


class TestRoundTripProperties:
    @given(instances())
    @settings(max_examples=60, deadline=None)
    def test_single_instance_roundtrip(self, inst):
        import tempfile, pathlib

        with tempfile.TemporaryDirectory() as tmp:
            path = pathlib.Path(tmp) / "p.txt"
            self._check_single(inst, path)

    @staticmethod
    def _check_single(inst, path):
        write_instance(inst, path)
        loaded = read_instance(path)
        np.testing.assert_allclose(loaded.weights, inst.weights)
        np.testing.assert_allclose(loaded.capacities, inst.capacities)
        np.testing.assert_allclose(loaded.profits, inst.profits)
        assert loaded.optimum == inst.optimum

    @given(st.lists(instances(), min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_multi_instance_roundtrip(self, suite):
        import tempfile, pathlib

        with tempfile.TemporaryDirectory() as tmp:
            path = pathlib.Path(tmp) / "suite.txt"
            self._check_multi(suite, path)

    @staticmethod
    def _check_multi(suite, path):
        write_orlib_file(suite, path)
        loaded = read_orlib_file(path)
        assert len(loaded) == len(suite)
        for orig, got in zip(suite, loaded):
            np.testing.assert_allclose(got.weights, orig.weights)
            np.testing.assert_allclose(got.profits, orig.profits)
