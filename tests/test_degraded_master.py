"""Degraded-mode master chaos suite (ISSUE: fault-tolerance tentpole).

End-to-end scenarios driving :class:`MasterProcess` over a
:class:`SerialBackend` with a seeded :class:`FaultPlan`: slave crashes,
lost and duplicated reports, delayed (stale) deliveries and stragglers.
Every scenario asserts the hardened loop's contract:

* the run terminates (no deadlock) even when all but one slave dies,
* the incumbent is feasible, monotone, and at least the best surviving
  slave report,
* duplicated and stale reports are never double-counted,
* the exponential backoff schedule follows ``min(2**(f-1), cap)``,
* the virtual clock stays consistent (round times sum to the makespan),
* an empty fault plan is bit-identical to the plain, unhardened path,
* the same fault seed replays the same degraded trajectory.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis.serialize import (
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)
from repro.core import Budget
from repro.farm import ALPHA_FARM
from repro.master import MasterConfig, MasterProcess
from repro.parallel import FaultEvent, FaultKind, FaultPlan, SerialBackend

pytestmark = pytest.mark.chaos

#: CI sweeps REPRO_CHAOS_SEED over a fixed matrix; local runs use 101.
ENV_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "101"))
SEEDS = sorted({ENV_SEED, 101, 202})

N_SLAVES = 4
N_ROUNDS = 5


def run_master(
    instance,
    *,
    plan=None,
    n_slaves=N_SLAVES,
    n_rounds=N_ROUNDS,
    rng_seed=7,
    evals=6_000,
    farm=None,
    communicate=True,
    adapt=True,
    max_backoff=8,
    capture=None,
):
    """One hardened master run; ``capture`` collects each round's raw reports."""
    backend = SerialBackend(n_slaves, fault_plan=plan)
    config = MasterConfig(
        n_slaves=n_slaves,
        n_rounds=n_rounds,
        communicate=communicate,
        adapt_strategies=adapt,
        max_backoff_rounds=max_backoff,
    )
    if capture is not None:
        original = backend.run_round

        def spy(tasks):
            reports = original(tasks)
            capture.append(list(reports))
            return reports

        backend.run_round = spy  # type: ignore[method-assign]
    master = MasterProcess(instance, config, backend, rng_seed=rng_seed, farm=farm)
    return master.run(budget_per_slave=Budget(max_evaluations=evals))


def crash(round_index, slave_id):
    return FaultEvent(round_index, slave_id, FaultKind.CRASH)


def assert_monotone(history):
    assert all(b >= a for a, b in zip(history, history[1:]))


# --------------------------------------------------------------------------- #
class TestNoFaultBitIdentity:
    def test_empty_plan_matches_plain_run(self, small_instance):
        plain = run_master(small_instance, plan=None)
        hardened = run_master(small_instance, plan=FaultPlan.none())
        assert hardened.value_history == plain.value_history
        assert hardened.best.value == plain.best.value
        assert hardened.total_evaluations == plain.total_evaluations
        assert hardened.bytes_sent == plain.bytes_sent
        assert hardened.fault_summary == {} == plain.fault_summary

    def test_never_firing_plan_matches_plain_run(self, small_instance):
        # A non-empty plan whose events all address rounds that never happen
        # exercises the full ChaosComm interposition path — and must still
        # change nothing.
        plan = FaultPlan(events=(crash(999, 0), FaultEvent(998, 1, FaultKind.DROP_REPORT)))
        plain = run_master(small_instance, plan=None)
        hardened = run_master(small_instance, plan=plan)
        assert hardened.value_history == plain.value_history
        assert hardened.total_evaluations == plain.total_evaluations
        assert hardened.fault_summary == {}

    def test_no_fault_stats_are_clean(self, small_instance):
        result = run_master(small_instance, plan=FaultPlan.none())
        for stats in result.rounds:
            assert stats.failed_slaves == 0
            assert stats.backoff_slaves == 0
            assert stats.duplicate_reports == 0
            assert stats.stale_reports == 0
        assert result.degraded_rounds == 0


class TestCrashScenarios:
    def test_single_crash_terminates_and_is_recorded(self, small_instance):
        result = run_master(small_instance, plan=FaultPlan(events=(crash(0, 1),)))
        assert len(result.rounds) == N_ROUNDS
        assert result.rounds[0].failed_slaves == 1
        assert result.fault_summary["failed"] == 1
        assert result.degraded_rounds >= 1
        assert_monotone(result.value_history)

    def test_all_but_one_slave_dies_no_deadlock(self, small_instance):
        # P - 1 crashes in round 0: the master must keep going with the one
        # survivor and still return a feasible incumbent.
        plan = FaultPlan(events=tuple(crash(0, k) for k in range(1, N_SLAVES)))
        capture = []
        result = run_master(small_instance, plan=plan, capture=capture)
        assert len(result.rounds) == N_ROUNDS
        assert result.rounds[0].failed_slaves == N_SLAVES - 1
        assert result.best.is_feasible(small_instance)
        # Round 0's gather saw only the survivor's report.
        assert [r.slave_id for r in capture[0]] == [0]
        assert_monotone(result.value_history)

    def test_incumbent_at_least_best_surviving_report(self, small_instance):
        plan = FaultPlan(events=(crash(0, 2), crash(1, 0), crash(3, 3)))
        capture = []
        result = run_master(small_instance, plan=plan, capture=capture)
        surviving_best = max(r.best.value for rnd in capture for r in rnd)
        assert result.best.value >= surviving_best
        assert result.best.is_feasible(small_instance)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_heavy_chaos_monotone_and_terminates(self, small_instance, seed):
        plan = FaultPlan.from_seed(
            seed,
            n_slaves=N_SLAVES,
            n_rounds=N_ROUNDS,
            crash_rate=0.2,
            report_drop_rate=0.15,
            duplicate_rate=0.15,
            delay_rate=0.1,
            straggle_rate=0.1,
        )
        result = run_master(small_instance, plan=plan, farm=ALPHA_FARM)
        assert len(result.rounds) == N_ROUNDS
        assert result.best.is_feasible(small_instance)
        assert_monotone(result.value_history)


class TestBackoffSchedule:
    def test_exponential_backoff_after_repeated_crashes(self, small_instance):
        # Slave 0 crashes the first two times it is tasked (rounds 0 and 1):
        # fail@0 -> sit out nothing (backoff 1 lands on round 1's retask),
        # fail@1 -> backoff 2 -> idle round 2, retasked (and healthy) round 3.
        plan = FaultPlan(events=(crash(0, 0), crash(1, 0)))
        result = run_master(small_instance, plan=plan)
        failed = [s.failed_slaves for s in result.rounds]
        backoff = [s.backoff_slaves for s in result.rounds]
        assert failed == [1, 1, 0, 0, 0]
        assert backoff == [0, 0, 1, 0, 0]

    def test_backoff_is_capped(self, small_instance):
        # Crash slave 0 at every tasked round with cap 2: tasked rounds are
        # 0, 1, 3, 5, 7 (backoff 1, 2, then capped at 2 forever).
        plan = FaultPlan(events=tuple(crash(r, 0) for r in range(8)))
        result = run_master(
            small_instance, plan=plan, n_rounds=8, max_backoff=2, evals=8_000
        )
        failed_rounds = [s.round_index for s in result.rounds if s.failed_slaves]
        backoff_rounds = [s.round_index for s in result.rounds if s.backoff_slaves]
        assert failed_rounds == [0, 1, 3, 5, 7]
        assert backoff_rounds == [2, 4, 6]


class TestDuplicateAndStaleReports:
    def test_duplicate_report_not_double_counted(self, small_instance):
        plan = FaultPlan(events=(FaultEvent(0, 1, FaultKind.DUPLICATE_REPORT),))
        capture = []
        result = run_master(small_instance, plan=plan, capture=capture)
        clean = run_master(small_instance, plan=None)
        # Round 0's raw gather carried the extra copy...
        assert len(capture[0]) == N_SLAVES + 1
        assert result.rounds[0].duplicate_reports == 1
        # ...but the deduped trajectory is identical to the clean run.
        assert result.value_history == clean.value_history
        assert result.total_evaluations == clean.total_evaluations
        assert result.fault_summary["duplicates"] == 1

    def test_delayed_report_is_stale_next_round(self, small_instance):
        plan = FaultPlan(events=(FaultEvent(0, 1, FaultKind.DELAY_REPORT),))
        result = run_master(small_instance, plan=plan)
        # Round 0: slave 1's report never arrives -> failure + backoff.
        assert result.rounds[0].failed_slaves == 1
        # Round 1: the flushed old report surfaces, carries round 0 ids, and
        # is discarded as stale; the first failure's backoff of one round
        # means slave 1 is already retasked (and healthy) this round.
        assert result.rounds[1].stale_reports == 1
        assert result.rounds[1].backoff_slaves == 0
        assert result.rounds[1].failed_slaves == 0
        assert result.fault_summary["stale"] == 1
        assert_monotone(result.value_history)


class TestVirtualClockConsistency:
    def test_straggler_slows_virtual_time_only(self, small_instance):
        plan = FaultPlan(events=(FaultEvent(0, 1, FaultKind.STRAGGLE, factor=4.0),))
        clean = run_master(small_instance, plan=None, farm=ALPHA_FARM)
        slow = run_master(small_instance, plan=plan, farm=ALPHA_FARM)
        # The straggler changes the clock, never the search trajectory.
        assert slow.value_history == clean.value_history
        assert slow.virtual_seconds > clean.virtual_seconds

    @pytest.mark.parametrize(
        "events",
        [
            (),
            (crash(0, 1), crash(2, 3)),
            (FaultEvent(1, 0, FaultKind.STRAGGLE, factor=8.0),),
            (FaultEvent(0, 2, FaultKind.DELAY_REPORT),),
        ],
        ids=["clean", "crashes", "straggler", "delay"],
    )
    def test_round_times_sum_to_makespan(self, small_instance, events):
        plan = FaultPlan(events=events)
        result = run_master(small_instance, plan=plan, farm=ALPHA_FARM)
        total = sum(s.round_virtual_seconds for s in result.rounds)
        assert total == pytest.approx(result.virtual_seconds, rel=1e-9)

    def test_crashed_slave_charged_no_compute(self, small_instance):
        plan = FaultPlan(events=tuple(crash(0, k) for k in range(1, N_SLAVES)))
        result = run_master(small_instance, plan=plan, farm=ALPHA_FARM)
        # Round 0 only charged compute for the single survivor — and the
        # id-keyed ledger says *which* slave that was, not just how many.
        assert set(result.rounds[0].slave_virtual_seconds) == {0}


class TestDeterministicReplay:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_fault_seed_same_trajectory(self, small_instance, seed):
        def plan():
            return FaultPlan.from_seed(
                seed,
                n_slaves=N_SLAVES,
                n_rounds=N_ROUNDS,
                crash_rate=0.2,
                task_drop_rate=0.1,
                report_drop_rate=0.1,
                duplicate_rate=0.1,
                delay_rate=0.1,
                straggle_rate=0.1,
            )

        a = run_master(small_instance, plan=plan(), farm=ALPHA_FARM)
        b = run_master(small_instance, plan=plan(), farm=ALPHA_FARM)
        assert a.value_history == b.value_history
        assert a.best.value == b.best.value
        assert a.virtual_seconds == b.virtual_seconds
        assert a.fault_summary == b.fault_summary
        assert [
            (s.failed_slaves, s.backoff_slaves, s.duplicate_reports, s.stale_reports)
            for s in a.rounds
        ] == [
            (s.failed_slaves, s.backoff_slaves, s.duplicate_reports, s.stale_reports)
            for s in b.rounds
        ]

    def test_plan_fingerprint_is_stable(self):
        kwargs = dict(n_slaves=4, n_rounds=6, crash_rate=0.3, delay_rate=0.2)
        a = FaultPlan.from_seed(ENV_SEED, **kwargs)
        b = FaultPlan.from_seed(ENV_SEED, **kwargs)
        assert a.fingerprint() == b.fingerprint()


class TestDegradedVariants:
    def test_its_mode_survives_crashes(self, small_instance):
        # Independent threads (no ISP/SGP) must also tolerate dead slaves.
        plan = FaultPlan(events=(crash(0, 0), crash(1, 2)))
        result = run_master(
            small_instance, plan=plan, communicate=False, adapt=False
        )
        assert len(result.rounds) == N_ROUNDS
        assert result.best.is_feasible(small_instance)
        assert_monotone(result.value_history)

    def test_sgp_marks_missing_slaves_absent(self, small_instance):
        plan = FaultPlan(events=(crash(0, 1),))
        result = run_master(small_instance, plan=plan)
        assert result.rounds[0].sgp_actions.get("absent", 0) == 1


class TestDegradedResultSerialization:
    def test_fault_fields_round_trip(self, small_instance):
        plan = FaultPlan(
            events=(crash(0, 1), FaultEvent(1, 2, FaultKind.DUPLICATE_REPORT))
        )
        result = run_master(small_instance, plan=plan, farm=ALPHA_FARM)
        back = result_from_dict(result_to_dict(result))
        assert back.fault_summary == result.fault_summary
        assert [s.failed_slaves for s in back.rounds] == [
            s.failed_slaves for s in result.rounds
        ]
        assert [s.stale_reports for s in back.rounds] == [
            s.stale_reports for s in result.rounds
        ]
        assert back.degraded_rounds == result.degraded_rounds

    def test_chaos_run_save_load_is_fixed_point(self, small_instance, tmp_path):
        # Acceptance criterion: for a chaos-seeded CTS2 run with the farm
        # model attached, save → load → result_to_dict reproduces the saved
        # dict byte-identically — the serializer drops nothing it measured.
        plan = FaultPlan.from_seed(
            ENV_SEED,
            n_slaves=N_SLAVES,
            n_rounds=N_ROUNDS,
            crash_rate=0.2,
            report_drop_rate=0.15,
            duplicate_rate=0.15,
            delay_rate=0.1,
            straggle_rate=0.1,
        )
        result = run_master(small_instance, plan=plan, farm=ALPHA_FARM)
        # The fields v1 used to drop are actually populated in this run.
        assert any(s.phase_wall_seconds for s in result.rounds)
        assert any(s.slave_virtual_seconds for s in result.rounds)
        path = tmp_path / "chaos.json"
        save_result(result, path)
        loaded = load_result(path)
        saved_dict = json.loads(path.read_text(encoding="utf-8"))
        assert result_to_dict(loaded) == saved_dict
        assert json.dumps(result_to_dict(loaded), indent=2) == path.read_text(
            encoding="utf-8"
        )
        # Measured accounting survives with int slave-id keys.
        for orig, back in zip(result.rounds, loaded.rounds):
            assert back.slave_virtual_seconds == orig.slave_virtual_seconds
            assert back.phase_wall_seconds == orig.phase_wall_seconds
            assert back.gather_idle_s == orig.gather_idle_s
        assert loaded.trace.wall_phases == result.trace.wall_phases
