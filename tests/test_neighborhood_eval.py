"""Tests for the low-level (source-2) neighborhood evaluation module."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SearchState, greedy_solution
from repro.parallel.neighborhood_eval import (
    ProcessPoolNeighborhoodEvaluator,
    drop_candidates_of,
    score_candidates,
    score_candidates_chunked,
)


class TestKernels:
    def test_reference_scores(self, small_instance):
        state = SearchState.from_solution(small_instance, greedy_solution(small_instance))
        i_star, cands = drop_candidates_of(state)
        scores = score_candidates(small_instance, i_star, cands)
        expected = small_instance.weights[i_star, cands] / small_instance.profits[cands]
        np.testing.assert_allclose(scores, expected)

    def test_chunked_equals_reference(self, small_instance):
        state = SearchState.from_solution(small_instance, greedy_solution(small_instance))
        i_star, cands = drop_candidates_of(state)
        ref = score_candidates(small_instance, i_star, cands)
        for n_chunks in (1, 2, 3, 7, 100):
            np.testing.assert_allclose(
                score_candidates_chunked(small_instance, i_star, cands, n_chunks), ref
            )

    def test_chunked_empty(self, small_instance):
        out = score_candidates_chunked(small_instance, 0, np.empty(0, dtype=np.intp), 4)
        assert out.size == 0

    def test_chunked_validation(self, small_instance):
        with pytest.raises(ValueError):
            score_candidates_chunked(small_instance, 0, np.array([0]), 0)


@pytest.mark.slow
class TestProcessPool:
    def test_pool_equals_reference(self, small_instance):
        state = SearchState.from_solution(small_instance, greedy_solution(small_instance))
        i_star, cands = drop_candidates_of(state)
        ref = score_candidates(small_instance, i_star, cands)
        with ProcessPoolNeighborhoodEvaluator(small_instance, n_workers=2) as pool:
            np.testing.assert_allclose(pool.evaluate(i_star, cands), ref)

    def test_pool_empty_candidates(self, small_instance):
        with ProcessPoolNeighborhoodEvaluator(small_instance, n_workers=2) as pool:
            assert pool.evaluate(0, np.empty(0, dtype=np.intp)).size == 0

    def test_pool_validation(self, small_instance):
        with pytest.raises(ValueError):
            ProcessPoolNeighborhoodEvaluator(small_instance, n_workers=0)
