"""Unit tests for the Initial Solution generation Procedure (ISP)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Solution, Strategy
from repro.master import (
    AlphaController,
    ISPConfig,
    SlaveEntry,
    generate_initial_solutions,
)


def sol(instance, items: list[int]) -> Solution:
    x = np.zeros(instance.n_items, dtype=np.int8)
    x[items] = 1
    return Solution(x, float(instance.profits[items].sum()))


def entry(instance, slave_id: int, items: list[int], stagnant=0) -> SlaveEntry:
    s = sol(instance, items)
    e = SlaveEntry(
        slave_id=slave_id, strategy=Strategy(10, 2, 20), init_solution=s
    )
    e.best_solutions = [s]
    e.stagnant_rounds = stagnant
    return e


class TestRules:
    def test_keep_when_close_to_global_best(self, small_instance, rng):
        global_best = sol(small_instance, [0, 1, 2, 3, 4, 5])
        good = entry(small_instance, 0, [0, 1, 2, 3, 4])  # close in value
        config = ISPConfig(alpha=0.5, stagnation_limit=10)
        decisions = generate_initial_solutions(
            [good], global_best, small_instance, config, rng
        )
        assert decisions[0].rule == "keep"
        assert decisions[0].solution == good.best

    def test_pool_rule_pulls_laggard_to_global_best(self, small_instance, rng):
        global_best = sol(small_instance, list(range(10)))
        weak = entry(small_instance, 0, [0])  # far below alpha * best
        config = ISPConfig(alpha=0.99, stagnation_limit=10)
        decisions = generate_initial_solutions(
            [weak], global_best, small_instance, config, rng
        )
        assert decisions[0].rule == "pool"
        assert decisions[0].solution == global_best
        assert weak.init_solution == global_best

    def test_restart_rule_on_stagnation(self, small_instance, rng):
        global_best = sol(small_instance, list(range(10)))
        stuck = entry(small_instance, 0, list(range(9)), stagnant=5)
        config = ISPConfig(alpha=0.5, stagnation_limit=3)
        decisions = generate_initial_solutions(
            [stuck], global_best, small_instance, config, rng
        )
        assert decisions[0].rule == "restart"
        assert stuck.stagnant_rounds == 0
        assert decisions[0].solution.is_feasible(small_instance)

    def test_restart_takes_priority_over_pool(self, small_instance, rng):
        """A stagnant laggard restarts randomly rather than pooling."""
        global_best = sol(small_instance, list(range(10)))
        weak_and_stuck = entry(small_instance, 0, [0], stagnant=99)
        config = ISPConfig(alpha=0.99, stagnation_limit=3)
        decisions = generate_initial_solutions(
            [weak_and_stuck], global_best, small_instance, config, rng
        )
        assert decisions[0].rule == "restart"

    def test_alpha_zero_edge(self, small_instance, rng):
        """alpha must be in (0, 1]."""
        with pytest.raises(ValueError):
            ISPConfig(alpha=0.0)
        with pytest.raises(ValueError):
            ISPConfig(alpha=1.5)
        with pytest.raises(ValueError):
            ISPConfig(stagnation_limit=0)

    def test_decisions_in_slave_order(self, small_instance, rng):
        global_best = sol(small_instance, list(range(10)))
        entries = [entry(small_instance, k, [k]) for k in range(4)]
        config = ISPConfig(alpha=0.01, stagnation_limit=10)
        decisions = generate_initial_solutions(
            entries, global_best, small_instance, config, rng
        )
        assert [d.slave_id for d in decisions] == [0, 1, 2, 3]


class TestAlphaController:
    def test_raises_on_improvement(self):
        ctrl = AlphaController(alpha=0.9, step=0.02, alpha_min=0.85, alpha_max=0.99)
        assert ctrl.update(True) == pytest.approx(0.92)

    def test_decays_on_stall(self):
        ctrl = AlphaController(alpha=0.9, step=0.02, alpha_min=0.85, alpha_max=0.99)
        assert ctrl.update(False) == pytest.approx(0.88)

    def test_clamped_to_range(self):
        ctrl = AlphaController(alpha=0.99, step=0.05, alpha_min=0.85, alpha_max=0.995)
        assert ctrl.update(True) == 0.995
        ctrl2 = AlphaController(alpha=0.86, step=0.05, alpha_min=0.85, alpha_max=0.995)
        assert ctrl2.update(False) == 0.85

    def test_validation(self):
        with pytest.raises(ValueError):
            AlphaController(alpha=0.5, alpha_min=0.8, alpha_max=0.9)
        with pytest.raises(ValueError):
            AlphaController(step=-0.1)

    def test_macro_behaviour(self):
        """Sustained improvement pushes alpha high (macro-intensification);
        sustained stall pushes it low (macro-diversification)."""
        ctrl = AlphaController()
        for _ in range(50):
            ctrl.update(True)
        assert ctrl.alpha == ctrl.alpha_max
        for _ in range(50):
            ctrl.update(False)
        assert ctrl.alpha == ctrl.alpha_min
