"""Tests for the baseline algorithms (greedy, SA, reactive TS, REM, CE-TS)."""

from __future__ import annotations

import pytest

from repro.baselines import (
    CriticalEventConfig,
    REMConfig,
    ReactiveConfig,
    SAConfig,
    critical_event_tabu_search,
    density_greedy,
    rem_tabu_search,
    reactive_tabu_search,
    simulated_annealing,
    toyoda_greedy,
)
from repro.core import Budget, SearchState

BUDGET = 15_000


class TestGreedy:
    def test_toyoda_feasible_and_maximal(self, small_instance):
        sol = toyoda_greedy(small_instance)
        assert sol.is_feasible(small_instance)
        state = SearchState.from_solution(small_instance, sol)
        assert state.fitting_items().size == 0

    def test_toyoda_deterministic(self, small_instance):
        assert toyoda_greedy(small_instance) == toyoda_greedy(small_instance)

    def test_toyoda_competitive_with_density(self, medium_instance):
        """Toyoda's adaptive penalties should be at least near the naive
        density greedy on a typical instance."""
        t = toyoda_greedy(medium_instance).value
        d = density_greedy(medium_instance).value
        assert t >= 0.9 * d


class TestSimulatedAnnealing:
    def test_respects_budget_and_feasibility(self, small_instance):
        result = simulated_annealing(
            small_instance, Budget(max_evaluations=BUDGET), rng=0
        )
        assert result.best.is_feasible(small_instance)
        assert result.evaluations <= BUDGET + 1

    def test_improves_over_random_start(self, small_instance):
        from repro.core import random_solution

        start = random_solution(small_instance, rng=11)
        result = simulated_annealing(
            small_instance,
            Budget(max_evaluations=BUDGET),
            rng=0,
            x_init=start,
        )
        assert result.best.value >= start.value

    def test_deterministic(self, small_instance):
        a = simulated_annealing(small_instance, Budget(max_evaluations=BUDGET), rng=4)
        b = simulated_annealing(small_instance, Budget(max_evaluations=BUDGET), rng=4)
        assert a.best == b.best

    def test_counters(self, small_instance):
        result = simulated_annealing(
            small_instance, Budget(max_evaluations=BUDGET), rng=0
        )
        assert result.accepted + result.rejected == result.evaluations

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SAConfig(initial_acceptance=1.0)
        with pytest.raises(ValueError):
            SAConfig(cooling=1.0)
        with pytest.raises(ValueError):
            SAConfig(steps_per_temperature=0)
        with pytest.raises(ValueError):
            SAConfig(min_temperature=0.0)


class TestReactive:
    def test_run_and_feasibility(self, small_instance):
        result = reactive_tabu_search(
            small_instance, Budget(max_evaluations=BUDGET), rng=0
        )
        assert result.best.is_feasible(small_instance)
        assert result.moves > 0

    def test_reaction_raises_tenure_on_revisits(self, tiny_instance):
        """On a 4-item instance with a short tenure the walk must revisit
        and react by raising the tenure."""
        config = ReactiveConfig(initial_tenure=1, escape_after=4)
        result = reactive_tabu_search(
            tiny_instance, Budget(max_moves=300), rng=0, config=config
        )
        assert result.revisits > 0
        assert result.final_tenure > config.initial_tenure

    def test_hash_table_tracks_distinct_solutions(self, small_instance):
        result = reactive_tabu_search(
            small_instance, Budget(max_moves=200), rng=0
        )
        assert 0 < result.hash_table_size <= result.moves + 1

    def test_finds_tiny_optimum(self, tiny_instance):
        result = reactive_tabu_search(
            tiny_instance, Budget(max_moves=300), rng=0
        )
        assert result.best.value == 18.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ReactiveConfig(increase=1.0)
        with pytest.raises(ValueError):
            ReactiveConfig(decrease=1.0)
        with pytest.raises(ValueError):
            ReactiveConfig(initial_tenure=0)
        with pytest.raises(ValueError):
            ReactiveConfig(max_tenure_fraction=0.0)


class TestREM:
    def test_run_and_feasibility(self, small_instance):
        result = rem_tabu_search(small_instance, Budget(max_moves=150), rng=0)
        assert result.best.is_feasible(small_instance)

    def test_overhead_grows_linearly(self, small_instance):
        """The §4.1 criticism: trace work ∝ iterations² overall (linear per
        iteration)."""
        short = rem_tabu_search(small_instance, Budget(max_moves=40), rng=0)
        long = rem_tabu_search(small_instance, Budget(max_moves=120), rng=0)
        assert long.running_list_length > short.running_list_length
        # quadratic cumulative overhead: 3x moves => ~9x trace steps
        assert long.trace_steps > 4 * short.trace_steps

    def test_trace_limit_caps_overhead(self, small_instance):
        capped = rem_tabu_search(
            small_instance,
            Budget(max_moves=120),
            rng=0,
            config=REMConfig(trace_limit=10),
        )
        assert capped.trace_steps <= 10 * capped.moves

    def test_finds_tiny_optimum(self, tiny_instance):
        result = rem_tabu_search(tiny_instance, Budget(max_moves=200), rng=0)
        assert result.best.value == 18.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            REMConfig(nb_drop=0)
        with pytest.raises(ValueError):
            REMConfig(trace_limit=0)


class TestCriticalEvent:
    def test_run_and_feasibility(self, small_instance):
        result = critical_event_tabu_search(
            small_instance, Budget(max_evaluations=BUDGET), rng=0
        )
        assert result.best.is_feasible(small_instance)
        assert result.critical_events > 0

    def test_oscillation_crosses_boundary(self, small_instance):
        result = critical_event_tabu_search(
            small_instance, Budget(max_evaluations=BUDGET), rng=0
        )
        assert result.phases > 1

    def test_finds_tiny_optimum(self, tiny_instance):
        result = critical_event_tabu_search(
            tiny_instance, Budget(max_evaluations=5_000), rng=0
        )
        assert result.best.value == 18.0

    def test_deterministic(self, small_instance):
        a = critical_event_tabu_search(
            small_instance, Budget(max_evaluations=BUDGET), rng=2
        )
        b = critical_event_tabu_search(
            small_instance, Budget(max_evaluations=BUDGET), rng=2
        )
        assert a.best == b.best

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CriticalEventConfig(tenure=-1)
        with pytest.raises(ValueError):
            CriticalEventConfig(initial_span=3, max_span=2)
        with pytest.raises(ValueError):
            CriticalEventConfig(span_increase_after=0)
