"""Property-based tests for the exact substrate."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MKPInstance, greedy_solution, random_solution
from repro.exact import branch_and_bound, solve_knapsack_dp, solve_lp_relaxation


@st.composite
def small_instances(draw):
    m = draw(st.integers(1, 4))
    n = draw(st.integers(1, 10))
    weights = draw(
        st.lists(
            st.lists(st.integers(1, 30), min_size=n, max_size=n),
            min_size=m,
            max_size=m,
        )
    )
    profits = draw(st.lists(st.integers(1, 60), min_size=n, max_size=n))
    capacities = draw(st.lists(st.integers(1, 120), min_size=m, max_size=m))
    return MKPInstance.from_lists(weights, capacities, profits)


class TestBnBProperties:
    @given(small_instances())
    @settings(max_examples=60, deadline=None)
    def test_optimum_dominates_heuristics(self, inst):
        result = branch_and_bound(inst, node_limit=100_000)
        assert result.proven
        assert result.value >= greedy_solution(inst).value - 1e-9
        assert result.value >= random_solution(inst, rng=0).value - 1e-9

    @given(small_instances())
    @settings(max_examples=60, deadline=None)
    def test_lp_bound_dominates_optimum(self, inst):
        result = branch_and_bound(inst, node_limit=100_000)
        lp = solve_lp_relaxation(inst)
        assert lp.value >= result.value - 1e-6

    @given(small_instances())
    @settings(max_examples=60, deadline=None)
    def test_incumbent_is_feasible_and_consistent(self, inst):
        result = branch_and_bound(inst, node_limit=100_000)
        assert inst.is_feasible(result.solution.x)
        assert result.value == float(inst.objective(result.solution.x))

    @given(small_instances())
    @settings(max_examples=40, deadline=None)
    def test_single_constraint_agrees_with_dp(self, inst):
        if inst.n_constraints != 1:
            return
        dp_value, _ = solve_knapsack_dp(
            inst.profits, inst.weights[0], float(inst.capacities[0])
        )
        bb = branch_and_bound(inst, node_limit=100_000)
        assert bb.proven
        assert abs(bb.value - dp_value) < 1e-9


class TestDPProperties:
    @given(
        st.lists(
            st.tuples(st.integers(1, 40), st.integers(1, 15)),
            min_size=1,
            max_size=10,
        ),
        st.integers(0, 60),
    )
    @settings(max_examples=80, deadline=None)
    def test_dp_matches_brute_force(self, items, capacity):
        profits = np.array([p for p, _ in items], dtype=float)
        weights = np.array([w for _, w in items], dtype=float)
        value, x = solve_knapsack_dp(profits, weights, capacity)
        # brute force
        n = len(items)
        best = 0.0
        for mask in range(1 << n):
            bits = np.array([(mask >> k) & 1 for k in range(n)])
            if bits @ weights <= capacity:
                best = max(best, float(bits @ profits))
        assert value == best
        assert x @ weights <= capacity
        assert float(x @ profits) == value
