"""Unit tests for :mod:`repro.exact.bounds`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import greedy_solution
from repro.exact import SurrogateBound, dantzig_bound, solve_lp_relaxation
from repro.instances import correlated_instance


class TestLPRelaxation:
    def test_bounds_feasible_solutions(self, small_instance):
        lp = solve_lp_relaxation(small_instance)
        assert lp.value >= greedy_solution(small_instance).value - 1e-6

    def test_fractional_solution_within_box(self, small_instance):
        lp = solve_lp_relaxation(small_instance)
        assert np.all(lp.x >= -1e-9) and np.all(lp.x <= 1 + 1e-9)

    def test_fractional_solution_satisfies_constraints(self, small_instance):
        lp = solve_lp_relaxation(small_instance)
        loads = small_instance.weights @ lp.x
        assert np.all(loads <= small_instance.capacities + 1e-6)

    def test_duals_nonnegative(self, small_instance):
        lp = solve_lp_relaxation(small_instance)
        assert np.all(lp.duals >= 0)

    def test_exact_on_tiny(self, tiny_instance):
        lp = solve_lp_relaxation(tiny_instance)
        assert lp.value >= 18.0 - 1e-9  # optimum is 18


class TestDantzig:
    def test_simple_case(self):
        # capacity 10: take item0 (p=6,w=4), item1 (p=5,w=5), 1/3 of item2
        value = dantzig_bound(
            np.array([6.0, 5.0, 3.0]), np.array([4.0, 5.0, 3.0]), 10.0
        )
        assert value == pytest.approx(6 + 5 + 3 * (1 / 3))

    def test_all_fit(self):
        value = dantzig_bound(np.array([1.0, 2.0]), np.array([1.0, 1.0]), 10.0)
        assert value == 3.0

    def test_nothing_fits(self):
        value = dantzig_bound(np.array([5.0]), np.array([10.0]), 0.0)
        assert value == 0.0

    def test_negative_capacity(self):
        assert dantzig_bound(np.array([5.0]), np.array([1.0]), -1.0) == 0.0

    def test_zero_weight_items_free(self):
        value = dantzig_bound(np.array([5.0, 7.0]), np.array([0.0, 10.0]), 0.0)
        assert value == 5.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            dantzig_bound(np.ones(3), np.ones(2), 1.0)

    def test_upper_bounds_integer_optimum(self):
        """Dantzig >= any feasible 0/1 selection (exhaustive check, n=8)."""
        rng = np.random.default_rng(5)
        p = rng.integers(1, 30, 8).astype(float)
        w = rng.integers(1, 20, 8).astype(float)
        cap = float(w.sum() * 0.4)
        best = 0.0
        for mask in range(256):
            bits = np.array([(mask >> k) & 1 for k in range(8)], dtype=float)
            if bits @ w <= cap:
                best = max(best, float(bits @ p))
        assert dantzig_bound(p, w, cap) >= best - 1e-9


class TestSurrogateBound:
    def test_root_bound_above_heuristic(self, small_instance):
        lp = solve_lp_relaxation(small_instance)
        sb = SurrogateBound(small_instance, lp.duals)
        assert sb.root_bound() >= greedy_solution(small_instance).value - 1e-6

    def test_uniform_fallback_on_zero_duals(self, small_instance):
        sb = SurrogateBound(
            small_instance, np.zeros(small_instance.n_constraints)
        )
        assert np.all(sb.multipliers == 1.0)
        assert sb.root_bound() > 0

    def test_rejects_negative_multipliers(self, small_instance):
        with pytest.raises(ValueError):
            SurrogateBound(small_instance, -np.ones(small_instance.n_constraints))

    def test_rejects_wrong_shape(self, small_instance):
        with pytest.raises(ValueError):
            SurrogateBound(small_instance, np.ones(small_instance.n_constraints + 1))

    def test_bound_decreases_with_capacity(self, small_instance):
        lp = solve_lp_relaxation(small_instance)
        sb = SurrogateBound(small_instance, lp.duals)
        full = sb.bound(0, sb.agg_capacity)
        half = sb.bound(0, sb.agg_capacity / 2)
        assert half <= full + 1e-9

    def test_bound_decreases_with_prefix(self, small_instance):
        lp = solve_lp_relaxation(small_instance)
        sb = SurrogateBound(small_instance, lp.duals)
        a = sb.bound(0, sb.agg_capacity)
        b = sb.bound(5, sb.agg_capacity)
        assert b <= a + 1e-9

    def test_matches_dantzig_on_suffix(self):
        """Surrogate bound over the full item set equals a direct Dantzig
        computation on the aggregated constraint."""
        inst = correlated_instance(4, 25, rng=9)
        lp = solve_lp_relaxation(inst)
        sb = SurrogateBound(inst, lp.duals)
        direct = dantzig_bound(inst.profits, sb.agg_weights, sb.agg_capacity)
        assert sb.root_bound() == pytest.approx(direct, rel=1e-9)
