"""Unit tests for :mod:`repro.core.strategy`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Strategy, StrategyBounds


class TestStrategy:
    def test_as_tuple(self):
        st = Strategy(lt_length=10, nb_drop=3, nb_local=25)
        assert st.as_tuple() == (10, 3, 25)

    def test_validation(self):
        with pytest.raises(ValueError):
            Strategy(lt_length=-1, nb_drop=1, nb_local=1)
        with pytest.raises(ValueError):
            Strategy(lt_length=0, nb_drop=0, nb_local=1)
        with pytest.raises(ValueError):
            Strategy(lt_length=0, nb_drop=1, nb_local=0)

    def test_frozen(self):
        st = Strategy(10, 3, 25)
        with pytest.raises(AttributeError):
            st.nb_drop = 5  # type: ignore[misc]


class TestBounds:
    def test_random_within_bounds(self):
        bounds = StrategyBounds()
        rng = np.random.default_rng(0)
        for _ in range(50):
            st = bounds.random(rng)
            assert bounds.lt_length[0] <= st.lt_length <= bounds.lt_length[1]
            assert bounds.nb_drop[0] <= st.nb_drop <= bounds.nb_drop[1]
            assert bounds.nb_local[0] <= st.nb_local <= bounds.nb_local[1]

    def test_random_covers_range(self):
        bounds = StrategyBounds(nb_drop=(1, 4))
        rng = np.random.default_rng(1)
        drops = {bounds.random(rng).nb_drop for _ in range(100)}
        assert drops == {1, 2, 3, 4}

    def test_clip(self):
        bounds = StrategyBounds(lt_length=(5, 20), nb_drop=(1, 4), nb_local=(10, 40))
        st = bounds.clip(Strategy(lt_length=100, nb_drop=1, nb_local=5))
        # nb_local clipped up to 10; nb_local=5 >= 1 so construction passed
        assert st == Strategy(20, 1, 10)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            StrategyBounds(nb_drop=(3, 2))
        with pytest.raises(ValueError):
            StrategyBounds(base_iterations=0)

    def test_nb_it_inverse_proportionality(self):
        """§4.2 load balancing: Nb_it ∝ 1/Nb_drop."""
        bounds = StrategyBounds(base_iterations=600)
        st1 = Strategy(10, 1, 20)
        st3 = Strategy(10, 3, 20)
        st6 = Strategy(10, 6, 20)
        assert bounds.nb_it(st1) == 600
        assert bounds.nb_it(st3) == 200
        assert bounds.nb_it(st6) == 100

    def test_nb_it_at_least_one(self):
        bounds = StrategyBounds(base_iterations=2, nb_drop=(1, 8))
        assert bounds.nb_it(Strategy(10, 8, 20)) == 1


class TestDirectedMutations:
    def test_diversified_moves_parameters_the_right_way(self):
        bounds = StrategyBounds()
        st = Strategy(lt_length=20, nb_drop=3, nb_local=50)
        div = st.diversified(bounds)
        assert div.lt_length > st.lt_length
        assert div.nb_drop > st.nb_drop
        assert div.nb_local < st.nb_local  # fewer local iterations => lower nb_it share

    def test_intensified_moves_parameters_the_right_way(self):
        bounds = StrategyBounds()
        st = Strategy(lt_length=20, nb_drop=3, nb_local=50)
        inten = st.intensified(bounds)
        assert inten.lt_length < st.lt_length
        assert inten.nb_drop < st.nb_drop
        assert inten.nb_local > st.nb_local

    def test_mutations_respect_bounds(self):
        bounds = StrategyBounds()
        st = Strategy(lt_length=50, nb_drop=8, nb_local=10)  # at diversified edge
        div = st.diversified(bounds, intensity=1.0)
        assert div.lt_length <= bounds.lt_length[1]
        assert div.nb_drop <= bounds.nb_drop[1]
        assert div.nb_local >= bounds.nb_local[0]
        st2 = Strategy(lt_length=5, nb_drop=1, nb_local=100)  # intensified edge
        inten = st2.intensified(bounds, intensity=1.0)
        assert inten.lt_length >= bounds.lt_length[0]
        assert inten.nb_drop >= bounds.nb_drop[0]
        assert inten.nb_local <= bounds.nb_local[1]

    def test_mutation_intensity_validation(self):
        bounds = StrategyBounds()
        st = Strategy(10, 2, 20)
        with pytest.raises(ValueError):
            st.diversified(bounds, intensity=0.0)
        with pytest.raises(ValueError):
            st.intensified(bounds, intensity=1.5)

    def test_diversify_then_intensify_round_trip_stays_in_bounds(self):
        bounds = StrategyBounds()
        rng = np.random.default_rng(3)
        st = bounds.random(rng)
        for _ in range(20):
            st = st.diversified(bounds) if rng.random() < 0.5 else st.intensified(bounds)
            assert bounds.clip(st) == st
