"""Observability layer: typed telemetry, JSONL recorder, schema, metrics.

Covers the ISSUE tentpole contracts:

* both bundled backends publish one typed :class:`RoundTelemetry` per round,
* the legacy ``last_*`` attribute convention still adapts (third-party
  backends),
* the recorder's JSONL stream conforms to the pinned event schema
  (golden-schema test) and replays bit-identically modulo timestamps,
* a disabled recorder emits nothing,
* the metrics registry renders Prometheus exposition text,
* ``python -m repro trace`` summarizes/validates recorded runs without
  re-searching.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.core import Budget
from repro.master import MasterConfig, MasterProcess
from repro.obs import (
    EVENT_SCHEMAS,
    BurstTelemetry,
    MetricsRegistry,
    RoundTelemetry,
    RunRecorder,
    collect_round_telemetry,
    merge_round_telemetry,
    read_stream,
    replay_metrics,
    summarize_stream,
    validate_event,
    validate_stream,
)
from repro.parallel import MultiprocessingBackend, SerialBackend

N_SLAVES = 3
N_ROUNDS = 3


def run_recorded(
    instance,
    *,
    path=None,
    rng_seed=5,
    backend=None,
    n_slaves=N_SLAVES,
    n_rounds=N_ROUNDS,
):
    """One recorded CTS2 run; returns (result, recorder, backend)."""
    owns = backend is None
    if backend is None:
        backend = SerialBackend(n_slaves)
    config = MasterConfig(n_slaves=n_slaves, n_rounds=n_rounds)
    recorder = RunRecorder(path)
    master = MasterProcess(
        instance, config, backend, rng_seed=rng_seed, recorder=recorder
    )
    try:
        result = master.run(budget_per_slave=Budget(max_evaluations=6_000))
    finally:
        recorder.close()
        if owns:
            backend.shutdown()
    return result, recorder, backend


class TestRoundTelemetry:
    def test_serial_backend_publishes_typed_record(self, small_instance):
        _, _, backend = run_recorded(small_instance)
        told = backend.last_telemetry
        assert isinstance(told, RoundTelemetry)
        assert told.round_index == N_ROUNDS - 1
        assert set(told.phase_seconds) == {"scatter", "compute", "gather"}
        assert set(told.task_nbytes) == set(range(N_SLAVES))
        assert all(v > 0 for v in told.task_nbytes.values())
        assert all(v > 0 for v in told.report_nbytes.values())
        assert told.total_bytes == sum(told.task_nbytes.values()) + sum(
            told.report_nbytes.values()
        )

    def test_multiprocessing_backend_publishes_typed_record(
        self, small_instance, mp_context
    ):
        backend = MultiprocessingBackend(2, mp_context=mp_context)
        try:
            run_recorded(
                small_instance, backend=backend, n_slaves=2, n_rounds=2
            )
            told = backend.last_telemetry
            assert isinstance(told, RoundTelemetry)
            assert told.round_index == 1
            assert set(told.phase_seconds) == {"scatter", "compute", "gather"}
            assert set(told.report_nbytes) == {0, 1}
        finally:
            backend.shutdown()

    def test_event_fields_match_schema(self, small_instance):
        _, _, backend = run_recorded(small_instance)
        fields = backend.last_telemetry.to_event_fields()
        assert set(fields) == EVENT_SCHEMAS["round_telemetry"]
        # JSON-ready: per-slave maps carry string keys.
        assert all(isinstance(k, str) for k in fields["gather_idle_s"])
        json.dumps(fields)  # must not raise

    def test_legacy_attribute_adapter(self):
        class OldBackend:
            last_phase_seconds = {"scatter": 0.1, "compute": 0.7, "gather": 0.2}
            last_gather_idle_s = {0: 0.05, 1: 0.0}
            last_master_wait_s = 0.12
            last_task_nbytes = [100, 200]  # old list convention
            last_report_nbytes = {0: 300, 1: 400}
            last_slowdowns = {1: 4.0}

        told = collect_round_telemetry(OldBackend(), 7)
        assert told.round_index == 7
        assert told.task_nbytes == {0: 100, 1: 200}
        assert told.report_nbytes == {0: 300, 1: 400}
        assert told.slowdowns == {1: 4.0}
        assert told.master_wait_s == pytest.approx(0.12)

    def test_bare_backend_adapts_to_empty_record(self):
        told = collect_round_telemetry(object(), 3)
        assert told == RoundTelemetry(round_index=3)
        assert told.total_bytes == 0
        assert told.idle_ratio() == 0.0

    def test_idle_ratio_bounds(self):
        told = RoundTelemetry(
            round_index=0,
            phase_seconds={"gather": 1.0},
            gather_idle_s={0: 0.5, 1: 0.0},
        )
        assert told.idle_ratio() == pytest.approx(0.25)
        flooded = RoundTelemetry(
            round_index=0,
            phase_seconds={"gather": 0.1},
            gather_idle_s={0: 5.0},
        )
        assert flooded.idle_ratio() == 1.0


class TestRunRecorder:
    def test_disabled_recorder_is_silent(self):
        recorder = RunRecorder.disabled()
        recorder.emit("round_end", round_index=0)
        recorder.round_start(0, tasked_slaves=2, backoff_slaves=0)
        assert recorder.events == []
        assert recorder.metrics.counter_value("repro_rounds_total") == 0.0

    def test_golden_stream_schema(self, small_instance, tmp_path):
        path = tmp_path / "run.jsonl"
        result, recorder, _ = run_recorded(small_instance, path=path)
        lines = path.read_text(encoding="utf-8").splitlines()
        assert validate_stream(lines) == []
        events = read_stream(path)
        assert [e["seq"] for e in events] == list(range(len(events)))
        kinds = [e["event"] for e in events]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        assert kinds.count("round_start") == N_ROUNDS
        assert kinds.count("round_telemetry") == N_ROUNDS
        assert kinds.count("isp") == N_ROUNDS
        assert kinds.count("sgp") == N_ROUNDS  # CTS2 adapts strategies
        assert kinds.count("round_end") == N_ROUNDS
        # The manifest pins enough to rerun: seed, instance, versions.
        manifest = events[0]
        assert manifest["seed"] == 5
        assert manifest["variant"] == "CTS2"
        assert set(manifest["versions"]) == {"repro", "numpy", "python"}
        # Stream and in-memory copies agree.
        assert events == recorder.events
        finale = events[-1]
        assert finale["best_value"] == result.best.value
        assert finale["total_evaluations"] == result.total_evaluations

    def test_replay_identical_modulo_timestamps(self, small_instance):
        def strip(events):
            return [{k: v for k, v in e.items() if k != "t"} for e in events]

        _, a, _ = run_recorded(small_instance, rng_seed=11)
        _, b, _ = run_recorded(small_instance, rng_seed=11)
        a_events, b_events = strip(a.events), strip(b.events)
        # Wall-clock floats differ run to run; everything else replays.
        for ea, eb in zip(a_events, b_events):
            assert set(ea) == set(eb)
            if ea["event"] in ("round_telemetry", "run_end"):
                continue
            assert ea == eb
        assert [e["event"] for e in a_events] == [e["event"] for e in b_events]

    def test_replay_metrics_matches_live(self, small_instance, tmp_path):
        path = tmp_path / "run.jsonl"
        _, recorder, _ = run_recorded(small_instance, path=path)
        replayed = replay_metrics(read_stream(path))
        for name in ("repro_rounds_total", "repro_evaluations_total"):
            assert replayed.counter_value(name) == recorder.metrics.counter_value(
                name
            )
        assert replayed.gauge_value("repro_best_value") == recorder.metrics.gauge_value(
            "repro_best_value"
        )
        assert replayed.counter_value("repro_rounds_total") == N_ROUNDS

    def test_summarize_stream(self, small_instance):
        result, recorder, _ = run_recorded(small_instance)
        summary = summarize_stream(recorder.events)
        assert summary["variant"] == "CTS2"
        assert summary["n_slaves"] == N_SLAVES
        assert summary["n_rounds"] == N_ROUNDS
        assert summary["best_value"] == result.best.value
        assert set(summary["phase_totals"]) >= {"scatter", "compute", "gather"}
        assert summary["bytes"]["task"] > 0
        assert summary["bytes"]["report"] > 0
        assert summary["fault_tallies"] == {}


class TestSchemaValidation:
    def test_unknown_event_type(self):
        assert validate_event({"event": "nope", "seq": 0, "t": 0.0}) == [
            "unknown event type 'nope'"
        ]

    def test_missing_and_extra_fields(self):
        event = {
            "event": "round_start",
            "seq": 0,
            "t": 0.0,
            "round_index": 1,
            "tasked_slaves": 2,
            "surprise": True,
        }
        errors = validate_event(event)
        assert any("missing fields ['backoff_slaves']" in e for e in errors)
        assert any("unexpected fields ['surprise']" in e for e in errors)

    def test_stream_structural_checks(self):
        ok = {"event": "round_start", "round_index": 0, "tasked_slaves": 1,
              "backoff_slaves": 0}
        lines = [
            json.dumps({**ok, "seq": 0, "t": 0.0}),
            json.dumps({**ok, "seq": 2, "t": 0.1}),  # seq gap
        ]
        errors = validate_stream(lines)
        assert any("run_start" in e for e in errors)
        assert any("gapless" in e for e in errors)

    def test_stream_rejects_garbage_line(self):
        errors = validate_stream(["{not json"])
        assert errors and "not valid JSON" in errors[0]


class TestMetricsRegistry:
    def test_counters_and_labels(self):
        m = MetricsRegistry()
        m.inc("repro_bytes_total", 10, direction="task")
        m.inc("repro_bytes_total", 5, direction="task")
        m.inc("repro_bytes_total", 3, direction="report")
        assert m.counter_value("repro_bytes_total", direction="task") == 15
        assert m.counter_value("repro_bytes_total", direction="report") == 3
        assert m.counter_value("repro_bytes_total", direction="other") == 0

    def test_prometheus_rendering(self):
        m = MetricsRegistry()
        m.describe("repro_rounds_total", "rounds completed")
        m.inc("repro_rounds_total", 4)
        m.set_gauge("repro_best_value", 123.0)
        text = m.render_prometheus()
        assert "# HELP repro_rounds_total rounds completed" in text
        assert "# TYPE repro_rounds_total counter" in text
        assert "repro_rounds_total 4" in text
        assert "# TYPE repro_best_value gauge" in text
        assert "repro_best_value 123" in text

    def test_label_rendering_sorted(self):
        m = MetricsRegistry()
        m.inc("repro_x", 1, b="2", a="1")
        assert 'repro_x{a="1",b="2"} 1' in m.render_prometheus()

    def test_invalid_name_rejected(self):
        m = MetricsRegistry()
        with pytest.raises(ValueError, match="metric name"):
            m.inc("bad name")
        with pytest.raises(ValueError, match="metric name"):
            m.set_gauge("1starts_with_digit", 0.0)


class TestTraceCLI:
    @pytest.fixture()
    def stream_path(self, small_instance, tmp_path):
        path = tmp_path / "run.jsonl"
        run_recorded(small_instance, path=path)
        return path

    def test_trace_summarizes_stream(self, stream_path, capsys):
        assert cli_main(["trace", str(stream_path)]) == 0
        out = capsys.readouterr().out
        assert "variant:" in out and "CTS2" in out
        assert "measured wall phases:" in out

    def test_trace_validate_ok(self, stream_path, capsys):
        assert cli_main(["trace", str(stream_path), "--validate"]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_trace_validate_catches_corruption(self, stream_path, capsys):
        text = stream_path.read_text(encoding="utf-8")
        stream_path.write_text(text + '{"event": "nope", "seq": 99, "t": 0}\n')
        assert cli_main(["trace", str(stream_path), "--validate"]) == 1
        assert "invalid:" in capsys.readouterr().out

    def test_trace_prometheus(self, stream_path, capsys):
        assert cli_main(["trace", str(stream_path), "--prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_rounds_total counter" in out

    def test_trace_reads_saved_result_record(
        self, small_instance, tmp_path, capsys
    ):
        from repro.analysis import save_result

        result, _, _ = run_recorded(small_instance)
        path = tmp_path / "run.json"
        save_result(result, path)
        assert cli_main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "variant:" in out and "CTS2" in out

    def test_trace_rejects_validate_on_record(
        self, small_instance, tmp_path
    ):
        from repro.analysis import save_result

        result, _, _ = run_recorded(small_instance)
        path = tmp_path / "run.json"
        save_result(result, path)
        with pytest.raises(SystemExit, match="JSONL"):
            cli_main(["trace", str(path), "--validate"])

    def test_trace_missing_file(self, tmp_path):
        with pytest.raises(SystemExit, match="no such file"):
            cli_main(["trace", str(tmp_path / "absent.jsonl")])

    def test_solve_record_flag_writes_stream(
        self, tmp_path, capsys
    ):
        out_file = tmp_path / "cli.jsonl"
        code = cli_main(
            [
                "solve", "FP05", "--variant", "cts2", "--slaves", "2",
                "--rounds", "2", "--evals", "4000", "--record", str(out_file),
            ]
        )
        assert code == 0
        assert "recorded" in capsys.readouterr().out
        assert validate_stream(out_file.read_text().splitlines()) == []

    def test_solve_record_rejects_seq(self, tmp_path):
        with pytest.raises(SystemExit, match="record"):
            cli_main(
                ["solve", "FP05", "--variant", "seq", "--evals", "1000",
                 "--record", str(tmp_path / "x.jsonl")]
            )


class TestSubscribers:
    def test_fanout_receives_every_event(self, small_instance):
        recorder = RunRecorder()
        seen: list[dict] = []
        recorder.subscribe(seen.append)
        run_recorded_with(recorder, small_instance)
        assert seen == recorder.events

    def test_unsubscribe_stops_delivery(self):
        recorder = RunRecorder()
        seen: list[dict] = []
        recorder.subscribe(seen.append)
        recorder.emit("note", text="a")
        recorder.unsubscribe(seen.append)
        recorder.emit("note", text="b")
        assert [e["text"] for e in seen] == ["a"]

    def test_raising_subscriber_is_dropped_not_fatal(self):
        recorder = RunRecorder()
        calls = {"n": 0}

        def bad(_record):
            calls["n"] += 1
            raise RuntimeError("subscriber exploded")

        good: list[dict] = []
        recorder.subscribe(bad)
        recorder.subscribe(good.append)
        recorder.emit("note", text="a")  # bad raises, gets dropped
        recorder.emit("note", text="b")
        assert calls["n"] == 1
        assert len(good) == 2


def run_recorded_with(recorder, instance):
    backend = SerialBackend(2)
    config = MasterConfig(n_slaves=2, n_rounds=2)
    master = MasterProcess(instance, config, backend, rng_seed=5, recorder=recorder)
    try:
        return master.run(budget_per_slave=Budget(max_evaluations=2_000))
    finally:
        backend.shutdown()


class TestFollowStream:
    def test_complete_file_terminates_at_run_end(self, small_instance, tmp_path):
        from repro.obs import follow_stream

        path = tmp_path / "run.jsonl"
        run_recorded(small_instance, path=path)
        # no idle timeout needed: run_end ends the tail immediately
        events = list(follow_stream(path))
        assert events == read_stream(path)
        assert events[-1]["event"] == "run_end"

    def test_tails_a_live_writer(self, small_instance, tmp_path):
        import threading
        import time as _time

        from repro.obs import follow_stream

        path = tmp_path / "live.jsonl"
        lines = [
            json.dumps({"event": "run_start", "seq": 0, "t": 0.0}),
            json.dumps({"event": "round_start", "seq": 1, "t": 0.1,
                        "round_index": 0}),
            json.dumps({"event": "run_end", "seq": 2, "t": 0.2}),
        ]
        path.write_text("")

        def writer():
            with path.open("a", encoding="utf-8") as fh:
                for line in lines:
                    # split mid-line: the reader must buffer the fragment
                    fh.write(line[:10])
                    fh.flush()
                    _time.sleep(0.05)
                    fh.write(line[10:] + "\n")
                    fh.flush()

        thread = threading.Thread(target=writer)
        thread.start()
        events = list(follow_stream(path, poll_s=0.01))
        thread.join()
        assert [e["event"] for e in events] == [
            "run_start", "round_start", "run_end",
        ]

    def test_idle_timeout_ends_unfinished_stream(self, tmp_path):
        import time as _time

        from repro.obs import follow_stream

        path = tmp_path / "stalled.jsonl"
        path.write_text(
            json.dumps({"event": "run_start", "seq": 0, "t": 0.0}) + "\n"
        )
        t0 = _time.monotonic()
        events = list(follow_stream(path, poll_s=0.01, idle_timeout_s=0.2))
        assert _time.monotonic() - t0 < 5.0
        assert [e["event"] for e in events] == ["run_start"]

    def test_stop_callback_ends_tail(self, tmp_path):
        from repro.obs import follow_stream

        path = tmp_path / "stop.jsonl"
        path.write_text(
            json.dumps({"event": "run_start", "seq": 0, "t": 0.0}) + "\n"
        )
        events = list(follow_stream(path, poll_s=0.01, stop=lambda: True))
        # existing events drain first; the stop fires once the file is dry
        assert [e["event"] for e in events] == ["run_start"]


class TestTraceFollowCLI:
    def test_follow_completed_stream(self, small_instance, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        run_recorded(small_instance, path=path)
        assert cli_main(["trace", str(path), "--follow"]) == 0
        out = capsys.readouterr().out
        assert "run_start" in out
        assert "run_end" in out
        assert "measured wall phases:" in out  # summary still printed

    def test_follow_excludes_validate(self, small_instance, tmp_path):
        path = tmp_path / "run.jsonl"
        run_recorded(small_instance, path=path)
        with pytest.raises(SystemExit, match="--follow excludes"):
            cli_main(["trace", str(path), "--follow", "--validate"])

    def test_follow_idle_timeout_on_unfinished_stream(self, tmp_path, capsys):
        path = tmp_path / "partial.jsonl"
        path.write_text(
            json.dumps(
                {"event": "run_start", "seq": 0, "t": 0.0, "variant": "CTS2"}
            )
            + "\n"
        )
        assert cli_main(
            ["trace", str(path), "--follow", "--idle-timeout", "0.2"]
        ) == 0
        out = capsys.readouterr().out
        assert "run_start" in out
        assert "stream still open" in out

class TestMergeRoundTelemetry:
    """Satellite fix: multi-record rounds aggregate instead of keeping only
    the last record (the old last-write-wins silently dropped every burst
    but the final one)."""

    def _records(self):
        a = RoundTelemetry(
            round_index=2,
            phase_seconds={"compute": 1.0},
            gather_idle_s={0: 0.1},
            master_wait_s=0.1,
            task_nbytes={0: 10},
            report_nbytes={0: 5},
            slowdowns={0: 2.0},
        )
        b = RoundTelemetry(
            round_index=2,
            phase_seconds={"compute": 0.5, "gather": 0.2},
            gather_idle_s={0: 0.2, 1: 0.3},
            master_wait_s=0.05,
            task_nbytes={0: 10, 1: 7},
            report_nbytes={0: 5},
            slowdowns={0: 4.0},
        )
        return a, b

    def test_merge_aggregates_not_last_write_wins(self):
        a, b = self._records()
        merged = merge_round_telemetry([a, b])
        assert merged.round_index == 2
        assert merged.phase_seconds["compute"] == pytest.approx(1.5)
        assert merged.phase_seconds["gather"] == pytest.approx(0.2)
        assert merged.gather_idle_s[0] == pytest.approx(0.3)
        assert merged.gather_idle_s[1] == pytest.approx(0.3)
        assert merged.master_wait_s == pytest.approx(0.15)
        assert merged.task_nbytes == {0: 20, 1: 7}
        assert merged.report_nbytes == {0: 10}
        # Slowdown factors keep the worst observed value per slave.
        assert merged.slowdowns == {0: 4.0}

    def test_merge_needs_at_least_one_record(self):
        with pytest.raises(ValueError, match="at least one"):
            merge_round_telemetry([])

    def test_collect_merges_list_publishing_backends(self):
        a, b = self._records()

        class BurstyBackend:
            last_telemetry = [a, b]

        told = collect_round_telemetry(BurstyBackend(), 2)
        assert told.master_wait_s == pytest.approx(0.15)
        assert told.task_nbytes == {0: 20, 1: 7}

    def test_collect_single_record_unchanged(self):
        a, _ = self._records()

        class OneShotBackend:
            last_telemetry = a

        assert collect_round_telemetry(OneShotBackend(), 2) is a


class TestBurstTelemetryObs:
    """Satellite: pipelined-burst observability (schema, metrics, trace)."""

    def run_recorded_async(self, instance, path=None):
        backend = SerialBackend(2)
        config = MasterConfig(n_slaves=2, n_rounds=2, pipeline="async")
        recorder = RunRecorder(path)
        master = MasterProcess(
            instance, config, backend, rng_seed=5, recorder=recorder
        )
        try:
            result = master.run(budget_per_slave=Budget(max_evaluations=2_000))
        finally:
            recorder.close()
            backend.shutdown()
        return result, recorder

    def test_event_fields_match_pinned_schema(self):
        told = BurstTelemetry(
            slave_id=0,
            burst_index=1,
            queue_depth=1,
            staleness=0,
            latency_s=0.5,
            task_nbytes=10,
            report_nbytes=20,
            outcome="report",
        )
        fields = told.to_event_fields()
        assert set(fields) == EVENT_SCHEMAS["burst_telemetry"]
        json.dumps(fields)  # must not raise
        event = {"event": "burst_telemetry", "seq": 0, "t": 0.0, **fields}
        assert validate_event(event) == []

    def test_async_stream_valid_and_metrics_projection(
        self, small_instance, tmp_path
    ):
        path = tmp_path / "async.jsonl"
        _, recorder = self.run_recorded_async(small_instance, path)
        assert validate_stream(path.read_text().splitlines()) == []
        replayed = replay_metrics(read_stream(path))
        # 2 slaves x 2 bursts, all healthy.
        assert replayed.counter_value("repro_bursts_total", outcome="report") == 4
        assert replayed.counter_value(
            "repro_bursts_total", outcome="report"
        ) == recorder.metrics.counter_value("repro_bursts_total", outcome="report")
        prom = replayed.render_prometheus()
        assert "repro_pipeline_queue_depth" in prom
        assert "repro_pipeline_staleness" in prom
        assert "repro_burst_latency_seconds_total" in prom

    def test_summarize_stream_pipeline_section(self, small_instance):
        _, recorder = self.run_recorded_async(small_instance)
        section = summarize_stream(recorder.events)["pipeline"]
        assert section is not None
        assert section["bursts"] == 4
        assert section["outcomes"] == {"report": 4}
        assert section["max_staleness"] <= 2
        assert section["mean_queue_depth"] >= 0.0

    def test_sync_stream_has_no_pipeline_section(self, small_instance):
        _, recorder, _ = run_recorded(small_instance)
        assert summarize_stream(recorder.events)["pipeline"] is None

    def test_trace_follow_renders_burst_lines(
        self, small_instance, tmp_path, capsys
    ):
        path = tmp_path / "async.jsonl"
        self.run_recorded_async(small_instance, path)
        assert cli_main(["trace", str(path), "--follow"]) == 0
        out = capsys.readouterr().out
        assert "burst" in out
        assert "staleness=" in out
