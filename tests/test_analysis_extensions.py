"""Tests for gantt rendering, result serialization, and convergence tools."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis import (
    anytime_curve,
    load_result,
    normalized_auc,
    render_gantt,
    result_from_dict,
    result_to_dict,
    save_result,
    time_to_value,
    value_at,
)
from repro.farm import EventKind, FarmTrace
from repro.variants import solve_cts2, solve_seq


@pytest.fixture(scope="module")
def run_result():
    from repro.instances import correlated_instance

    inst = correlated_instance(5, 30, rng=42)
    return solve_cts2(
        inst, n_slaves=3, n_rounds=3, rng_seed=0, max_evaluations=10_000
    )


class TestGantt:
    def test_renders_all_processors(self, run_result):
        art = render_gantt(run_result.trace, width=40)
        # 3 slaves + master rank
        assert art.count("proc") == 4
        assert "compute" in art

    def test_compute_glyph_present(self, run_result):
        art = render_gantt(run_result.trace, width=40)
        assert "█" in art

    def test_empty_trace(self):
        assert "empty" in render_gantt(FarmTrace())

    def test_width_validation(self, run_result):
        with pytest.raises(ValueError):
            render_gantt(run_result.trace, width=0)

    def test_manual_trace_majority_rule(self):
        trace = FarmTrace()
        trace.record(0, EventKind.COMPUTE, 0.0, 0.9)
        trace.record(0, EventKind.BARRIER_WAIT, 0.9, 1.0)
        art = render_gantt(trace, width=10)
        line = [ln for ln in art.splitlines() if ln.startswith("proc")][0]
        # nine compute bins, one idle bin
        assert line.count("█") == 9
        assert line.count("░") == 1


class TestSerialization:
    def test_roundtrip_preserves_everything(self, run_result, tmp_path):
        path = tmp_path / "run.json"
        save_result(run_result, path)
        loaded = load_result(path)
        assert loaded.best == run_result.best
        assert loaded.variant == run_result.variant
        assert loaded.total_evaluations == run_result.total_evaluations
        assert loaded.virtual_seconds == run_result.virtual_seconds
        assert loaded.value_history == run_result.value_history
        assert len(loaded.rounds) == len(run_result.rounds)
        assert loaded.rounds[0].isp_rules == run_result.rounds[0].isp_rules
        assert len(loaded.trace.events) == len(run_result.trace.events)

    def test_dict_roundtrip_without_trace(self, run_result):
        data = result_to_dict(run_result)
        data["trace"] = None
        loaded = result_from_dict(data)
        assert loaded.trace is None

    def test_version_guard(self, run_result):
        data = result_to_dict(run_result)
        data["format_version"] = 999
        with pytest.raises(ValueError, match="version"):
            result_from_dict(data)


class TestSerializationV2:
    """The v2 format is lossless and a fixed point (ISSUE satellites 1–2)."""

    def test_dict_fixed_point(self, run_result):
        data = result_to_dict(run_result)
        assert result_to_dict(result_from_dict(data)) == data
        # Byte-identical through an actual JSON round-trip too.
        rehydrated = result_from_dict(json.loads(json.dumps(data)))
        assert json.dumps(result_to_dict(rehydrated)) == json.dumps(data)

    def test_phase_wall_and_gather_idle_survive(self, run_result, tmp_path):
        assert any(s.phase_wall_seconds for s in run_result.rounds)
        path = tmp_path / "run.json"
        save_result(run_result, path)
        loaded = load_result(path)
        for orig, back in zip(run_result.rounds, loaded.rounds):
            assert back.phase_wall_seconds == orig.phase_wall_seconds
            assert back.gather_idle_s == orig.gather_idle_s
            assert all(isinstance(k, int) for k in back.gather_idle_s)

    def test_slave_virtual_seconds_keyed_by_id(self, run_result, tmp_path):
        path = tmp_path / "run.json"
        save_result(run_result, path)
        loaded = load_result(path)
        for orig, back in zip(run_result.rounds, loaded.rounds):
            assert back.slave_virtual_seconds == orig.slave_virtual_seconds
            assert all(isinstance(k, int) for k in back.slave_virtual_seconds)

    def test_trace_wall_phases_survive(self, run_result, tmp_path):
        totals = run_result.trace.wall_phase_totals()
        assert totals.get("compute", 0.0) > 0.0
        path = tmp_path / "run.json"
        save_result(run_result, path)
        loaded = load_result(path)
        assert loaded.trace.wall_phase_totals() == totals
        assert loaded.trace.wall_phases == run_result.trace.wall_phases

    def test_v1_record_still_loads(self, run_result):
        # Downgrade a v2 dict to the v1 shape by hand: bare-list trace,
        # arrival-ordered slave seconds, no measured wall fields.
        data = result_to_dict(run_result)
        data["format_version"] = 1
        data["trace"] = data["trace"]["events"]
        for rnd in data["rounds"]:
            rnd["slave_virtual_seconds"] = list(
                rnd["slave_virtual_seconds"].values()
            )
            del rnd["phase_wall_seconds"]
            del rnd["gather_idle_s"]
        loaded = result_from_dict(data)
        assert loaded.best == run_result.best
        assert len(loaded.trace.events) == len(run_result.trace.events)
        assert loaded.trace.wall_phases == []
        first = loaded.rounds[0]
        # v1 lists become index-keyed dicts; measured fields default empty.
        assert set(first.slave_virtual_seconds) == set(
            range(len(first.slave_virtual_seconds))
        )
        assert first.phase_wall_seconds == {}
        assert first.gather_idle_s == {}


class TestBestValueAt:
    @staticmethod
    def _result(value_history):
        x = np.zeros(4, dtype=np.int8)
        x[0] = 1
        from repro.core.solution import Solution
        from repro.master.result import ParallelRunResult, RoundStats

        rounds = [
            RoundStats(
                round_index=i,
                best_value=10.0 + i,
                round_virtual_seconds=1.0,
                slave_virtual_seconds={0: 1.0},
                communication_seconds=0.0,
                evaluations=100,
                improved_slaves=1,
            )
            for i in range(3)
        ]
        return ParallelRunResult(
            variant="CTS2",
            best=Solution(x, 12.0),
            rounds=rounds,
            total_evaluations=300,
            virtual_seconds=3.0,
            wall_seconds=0.1,
            n_slaves=1,
            value_history=value_history,
        )

    def test_before_first_round_returns_initial_incumbent(self):
        # Regression (ISSUE satellite 4): the pre-first-round value is the
        # initial incumbent, not -inf and not round 0's (future) best.
        result = self._result([7.0, 10.0, 11.0, 12.0])
        assert result.best_value_at(0.0) == 7.0
        assert result.best_value_at(0.5) == 7.0
        assert result.best_value_at(-1.0) == 7.0

    def test_after_rounds_accumulate(self):
        result = self._result([7.0, 10.0, 11.0, 12.0])
        assert result.best_value_at(1.0) == 10.0
        assert result.best_value_at(2.5) == 11.0
        assert result.best_value_at(99.0) == 12.0

    def test_fallback_without_value_history(self):
        result = self._result([])
        assert result.best_value_at(0.0) == 10.0


class TestConvergence:
    def test_curve_monotone(self, run_result):
        curve = anytime_curve(run_result)
        values = [v for _, v in curve]
        assert values == sorted(values)
        times = [t for t, _ in curve]
        assert times == sorted(times)
        assert times[0] == 0.0

    def test_value_at(self):
        curve = [(0.0, 1.0), (1.0, 5.0), (2.0, 7.0)]
        assert value_at(curve, -0.5) == 1.0
        assert value_at(curve, 0.5) == 1.0
        assert value_at(curve, 1.0) == 5.0
        assert value_at(curve, 99.0) == 7.0

    def test_value_at_empty(self):
        with pytest.raises(ValueError):
            value_at([], 1.0)

    def test_normalized_auc_bounds(self, run_result):
        curve = anytime_curve(run_result)
        auc = normalized_auc(curve, reference=run_result.best.value)
        assert 0.0 <= auc <= 1.0

    def test_normalized_auc_perfect(self):
        curve = [(0.0, 10.0), (1.0, 10.0)]
        assert normalized_auc(curve, reference=10.0) == pytest.approx(1.0)

    def test_normalized_auc_half(self):
        # value 0 for first half, 10 for second half => AUC = 0.5
        curve = [(0.0, 0.0), (1.0, 10.0), (2.0, 10.0)]
        assert normalized_auc(curve, reference=10.0) == pytest.approx(0.5)

    def test_auc_horizon_beyond_curve(self):
        curve = [(0.0, 10.0), (1.0, 10.0)]
        assert normalized_auc(curve, reference=10.0, horizon=4.0) == pytest.approx(1.0)

    def test_time_to_value(self):
        curve = [(0.0, 1.0), (1.0, 5.0), (2.0, 7.0)]
        assert time_to_value(curve, 5.0) == 1.0
        assert time_to_value(curve, 0.5) == 0.0
        assert time_to_value(curve, 100.0) is None

    def test_faster_variant_higher_auc(self):
        """A sanity check tying the tool to the experiment design: CTS2's
        AUC is computed per-run, so comparing two runs is meaningful."""
        from repro.instances import correlated_instance

        inst = correlated_instance(5, 40, rng=9)
        fast = solve_seq(inst, rng_seed=0, max_evaluations=30_000)
        curve = anytime_curve(fast)
        auc = normalized_auc(curve, reference=fast.best.value)
        assert 0.0 < auc <= 1.0
