"""Unit tests for the master's per-slave data structure."""

from __future__ import annotations

import numpy as np

from repro.core import Solution, Strategy
from repro.master import INITIAL_SCORE, SlaveEntry


def sol(bits: list[int], value: float) -> Solution:
    return Solution(np.array(bits, dtype=np.int8), value)


def make_entry() -> SlaveEntry:
    return SlaveEntry(
        slave_id=0,
        strategy=Strategy(10, 2, 20),
        init_solution=sol([1, 0, 0], 5.0),
    )


class TestEntry:
    def test_initial_score_is_four(self):
        """§4.2: 'a predetermined value (four in the actual version)'."""
        assert INITIAL_SCORE == 4
        assert make_entry().score == 4

    def test_best_none_initially(self):
        assert make_entry().best is None

    def test_absorb_sorts_and_reports_improvement(self):
        entry = make_entry()
        changed = entry.absorb_elite([sol([1, 0, 0], 5), sol([0, 1, 0], 9)], capacity=4)
        assert changed
        assert entry.best.value == 9

    def test_absorb_no_improvement(self):
        entry = make_entry()
        entry.absorb_elite([sol([0, 1, 0], 9)], capacity=4)
        changed = entry.absorb_elite([sol([1, 0, 0], 5)], capacity=4)
        assert not changed

    def test_absorb_deduplicates(self):
        entry = make_entry()
        entry.absorb_elite([sol([0, 1, 0], 9)], capacity=4)
        entry.absorb_elite([sol([0, 1, 0], 9)], capacity=4)
        assert len(entry.best_solutions) == 1

    def test_absorb_caps_capacity(self):
        entry = make_entry()
        sols = [sol([1 if i == j else 0 for i in range(6)], float(j)) for j in range(6)]
        entry.absorb_elite(sols, capacity=3)
        assert len(entry.best_solutions) == 3
        assert [s.value for s in entry.best_solutions] == [5.0, 4.0, 3.0]

    def test_absorb_keeps_cross_round_memory(self):
        entry = make_entry()
        entry.absorb_elite([sol([0, 1, 0], 9)], capacity=3)
        entry.absorb_elite([sol([0, 0, 1], 7)], capacity=3)
        values = [s.value for s in entry.best_solutions]
        assert values == [9.0, 7.0]
