"""Differential pins: shm/batched execution is bit-identical to the pipe path.

Every test here runs one (instance, seed, variant) case under several
backend configurations and asserts the **canonical serializations** match
byte-for-byte (see ``tests/differential`` for what "canonical" strips —
wall-clock measurements only).  The reference path is always the legacy
layout: pipe transport, one slave per worker (``batch_k=1``).

Matrix covered across the module, per ISSUE-7's acceptance line:

* serial warm backend vs serial batched backend (``batch_k=4``);
* multiprocessing under **fork and spawn**, transport ∈ {pipe, shm},
  batch ∈ {1, 4};
* one seeded chaos plan (drops/duplicates/delays/straggles, crash-free)
  replayed on both transports within each batch width.
"""

from __future__ import annotations

import pytest

from repro.instances import gk_instance
from repro.parallel import MultiprocessingBackend, SerialBackend, shm_available
from repro.parallel.faults import FaultKind, FaultPlan

from tests.differential import assert_differential, run_canonical

pytestmark = pytest.mark.filterwarnings("ignore::UserWarning")


def _mp(context: str, transport: str, batch_k: int, **kw):
    """Factory-of-factories for a fresh 4-slave multiprocessing backend."""

    def factory():
        return MultiprocessingBackend(
            4,
            mp_context=context,
            transport=transport,
            batch_k=batch_k,
            **kw,
        )

    return factory


class TestSerialDifferential:
    @pytest.mark.parametrize("variant", ["its", "cts2"])
    def test_batched_serial_matches_per_slave_serial(self, variant):
        assert_differential(
            gk_instance(5),
            {
                "serial-k1": lambda: SerialBackend(4),
                "serial-k4": lambda: SerialBackend(4, batch_k=4),
                "serial-k3": lambda: SerialBackend(4, batch_k=3),
            },
            variant=variant,
            max_evaluations=1_200,
        )

    def test_runner_default_backend_matches_external_serial(self):
        # ``backend_factory=None`` exercises the runner-owned default path.
        reference = run_canonical(gk_instance(5))
        external = run_canonical(
            gk_instance(5), backend_factory=lambda: SerialBackend(4, batch_k=2)
        )
        assert external == reference


class TestMultiprocessingDifferential:
    def test_fork_transport_and_batch_matrix(self):
        assert_differential(
            gk_instance(5),
            {
                "pipe-k1": _mp("fork", "pipe", 1),
                "shm-k1": _mp("fork", "shm", 1),
                "shm-k4": _mp("fork", "shm", 4),
                "pipe-k4": _mp("fork", "pipe", 4),
            },
            max_evaluations=1_500,
        )

    def test_spawn_transport_and_batch_matrix(self):
        assert_differential(
            gk_instance(5),
            {
                "pipe-k1": _mp("spawn", "pipe", 1),
                "shm-k1": _mp("spawn", "shm", 1),
                "shm-k4": _mp("spawn", "shm", 4),
            },
            n_rounds=2,
            max_evaluations=800,
        )

    def test_mp_matches_serial_trajectory(self):
        # Serial and MP charge different byte ledgers (pickle vs wire codec),
        # so cross-family identity holds at the trajectory level, not the
        # canonical-bytes level: same incumbents, same search effort.
        import json

        serial = json.loads(run_canonical(gk_instance(5), max_evaluations=1_200))
        mp = json.loads(
            run_canonical(
                gk_instance(5),
                backend_factory=_mp("fork", "shm", 4),
                max_evaluations=1_200,
            )
        )
        assert mp["best"] == serial["best"]
        assert mp["value_history"] == serial["value_history"]
        assert mp["total_evaluations"] == serial["total_evaluations"]

    @pytest.mark.skipif(not shm_available(), reason="POSIX shared memory unavailable")
    def test_shm_transport_actually_engaged(self):
        # Guard against the matrix silently degrading to pipe-vs-pipe.
        backend = MultiprocessingBackend(4, transport="shm", batch_k=4)
        try:
            assert backend.transport == "shm"
        finally:
            backend.shutdown()


class TestChaosDifferential:
    """One seeded crash-free chaos plan replayed across both transports.

    Crash faults are excluded on purpose: a buried-and-respawned worker is
    pinned elsewhere (``tests/test_fault_injection.py``); here the plan
    must perturb *message flow* (drops, duplicates, delays, straggles)
    while leaving the trajectory a pure function of the plan — so the two
    transports must still agree byte-for-byte.
    """

    @staticmethod
    def _plan() -> FaultPlan:
        return FaultPlan.from_seed(
            101,
            n_slaves=4,
            n_rounds=3,
            report_drop_rate=0.15,
            duplicate_rate=0.2,
            delay_rate=0.2,
            straggle_rate=0.2,
        )

    @pytest.mark.parametrize("batch_k", [1, 4])
    def test_chaos_plan_is_transport_invariant(self, batch_k):
        plan = self._plan()
        assert not any(
            e.kind is FaultKind.CRASH for e in plan.events
        ), "chaos differential requires a crash-free plan"
        assert_differential(
            gk_instance(5),
            {
                f"pipe-k{batch_k}": _mp(
                    "fork", "pipe", batch_k, fault_plan=plan, round_timeout_s=2.0
                ),
                f"shm-k{batch_k}": _mp(
                    "fork", "shm", batch_k, fault_plan=plan, round_timeout_s=2.0
                ),
            },
            max_evaluations=1_000,
        )
