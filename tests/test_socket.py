"""Elastic socket backend: protocol parity, membership, pipelines, service.

The contract under test (DESIGN.md §5.10): :class:`SocketBackend` is a
drop-in :class:`~repro.parallel.backends.Backend` whose workers live behind
TCP sockets — same reports bit-for-bit as the serial reference, same
telemetry surface, same warm-lease semantics — plus the elastic part no
other backend has: workers joining and vanishing while the backend is live.
Chaos legs (SIGKILL mid-round under both pipelines) live in
``tests/test_fault_injection.py``.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.core.construction import random_solution
from repro.core.strategy import Strategy
from repro.core.tabu_search import TabuSearchConfig
from repro.core.termination import Budget
from repro.obs import RunRecorder, validate_stream
from repro.parallel import SerialBackend, SocketBackend
from repro.parallel.message import SlaveTask
from repro.variants import solve_cts2

CONFIG = TabuSearchConfig(nb_div=100)


def make_tasks(instance, n, evals=2000, round_index=0):
    return [
        SlaveTask(
            x_init=random_solution(instance, rng=k),
            strategy=Strategy(8, 2, 10),
            budget=Budget(max_evaluations=evals),
            seed=1000 + k,
            round_index=round_index,
            seq_id=round_index * n + k,
        )
        for k in range(n)
    ]


def reports_values(reports):
    return [(r.slave_id, r.best.value, r.evaluations) for r in reports]


def socket_backend(n_slaves, n_workers, mp_context, **kwargs):
    kwargs.setdefault("round_timeout_s", 30.0)
    backend = SocketBackend(n_slaves, **kwargs)
    backend.attach_local_workers(n_workers, mp_context=mp_context)
    return backend


def wait_for(predicate, timeout_s=5.0):
    deadline = time.perf_counter() + timeout_s
    while time.perf_counter() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


class TestRoundParity:
    def test_reports_match_serial_bit_for_bit(self, small_instance, mp_context):
        tasks = make_tasks(small_instance, 4)
        serial = SerialBackend(4)
        serial.start(small_instance, CONFIG)
        want = serial.run_round(tasks)
        serial.shutdown()

        backend = socket_backend(4, 2, mp_context)
        try:
            backend.start(small_instance, CONFIG)
            got = backend.run_round(tasks)
        finally:
            backend.shutdown()
        assert reports_values(got) == reports_values(want)
        for a, b in zip(got, want):
            assert a.best == b.best
            assert a.initial_value == b.initial_value

    def test_single_worker_serves_every_slave(self, small_instance, mp_context):
        backend = socket_backend(3, 1, mp_context)
        try:
            backend.start(small_instance, CONFIG)
            reports = backend.run_round(make_tasks(small_instance, 3))
        finally:
            backend.shutdown()
        assert [r.slave_id for r in reports] == [0, 1, 2]

    def test_solve_matches_serial_backend(self, small_instance, mp_context):
        backend = socket_backend(3, 2, mp_context)
        try:
            over_sockets = solve_cts2(
                small_instance,
                n_slaves=3,
                n_rounds=3,
                rng_seed=7,
                max_evaluations=800,
                backend=backend,
            )
        finally:
            backend.shutdown()
        reference = solve_cts2(
            small_instance, n_slaves=3, n_rounds=3, rng_seed=7, max_evaluations=800
        )
        assert over_sockets.best.value == reference.best.value
        assert over_sockets.best == reference.best

    def test_async_pipeline_composes(self, small_instance, mp_context):
        backend = socket_backend(3, 2, mp_context)
        try:
            result = solve_cts2(
                small_instance,
                n_slaves=3,
                n_rounds=3,
                rng_seed=7,
                max_evaluations=600,
                backend=backend,
                pipeline="async",
            )
        finally:
            backend.shutdown()
        assert result.pipeline == "async"
        history = [s.best_value for s in result.rounds]
        assert history == sorted(history)


class TestTelemetry:
    def test_round_telemetry_published(self, small_instance, mp_context):
        backend = socket_backend(2, 1, mp_context)
        try:
            backend.start(small_instance, CONFIG)
            backend.run_round(make_tasks(small_instance, 2))
            told = backend.last_telemetry
            assert told is not None
            assert set(told.phase_seconds) == {"scatter", "compute", "gather"}
            assert sorted(told.task_nbytes) == [0, 1]
            assert sorted(told.report_nbytes) == [0, 1]
            assert all(v > 0 for v in told.task_nbytes.values())
            assert backend.bytes_sent > 0
            assert backend.bytes_received > 0
        finally:
            backend.shutdown()

    def test_recorded_stream_validates(self, small_instance, mp_context, tmp_path):
        path = tmp_path / "socket-run.jsonl"
        backend = socket_backend(2, 1, mp_context)
        try:
            with RunRecorder(path) as recorder:
                solve_cts2(
                    small_instance,
                    n_slaves=2,
                    n_rounds=2,
                    rng_seed=3,
                    max_evaluations=400,
                    backend=backend,
                    recorder=recorder,
                )
        finally:
            backend.shutdown()
        lines = path.read_text().splitlines()
        assert validate_stream(lines) == []
        assert any('"round_telemetry"' in line for line in lines)


class TestMembership:
    def test_join_mid_run_keeps_trajectory_pinned(self, small_instance, mp_context):
        """Golden check: a late attach must not perturb the trajectory.

        Reports depend only on task contents (identity override), so the
        only thing a join changes is which process serves which shard —
        round values must equal the serial reference before *and* after.
        """
        serial = SerialBackend(4)
        serial.start(small_instance, CONFIG)
        want = [
            reports_values(serial.run_round(make_tasks(small_instance, 4, round_index=r)))
            for r in range(3)
        ]
        serial.shutdown()

        backend = socket_backend(4, 1, mp_context)
        try:
            backend.start(small_instance, CONFIG)
            got = [
                reports_values(
                    backend.run_round(make_tasks(small_instance, 4, round_index=0))
                )
            ]
            backend.attach_local_workers(2, mp_context=mp_context)

            def joined() -> bool:
                backend._pump(0.0)
                return backend.joins >= 3

            assert wait_for(joined, timeout_s=10.0)
            for r in (1, 2):
                got.append(
                    reports_values(
                        backend.run_round(
                            make_tasks(small_instance, 4, round_index=r)
                        )
                    )
                )
            assert backend.joins == 3
        finally:
            backend.shutdown()
        assert got == want

    def test_worker_vanishing_between_rounds_reshards(
        self, small_instance, mp_context
    ):
        backend = socket_backend(4, 2, mp_context)
        try:
            backend.start(small_instance, CONFIG)

            def both_joined() -> bool:
                backend._pump(0.0)
                return backend.joins >= 2

            # Both workers must hold a shard before the kill — a member
            # that never owned slave ids correctly buries nothing.
            assert wait_for(both_joined, timeout_s=10.0)
            backend.run_round(make_tasks(small_instance, 4, round_index=0))
            victim = backend._local_procs[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=5)
            # The leave may land before or during the next round; either
            # way the round completes on the survivor and the buried
            # shard surfaces through the dead-slave sweep.
            reports = backend.run_round(make_tasks(small_instance, 4, round_index=1))
            assert reports_values(reports) == reports_values(
                backend.run_round(make_tasks(small_instance, 4, round_index=1))
            )
            assert backend.fault_counters["worker_lost"] == 1
            assert backend.drain_dead_slaves() != []
            assert backend.drain_dead_slaves() == []  # consuming
        finally:
            backend.shutdown()

    def test_start_times_out_without_workers(self, small_instance):
        backend = SocketBackend(2, min_workers=1, start_timeout_s=0.3)
        backend.listen()
        try:
            with pytest.raises(RuntimeError, match="repro worker --connect"):
                backend.start(small_instance, CONFIG)
        finally:
            backend.shutdown()

    def test_listen_binds_ephemeral_port(self):
        backend = SocketBackend(2)
        host, port = backend.listen()
        try:
            assert port > 0
            assert (host, port) == backend.address
            assert backend.listen() == (host, port)  # idempotent
        finally:
            backend.shutdown()


class TestWarmLease:
    def test_same_problem_is_counted_noop(self, small_instance, mp_context):
        backend = socket_backend(2, 1, mp_context)
        try:
            backend.start(small_instance, CONFIG)
            backend.start(small_instance, CONFIG)
            assert backend.warm_reuses == 1
            assert backend.rebinds == 0
        finally:
            backend.shutdown()

    def test_rebind_ships_new_problem(
        self, small_instance, medium_instance, mp_context
    ):
        backend = socket_backend(2, 1, mp_context)
        try:
            backend.start(small_instance, CONFIG)
            backend.run_round(make_tasks(small_instance, 2))
            backend.start(medium_instance, CONFIG)
            assert backend.rebinds == 1
            reports = backend.run_round(make_tasks(medium_instance, 2))
            assert len(reports) == 2
        finally:
            backend.shutdown()

    def test_shutdown_is_idempotent(self, small_instance, mp_context):
        backend = socket_backend(2, 1, mp_context)
        backend.start(small_instance, CONFIG)
        backend.shutdown()
        backend.shutdown()

    def test_pipelined_dispatch_next_report(self, small_instance, mp_context):
        backend = socket_backend(3, 2, mp_context)
        try:
            backend.start(small_instance, CONFIG)
            tasks = make_tasks(small_instance, 3)
            for k, task in enumerate(tasks):
                assert backend.dispatch(k, task) > 0
            seen = set()
            while len(seen) < 3:
                out = backend.next_report(10.0)
                assert out is not None
                report, nbytes = out
                assert nbytes > 0
                seen.add(report.slave_id)
            assert seen == {0, 1, 2}
            assert backend.next_report(0.05) is None  # drained
        finally:
            backend.shutdown()


class TestSolverPool:
    def test_pool_leases_socket_capacity(self, small_instance, mp_context):
        import asyncio

        from repro.service import JobManager, JobRequest, JobState, SolverPool

        async def run() -> None:
            pool = SolverPool.socket(
                1,
                2,
                local_workers=1,
                mp_context=mp_context,
                round_timeout_s=30.0,
            )
            manager = JobManager(pool)
            try:
                job_id = manager.submit(
                    JobRequest(
                        instance=small_instance,
                        variant="cts2",
                        n_rounds=2,
                        max_evaluations=400,
                        rng_seed=1,
                    )
                )
                status = await manager.wait(job_id)
                assert status.state is JobState.DONE
                assert status.best_value is not None
            finally:
                await manager.close()

        asyncio.run(run())


class TestWorkerCli:
    def test_repro_worker_serves_a_round(self, small_instance, mp_context):
        """The `repro worker --connect` entry point is a full agent."""
        import multiprocessing as mp

        from repro.cli import main

        backend = SocketBackend(2, round_timeout_s=30.0)
        host, port = backend.listen()
        ctx = mp.get_context(mp_context)
        proc = ctx.Process(
            target=main, args=(["worker", "--connect", f"{host}:{port}"],)
        )
        proc.start()
        try:
            backend.start(small_instance, CONFIG)
            reports = backend.run_round(make_tasks(small_instance, 2))
            assert len(reports) == 2
        finally:
            backend.shutdown()
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hang guard
                proc.terminate()
                proc.join(timeout=5)
        assert proc.exitcode == 0
