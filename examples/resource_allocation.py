"""Resource allocation — the paper's second motivating application (§1).

A cluster operator must admit a subset of jobs onto a machine with several
scarce resources (CPU, memory, network, disk, licenses).  Each admitted job
yields revenue; each consumes a slice of every resource.  Maximizing
revenue subject to the capacity vector is a 0–1 MKP with one constraint
per resource.

The example compares all four approaches of Table 2 (SEQ / ITS / CTS1 /
CTS2) at an equal simulated-time budget, reproducing the paper's
comparison on a domain-shaped instance.

Run:  python examples/resource_allocation.py
"""

from __future__ import annotations

import numpy as np

from repro import MKPInstance
from repro.analysis import Table2Row, render_table2
from repro.variants import solve_cts1, solve_cts2, solve_its, solve_seq

RESOURCES = ["cpu-cores", "memory-gb", "network-gbps", "disk-iops", "licenses"]


def build_cluster_workload(n_jobs: int, rng: np.random.Generator) -> MKPInstance:
    """Jobs with heterogeneous resource shapes.

    A third of jobs are CPU-heavy, a third memory-heavy, a third balanced;
    revenue correlates with total footprint (big jobs pay more) — the
    correlated regime where naive greedy admission underperforms.
    """
    m = len(RESOURCES)
    shapes = rng.dirichlet(np.ones(m), size=n_jobs)  # resource mix per job
    magnitude = rng.lognormal(mean=3.0, sigma=0.6, size=n_jobs)
    demand = (shapes * magnitude[:, None]).T + 0.5  # (m, n), strictly positive
    revenue = magnitude * rng.uniform(0.9, 1.4, size=n_jobs)
    capacity = demand.sum(axis=1) * 0.25  # admit ~a quarter of total demand
    return MKPInstance(
        weights=demand,
        capacities=capacity,
        profits=revenue,
        name=f"cluster-{m}x{n_jobs}",
    )


def main() -> None:
    rng = np.random.default_rng(99)
    instance = build_cluster_workload(200, rng)
    print(f"workload: {instance.n_items} jobs, resources: {', '.join(RESOURCES)}")

    budget_seconds = 1.5  # equal simulated time for every approach
    common = dict(rng_seed=0, virtual_seconds=budget_seconds)
    seq = solve_seq(instance, **common)
    its = solve_its(instance, n_slaves=8, n_rounds=5, **common)
    cts1 = solve_cts1(instance, n_slaves=8, n_rounds=5, **common)
    cts2 = solve_cts2(instance, n_slaves=8, n_rounds=5, **common)

    row = Table2Row(
        problem=instance.name,
        seq=seq.best.value,
        its=its.best.value,
        cts1=cts1.best.value,
        cts2=cts2.best.value,
        exec_time=budget_seconds,
    )
    print()
    print(render_table2([row]))
    print(f"\nwinner: {row.winner()}")

    best = max([seq, its, cts1, cts2], key=lambda r: r.best.value)
    admitted = best.best.items
    print(f"\nbest schedule admits {admitted.size}/{instance.n_items} jobs "
          f"(revenue {best.best.value:,.0f})")
    used = instance.weights[:, admitted].sum(axis=1)
    for name, u, cap in zip(RESOURCES, used, instance.capacities):
        print(f"  {name:>13}: {100 * u / cap:5.1f}% utilized")


if __name__ == "__main__":
    main()
