"""Experiment records: persist a run, reload it, and analyse its anytime
behaviour — the workflow behind the benchmark harness.

Shows:

* saving/loading a :class:`ParallelRunResult` as JSON (no pickle),
* the anytime curve and its normalized area-under-curve,
* an ASCII Gantt chart of the simulated farm's timeline.

Run:  python examples/experiment_records.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import correlated_instance
from repro.analysis import (
    anytime_curve,
    load_result,
    normalized_auc,
    render_gantt,
    save_result,
    time_to_value,
)
from repro.variants import solve_cts2


def main() -> None:
    instance = correlated_instance(10, 200, rng=77, name="records-demo")
    result = solve_cts2(
        instance, n_slaves=6, n_rounds=8, rng_seed=0, virtual_seconds=0.8
    )
    print(result.summary())

    # --- persist and reload -------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "run.json"
        save_result(result, path)
        reloaded = load_result(path)
        print(f"\nsaved {path.stat().st_size:,} bytes; reload matches: "
              f"{reloaded.best == result.best}")

    # --- anytime analysis ---------------------------------------------------
    curve = anytime_curve(reloaded)
    auc = normalized_auc(curve, reference=reloaded.best.value)
    halfway = time_to_value(curve, 0.99 * reloaded.best.value)
    print(f"anytime curve: {len(curve)} points, normalized AUC {auc:.4f}")
    print(f"99% of the final value was reached at t = {halfway:.4f} vsec "
          f"of {reloaded.virtual_seconds:.4f} total")

    # --- farm timeline --------------------------------------------------------
    print("\nsimulated farm timeline (master is the last row):")
    print(render_gantt(reloaded.trace, width=72))


if __name__ == "__main__":
    main()
