"""Capital budgeting — the paper's first motivating application (§1).

A firm must pick a portfolio of projects.  Each project has an expected
return (profit) and consumes capital in each of several budget periods
(one knapsack constraint per period).  Choosing the return-maximizing
feasible portfolio is exactly a 0–1 MKP.

This example builds a synthetic 80-project, 6-period program, solves it
three ways — greedy, exact branch & bound (small version), and CTS2 — and
prints the chosen portfolio.

Run:  python examples/capital_budgeting.py
"""

from __future__ import annotations

import numpy as np

from repro import MKPInstance, greedy_solution, solve_cts2
from repro.exact import branch_and_bound


def build_program(
    n_projects: int, n_periods: int, rng: np.random.Generator
) -> tuple[MKPInstance, list[str]]:
    """Synthesize a capital-budgeting program.

    Costs per period are lognormal-ish (a few big projects, many small);
    returns correlate with total cost plus idiosyncratic upside — the same
    correlation structure that makes real capital budgeting hard.
    """
    base_cost = rng.uniform(50, 500, size=n_projects)
    profile = rng.dirichlet(np.ones(n_periods) * 2.0, size=n_projects)  # spend spread
    costs = (base_cost[:, None] * profile).T  # (periods, projects)
    upside = rng.uniform(0.8, 1.6, size=n_projects)
    returns = base_cost * upside
    budgets = costs.sum(axis=1) * 0.30  # each period funds ~30% of demand
    names = [f"project-{k:02d}" for k in range(n_projects)]
    instance = MKPInstance(
        weights=costs,
        capacities=budgets,
        profits=returns,
        name=f"capital-budgeting-{n_periods}x{n_projects}",
    )
    return instance, names


def main() -> None:
    rng = np.random.default_rng(7)

    # --- small program first: exact optimum is computable -----------------
    small, _ = build_program(24, 4, rng)
    exact = branch_and_bound(small)
    cts_small = solve_cts2(small, n_slaves=4, n_rounds=4, rng_seed=0,
                           max_evaluations=50_000)
    print("— small program (24 projects, 4 periods) —")
    print(f"exact optimum:  {exact.value:,.0f} (proven={exact.proven}, "
          f"{exact.nodes} B&B nodes)")
    print(f"CTS2:           {cts_small.best.value:,.0f} "
          f"({'optimal' if abs(cts_small.best.value - exact.value) < 1e-6 else 'suboptimal'})")

    # --- realistic program: heuristics only -------------------------------
    instance, names = build_program(80, 6, rng)
    greedy = greedy_solution(instance)
    result = solve_cts2(
        instance, n_slaves=8, n_rounds=6, rng_seed=0, virtual_seconds=1.0
    )
    print("\n— full program (80 projects, 6 periods) —")
    print(f"greedy portfolio return: {greedy.value:,.0f}")
    print(f"CTS2 portfolio return:   {result.best.value:,.0f} "
          f"(+{100 * (result.best.value - greedy.value) / greedy.value:.2f}%)")

    chosen = result.best.items
    print(f"funded {chosen.size}/80 projects")
    spend = instance.weights[:, chosen].sum(axis=1)
    for period, (used, cap) in enumerate(zip(spend, instance.capacities)):
        print(f"  period {period}: spend {used:,.0f} / budget {cap:,.0f} "
              f"({100 * used / cap:.1f}% utilized)")
    assert result.best.is_feasible(instance)


if __name__ == "__main__":
    main()
