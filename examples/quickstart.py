"""Quickstart: solve a 0–1 multidimensional knapsack with parallel tabu search.

Builds a correlated 10x150 instance, solves it with the paper's full
cooperative algorithm (CTS2) on a simulated 8-processor farm, and compares
against a greedy baseline and the LP upper bound.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import correlated_instance, greedy_solution, solve_cts2
from repro.analysis import deviation_percent
from repro.exact import solve_lp_relaxation


def main() -> None:
    # 1. A problem: 150 items, 10 resource constraints, correlated profits
    #    (the hard regime the paper targets).
    instance = correlated_instance(10, 150, rng=2024, name="quickstart")
    print(f"instance: {instance}")

    # 2. A cheap baseline and an upper bound to frame the result.
    greedy = greedy_solution(instance)
    lp = solve_lp_relaxation(instance)
    print(f"greedy value:     {greedy.value:,.0f}")
    print(f"LP upper bound:   {lp.value:,.1f}")

    # 3. The paper's algorithm: 8 cooperative tabu-search slaves with
    #    dynamic strategy tuning, for a fixed virtual-time budget.
    result = solve_cts2(
        instance,
        n_slaves=8,
        n_rounds=6,
        rng_seed=0,
        virtual_seconds=2.0,  # per-processor budget on the simulated farm
    )
    print(f"CTS2 best value:  {result.best.value:,.0f}")
    print(f"  gap to LP bound: {deviation_percent(result.best.value, lp.value):.2f}%"
          " (true optimality gap is smaller: LP overestimates)")
    print("  improvement over greedy: "
          f"{100 * (result.best.value - greedy.value) / greedy.value:.2f}%")
    print(f"  rounds: {result.n_rounds}, total evaluations: "
          f"{result.total_evaluations:,}, simulated time: "
          f"{result.virtual_seconds:.2f}s, wall time: {result.wall_seconds:.2f}s")

    # 4. The solution itself.
    items = result.best.items
    print(f"  packed {items.size}/{instance.n_items} items; "
          f"first ten: {items[:10].tolist()}")
    assert result.best.is_feasible(instance)


if __name__ == "__main__":
    main()
