"""Watch the master tune strategies live (the paper's core contribution).

Runs CTS2 with a verbose master and prints, per search round:

* the ISP decisions (keep / pool onto the global best / random restart),
* the SGP actions (keep / diversify / intensify / random regeneration),
* the evolving alpha (macro intensification-diversification lever).

This is §4.2 made visible: "parallel cooperative search may be used to
unload the user from the task of finding the efficient TS parameters".

Run:  python examples/dynamic_tuning_demo.py
"""

from __future__ import annotations

from repro import correlated_instance
from repro.variants import solve_cts2


def main() -> None:
    instance = correlated_instance(10, 200, rng=31, name="tuning-demo")
    print(f"instance: {instance}\n")

    result = solve_cts2(
        instance,
        n_slaves=8,
        n_rounds=10,
        rng_seed=1,
        max_evaluations=400_000,
    )

    print(f"{'round':>5} {'best value':>12} {'improved':>9} "
          f"{'ISP rules':>28} {'SGP actions':>34}")
    print("-" * 95)
    for stats in result.rounds:
        isp = ", ".join(f"{k}:{v}" for k, v in sorted(stats.isp_rules.items()))
        sgp = ", ".join(f"{k}:{v}" for k, v in sorted(stats.sgp_actions.items()))
        print(
            f"{stats.round_index:>5} {stats.best_value:>12,.0f} "
            f"{stats.improved_slaves:>6}/8  {isp:>28} {sgp:>34}"
        )

    print(f"\nfinal best: {result.best.value:,.0f} after "
          f"{result.total_evaluations:,} candidate evaluations "
          f"({result.virtual_seconds:.2f} simulated seconds)")
    n_regen = sum(
        v for stats in result.rounds for k, v in stats.sgp_actions.items() if k != "keep"
    )
    print(f"strategy regenerations triggered by scoring: {n_regen}")
    print("\nreading the table: a 'pool' burst after a stall is the master "
          "pulling laggards onto the global best (macro-intensification); "
          "'restart' entries are rule-2 random diversifications; 'diversify'/"
          "'intensify' SGP actions retune (Lt_length, Nb_drop, Nb_local) "
          "from elite-set dispersion.")


if __name__ == "__main__":
    main()
