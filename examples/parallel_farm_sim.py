"""Simulated 16-Alpha farm: load balance, speedup, and sync vs async.

Demonstrates the hardware substrate of the reproduction (DESIGN.md §3):

1. runs CTS2 on the simulated farm and prints each processor's busy /
   barrier-idle breakdown — showing why the paper sets ``Nb_it ∝ 1/Nb_drop``;
2. sweeps the number of slaves P ∈ {1, 2, 4, 8, 16} at a fixed per-processor
   budget and reports quality (the paper's reason to parallelize);
3. compares the synchronous master–slave scheme against the future-work
   asynchronous decentralized scheme at equal budgets.

Run:  python examples/parallel_farm_sim.py
"""

from __future__ import annotations

from repro import correlated_instance
from repro.analysis import load_balance, render_generic
from repro.variants import solve_cts2, solve_cts_async

BUDGET_SECONDS = 1.0


def main() -> None:
    instance = correlated_instance(15, 250, rng=55, name="farm-demo")
    print(f"instance: {instance}")
    print(f"per-processor budget: {BUDGET_SECONDS} simulated seconds\n")

    # --- 1. per-processor utilisation under the synchronous scheme -------
    result = solve_cts2(
        instance, n_slaves=8, n_rounds=6, rng_seed=0, virtual_seconds=BUDGET_SECONDS
    )
    lb = load_balance(result.trace)
    print("— synchronous CTS2, 8 slaves —")
    print(f"best value: {result.best.value:,.0f}; makespan "
          f"{result.virtual_seconds:.3f}s; bytes on the crossbar: "
          f"{result.bytes_sent:,}")
    print(f"barrier idle ratio: {100 * lb.idle_ratio:.2f}%  "
          f"(compute {lb.compute_seconds:.2f}s, idle {lb.idle_seconds:.3f}s); "
          f"imbalance (max/mean): {lb.imbalance:.3f}")

    # --- 2. quality vs P ---------------------------------------------------
    rows = []
    for p in (1, 2, 4, 8, 16):
        r = solve_cts2(
            instance,
            n_slaves=p,
            n_rounds=6,
            rng_seed=0,
            virtual_seconds=BUDGET_SECONDS,
        )
        rows.append([p, f"{r.best.value:,.0f}", r.total_evaluations,
                     round(r.virtual_seconds, 3)])
    print("\n— quality vs number of slaves (equal per-processor time) —")
    print(render_generic(["P", "best value", "evaluations", "makespan(s)"], rows))

    # --- 3. synchronous vs asynchronous ------------------------------------
    async_result = solve_cts_async(
        instance, n_threads=8, rng_seed=0, virtual_seconds=BUDGET_SECONDS
    )
    async_lb = load_balance(async_result.trace)
    print("\n— future-work extension: decentralized asynchronous scheme —")
    print(render_generic(
        ["scheme", "best value", "idle ratio %", "makespan(s)"],
        [
            ["CTS2 (sync)", f"{result.best.value:,.0f}",
             round(100 * lb.idle_ratio, 2), round(result.virtual_seconds, 3)],
            ["CTS-async", f"{async_result.best.value:,.0f}",
             round(100 * async_lb.idle_ratio, 2),
             round(async_result.virtual_seconds, 3)],
        ],
    ))
    print("\nno barrier => the asynchronous scheme shows zero idle time; "
          "quality is comparable at equal budgets (experiment A6 quantifies "
          "this across the MK suite).")


if __name__ == "__main__":
    main()
