"""Setuptools entry point.

Packaging metadata lives in ``setup.cfg`` (see the note there): the classic
``setup.py`` + ``setup.cfg`` path installs on fully offline hosts where
pip's PEP-517 build isolation cannot download its build requirements.
"""

from setuptools import setup

setup()
