"""Asyncio job manager: many concurrent solve jobs over one warm pool.

The inverse of the blocking ``solve_cts2`` call: :class:`JobManager`
accepts any number of concurrent solve requests and multiplexes them onto
a :class:`~repro.service.pool.SolverPool` of long-lived backends, with

``submit``
    admission (optionally bounded by ``max_pending`` — backpressure rather
    than unbounded queueing), instance canonicalization through the
    :class:`~repro.service.cache.InstanceCache`, and an asyncio task per job;
``status``
    a cheap snapshot (state, rounds completed, incumbent so far) fed by the
    run's live event stream, not by polling files;
``stream``
    an async iterator of the job's observability events — the
    :class:`~repro.obs.recorder.RunRecorder` subscriber fan-out pushes each
    record onto the loop via ``call_soon_threadsafe`` as the master emits
    it, so consumers see round events the moment they happen;
``cancel``
    cooperative cancellation: a queued job aborts its lease wait
    immediately, a running job's :class:`~repro.core.termination.CancelToken`
    is observed by the master at the next round boundary (sub-second for
    service-sized rounds), and either way the leased backend comes back
    warm and immediately reusable.

The blocking solve itself runs in a worker thread
(``loop.run_in_executor``); everything else — leasing, snapshots, stream
fan-out — stays on the event loop.  A job's trajectory is bit-identical to
the same seed/config solved through the direct blocking API
(``tests/test_service.py`` pins this for both backend kinds): the service
changes *who owns the backend*, never what the search does.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass, field
from enum import Enum
from functools import partial

from ..core.instance import MKPInstance
from ..core.termination import CancelToken
from ..master.result import ParallelRunResult
from ..obs.clock import monotonic_s
from ..obs.recorder import RunRecorder
from ..variants.runner import solve_cts1, solve_cts2, solve_its
from .cache import InstanceCache
from .pool import LeaseCancelled, SolverPool

__all__ = ["JobManager", "JobRequest", "JobState", "JobStatus"]

_SOLVERS = {"its": solve_its, "cts1": solve_cts1, "cts2": solve_cts2}

#: Sentinel closing a stream queue (events themselves are always dicts).
_STREAM_END = None


class JobState(str, Enum):
    """Lifecycle of one submitted job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    CANCELLED = "cancelled"
    FAILED = "failed"

    @property
    def finished(self) -> bool:
        return self in (JobState.DONE, JobState.CANCELLED, JobState.FAILED)


@dataclass(frozen=True)
class JobRequest:
    """One solve request, mirroring the direct ``solve_*`` contract.

    ``n_slaves`` is fixed by the pool, not the request; exactly one of
    ``max_evaluations``/``virtual_seconds`` applies (both ``None`` defaults
    to a 1.0 virtual-second budget, like the CLI).
    """

    instance: MKPInstance
    variant: str = "cts2"
    n_rounds: int = 8
    rng_seed: int = 0
    max_evaluations: int | None = None
    virtual_seconds: float | None = None
    target_value: float | None = None
    #: master execution mode passed through to the solver: ``"sync"`` (the
    #: barrier loop) or ``"async"`` (bounded-staleness pipelining,
    #: DESIGN.md §5.9).  Cancellation of an async job takes effect at the
    #: next burst boundary and still returns the leased backend clean.
    pipeline: str = "sync"

    def __post_init__(self) -> None:
        if self.variant not in _SOLVERS:
            raise ValueError(
                f"unknown variant {self.variant!r}; service variants are "
                f"{sorted(_SOLVERS)} (seq/async need no farm of slaves)"
            )
        if self.n_rounds < 1:
            raise ValueError("n_rounds must be >= 1")
        if self.max_evaluations is not None and self.virtual_seconds is not None:
            raise ValueError("give at most one of max_evaluations/virtual_seconds")
        if self.pipeline not in ("sync", "async"):
            raise ValueError(
                f"pipeline must be 'sync' or 'async'; got {self.pipeline!r}"
            )

    def budget_kwargs(self) -> dict[str, object]:
        if self.max_evaluations is not None:
            return {"max_evaluations": self.max_evaluations}
        return {"virtual_seconds": self.virtual_seconds or 1.0}


@dataclass(frozen=True)
class JobStatus:
    """Point-in-time public snapshot of a job."""

    job_id: str
    state: JobState
    variant: str
    instance: str
    n_rounds: int
    rounds_completed: int
    best_value: float | None
    submitted_s: float
    started_s: float | None
    finished_s: float | None
    cancel_requested: bool
    error: str | None

    def to_dict(self) -> dict:
        data = dict(self.__dict__)
        data["state"] = self.state.value
        return data


@dataclass
class _Job:
    """Internal mutable job record (snapshots go out as :class:`JobStatus`)."""

    job_id: str
    request: JobRequest
    canonical: MKPInstance
    state: JobState = JobState.QUEUED
    token: CancelToken = field(default_factory=CancelToken)
    #: set alongside ``token`` so a queued job's lease wait can be aborted
    cancel_event: asyncio.Event = field(default_factory=asyncio.Event)
    events: list[dict] = field(default_factory=list)
    streams: list[asyncio.Queue] = field(default_factory=list)
    result: ParallelRunResult | None = None
    error: str | None = None
    rounds_completed: int = 0
    best_value: float | None = None
    submitted_s: float = field(default_factory=monotonic_s)
    started_s: float | None = None
    finished_s: float | None = None
    task: "asyncio.Task | None" = None
    done: asyncio.Event = field(default_factory=asyncio.Event)


class JobManager:
    """Submit / status / stream / cancel over a shared warm backend pool."""

    def __init__(
        self,
        pool: SolverPool,
        *,
        cache: InstanceCache | None = None,
        max_pending: int | None = None,
    ) -> None:
        self.pool = pool
        self.cache = cache if cache is not None else InstanceCache()
        self.max_pending = max_pending
        self._jobs: dict[str, _Job] = {}
        self._ids = itertools.count(1)
        self._closed = False

    # ------------------------------------------------------------------ #
    # Submit
    # ------------------------------------------------------------------ #
    def submit(self, request: JobRequest) -> str:
        """Admit one job; returns its id immediately (the job runs async).

        Raises ``RuntimeError`` when the manager is closed or the pending
        backlog is at ``max_pending`` (the caller's backpressure signal).
        """
        if self._closed:
            raise RuntimeError("job manager is closed")
        if self.max_pending is not None:
            backlog = sum(1 for j in self._jobs.values() if not j.state.finished)
            if backlog >= self.max_pending:
                raise RuntimeError(
                    f"backlog at max_pending={self.max_pending}; retry later"
                )
        job = _Job(
            job_id=f"job-{next(self._ids):06d}",
            request=request,
            canonical=self.cache.canonical(request.instance),
        )
        self._jobs[job.job_id] = job
        job.task = asyncio.get_running_loop().create_task(self._run(job))
        return job.job_id

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def _get(self, job_id: str) -> _Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise KeyError(f"unknown job id {job_id!r}") from None

    def status(self, job_id: str) -> JobStatus:
        job = self._get(job_id)
        return JobStatus(
            job_id=job.job_id,
            state=job.state,
            variant=job.request.variant,
            instance=str(getattr(job.canonical, "name", "") or ""),
            n_rounds=job.request.n_rounds,
            rounds_completed=job.rounds_completed,
            best_value=job.best_value,
            submitted_s=job.submitted_s,
            started_s=job.started_s,
            finished_s=job.finished_s,
            cancel_requested=job.token.cancelled,
            error=job.error,
        )

    def job_ids(self) -> list[str]:
        return list(self._jobs)

    def result(self, job_id: str) -> ParallelRunResult | None:
        """The finished job's result (partial rounds for a cancelled job)."""
        return self._get(job_id).result

    async def wait(self, job_id: str) -> JobStatus:
        """Block until the job reaches a terminal state; returns the status."""
        job = self._get(job_id)
        await job.done.wait()
        return self.status(job_id)

    # ------------------------------------------------------------------ #
    # Stream
    # ------------------------------------------------------------------ #
    async def stream(self, job_id: str):
        """Async-iterate the job's observability events, live.

        Events already emitted are replayed first (registration and replay
        happen atomically on the loop, so nothing is missed or duplicated);
        the iterator ends when the job reaches a terminal state.
        """
        job = self._get(job_id)
        queue: asyncio.Queue = asyncio.Queue()
        for event in job.events:
            queue.put_nowait(event)
        if job.state.finished:
            queue.put_nowait(_STREAM_END)
        else:
            job.streams.append(queue)
        try:
            while True:
                event = await queue.get()
                if event is _STREAM_END:
                    return
                yield event
        finally:
            if queue in job.streams:
                job.streams.remove(queue)

    # ------------------------------------------------------------------ #
    # Cancel
    # ------------------------------------------------------------------ #
    async def cancel(self, job_id: str) -> bool:
        """Request cancellation; returns False if the job already finished.

        Queued jobs abandon their lease wait immediately; running jobs stop
        at the next round boundary (the master's cooperative check).
        """
        job = self._get(job_id)
        if job.state.finished:
            return False
        job.token.cancel()
        job.cancel_event.set()
        await self.pool.kick()
        return True

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def close(self, *, cancel_running: bool = True) -> None:
        """Cancel outstanding jobs, wait for them, shut the pool down."""
        self._closed = True
        if cancel_running:
            for job_id, job in list(self._jobs.items()):
                if not job.state.finished:
                    await self.cancel(job_id)
        for job in list(self._jobs.values()):
            if job.task is not None:
                await job.done.wait()
        # Backend shutdown can block (worker joins); keep the loop live.
        await asyncio.get_running_loop().run_in_executor(None, self.pool.shutdown)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _dispatch(self, job: _Job, record: dict) -> None:
        """Fold one recorder event into the job snapshot and its streams.

        Runs on the event loop (scheduled via ``call_soon_threadsafe`` from
        the solver thread), so snapshot updates and stream registration
        never race.
        """
        job.events.append(record)
        if record.get("event") == "round_end":
            job.rounds_completed = int(record["round_index"]) + 1
            job.best_value = float(record["best_value"])
        for queue in job.streams:
            queue.put_nowait(record)

    def _finish(self, job: _Job, state: JobState) -> None:
        job.state = state
        job.finished_s = monotonic_s()
        for queue in job.streams:
            queue.put_nowait(_STREAM_END)
        job.streams.clear()
        job.done.set()

    async def _run(self, job: _Job) -> None:
        request = job.request
        instance_hash = job.canonical.content_hash()
        try:
            lease = await self.pool.acquire(
                instance_hash, cancelled=job.cancel_event
            )
        except LeaseCancelled:
            self._finish(job, JobState.CANCELLED)
            return
        except Exception as exc:  # pool shut down under us
            job.error = str(exc)
            self._finish(job, JobState.FAILED)
            return
        loop = asyncio.get_running_loop()
        try:
            if job.token.cancelled:
                self._finish(job, JobState.CANCELLED)
                return
            job.state = JobState.RUNNING
            job.started_s = monotonic_s()
            recorder = RunRecorder()
            recorder.subscribe(
                lambda record: loop.call_soon_threadsafe(
                    self._dispatch, job, record
                )
            )
            solver = _SOLVERS[request.variant]
            run = partial(
                solver,
                job.canonical,
                n_slaves=self.pool.n_slaves,
                n_rounds=request.n_rounds,
                rng_seed=request.rng_seed,
                target_value=request.target_value,
                pipeline=request.pipeline,
                backend=lease.backend,
                recorder=recorder,
                cancel=job.token,
                **request.budget_kwargs(),
            )
            try:
                job.result = await loop.run_in_executor(None, run)
            except Exception as exc:
                job.error = f"{type(exc).__name__}: {exc}"
                self._finish(job, JobState.FAILED)
                return
            self._finish(
                job,
                JobState.CANCELLED if job.token.cancelled else JobState.DONE,
            )
        finally:
            if job.state is JobState.FAILED:
                # A failed solve may have left the backend mid-round; shut
                # it down (idempotent) so the next lease cold-starts it.
                await loop.run_in_executor(None, lease.backend.shutdown)
                await self.pool.release(lease, bound_hash=None)
            else:
                await self.pool.release(lease, bound_hash=instance_hash)
