"""Shared pool of long-lived solver backends, leased to one job at a time.

The paper's farm assumes one run owns the whole machine; the service layer
inverts that ownership.  A :class:`SolverPool` constructs its
:class:`~repro.parallel.backends.Backend` instances once and keeps them for
its own lifetime — jobs *lease* a backend for the duration of one solve and
hand it back warm.  Because ``Backend.start()`` on a live backend reuses
the existing workers (no-op for the same problem, in-place
``REBIND_TAG`` rebind for a new one — see :mod:`repro.parallel.backends`),
consecutive jobs on one slot never re-pay process spawn, and jobs on the
same instance never re-pay arena construction either.

Leasing is affinity-aware: :meth:`acquire` prefers a free slot whose last
job ran the same instance (by content hash), which is what makes the
64-concurrent-jobs-on-one-instance benchmark regime cheap — every lease
after the first K is a pure warm reuse.

All coordination is single-threaded asyncio (the
:class:`~repro.service.jobs.JobManager`'s loop); the blocking solve itself
runs in an executor thread while holding the lease.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Sequence

from ..core.instance import MKPInstance
from ..core.tabu_search import TabuSearchConfig
from ..parallel.backends import Backend, MultiprocessingBackend, SerialBackend

__all__ = ["BackendLease", "LeaseCancelled", "PoolSlot", "SolverPool"]


class LeaseCancelled(Exception):
    """``acquire`` abandoned because the requesting job was cancelled."""


@dataclass
class PoolSlot:
    """One long-lived backend plus its lease-affinity bookkeeping."""

    slot_id: int
    backend: Backend
    #: content hash of the instance the backend is currently bound to
    bound_hash: str | None = None
    #: jobs this slot has served since pool construction
    jobs_served: int = 0
    leased: bool = field(default=False, repr=False)


@dataclass(frozen=True)
class BackendLease:
    """Exclusive right to drive one pool slot's backend for one job."""

    slot: PoolSlot

    @property
    def backend(self) -> Backend:
        return self.slot.backend


class SolverPool:
    """Fixed-size pool of warm backends with affinity-aware async leasing."""

    def __init__(self, backends: Sequence[Backend]) -> None:
        if not backends:
            raise ValueError("pool needs at least one backend")
        n_slaves = {b.n_slaves for b in backends}
        if len(n_slaves) != 1:
            raise ValueError(f"pool backends must agree on n_slaves; got {n_slaves}")
        #: slaves per backend — every job in this pool runs at this width
        self.n_slaves = n_slaves.pop()
        self._slots = [PoolSlot(i, backend) for i, backend in enumerate(backends)]
        self._cond = asyncio.Condition()
        self._closed = False
        #: total leases granted
        self.leases = 0
        #: leases that landed on a slot already bound to the same instance
        self.affinity_hits = 0

    # ------------------------------------------------------------------ #
    # Constructors for the two standard backend kinds
    # ------------------------------------------------------------------ #
    @classmethod
    def serial(
        cls,
        size: int,
        n_slaves: int,
        *,
        batch_k: int = 1,
        **backend_kwargs: object,
    ) -> "SolverPool":
        """Pool of :class:`~repro.parallel.backends.SerialBackend` slots.

        ``batch_k`` groups slaves onto shared warm runtimes — the serial
        mirror of the batched multiprocessing workers, useful when many
        same-instance service jobs should share one arena.
        """
        return cls(
            [
                SerialBackend(n_slaves, batch_k=batch_k, **backend_kwargs)
                for _ in range(size)
            ]
        )

    @classmethod
    def multiprocessing(
        cls,
        size: int,
        n_slaves: int,
        *,
        transport: str | None = None,
        batch_k: int = 1,
        **backend_kwargs: object,
    ) -> "SolverPool":
        """Pool of :class:`~repro.parallel.backends.MultiprocessingBackend` slots.

        ``transport`` picks the payload carrier per slot (``"shm"`` ring
        buffers with doorbell pipes where available, ``"pipe"`` otherwise;
        ``None`` = auto via ``REPRO_TRANSPORT``/host probe).  ``batch_k``
        packs that many slaves into each worker process, so a pool serving
        K same-instance jobs per round runs them through one batched
        scatter/gather instead of K process wakeups (lease affinity
        already steers same-instance jobs onto the same warm slot).
        """
        return cls(
            [
                MultiprocessingBackend(
                    n_slaves, transport=transport, batch_k=batch_k, **backend_kwargs
                )
                for _ in range(size)
            ]
        )

    @classmethod
    def socket(
        cls,
        size: int,
        n_slaves: int,
        *,
        local_workers: int = 0,
        mp_context: str = "fork",
        **backend_kwargs: object,
    ) -> "SolverPool":
        """Pool of :class:`~repro.parallel.backend_socket.SocketBackend` slots.

        Leases *network* capacity: each slot listens on its own (by default
        ephemeral) port, and any ``repro worker --connect`` agent — on this
        host or another — serves the jobs that lease the slot.  Workers may
        join or leave between (and during) jobs; the slot's logical width
        stays ``n_slaves``.  ``local_workers > 0`` additionally spawns that
        many worker processes per slot on this host, which makes the pool
        self-sufficient for tests and single-machine deployments.
        """
        from ..parallel.backend_socket import SocketBackend

        backends = []
        for _ in range(size):
            backend = SocketBackend(n_slaves, **backend_kwargs)
            backend.listen()
            if local_workers:
                backend.attach_local_workers(local_workers, mp_context=mp_context)
            backends.append(backend)
        return cls(backends)

    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        return len(self._slots)

    @property
    def free(self) -> int:
        return sum(1 for s in self._slots if not s.leased)

    def _pick(self, instance_hash: str | None) -> PoolSlot | None:
        """Best free slot: same-instance affinity first, then LRU-ish order."""
        free = [s for s in self._slots if not s.leased]
        if not free:
            return None
        if instance_hash is not None:
            for slot in free:
                if slot.bound_hash == instance_hash:
                    self.affinity_hits += 1
                    return slot
        # Prefer a never-bound slot over evicting another instance's warm
        # state (that state may serve a later affinity hit).
        for slot in free:
            if slot.bound_hash is None:
                return slot
        return free[0]

    async def acquire(
        self,
        instance_hash: str | None = None,
        *,
        cancelled: "asyncio.Event | None" = None,
    ) -> BackendLease:
        """Lease a backend, waiting for a free slot.

        ``cancelled`` (optional) aborts the wait: when set, the call raises
        :class:`LeaseCancelled` instead of granting a lease — how a queued
        job's cancel is observed without ever touching a backend.
        """
        async with self._cond:
            while True:
                if self._closed:
                    raise RuntimeError("pool is shut down")
                if cancelled is not None and cancelled.is_set():
                    raise LeaseCancelled()
                slot = self._pick(instance_hash)
                if slot is not None:
                    slot.leased = True
                    self.leases += 1
                    return BackendLease(slot)
                await self._cond.wait()

    async def release(self, lease: BackendLease, *, bound_hash: str | None) -> None:
        """Return a leased backend to the pool, recording what it last ran."""
        async with self._cond:
            lease.slot.leased = False
            lease.slot.bound_hash = bound_hash
            lease.slot.jobs_served += 1
            self._cond.notify_all()

    async def kick(self) -> None:
        """Wake every waiter (used to surface a cancel to queued jobs)."""
        async with self._cond:
            self._cond.notify_all()

    def shutdown(self) -> None:
        """Shut down every backend (idempotent — so are the backends)."""
        self._closed = True
        for slot in self._slots:
            slot.backend.shutdown()

    def slots(self) -> list[PoolSlot]:
        """Snapshot of the slots (stats/diagnostics)."""
        return list(self._slots)

    def prewarm(self, instance: MKPInstance, config: TabuSearchConfig | None = None) -> None:
        """Optionally bind every idle backend to ``instance`` ahead of load.

        Purely an optimization for a known-hot instance (e.g. the benchmark
        regime); leasing remains correct without it.
        """
        config = config or TabuSearchConfig()
        for slot in self._slots:
            if not slot.leased:
                slot.backend.start(instance, config)
                slot.bound_hash = instance.content_hash()
