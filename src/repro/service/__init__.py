"""Solver-as-a-service: an async job layer over shared warm worker pools.

DESIGN.md §5.6.  Inverts the ownership model of the paper's farm — backends
outlive runs instead of runs owning backends:

:mod:`~repro.service.cache`
    :class:`InstanceCache` — one canonical
    :class:`~repro.core.instance.MKPInstance` per content hash, hot tables
    built once and shared by every job on that problem.

:mod:`~repro.service.pool`
    :class:`SolverPool` — long-lived
    :class:`~repro.parallel.backends.Backend` instances leased to one job
    at a time with same-instance affinity; warm workers are rebound in
    place (never respawned) between jobs.

:mod:`~repro.service.jobs`
    :class:`JobManager` — asyncio submit / status / stream / cancel;
    blocking solves run in executor threads, live round events fan out from
    the :class:`~repro.obs.recorder.RunRecorder` subscriber hook, and
    cancellation is cooperative at round boundaries.

:mod:`~repro.service.server`
    :class:`ServiceServer` — the line-JSON TCP transport behind
    ``repro serve``/``submit``/``status``/``cancel``.

Job trajectories are bit-identical to the direct blocking API for the same
seed and config — the service layer multiplexes and amortizes, it never
perturbs the search.
"""

from .cache import InstanceCache
from .jobs import JobManager, JobRequest, JobState, JobStatus
from .pool import BackendLease, LeaseCancelled, PoolSlot, SolverPool
from .server import DEFAULT_PORT, ServiceServer, request, stream_events

__all__ = [
    "InstanceCache",
    "JobManager",
    "JobRequest",
    "JobState",
    "JobStatus",
    "BackendLease",
    "LeaseCancelled",
    "PoolSlot",
    "SolverPool",
    "ServiceServer",
    "DEFAULT_PORT",
    "request",
    "stream_events",
]
