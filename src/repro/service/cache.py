"""Content-addressed instance cache: one canonical object per problem.

Every job request carries its own :class:`~repro.core.instance.MKPInstance`
(parsed from a file, built inline from a TCP payload, or looked up in the
registry).  Constructing the search machinery for it is not free: the
shared :class:`~repro.core.bitset.HotTables` (weight transpose, drop-rule
ratios, prefix-bitmask fitting tables) are the single largest per-instance
setup cost, and the warm-lease path of :class:`~repro.service.pool.SolverPool`
only reuses worker arenas when consecutive jobs hand the backend the *same*
problem.

:class:`InstanceCache` collapses equal-content instances onto one canonical
object keyed by :meth:`~repro.core.instance.MKPInstance.content_hash`:

* the first job on a problem pays the ``HotTables`` build (done eagerly at
  insert, outside any solve) — every later job shares the tables for free;
* because all jobs on a problem then hold the *same object*, the backends'
  ``start()`` identity fast-path and the pool's lease affinity both hit.

The cache is LRU-bounded and thread-safe (the job manager's event loop and
solver threads may both touch it).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING

from ..core.instance import MKPInstance

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..core.reduction import CoreSelector
    from ..exact.bounds import LPRelaxation

__all__ = ["InstanceCache"]


class InstanceCache:
    """LRU map ``content_hash -> canonical MKPInstance`` with warm tables."""

    def __init__(self, max_entries: int = 32) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self._entries: OrderedDict[str, MKPInstance] = OrderedDict()
        self._lock = threading.Lock()
        #: lookups served by an already-cached instance
        self.hits = 0
        #: lookups that inserted (and warmed) a new instance
        self.misses = 0
        #: entries discarded by the LRU bound
        self.evictions = 0
        #: root-LP lookups served by an already-built CoreSelector
        self.lp_hits = 0
        #: root-LP lookups that had to solve the LP (selector build)
        self.lp_misses = 0
        self._selectors: OrderedDict[str, "CoreSelector"] = OrderedDict()

    def canonical(self, instance: MKPInstance) -> MKPInstance:
        """Return the cache's canonical instance for ``instance``'s content.

        On a miss the given instance becomes canonical and its hot tables
        are built immediately, so the cost lands on the submitting path
        once instead of inside the first solve round of every job.
        """
        key = instance.content_hash()
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return cached
            self.misses += 1
            self._entries[key] = instance
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
        # Build outside the lock: table construction is pure per-instance
        # work and must not serialize unrelated lookups behind it.
        instance.hot  # noqa: B018 - intentional eager warm-up
        return instance

    def core_selector(self, instance: MKPInstance) -> "CoreSelector":
        """The LP-core selector for ``instance``'s content (ISSUE-8).

        The heavy pieces — one root LP solve, the ``|reduced cost|``
        ranking, and the per-core reduced instances with their
        ``HotTables`` — live on the :class:`~repro.core.reduction.CoreSelector`,
        which is built at most once per content hash: repeated jobs on the
        same problem never re-solve the root LP.  Backed by the process-wide
        :func:`~repro.core.reduction.shared_selector` cache, so masters
        running outside the service share the same object.
        """
        from ..core.reduction import shared_selector  # lazy: pulls scipy

        instance = self.canonical(instance)
        key = instance.content_hash()
        with self._lock:
            cached = self._selectors.get(key)
            if cached is not None:
                self._selectors.move_to_end(key)
                self.lp_hits += 1
                return cached
            self.lp_misses += 1
        selector = shared_selector(instance)
        with self._lock:
            self._selectors.setdefault(key, selector)
            self._selectors.move_to_end(key)
            while len(self._selectors) > self.max_entries:
                self._selectors.popitem(last=False)
            return self._selectors[key]

    def lp_relaxation(self, instance: MKPInstance) -> "LPRelaxation":
        """The cached root-LP relaxation for ``instance``'s content."""
        return self.core_selector(instance).lp

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: "MKPInstance | str") -> bool:
        """Membership by instance or by content-hash string."""
        digest = key if isinstance(key, str) else key.content_hash()
        with self._lock:
            return digest in self._entries

    def stats(self) -> dict[str, int]:
        """Counter snapshot (hits/misses/evictions/size + LP counters)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._entries),
                "lp_hits": self.lp_hits,
                "lp_misses": self.lp_misses,
                "lp_size": len(self._selectors),
            }
