"""Content-addressed instance cache: one canonical object per problem.

Every job request carries its own :class:`~repro.core.instance.MKPInstance`
(parsed from a file, built inline from a TCP payload, or looked up in the
registry).  Constructing the search machinery for it is not free: the
shared :class:`~repro.core.bitset.HotTables` (weight transpose, drop-rule
ratios, prefix-bitmask fitting tables) are the single largest per-instance
setup cost, and the warm-lease path of :class:`~repro.service.pool.SolverPool`
only reuses worker arenas when consecutive jobs hand the backend the *same*
problem.

:class:`InstanceCache` collapses equal-content instances onto one canonical
object keyed by :meth:`~repro.core.instance.MKPInstance.content_hash`:

* the first job on a problem pays the ``HotTables`` build (done eagerly at
  insert, outside any solve) — every later job shares the tables for free;
* because all jobs on a problem then hold the *same object*, the backends'
  ``start()`` identity fast-path and the pool's lease affinity both hit.

The cache is LRU-bounded and thread-safe (the job manager's event loop and
solver threads may both touch it).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from ..core.instance import MKPInstance

__all__ = ["InstanceCache"]


class InstanceCache:
    """LRU map ``content_hash -> canonical MKPInstance`` with warm tables."""

    def __init__(self, max_entries: int = 32) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self._entries: OrderedDict[str, MKPInstance] = OrderedDict()
        self._lock = threading.Lock()
        #: lookups served by an already-cached instance
        self.hits = 0
        #: lookups that inserted (and warmed) a new instance
        self.misses = 0
        #: entries discarded by the LRU bound
        self.evictions = 0

    def canonical(self, instance: MKPInstance) -> MKPInstance:
        """Return the cache's canonical instance for ``instance``'s content.

        On a miss the given instance becomes canonical and its hot tables
        are built immediately, so the cost lands on the submitting path
        once instead of inside the first solve round of every job.
        """
        key = instance.content_hash()
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return cached
            self.misses += 1
            self._entries[key] = instance
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
        # Build outside the lock: table construction is pure per-instance
        # work and must not serialize unrelated lookups behind it.
        instance.hot  # noqa: B018 - intentional eager warm-up
        return instance

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: "MKPInstance | str") -> bool:
        """Membership by instance or by content-hash string."""
        digest = key if isinstance(key, str) else key.content_hash()
        with self._lock:
            return digest in self._entries

    def stats(self) -> dict[str, int]:
        """Counter snapshot (hits/misses/evictions/size)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._entries),
            }
