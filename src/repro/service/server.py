"""Local solver service: line-delimited JSON over TCP.

Dependency-free transport for ``repro serve`` / ``submit`` / ``status`` /
``cancel``: one JSON request object per line, one JSON response line back
(plus, for ``stream``, one line per observability event).  The protocol is
deliberately dumb — the interesting machinery (leasing, cancellation,
fan-out) all lives in :class:`~repro.service.jobs.JobManager`; this module
only parses requests and renders responses.

Request ops::

    {"op": "ping"}
    {"op": "submit", "instance": <spec>, "variant": "cts2", "rounds": 8,
     "evals": 20000, "seconds": null, "seed": 0}
    {"op": "status", "job_id": "job-000001"}
    {"op": "stream", "job_id": "job-000001"}       # multi-line response
    {"op": "cancel", "job_id": "job-000001"}
    {"op": "stats"}
    {"op": "shutdown"}

``instance`` is either a string (registry name or file path, resolved by
the server's loader) or an inline object with ``profits``/``weights``/
``capacities`` lists.  Every response carries ``"ok": true`` or
``"ok": false`` with an ``"error"`` message.  The ``stream`` response is a
sequence of ``{"ok": true, "kind": "event", ...}`` lines closed by one
``{"ok": true, "kind": "end", "status": {...}}`` line.
"""

from __future__ import annotations

import asyncio
import errno
import json
import socket
from typing import Callable, Iterator

from ..core.instance import MKPInstance
from .jobs import JobManager, JobRequest

__all__ = ["DEFAULT_PORT", "ServiceServer", "request", "stream_events"]

#: Default port for ``repro serve`` and the client subcommands.
DEFAULT_PORT = 7621

#: Loader turning an instance spec string into an instance (the CLI wires
#: its registry/file resolver in here).
InstanceLoader = Callable[[str], MKPInstance]


def _parse_instance(spec: object, loader: InstanceLoader | None) -> MKPInstance:
    if isinstance(spec, dict):
        return MKPInstance.from_lists(
            weights=spec["weights"],
            capacities=spec["capacities"],
            profits=spec["profits"],
            name=str(spec.get("name", "inline")),
        )
    if isinstance(spec, str):
        if loader is None:
            raise ValueError("server has no instance loader; send inline data")
        return loader(spec)
    raise ValueError("instance must be a spec string or an inline object")


class ServiceServer:
    """Serve one :class:`~repro.service.jobs.JobManager` over local TCP."""

    def __init__(
        self,
        manager: JobManager,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        instance_loader: InstanceLoader | None = None,
    ) -> None:
        self.manager = manager
        self.host = host
        self.port = port
        self.instance_loader = instance_loader
        self._server: asyncio.base_events.Server | None = None
        self._shutdown = asyncio.Event()

    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``.

        ``port=0`` binds an ephemeral port and reports the one the kernel
        chose — the race-free pattern for tests and multi-instance hosts.
        A taken fixed port raises an actionable error instead of the raw
        ``OSError`` traceback ``repro serve`` used to print.
        """
        try:
            self._server = await asyncio.start_server(
                self._handle, self.host, self.port
            )
        except OSError as exc:
            if exc.errno == errno.EADDRINUSE:
                raise RuntimeError(
                    f"port {self.port} on {self.host} is already in use "
                    "(another `repro serve`?). Pick a different --port, or "
                    "use --port 0 to bind an ephemeral port — the server "
                    "prints the port it actually bound."
                ) from exc
            raise
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    async def serve_until_shutdown(self) -> None:
        """Run until a ``shutdown`` request arrives, then close the manager."""
        if self._server is None:
            await self.start()
        await self._shutdown.wait()
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()
        await self.manager.close()

    # ------------------------------------------------------------------ #
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            line = await reader.readline()
            if not line:
                return
            try:
                payload = json.loads(line)
                await self._dispatch(payload, writer)
            except Exception as exc:  # malformed request or handler error
                await self._write(writer, {"ok": False, "error": str(exc)})
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - client gone
                pass

    @staticmethod
    async def _write(writer: asyncio.StreamWriter, payload: dict) -> None:
        writer.write(json.dumps(payload).encode() + b"\n")
        await writer.drain()

    async def _dispatch(self, payload: dict, writer: asyncio.StreamWriter) -> None:
        op = payload.get("op")
        if op == "ping":
            await self._write(writer, {"ok": True, "pong": True})
        elif op == "submit":
            instance = _parse_instance(payload.get("instance"), self.instance_loader)
            job_request = JobRequest(
                instance=instance,
                variant=str(payload.get("variant", "cts2")),
                n_rounds=int(payload.get("rounds", 8)),
                rng_seed=int(payload.get("seed", 0)),
                max_evaluations=(
                    int(payload["evals"]) if payload.get("evals") is not None else None
                ),
                virtual_seconds=(
                    float(payload["seconds"])
                    if payload.get("seconds") is not None
                    else None
                ),
            )
            job_id = self.manager.submit(job_request)
            await self._write(writer, {"ok": True, "job_id": job_id})
        elif op == "status":
            status = self.manager.status(str(payload["job_id"]))
            await self._write(writer, {"ok": True, "status": status.to_dict()})
        elif op == "cancel":
            cancelled = await self.manager.cancel(str(payload["job_id"]))
            await self._write(writer, {"ok": True, "cancelled": cancelled})
        elif op == "stream":
            job_id = str(payload["job_id"])
            self.manager.status(job_id)  # raise early on unknown id
            async for event in self.manager.stream(job_id):
                await self._write(writer, {"ok": True, "kind": "event", "data": event})
            await self._write(
                writer,
                {
                    "ok": True,
                    "kind": "end",
                    "status": self.manager.status(job_id).to_dict(),
                },
            )
        elif op == "stats":
            await self._write(
                writer,
                {
                    "ok": True,
                    "pool": {
                        "size": self.manager.pool.size,
                        "free": self.manager.pool.free,
                        "n_slaves": self.manager.pool.n_slaves,
                        "leases": self.manager.pool.leases,
                        "affinity_hits": self.manager.pool.affinity_hits,
                    },
                    "cache": self.manager.cache.stats(),
                    "jobs": len(self.manager.job_ids()),
                },
            )
        elif op == "shutdown":
            await self._write(writer, {"ok": True, "shutting_down": True})
            self._shutdown.set()
        else:
            raise ValueError(f"unknown op {op!r}")


# ---------------------------------------------------------------------- #
# Blocking client helpers (the CLI side; no asyncio needed there)
# ---------------------------------------------------------------------- #
def request(host: str, port: int, payload: dict, *, timeout_s: float = 30.0) -> dict:
    """One request/response round-trip; raises ``RuntimeError`` on error."""
    with socket.create_connection((host, port), timeout=timeout_s) as sock:
        sock.sendall(json.dumps(payload).encode() + b"\n")
        with sock.makefile("r", encoding="utf-8") as fh:
            line = fh.readline()
    if not line:
        raise RuntimeError("empty response from service")
    response = json.loads(line)
    if not response.get("ok"):
        raise RuntimeError(response.get("error", "service error"))
    return response


def stream_events(
    host: str, port: int, job_id: str, *, timeout_s: float = 600.0
) -> Iterator[dict]:
    """Yield a job's event records live; the final item is the end marker
    ``{"kind": "end", "status": {...}}`` (all others are raw event dicts)."""
    with socket.create_connection((host, port), timeout=timeout_s) as sock:
        sock.sendall(json.dumps({"op": "stream", "job_id": job_id}).encode() + b"\n")
        with sock.makefile("r", encoding="utf-8") as fh:
            for line in fh:
                response = json.loads(line)
                if not response.get("ok"):
                    raise RuntimeError(response.get("error", "service error"))
                if response.get("kind") == "end":
                    yield {"kind": "end", "status": response["status"]}
                    return
                yield response["data"]
