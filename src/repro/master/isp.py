"""ISP — the Initial Solution generation Procedure (§4.2).

"As a first step, for each entry i, the next initial solution S_i will be
the best solution found by the processor i.  Nevertheless, this solution
will be substituted by another solution if one of the following conditions
happens:

1. Its cost C(S_i) is less than a fraction (alpha) of the best cost found by
   all processors since the beginning of the search (C(S*)).  In this case,
   S* will be assigned to S_i.  [solution pooling à la Toulouse et al.]
2. An initial solution S_i has not been modified during a fixed number of
   iterations: it will be substituted by a new randomly generated solution."

"By changing dynamically the value of the parameter alpha, it is possible to
force or to forbid threads to realize search in the same region" — a large
alpha pulls most slaves onto S* (macro-intensification); a small alpha plus
the random injections of rule 2 spreads them out (macro-diversification).
:class:`AlphaController` implements that adaptation: raise alpha while the
global best keeps improving, decay it when the search stalls.

The :class:`ISPDecision` solutions chosen here are exactly what the master
serializes into each round's ``SlaveTask``; since ``rule 1`` hands the *same*
global-best :class:`~repro.core.solution.Solution` object to many slaves,
its packed wire frame and bitset words are memoized once and reused across
every copy shipped that round (see :meth:`Solution.packed_words`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.construction import random_solution
from ..core.instance import MKPInstance
from ..core.solution import Solution
from .datastruct import SlaveEntry

__all__ = ["ISPConfig", "AlphaController", "generate_initial_solutions", "ISPDecision"]


@dataclass(frozen=True)
class ISPConfig:
    """Tunables of the ISP.

    ``stagnation_limit`` is the paper's "fixed number of iterations" of
    rule 2 (in units of search rounds).
    """

    alpha: float = 0.98
    stagnation_limit: int = 3

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1]; got {self.alpha}")
        if self.stagnation_limit < 1:
            raise ValueError("stagnation_limit must be >= 1")


@dataclass
class AlphaController:
    """Dynamic alpha adaptation (macro intensification/diversification).

    The controller raises alpha by ``step`` after every round that improved
    the global best (pull the pack toward the promising region) and lowers
    it by ``step`` after every round that did not (let threads drift apart
    and rely on rule-2 random restarts) — the paper's "changing dynamically
    the value of alpha" made concrete.
    """

    alpha: float = 0.98
    step: float = 0.005
    alpha_min: float = 0.90
    alpha_max: float = 0.995

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha_min <= self.alpha <= self.alpha_max <= 1.0:
            raise ValueError(
                "require 0 < alpha_min <= alpha <= alpha_max <= 1; got "
                f"{self.alpha_min}, {self.alpha}, {self.alpha_max}"
            )
        if self.step < 0:
            raise ValueError("step must be >= 0")

    def update(self, global_best_improved: bool) -> float:
        if global_best_improved:
            self.alpha = min(self.alpha_max, self.alpha + self.step)
        else:
            self.alpha = max(self.alpha_min, self.alpha - self.step)
        return self.alpha


@dataclass(frozen=True)
class ISPDecision:
    """Audit record of one slave's ISP outcome (tested + traced)."""

    slave_id: int
    rule: str  # "keep" | "pool" | "restart"
    solution: Solution


def generate_initial_solutions(
    entries: list[SlaveEntry],
    global_best: Solution,
    instance: MKPInstance,
    config: ISPConfig,
    rng: np.random.Generator,
) -> list[ISPDecision]:
    """Apply the two ISP rules to every entry; mutates stagnation counters.

    Entries must already hold the latest round's results (their
    ``best_solutions`` merged and ``stagnant_rounds`` updated by the master
    loop).  Returns one decision per slave, in slave order.
    """
    decisions: list[ISPDecision] = []
    threshold = config.alpha * global_best.value
    for entry in entries:
        own_best = entry.best if entry.best is not None else entry.init_solution
        if entry.stagnant_rounds >= config.stagnation_limit:
            # Rule 2: random restart for a stagnant thread.
            fresh = random_solution(instance, rng)
            entry.stagnant_rounds = 0
            decisions.append(ISPDecision(entry.slave_id, "restart", fresh))
        elif own_best.value < threshold:
            # Rule 1: pool — pull the laggard onto the global best.
            decisions.append(ISPDecision(entry.slave_id, "pool", global_best))
        else:
            decisions.append(ISPDecision(entry.slave_id, "keep", own_best))
        entry.init_solution = decisions[-1].solution
    return decisions
