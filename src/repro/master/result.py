"""Result records for parallel (and sequential) runs."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.solution import Solution
from ..farm.trace import FarmTrace

__all__ = ["RoundStats", "ParallelRunResult"]


@dataclass(frozen=True)
class RoundStats:
    """Per-round aggregate of one master search iteration."""

    round_index: int
    best_value: float
    round_virtual_seconds: float
    #: virtual compute seconds charged to each *reporting* slave, keyed by
    #: slave id — on a degraded round the missing ids are exactly the
    #: slaves whose reports never arrived (a list by arrival order would
    #: silently misattribute entries as soon as one report goes missing)
    slave_virtual_seconds: dict[int, float]
    communication_seconds: float
    evaluations: int
    improved_slaves: int
    isp_rules: dict[str, int] = field(default_factory=dict)
    sgp_actions: dict[str, int] = field(default_factory=dict)
    #: degraded-mode accounting (all zero on a healthy round)
    failed_slaves: int = 0
    backoff_slaves: int = 0
    duplicate_reports: int = 0
    stale_reports: int = 0
    #: measured wall-clock split of the backend round over
    #: ``scatter``/``compute``/``gather`` (empty when the backend predates
    #: the phase counters); distinct from the *virtual* farm seconds above
    phase_wall_seconds: dict[str, float] = field(default_factory=dict)
    #: seconds from gather start until each slave's first accepted report —
    #: on the multiplexed gather a straggler inflates only its own entry
    gather_idle_s: dict[int, float] = field(default_factory=dict)


@dataclass
class ParallelRunResult:
    """Outcome of a full run of any of the SEQ/ITS/CTS variants.

    ``virtual_seconds`` is the simulated-farm makespan (0.0 when no farm
    model was attached, e.g. pure wall-clock multiprocessing runs).
    """

    variant: str
    best: Solution
    rounds: list[RoundStats]
    total_evaluations: int
    virtual_seconds: float
    wall_seconds: float
    n_slaves: int
    trace: FarmTrace | None = None
    bytes_sent: int = 0
    value_history: list[float] = field(default_factory=list)
    #: aggregate fault/degradation tally over the whole run, e.g.
    #: ``{"failed": 3, "duplicates": 1, "stale": 2, "degraded_rounds": 4}``.
    #: Empty for a run that never saw a fault.
    fault_summary: dict[str, int] = field(default_factory=dict)
    #: master execution mode that produced this result: ``"sync"`` (the
    #: Fig. 2 barrier loop) or ``"async"`` (bounded-staleness pipelining,
    #: DESIGN.md §5.9)
    pipeline: str = "sync"
    #: async-pipeline aggregates (empty for sync runs): bursts completed,
    #: burst failures, max observed staleness, mean queue depth at burst
    #: resolution, and barrier idle seconds the pipelining reclaimed
    pipeline_stats: dict[str, float] = field(default_factory=dict)

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    @property
    def degraded_rounds(self) -> int:
        """Rounds that completed with at least one missing slave report."""
        return sum(1 for s in self.rounds if s.failed_slaves or s.backoff_slaves)

    def best_value_at(self, virtual_second: float) -> float:
        """Best value known at a given virtual time (anytime curves).

        Before the first round completes only the initial incumbent
        (``value_history[0]``) is known — falling back to the first
        round's best here would over-report the curve at small ``t``.
        """
        best = float("-inf")
        elapsed = 0.0
        for stats in self.rounds:
            elapsed += stats.round_virtual_seconds
            if elapsed > virtual_second:
                break
            best = max(best, stats.best_value)
        if best == float("-inf"):
            if self.value_history:
                best = self.value_history[0]
            elif self.rounds:
                best = self.rounds[0].best_value
        return best

    def summary(self) -> str:
        """One-line human-readable summary for example scripts."""
        return (
            f"{self.variant}: best={self.best.value:g} "
            f"rounds={self.n_rounds} slaves={self.n_slaves} "
            f"evals={self.total_evaluations} "
            f"vtime={self.virtual_seconds:.3f}s wall={self.wall_seconds:.3f}s"
        )
