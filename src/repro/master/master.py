"""The master process (Figure 2) with farm-time accounting.

::

    Procedure Master_Process(P, Nb_search_it)
        Read and send to slaves problem data
        For i = 1 to Nb_search_it do
            Call SGP(P, Data_struc) and ISP(P, Data_struc)
            Send initial solutions and strategies to slaves
            Receive from each slave its B best solutions

Cooperation is switchable so that one driver realises all four evaluated
approaches (Table 2):

===========  =============  =================
variant      communicate    adapt_strategies
===========  =============  =================
ITS          no             no
CTS1         yes            no
CTS2         yes            yes
===========  =============  =================

(SEQ is the degenerate ``P = 1`` single-round case, provided by
``repro.variants.seq`` without a master.)

When a :class:`~repro.farm.FarmModel` is attached, the master charges every
scatter, compute burst, gather and barrier wait to a
:class:`~repro.farm.VirtualClock` and logs a :class:`~repro.farm.FarmTrace`;
"execution time" then means deterministic virtual seconds.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field

from ..core.construction import random_solution
from ..core.instance import MKPInstance
from ..core.solution import Solution
from ..core.strategy import StrategyBounds
from ..core.tabu_search import TabuSearchConfig
from ..core.termination import Budget, CancelToken
from ..farm.clock import VirtualClock
from ..farm.machine import FarmModel
from ..farm.trace import EventKind, FarmTrace
from ..obs.recorder import RunRecorder
from ..obs.telemetry import BurstTelemetry, RoundTelemetry, collect_round_telemetry
from ..parallel.backends import Backend
from ..parallel.message import SlaveReport, SlaveTask
from ..rng import derive_rng, make_rng, random_seed_from
from .datastruct import SlaveEntry
from .isp import AlphaController, ISPConfig, generate_initial_solutions
from .result import ParallelRunResult, RoundStats
from .sgp import SGPConfig, update_strategies

__all__ = ["MasterConfig", "MasterProcess"]


@dataclass(frozen=True)
class MasterConfig:
    """Everything that parameterizes a master-driven run."""

    n_slaves: int = 16
    n_rounds: int = 10
    communicate: bool = True
    adapt_strategies: bool = True
    isp: ISPConfig = field(default_factory=ISPConfig)
    sgp: SGPConfig = field(default_factory=SGPConfig)
    bounds: StrategyBounds = field(default_factory=StrategyBounds)
    ts_config: TabuSearchConfig = field(default_factory=TabuSearchConfig)
    #: per-slave elite pool size retained by the master across rounds
    elite_capacity: int = 8
    #: adapt alpha dynamically (macro int/div; ignored if not communicate)
    dynamic_alpha: bool = True
    #: explicit starting strategies (one per slave); ``None`` = random from
    #: ``bounds``.  Lets experiments hand every slave a deliberately bad
    #: strategy and watch the SGP recover (the paper's §4.2 claim that the
    #: master "unloads the user from the task of finding the efficient TS
    #: parameters").
    initial_strategies: tuple = ()
    #: cap on the exponential respawn backoff: a slave that failed ``f``
    #: consecutive rounds sits out ``min(2**(f-1), max_backoff_rounds)``
    #: rounds before the master retasks it
    max_backoff_rounds: int = 8
    #: master execution mode (DESIGN.md §5.9): ``"sync"`` is the Fig. 2
    #: barrier loop, bit-identical to every earlier release; ``"async"``
    #: pipelines per-slave bursts with bounded staleness over backends that
    #: expose ``dispatch()``/``next_report()``
    pipeline: str = "sync"
    #: async only: max allowed lead (in bursts) of any slave's dispatch
    #: frontier over the least-advanced slave's completion count; ``2``
    #: is classic double buffering
    max_staleness: int = 2
    #: async only: per-slave in-flight task cap (``2`` = double buffering)
    queue_depth: int = 2
    #: async only: seconds to wait for *any* report before the globally
    #: oldest outstanding burst is declared lost (``None`` = wait forever)
    burst_timeout_s: float | None = 30.0

    def __post_init__(self) -> None:
        if self.n_slaves < 1:
            raise ValueError("n_slaves must be >= 1")
        if self.n_rounds < 1:
            raise ValueError("n_rounds must be >= 1")
        if self.elite_capacity < 1:
            raise ValueError("elite_capacity must be >= 1")
        if self.max_backoff_rounds < 1:
            raise ValueError("max_backoff_rounds must be >= 1")
        if self.pipeline not in ("sync", "async"):
            raise ValueError(
                f"pipeline must be 'sync' or 'async'; got {self.pipeline!r}"
            )
        if self.max_staleness < 1:
            raise ValueError("max_staleness must be >= 1")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.burst_timeout_s is not None and self.burst_timeout_s <= 0:
            raise ValueError("burst_timeout_s must be positive (or None)")
        if self.initial_strategies and len(self.initial_strategies) != self.n_slaves:
            raise ValueError(
                "initial_strategies must have one entry per slave "
                f"({self.n_slaves}); got {len(self.initial_strategies)}"
            )


class MasterProcess:
    """Runs the Figure-2 loop over a :class:`~repro.parallel.Backend`."""

    def __init__(
        self,
        instance: MKPInstance,
        config: MasterConfig,
        backend: Backend,
        rng_seed: int = 0,
        farm: FarmModel | None = None,
        variant_name: str | None = None,
        recorder: RunRecorder | None = None,
        cancel: CancelToken | None = None,
    ) -> None:
        if backend.n_slaves != config.n_slaves:
            raise ValueError(
                f"backend has {backend.n_slaves} slaves but config expects "
                f"{config.n_slaves}"
            )
        self.instance = instance
        self.config = config
        self.backend = backend
        self.rng_seed = int(rng_seed)
        self.rng = make_rng(self.rng_seed)
        self.farm = farm
        self.variant_name = variant_name or (
            "CTS2"
            if config.communicate and config.adapt_strategies
            else "CTS1"
            if config.communicate
            else "ITS"
        )
        self.alpha_controller = AlphaController(
            alpha=config.isp.alpha,
        )
        #: structured observability sink; the disabled default is a no-op,
        #: so recording is strictly opt-in and costs nothing otherwise
        self.recorder = recorder if recorder is not None else RunRecorder.disabled()
        #: cooperative cancellation, checked at every round boundary; the
        #: run ends early with the rounds completed so far and the backend
        #: left in its clean between-rounds state (service leasing relies
        #: on this — a cancelled job's backend is immediately reusable)
        self.cancel = cancel
        #: whether the last :meth:`run` ended early on a cancel request
        self.was_cancelled = False
        self._phase_trace: list[str] | None = None
        #: lazy per-instance LP-core selector (ISSUE-8): built on the first
        #: round in which some strategy asks for ``core_ratio < 1.0``, via
        #: the process-wide content-addressed cache — full-space runs never
        #: touch the LP (or scipy) at all
        self._core_selector = None

    def _fixation_pattern(self, strategy, slave_id: int):
        """The slave's fixation pattern for this round (None = full space).

        ``variant=slave_id`` rotates each slave's core boundary window so
        cooperating slaves free slightly different variable sets — the
        reduction layer's diversification, deterministic and RNG-free.
        """
        ratio = strategy.core_ratio
        if ratio >= 1.0:
            return None
        if self._core_selector is None:
            from ..core.reduction import shared_selector  # lazy: pulls scipy

            self._core_selector = shared_selector(self.instance)
        return self._core_selector.pattern(ratio, variant=slave_id)

    # ------------------------------------------------------------------ #
    def run(self, budget_per_slave: Budget | None = None) -> ParallelRunResult:
        """Execute ``n_rounds`` search iterations and return the result.

        ``budget_per_slave`` caps each slave's *total* work across all
        rounds; each round receives an equal share.  ``None`` runs purely
        structural budgets (``Nb_div``/``Nb_it`` loops only).

        With ``config.pipeline == "async"`` the barrier loop is replaced by
        bounded-staleness pipelining (:meth:`_run_async`); the default
        ``"sync"`` path below is untouched and stays bit-identical.
        """
        if self.config.pipeline == "async":
            return self._run_async(budget_per_slave)
        t_wall0 = time.perf_counter()
        cfg = self.config
        rec = self.recorder
        clock = VirtualClock(cfg.n_slaves + 1) if self.farm else None
        trace = FarmTrace() if self.farm else None

        # --- Fig. 2 line 1: distribute problem data ---------------------
        self._note("distribute_problem")
        self.backend.start(self.instance, cfg.ts_config)
        rec.run_start(
            variant=self.variant_name,
            n_slaves=cfg.n_slaves,
            n_rounds=cfg.n_rounds,
            seed=self.rng_seed,
            instance=str(getattr(self.instance, "name", "") or ""),
            instance_size=self.instance.size_label,
            communicate=cfg.communicate,
            adapt_strategies=cfg.adapt_strategies,
        )

        # --- initial entries: random solutions + random strategies ------
        entries: list[SlaveEntry] = []
        for k in range(cfg.n_slaves):
            strategy = (
                cfg.initial_strategies[k]
                if cfg.initial_strategies
                else cfg.bounds.random(self.rng)
            )
            entries.append(
                SlaveEntry(
                    slave_id=k,
                    strategy=strategy,
                    init_solution=random_solution(
                        self.instance, derive_rng(self.rng_seed, 0, k)
                    ),
                )
            )
        global_best: Solution = max(
            (e.init_solution for e in entries), key=lambda s: s.value
        )

        rounds: list[RoundStats] = []
        value_history: list[float] = [global_best.value]
        total_evaluations = 0
        bytes_sent = 0

        # --- slave health: consecutive failures + exponential backoff ---
        consecutive_failures = [0] * cfg.n_slaves
        resume_round = [0] * cfg.n_slaves
        fault_summary: Counter[str] = Counter()

        self.was_cancelled = False
        for round_idx in range(cfg.n_rounds):
            # --- cooperative cancel: only ever between rounds -----------
            if self.cancel is not None and self.cancel.cancelled:
                self.was_cancelled = True
                break
            # --- Fig. 2: Call SGP and ISP, send, receive ----------------
            round_budget = (
                None
                if budget_per_slave is None
                else budget_per_slave.scaled(1.0 / cfg.n_rounds)
            )
            tasks: list[SlaveTask | None] = []
            backoff_slaves = 0
            for entry in entries:
                k = entry.slave_id
                if round_idx < resume_round[k]:
                    # Still backing off after a failure: no task this round.
                    tasks.append(None)
                    backoff_slaves += 1
                    continue
                seed = random_seed_from(derive_rng(self.rng_seed, 1 + round_idx, k))
                tasks.append(
                    SlaveTask(
                        x_init=entry.init_solution,
                        strategy=entry.strategy,
                        budget=round_budget if round_budget is not None else Budget.unlimited(),
                        seed=seed,
                        round_index=round_idx,
                        seq_id=round_idx * cfg.n_slaves + k,
                        pattern=self._fixation_pattern(entry.strategy, k),
                    )
                )
            rec.round_start(
                round_idx,
                tasked_slaves=sum(1 for t in tasks if t is not None),
                backoff_slaves=backoff_slaves,
            )
            self._note("send_tasks")
            raw_reports = self.backend.run_round(tasks)
            self._note("receive_reports")

            # --- idempotent report handling -----------------------------
            # Accept at most one report per slave per round, keyed by the
            # (round, seq) ids the task carried; duplicated deliveries and
            # stale (delayed) reports from earlier rounds are discarded, so
            # no round ever double-counts a report.
            accepted: dict[int, SlaveReport] = {}
            duplicate_reports = 0
            stale_reports = 0
            for report in raw_reports:
                k = report.slave_id
                expected_seq = round_idx * cfg.n_slaves + k
                if (
                    not 0 <= k < cfg.n_slaves
                    or report.round_index != round_idx
                    or report.seq_id != expected_seq
                ):
                    stale_reports += 1
                    continue
                if k in accepted:
                    duplicate_reports += 1
                    continue
                accepted[k] = report
            reports = [accepted[k] for k in sorted(accepted)]

            # --- measured wall telemetry + farm time accounting ---------
            # One typed record per round, emitted by the backend itself —
            # the recorder stream gets it unconditionally, so wall-clock
            # runs without a farm model keep their phase splits too (the
            # old path only kept them when a FarmTrace existed).
            telemetry = collect_round_telemetry(self.backend, round_idx)
            rec.round_telemetry(telemetry)
            round_seconds, comm_seconds, slave_seconds = self._charge_round(
                clock, trace, reports, telemetry
            )
            bytes_sent += telemetry.total_bytes
            phase_wall = dict(telemetry.phase_seconds)
            gather_idle = dict(telemetry.gather_idle_s)
            if trace is not None and phase_wall:
                trace.record_wall_phases(
                    round_idx, phase_wall, gather_idle, telemetry.master_wait_s
                )

            # --- fold results into the data structure -------------------
            improved_slaves = 0
            failed_slaves = 0
            for entry in entries:
                k = entry.slave_id
                report = accepted.get(k)
                if report is None:
                    if tasks[k] is not None:
                        # Tasked but never (validly) reported: crashed slave
                        # or lost message.  Enter/extend exponential backoff.
                        consecutive_failures[k] += 1
                        backoff = min(
                            2 ** (consecutive_failures[k] - 1), cfg.max_backoff_rounds
                        )
                        resume_round[k] = round_idx + backoff
                        failed_slaves += 1
                    entry.stagnant_rounds += 1
                    continue
                consecutive_failures[k] = 0
                changed = entry.absorb_elite(
                    [report.best, *report.elite], cfg.elite_capacity
                )
                if changed:
                    entry.stagnant_rounds = 0
                    improved_slaves += 1
                else:
                    entry.stagnant_rounds += 1
            # Degraded-mode monotonicity: the incumbent only ever ratchets
            # up, even when a round yields zero surviving reports.
            global_improved = False
            if reports:
                round_best = max(reports, key=lambda r: r.best.value).best
                global_improved = round_best.value > global_best.value
                if global_improved:
                    global_best = round_best
            total_evaluations += sum(r.evaluations for r in reports)
            value_history.append(global_best.value)
            fault_summary["failed"] += failed_slaves
            fault_summary["duplicates"] += duplicate_reports
            fault_summary["stale"] += stale_reports
            if failed_slaves or backoff_slaves:
                fault_summary["degraded_rounds"] += 1
            if failed_slaves or backoff_slaves or duplicate_reports or stale_reports:
                rec.faults(
                    round_idx,
                    failed_slaves=failed_slaves,
                    backoff_slaves=backoff_slaves,
                    duplicate_reports=duplicate_reports,
                    stale_reports=stale_reports,
                )

            # --- SGP -----------------------------------------------------
            sgp_actions: Counter[str] = Counter()
            if cfg.adapt_strategies:
                self._note("sgp")
                decisions = update_strategies(
                    entries,
                    reports,
                    cfg.bounds,
                    cfg.sgp,
                    self.instance.n_items,
                    self.rng,
                    allow_missing=True,
                )
                sgp_actions = Counter(d.action for d in decisions)

            # --- ISP -----------------------------------------------------
            isp_rules: Counter[str] = Counter()
            if cfg.communicate:
                self._note("isp")
                if cfg.dynamic_alpha:
                    alpha = self.alpha_controller.update(global_improved)
                else:
                    alpha = cfg.isp.alpha
                isp_config = ISPConfig(
                    alpha=alpha, stagnation_limit=cfg.isp.stagnation_limit
                )
                decisions = generate_initial_solutions(
                    entries, global_best, self.instance, isp_config, self.rng
                )
                isp_rules = Counter(d.rule for d in decisions)
            else:
                # Independent threads: each continues from its own best.
                for entry in entries:
                    own = entry.best
                    if own is not None:
                        entry.init_solution = own
                isp_rules = Counter({"keep": cfg.n_slaves})

            if cfg.adapt_strategies:
                rec.sgp(round_idx, dict(sgp_actions))
            rec.isp(round_idx, dict(isp_rules))
            rounds.append(
                RoundStats(
                    round_index=round_idx,
                    best_value=global_best.value,
                    round_virtual_seconds=round_seconds,
                    slave_virtual_seconds=slave_seconds,
                    communication_seconds=comm_seconds,
                    evaluations=sum(r.evaluations for r in reports),
                    improved_slaves=improved_slaves,
                    isp_rules=dict(isp_rules),
                    sgp_actions=dict(sgp_actions),
                    failed_slaves=failed_slaves,
                    backoff_slaves=backoff_slaves,
                    duplicate_reports=duplicate_reports,
                    stale_reports=stale_reports,
                    phase_wall_seconds=phase_wall,
                    gather_idle_s=gather_idle,
                )
            )
            rec.round_end(
                round_idx,
                best_value=global_best.value,
                evaluations=rounds[-1].evaluations,
                improved_slaves=improved_slaves,
                n_reports=len(reports),
            )

            # Early exit once the target objective is reached (time-to-
            # target experiments) — launching further rounds would only
            # inflate the reported makespan.
            if (
                budget_per_slave is not None
                and budget_per_slave.target_value is not None
                and global_best.value >= budget_per_slave.target_value
            ):
                break

        result = ParallelRunResult(
            variant=self.variant_name,
            best=global_best,
            rounds=rounds,
            total_evaluations=total_evaluations,
            virtual_seconds=clock.now if clock else 0.0,
            wall_seconds=time.perf_counter() - t_wall0,
            n_slaves=cfg.n_slaves,
            trace=trace,
            bytes_sent=bytes_sent,
            value_history=value_history,
            fault_summary={k: v for k, v in fault_summary.items() if v},
        )
        rec.run_end(
            best_value=result.best.value,
            total_evaluations=result.total_evaluations,
            n_rounds=result.n_rounds,
            wall_seconds=result.wall_seconds,
            virtual_seconds=result.virtual_seconds,
            bytes_sent=result.bytes_sent,
            fault_summary=result.fault_summary,
        )
        return result

    # ------------------------------------------------------------------ #
    def _run_async(self, budget_per_slave: Budget | None) -> ParallelRunResult:
        """Bounded-staleness pipelined master loop (DESIGN.md §5.9).

        Instead of the Fig. 2 barrier, every slave holds up to
        ``queue_depth`` tasks in flight; the master consumes reports in
        arrival order and immediately re-dispatches with the freshest
        ISP/SGP state (both run incrementally, one entry per report — they
        are strictly per-entry, so single-entry calls are semantically
        identical to the batched round calls).  ``max_staleness`` bounds how
        far any slave's dispatch frontier may run ahead of the
        least-advanced slave's completion count, so the search never
        degenerates into one fast slave soloing the instance.

        **Windows.** Burst index ``b`` plays the role of round ``b``: every
        slave resolves each burst exactly once (report, failure, or backoff
        skip), and since per-slave resolution is monotone in ``b`` the
        windows close in order.  A closed window emits the same
        ``round_start → round_telemetry → … → round_end`` event group as a
        sync round (phase split synthesized from burst latencies), so every
        downstream consumer — trace rendering, metrics, summaries,
        serialization — reads an async run with no schema change.

        **Loss detection.** A report from slave ``k`` for burst ``b``
        proves every older in-flight burst of ``k`` lost (per-slave arrival
        order is burst-monotone, even for chaos-delayed reports, which
        flush ahead of the next computed one); otherwise the globally
        oldest outstanding burst is failed when ``burst_timeout_s`` passes
        with no arrival at all.  Under :class:`SerialBackend` replay the
        whole schedule is deterministic (inline execution makes arrival
        order equal dispatch order), which is the seeded-determinism
        contract ``tests/test_pipeline.py`` pins.
        """
        t_wall0 = time.perf_counter()
        cfg = self.config
        rec = self.recorder
        P = cfg.n_slaves
        backend = self.backend
        if self.farm is not None:
            raise ValueError(
                "pipeline='async' has no virtual-farm accounting; "
                "run the farm model with pipeline='sync'"
            )
        if not hasattr(backend, "dispatch") or not hasattr(backend, "next_report"):
            raise TypeError(
                f"backend {type(backend).__name__} does not implement the "
                "pipelined dispatch()/next_report() API required by "
                "pipeline='async'"
            )
        drain_dead = getattr(backend, "drain_dead_slaves", lambda: ())

        self._note("distribute_problem")
        backend.start(self.instance, cfg.ts_config)
        rec.run_start(
            variant=self.variant_name,
            n_slaves=P,
            n_rounds=cfg.n_rounds,
            seed=self.rng_seed,
            instance=str(getattr(self.instance, "name", "") or ""),
            instance_size=self.instance.size_label,
            communicate=cfg.communicate,
            adapt_strategies=cfg.adapt_strategies,
        )

        entries: list[SlaveEntry] = []
        for k in range(P):
            strategy = (
                cfg.initial_strategies[k]
                if cfg.initial_strategies
                else cfg.bounds.random(self.rng)
            )
            entries.append(
                SlaveEntry(
                    slave_id=k,
                    strategy=strategy,
                    init_solution=random_solution(
                        self.instance, derive_rng(self.rng_seed, 0, k)
                    ),
                )
            )
        global_best: Solution = max(
            (e.init_solution for e in entries), key=lambda s: s.value
        )

        burst_budget = (
            Budget.unlimited()
            if budget_per_slave is None
            else budget_per_slave.scaled(1.0 / cfg.n_rounds)
        )
        target_value = (
            budget_per_slave.target_value if budget_per_slave is not None else None
        )

        # --- per-slave pipeline state ----------------------------------
        next_burst = [0] * P  # dispatch frontier (next undispatched burst)
        completed = [0] * P  # bursts resolved (report, failure, or skip)
        inflight: list[list[tuple[int, int, float]]] = [[] for _ in range(P)]
        resume_burst = [0] * P  # exponential backoff, in burst units
        consecutive_failures = [0] * P
        seen_seqs: set[int] = set()

        # --- per-burst windows (round-compatible aggregation) ----------
        windows: dict[int, dict] = {}
        next_close = 0
        rounds: list[RoundStats] = []
        value_history: list[float] = [global_best.value]
        total_evaluations = 0
        bytes_sent = 0
        fault_summary: Counter[str] = Counter()
        stop_dispatch = False
        # run-level pipeline aggregates
        bursts_completed = 0
        burst_failures = 0
        max_staleness_seen = 0
        queue_depth_sum = 0
        n_resolutions = 0
        reclaimed_idle_s = 0.0
        master_wait_s = 0.0

        def window(b: int) -> dict:
            w = windows.get(b)
            if w is None:
                w = windows[b] = {
                    "resolved": 0,
                    "evaluations": 0,
                    "improved": 0,
                    "failed": 0,
                    "backoff": 0,
                    "duplicates": 0,
                    "stale": 0,
                    "n_reports": 0,
                    "sgp": Counter(),
                    "isp": Counter(),
                    "task_nbytes": {},
                    "report_nbytes": {},
                    "latency": {},
                    "wait_s": 0.0,
                }
            return w

        def close_ready_windows() -> None:
            nonlocal next_close, bytes_sent, reclaimed_idle_s
            while next_close in windows and windows[next_close]["resolved"] >= P:
                b = next_close
                w = windows.pop(b)
                next_close += 1
                lat = w["latency"]
                lat_values = list(lat.values())
                phase = {
                    "scatter": 0.0,
                    "compute": min(lat_values) if lat_values else 0.0,
                    "gather": max(lat_values) if lat_values else 0.0,
                }
                rec.round_start(
                    b, tasked_slaves=P - w["backoff"], backoff_slaves=w["backoff"]
                )
                telemetry = RoundTelemetry(
                    round_index=b,
                    phase_seconds=phase,
                    gather_idle_s=dict(lat),
                    master_wait_s=w["wait_s"],
                    task_nbytes=dict(w["task_nbytes"]),
                    report_nbytes=dict(w["report_nbytes"]),
                    slowdowns={},
                )
                rec.round_telemetry(telemetry)
                bytes_sent += telemetry.total_bytes
                if w["failed"] or w["backoff"]:
                    fault_summary["degraded_rounds"] += 1
                if w["failed"] or w["backoff"] or w["duplicates"] or w["stale"]:
                    rec.faults(
                        b,
                        failed_slaves=w["failed"],
                        backoff_slaves=w["backoff"],
                        duplicate_reports=w["duplicates"],
                        stale_reports=w["stale"],
                    )
                if cfg.adapt_strategies:
                    rec.sgp(b, dict(w["sgp"]))
                rec.isp(b, dict(w["isp"]))
                value_history.append(global_best.value)
                # A straggler holds only its own burst back: everyone
                # else's latency lead over the slowest report is barrier
                # idle the pipelining reclaimed.
                if len(lat_values) >= 2:
                    slowest = max(lat_values)
                    reclaimed_idle_s += sum(slowest - v for v in lat_values)
                rounds.append(
                    RoundStats(
                        round_index=b,
                        best_value=global_best.value,
                        round_virtual_seconds=0.0,
                        slave_virtual_seconds={k: 0.0 for k in lat},
                        communication_seconds=0.0,
                        evaluations=w["evaluations"],
                        improved_slaves=w["improved"],
                        isp_rules=dict(w["isp"]),
                        sgp_actions=dict(w["sgp"]),
                        failed_slaves=w["failed"],
                        backoff_slaves=w["backoff"],
                        duplicate_reports=w["duplicates"],
                        stale_reports=w["stale"],
                        phase_wall_seconds=phase,
                        gather_idle_s=dict(lat),
                    )
                )
                rec.round_end(
                    b,
                    best_value=global_best.value,
                    evaluations=w["evaluations"],
                    improved_slaves=w["improved"],
                    n_reports=w["n_reports"],
                )

        def resolve(k: int, b: int, outcome: str, latency: float) -> None:
            nonlocal bursts_completed, max_staleness_seen
            nonlocal queue_depth_sum, n_resolutions
            completed[k] += 1
            w = window(b)
            w["resolved"] += 1
            bursts_completed += 1
            staleness = completed[k] - min(completed)
            max_staleness_seen = max(max_staleness_seen, staleness)
            queue_depth_sum += len(inflight[k])
            n_resolutions += 1
            rec.burst_telemetry(
                BurstTelemetry(
                    slave_id=k,
                    burst_index=b,
                    queue_depth=len(inflight[k]),
                    staleness=staleness,
                    latency_s=latency,
                    task_nbytes=int(w["task_nbytes"].get(k, 0)),
                    report_nbytes=int(w["report_nbytes"].get(k, 0)),
                    outcome=outcome,
                )
            )
            close_ready_windows()

        def adapt_absent(k: int, w: dict) -> None:
            """SGP/ISP bookkeeping for a burst that yielded no report."""
            entry = entries[k]
            if cfg.adapt_strategies:
                decisions = update_strategies(
                    [entry],
                    [],
                    cfg.bounds,
                    cfg.sgp,
                    self.instance.n_items,
                    self.rng,
                    allow_missing=True,
                )
                w["sgp"].update(d.action for d in decisions)
            if cfg.communicate:
                alpha = (
                    self.alpha_controller.alpha
                    if cfg.dynamic_alpha
                    else cfg.isp.alpha
                )
                isp_config = ISPConfig(
                    alpha=alpha, stagnation_limit=cfg.isp.stagnation_limit
                )
                decisions = generate_initial_solutions(
                    [entry], global_best, self.instance, isp_config, self.rng
                )
                w["isp"].update(d.rule for d in decisions)
            else:
                own = entry.best
                if own is not None:
                    entry.init_solution = own
                w["isp"]["keep"] += 1

        def fail_burst(k: int, b: int, t_dispatched: float) -> None:
            nonlocal burst_failures
            consecutive_failures[k] += 1
            backoff = min(2 ** (consecutive_failures[k] - 1), cfg.max_backoff_rounds)
            resume_burst[k] = next_burst[k] + backoff
            entries[k].stagnant_rounds += 1
            w = window(b)
            w["failed"] += 1
            fault_summary["failed"] += 1
            burst_failures += 1
            adapt_absent(k, w)
            w["latency"][k] = time.perf_counter() - t_dispatched
            resolve(k, b, "failed", w["latency"][k])

        def fail_head(k: int) -> None:
            b, _seq, t0 = inflight[k].pop(0)
            fail_burst(k, b, t0)

        def pump() -> bool:
            """Dispatch/skip every eligible burst; True if anything moved."""
            moved = False
            progress = True
            while progress and not stop_dispatch:
                progress = False
                floor = min(completed)
                for k in range(P):
                    b = next_burst[k]
                    if b >= cfg.n_rounds or b - floor >= cfg.max_staleness:
                        continue
                    if b < resume_burst[k]:
                        # Backoff: the burst resolves instantly as a skip
                        # (the sync loop's None task), still staleness-paced
                        # so a failing slave cannot skip ahead of the fleet.
                        next_burst[k] += 1
                        w = window(b)
                        w["backoff"] += 1
                        entries[k].stagnant_rounds += 1
                        adapt_absent(k, w)
                        resolve(k, b, "skipped", 0.0)
                        moved = progress = True
                        continue
                    if len(inflight[k]) >= cfg.queue_depth:
                        continue
                    entry = entries[k]
                    seed = random_seed_from(derive_rng(self.rng_seed, 1 + b, k))
                    task = SlaveTask(
                        x_init=entry.init_solution,
                        strategy=entry.strategy,
                        budget=burst_budget,
                        seed=seed,
                        round_index=b,
                        seq_id=b * P + k,
                        pattern=self._fixation_pattern(entry.strategy, k),
                    )
                    self._note("dispatch")
                    nbytes = backend.dispatch(k, task)
                    window(b)["task_nbytes"][k] = nbytes
                    inflight[k].append((b, task.seq_id, time.perf_counter()))
                    next_burst[k] += 1
                    moved = progress = True
            return moved

        self.was_cancelled = False
        while True:
            if self.cancel is not None and self.cancel.cancelled:
                self.was_cancelled = True
                stop_dispatch = True
            if target_value is not None and global_best.value >= target_value:
                stop_dispatch = True
            moved = pump()
            if not any(inflight):
                if stop_dispatch or all(b >= cfg.n_rounds for b in next_burst):
                    break
                if not moved:  # pragma: no cover - defensive
                    break
                continue

            t_wait0 = time.perf_counter()
            item = backend.next_report(timeout_s=cfg.burst_timeout_s)
            wait = time.perf_counter() - t_wait0
            master_wait_s += wait
            if next_close in windows:
                windows[next_close]["wait_s"] += wait

            for k in drain_dead():
                # Worker death invalidates everything it had in flight.
                while inflight[k]:
                    fail_head(k)
            if item is None:
                if any(inflight):
                    # Nothing arrived in a full timeout window: declare the
                    # globally oldest outstanding burst lost.
                    k_oldest = min(
                        (k for k in range(P) if inflight[k]),
                        key=lambda k: (inflight[k][0][0], inflight[k][0][2]),
                    )
                    fail_head(k_oldest)
                continue

            report, report_nbytes = item
            self._note("receive_report")
            k = report.slave_id
            seq = report.seq_id
            valid = 0 <= k < P and seq == report.round_index * P + k
            match = None
            if valid:
                for i, (_b, s, _t0) in enumerate(inflight[k]):
                    if s == seq:
                        match = i
                        break
            if match is None:
                # Duplicate of an accepted report, or a report for a burst
                # already written off (timeout raced a live slave).
                key = "duplicates" if valid and seq in seen_seqs else "stale"
                fault_summary[key] += 1
                target_w = report.round_index if valid else next_close
                if target_w in windows or (valid and target_w >= next_close):
                    window(target_w)[key] += 1
                continue
            # Per-slave arrival order is burst-monotone, so this report
            # proves every older in-flight burst of slave k lost.
            for _ in range(match):
                fail_head(k)
            b, _seq, t_dispatched = inflight[k].pop(0)
            seen_seqs.add(seq)
            consecutive_failures[k] = 0
            now = time.perf_counter()
            entry = entries[k]
            w = window(b)
            w["n_reports"] += 1
            w["latency"][k] = now - t_dispatched
            w["report_nbytes"][k] = report_nbytes
            w["evaluations"] += report.evaluations
            total_evaluations += report.evaluations
            changed = entry.absorb_elite(
                [report.best, *report.elite], cfg.elite_capacity
            )
            if changed:
                entry.stagnant_rounds = 0
                w["improved"] += 1
            else:
                entry.stagnant_rounds += 1
            global_improved = report.best.value > global_best.value
            if global_improved:
                global_best = report.best
            # Incremental SGP/ISP: the very next dispatch to any slave
            # already sees this report folded in — the freshness the
            # barrier loop only achieves once per round.
            if cfg.adapt_strategies:
                self._note("sgp")
                decisions = update_strategies(
                    [entry],
                    [report],
                    cfg.bounds,
                    cfg.sgp,
                    self.instance.n_items,
                    self.rng,
                    allow_missing=True,
                )
                w["sgp"].update(d.action for d in decisions)
            if cfg.communicate:
                self._note("isp")
                alpha = (
                    self.alpha_controller.update(global_improved)
                    if cfg.dynamic_alpha
                    else cfg.isp.alpha
                )
                isp_config = ISPConfig(
                    alpha=alpha, stagnation_limit=cfg.isp.stagnation_limit
                )
                decisions = generate_initial_solutions(
                    [entry], global_best, self.instance, isp_config, self.rng
                )
                w["isp"].update(d.rule for d in decisions)
            else:
                own = entry.best
                if own is not None:
                    entry.init_solution = own
                w["isp"]["keep"] += 1
            resolve(k, b, "report", w["latency"][k])

        pipeline_stats = {
            "bursts_completed": float(bursts_completed),
            "burst_failures": float(burst_failures),
            "max_staleness": float(max_staleness_seen),
            "mean_queue_depth": (
                queue_depth_sum / n_resolutions if n_resolutions else 0.0
            ),
            "reclaimed_idle_s": reclaimed_idle_s,
            "master_wait_s": master_wait_s,
        }
        result = ParallelRunResult(
            variant=self.variant_name,
            best=global_best,
            rounds=rounds,
            total_evaluations=total_evaluations,
            virtual_seconds=0.0,
            wall_seconds=time.perf_counter() - t_wall0,
            n_slaves=P,
            trace=None,
            bytes_sent=bytes_sent,
            value_history=value_history,
            fault_summary={k: v for k, v in fault_summary.items() if v},
            pipeline="async",
            pipeline_stats=pipeline_stats,
        )
        rec.run_end(
            best_value=result.best.value,
            total_evaluations=result.total_evaluations,
            n_rounds=result.n_rounds,
            wall_seconds=result.wall_seconds,
            virtual_seconds=result.virtual_seconds,
            bytes_sent=result.bytes_sent,
            fault_summary=result.fault_summary,
        )
        return result

    # ------------------------------------------------------------------ #
    def _charge_round(
        self,
        clock: VirtualClock | None,
        trace: FarmTrace | None,
        reports: list[SlaveReport],
        telemetry: RoundTelemetry,
    ) -> tuple[float, float, dict[int, float]]:
        """Charge one round to the virtual clock; returns time aggregates.

        Sequence per the synchronous scheme: the master serially scatters
        the task messages, every *surviving* slave computes, serially
        reports back, and all slaves then wait at the barrier for the next
        round.  Degraded rounds stay consistent by construction: a crashed
        slave is charged only the traffic that actually crossed the links,
        and the barrier still synchronizes every rank, so the clock vector
        never runs backwards.  Straggler faults multiply the afflicted
        slave's compute time by the backend-reported slowdown factor.

        The byte ledgers and slowdown factors come from the round's
        :class:`~repro.obs.telemetry.RoundTelemetry`; the returned per-slave
        compute charges are keyed by slave id (missing id = missing report).
        """
        m = self.instance.n_constraints
        if self.farm is None or clock is None or trace is None:
            return 0.0, 0.0, {r.slave_id: 0.0 for r in reports}

        master_rank = self.config.n_slaves
        t_round_start = clock.now
        task_nbytes = telemetry.task_nbytes
        report_nbytes = telemetry.report_nbytes
        slowdowns = telemetry.slowdowns

        # Scatter: the master's outgoing link serializes the sends.
        for k in sorted(task_nbytes):
            dt = self.farm.transfer_seconds(task_nbytes[k])
            t0 = clock.time_of(master_rank)
            clock.advance(master_rank, dt)
            trace.record(master_rank, EventKind.SEND, t0, t0 + dt, f"task->{k}")
            # Slave k cannot start before its task arrives.
            clock.wait_until(k, clock.time_of(master_rank))

        # Compute: each surviving slave burns its evaluation count (at its
        # own speed when the farm is heterogeneous; slower under straggle).
        slave_seconds: dict[int, float] = {}
        for report in reports:
            k = report.slave_id
            dt = self.farm.compute_seconds_on(k, report.evaluations, m)
            dt *= float(slowdowns.get(k, 1.0))
            t0 = clock.time_of(k)
            clock.advance(k, dt)
            trace.record(k, EventKind.COMPUTE, t0, t0 + dt, "round-search")
            slave_seconds[k] = dt

        # Gather: the master's incoming link serializes; it can only start
        # receiving from slave k once k has finished.
        comm_seconds = sum(
            self.farm.transfer_seconds(b) for b in task_nbytes.values()
        )
        for k in sorted(report_nbytes):
            dt = self.farm.transfer_seconds(report_nbytes[k])
            start = max(clock.time_of(master_rank), clock.time_of(k))
            clock.wait_until(master_rank, start)
            t0 = clock.time_of(master_rank)
            clock.advance(master_rank, dt)
            trace.record(k, EventKind.SEND, t0, t0 + dt, f"report<-{k}")
            comm_seconds += dt

        # Barrier: every slave waits for the master to finish the round.
        barrier_time = clock.time_of(master_rank)
        for k in range(self.config.n_slaves):
            idle = clock.wait_until(k, barrier_time)
            if idle > 0:
                trace.record(
                    k, EventKind.BARRIER_WAIT, barrier_time - idle, barrier_time, "barrier"
                )
        return clock.now - t_round_start, comm_seconds, slave_seconds

    # ------------------------------------------------------------------ #
    # Conformance tracing (Figure 2)
    # ------------------------------------------------------------------ #
    def enable_phase_trace(self) -> list[str]:
        self._phase_trace = []
        return self._phase_trace

    def _note(self, label: str) -> None:
        if self._phase_trace is not None:
            self._phase_trace.append(label)
