"""The master process (Figure 2) with farm-time accounting.

::

    Procedure Master_Process(P, Nb_search_it)
        Read and send to slaves problem data
        For i = 1 to Nb_search_it do
            Call SGP(P, Data_struc) and ISP(P, Data_struc)
            Send initial solutions and strategies to slaves
            Receive from each slave its B best solutions

Cooperation is switchable so that one driver realises all four evaluated
approaches (Table 2):

===========  =============  =================
variant      communicate    adapt_strategies
===========  =============  =================
ITS          no             no
CTS1         yes            no
CTS2         yes            yes
===========  =============  =================

(SEQ is the degenerate ``P = 1`` single-round case, provided by
``repro.variants.seq`` without a master.)

When a :class:`~repro.farm.FarmModel` is attached, the master charges every
scatter, compute burst, gather and barrier wait to a
:class:`~repro.farm.VirtualClock` and logs a :class:`~repro.farm.FarmTrace`;
"execution time" then means deterministic virtual seconds.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field

from ..core.construction import random_solution
from ..core.instance import MKPInstance
from ..core.solution import Solution
from ..core.strategy import StrategyBounds
from ..core.tabu_search import TabuSearchConfig
from ..core.termination import Budget, CancelToken
from ..farm.clock import VirtualClock
from ..farm.machine import FarmModel
from ..farm.trace import EventKind, FarmTrace
from ..obs.recorder import RunRecorder
from ..obs.telemetry import RoundTelemetry, collect_round_telemetry
from ..parallel.backends import Backend
from ..parallel.message import SlaveReport, SlaveTask
from ..rng import derive_rng, make_rng, random_seed_from
from .datastruct import SlaveEntry
from .isp import AlphaController, ISPConfig, generate_initial_solutions
from .result import ParallelRunResult, RoundStats
from .sgp import SGPConfig, update_strategies

__all__ = ["MasterConfig", "MasterProcess"]


@dataclass(frozen=True)
class MasterConfig:
    """Everything that parameterizes a master-driven run."""

    n_slaves: int = 16
    n_rounds: int = 10
    communicate: bool = True
    adapt_strategies: bool = True
    isp: ISPConfig = field(default_factory=ISPConfig)
    sgp: SGPConfig = field(default_factory=SGPConfig)
    bounds: StrategyBounds = field(default_factory=StrategyBounds)
    ts_config: TabuSearchConfig = field(default_factory=TabuSearchConfig)
    #: per-slave elite pool size retained by the master across rounds
    elite_capacity: int = 8
    #: adapt alpha dynamically (macro int/div; ignored if not communicate)
    dynamic_alpha: bool = True
    #: explicit starting strategies (one per slave); ``None`` = random from
    #: ``bounds``.  Lets experiments hand every slave a deliberately bad
    #: strategy and watch the SGP recover (the paper's §4.2 claim that the
    #: master "unloads the user from the task of finding the efficient TS
    #: parameters").
    initial_strategies: tuple = ()
    #: cap on the exponential respawn backoff: a slave that failed ``f``
    #: consecutive rounds sits out ``min(2**(f-1), max_backoff_rounds)``
    #: rounds before the master retasks it
    max_backoff_rounds: int = 8

    def __post_init__(self) -> None:
        if self.n_slaves < 1:
            raise ValueError("n_slaves must be >= 1")
        if self.n_rounds < 1:
            raise ValueError("n_rounds must be >= 1")
        if self.elite_capacity < 1:
            raise ValueError("elite_capacity must be >= 1")
        if self.max_backoff_rounds < 1:
            raise ValueError("max_backoff_rounds must be >= 1")
        if self.initial_strategies and len(self.initial_strategies) != self.n_slaves:
            raise ValueError(
                "initial_strategies must have one entry per slave "
                f"({self.n_slaves}); got {len(self.initial_strategies)}"
            )


class MasterProcess:
    """Runs the Figure-2 loop over a :class:`~repro.parallel.Backend`."""

    def __init__(
        self,
        instance: MKPInstance,
        config: MasterConfig,
        backend: Backend,
        rng_seed: int = 0,
        farm: FarmModel | None = None,
        variant_name: str | None = None,
        recorder: RunRecorder | None = None,
        cancel: CancelToken | None = None,
    ) -> None:
        if backend.n_slaves != config.n_slaves:
            raise ValueError(
                f"backend has {backend.n_slaves} slaves but config expects "
                f"{config.n_slaves}"
            )
        self.instance = instance
        self.config = config
        self.backend = backend
        self.rng_seed = int(rng_seed)
        self.rng = make_rng(self.rng_seed)
        self.farm = farm
        self.variant_name = variant_name or (
            "CTS2"
            if config.communicate and config.adapt_strategies
            else "CTS1"
            if config.communicate
            else "ITS"
        )
        self.alpha_controller = AlphaController(
            alpha=config.isp.alpha,
        )
        #: structured observability sink; the disabled default is a no-op,
        #: so recording is strictly opt-in and costs nothing otherwise
        self.recorder = recorder if recorder is not None else RunRecorder.disabled()
        #: cooperative cancellation, checked at every round boundary; the
        #: run ends early with the rounds completed so far and the backend
        #: left in its clean between-rounds state (service leasing relies
        #: on this — a cancelled job's backend is immediately reusable)
        self.cancel = cancel
        #: whether the last :meth:`run` ended early on a cancel request
        self.was_cancelled = False
        self._phase_trace: list[str] | None = None
        #: lazy per-instance LP-core selector (ISSUE-8): built on the first
        #: round in which some strategy asks for ``core_ratio < 1.0``, via
        #: the process-wide content-addressed cache — full-space runs never
        #: touch the LP (or scipy) at all
        self._core_selector = None

    def _fixation_pattern(self, strategy, slave_id: int):
        """The slave's fixation pattern for this round (None = full space).

        ``variant=slave_id`` rotates each slave's core boundary window so
        cooperating slaves free slightly different variable sets — the
        reduction layer's diversification, deterministic and RNG-free.
        """
        ratio = strategy.core_ratio
        if ratio >= 1.0:
            return None
        if self._core_selector is None:
            from ..core.reduction import shared_selector  # lazy: pulls scipy

            self._core_selector = shared_selector(self.instance)
        return self._core_selector.pattern(ratio, variant=slave_id)

    # ------------------------------------------------------------------ #
    def run(self, budget_per_slave: Budget | None = None) -> ParallelRunResult:
        """Execute ``n_rounds`` search iterations and return the result.

        ``budget_per_slave`` caps each slave's *total* work across all
        rounds; each round receives an equal share.  ``None`` runs purely
        structural budgets (``Nb_div``/``Nb_it`` loops only).
        """
        t_wall0 = time.perf_counter()
        cfg = self.config
        rec = self.recorder
        clock = VirtualClock(cfg.n_slaves + 1) if self.farm else None
        trace = FarmTrace() if self.farm else None

        # --- Fig. 2 line 1: distribute problem data ---------------------
        self._note("distribute_problem")
        self.backend.start(self.instance, cfg.ts_config)
        rec.run_start(
            variant=self.variant_name,
            n_slaves=cfg.n_slaves,
            n_rounds=cfg.n_rounds,
            seed=self.rng_seed,
            instance=str(getattr(self.instance, "name", "") or ""),
            instance_size=self.instance.size_label,
            communicate=cfg.communicate,
            adapt_strategies=cfg.adapt_strategies,
        )

        # --- initial entries: random solutions + random strategies ------
        entries: list[SlaveEntry] = []
        for k in range(cfg.n_slaves):
            strategy = (
                cfg.initial_strategies[k]
                if cfg.initial_strategies
                else cfg.bounds.random(self.rng)
            )
            entries.append(
                SlaveEntry(
                    slave_id=k,
                    strategy=strategy,
                    init_solution=random_solution(
                        self.instance, derive_rng(self.rng_seed, 0, k)
                    ),
                )
            )
        global_best: Solution = max(
            (e.init_solution for e in entries), key=lambda s: s.value
        )

        rounds: list[RoundStats] = []
        value_history: list[float] = [global_best.value]
        total_evaluations = 0
        bytes_sent = 0

        # --- slave health: consecutive failures + exponential backoff ---
        consecutive_failures = [0] * cfg.n_slaves
        resume_round = [0] * cfg.n_slaves
        fault_summary: Counter[str] = Counter()

        self.was_cancelled = False
        for round_idx in range(cfg.n_rounds):
            # --- cooperative cancel: only ever between rounds -----------
            if self.cancel is not None and self.cancel.cancelled:
                self.was_cancelled = True
                break
            # --- Fig. 2: Call SGP and ISP, send, receive ----------------
            round_budget = (
                None
                if budget_per_slave is None
                else budget_per_slave.scaled(1.0 / cfg.n_rounds)
            )
            tasks: list[SlaveTask | None] = []
            backoff_slaves = 0
            for entry in entries:
                k = entry.slave_id
                if round_idx < resume_round[k]:
                    # Still backing off after a failure: no task this round.
                    tasks.append(None)
                    backoff_slaves += 1
                    continue
                seed = random_seed_from(derive_rng(self.rng_seed, 1 + round_idx, k))
                tasks.append(
                    SlaveTask(
                        x_init=entry.init_solution,
                        strategy=entry.strategy,
                        budget=round_budget if round_budget is not None else Budget.unlimited(),
                        seed=seed,
                        round_index=round_idx,
                        seq_id=round_idx * cfg.n_slaves + k,
                        pattern=self._fixation_pattern(entry.strategy, k),
                    )
                )
            rec.round_start(
                round_idx,
                tasked_slaves=sum(1 for t in tasks if t is not None),
                backoff_slaves=backoff_slaves,
            )
            self._note("send_tasks")
            raw_reports = self.backend.run_round(tasks)
            self._note("receive_reports")

            # --- idempotent report handling -----------------------------
            # Accept at most one report per slave per round, keyed by the
            # (round, seq) ids the task carried; duplicated deliveries and
            # stale (delayed) reports from earlier rounds are discarded, so
            # no round ever double-counts a report.
            accepted: dict[int, SlaveReport] = {}
            duplicate_reports = 0
            stale_reports = 0
            for report in raw_reports:
                k = report.slave_id
                expected_seq = round_idx * cfg.n_slaves + k
                if (
                    not 0 <= k < cfg.n_slaves
                    or report.round_index != round_idx
                    or report.seq_id != expected_seq
                ):
                    stale_reports += 1
                    continue
                if k in accepted:
                    duplicate_reports += 1
                    continue
                accepted[k] = report
            reports = [accepted[k] for k in sorted(accepted)]

            # --- measured wall telemetry + farm time accounting ---------
            # One typed record per round, emitted by the backend itself —
            # the recorder stream gets it unconditionally, so wall-clock
            # runs without a farm model keep their phase splits too (the
            # old path only kept them when a FarmTrace existed).
            telemetry = collect_round_telemetry(self.backend, round_idx)
            rec.round_telemetry(telemetry)
            round_seconds, comm_seconds, slave_seconds = self._charge_round(
                clock, trace, reports, telemetry
            )
            bytes_sent += telemetry.total_bytes
            phase_wall = dict(telemetry.phase_seconds)
            gather_idle = dict(telemetry.gather_idle_s)
            if trace is not None and phase_wall:
                trace.record_wall_phases(
                    round_idx, phase_wall, gather_idle, telemetry.master_wait_s
                )

            # --- fold results into the data structure -------------------
            improved_slaves = 0
            failed_slaves = 0
            for entry in entries:
                k = entry.slave_id
                report = accepted.get(k)
                if report is None:
                    if tasks[k] is not None:
                        # Tasked but never (validly) reported: crashed slave
                        # or lost message.  Enter/extend exponential backoff.
                        consecutive_failures[k] += 1
                        backoff = min(
                            2 ** (consecutive_failures[k] - 1), cfg.max_backoff_rounds
                        )
                        resume_round[k] = round_idx + backoff
                        failed_slaves += 1
                    entry.stagnant_rounds += 1
                    continue
                consecutive_failures[k] = 0
                changed = entry.absorb_elite(
                    [report.best, *report.elite], cfg.elite_capacity
                )
                if changed:
                    entry.stagnant_rounds = 0
                    improved_slaves += 1
                else:
                    entry.stagnant_rounds += 1
            # Degraded-mode monotonicity: the incumbent only ever ratchets
            # up, even when a round yields zero surviving reports.
            global_improved = False
            if reports:
                round_best = max(reports, key=lambda r: r.best.value).best
                global_improved = round_best.value > global_best.value
                if global_improved:
                    global_best = round_best
            total_evaluations += sum(r.evaluations for r in reports)
            value_history.append(global_best.value)
            fault_summary["failed"] += failed_slaves
            fault_summary["duplicates"] += duplicate_reports
            fault_summary["stale"] += stale_reports
            if failed_slaves or backoff_slaves:
                fault_summary["degraded_rounds"] += 1
            if failed_slaves or backoff_slaves or duplicate_reports or stale_reports:
                rec.faults(
                    round_idx,
                    failed_slaves=failed_slaves,
                    backoff_slaves=backoff_slaves,
                    duplicate_reports=duplicate_reports,
                    stale_reports=stale_reports,
                )

            # --- SGP -----------------------------------------------------
            sgp_actions: Counter[str] = Counter()
            if cfg.adapt_strategies:
                self._note("sgp")
                decisions = update_strategies(
                    entries,
                    reports,
                    cfg.bounds,
                    cfg.sgp,
                    self.instance.n_items,
                    self.rng,
                    allow_missing=True,
                )
                sgp_actions = Counter(d.action for d in decisions)

            # --- ISP -----------------------------------------------------
            isp_rules: Counter[str] = Counter()
            if cfg.communicate:
                self._note("isp")
                if cfg.dynamic_alpha:
                    alpha = self.alpha_controller.update(global_improved)
                else:
                    alpha = cfg.isp.alpha
                isp_config = ISPConfig(
                    alpha=alpha, stagnation_limit=cfg.isp.stagnation_limit
                )
                decisions = generate_initial_solutions(
                    entries, global_best, self.instance, isp_config, self.rng
                )
                isp_rules = Counter(d.rule for d in decisions)
            else:
                # Independent threads: each continues from its own best.
                for entry in entries:
                    own = entry.best
                    if own is not None:
                        entry.init_solution = own
                isp_rules = Counter({"keep": cfg.n_slaves})

            if cfg.adapt_strategies:
                rec.sgp(round_idx, dict(sgp_actions))
            rec.isp(round_idx, dict(isp_rules))
            rounds.append(
                RoundStats(
                    round_index=round_idx,
                    best_value=global_best.value,
                    round_virtual_seconds=round_seconds,
                    slave_virtual_seconds=slave_seconds,
                    communication_seconds=comm_seconds,
                    evaluations=sum(r.evaluations for r in reports),
                    improved_slaves=improved_slaves,
                    isp_rules=dict(isp_rules),
                    sgp_actions=dict(sgp_actions),
                    failed_slaves=failed_slaves,
                    backoff_slaves=backoff_slaves,
                    duplicate_reports=duplicate_reports,
                    stale_reports=stale_reports,
                    phase_wall_seconds=phase_wall,
                    gather_idle_s=gather_idle,
                )
            )
            rec.round_end(
                round_idx,
                best_value=global_best.value,
                evaluations=rounds[-1].evaluations,
                improved_slaves=improved_slaves,
                n_reports=len(reports),
            )

            # Early exit once the target objective is reached (time-to-
            # target experiments) — launching further rounds would only
            # inflate the reported makespan.
            if (
                budget_per_slave is not None
                and budget_per_slave.target_value is not None
                and global_best.value >= budget_per_slave.target_value
            ):
                break

        result = ParallelRunResult(
            variant=self.variant_name,
            best=global_best,
            rounds=rounds,
            total_evaluations=total_evaluations,
            virtual_seconds=clock.now if clock else 0.0,
            wall_seconds=time.perf_counter() - t_wall0,
            n_slaves=cfg.n_slaves,
            trace=trace,
            bytes_sent=bytes_sent,
            value_history=value_history,
            fault_summary={k: v for k, v in fault_summary.items() if v},
        )
        rec.run_end(
            best_value=result.best.value,
            total_evaluations=result.total_evaluations,
            n_rounds=result.n_rounds,
            wall_seconds=result.wall_seconds,
            virtual_seconds=result.virtual_seconds,
            bytes_sent=result.bytes_sent,
            fault_summary=result.fault_summary,
        )
        return result

    # ------------------------------------------------------------------ #
    def _charge_round(
        self,
        clock: VirtualClock | None,
        trace: FarmTrace | None,
        reports: list[SlaveReport],
        telemetry: RoundTelemetry,
    ) -> tuple[float, float, dict[int, float]]:
        """Charge one round to the virtual clock; returns time aggregates.

        Sequence per the synchronous scheme: the master serially scatters
        the task messages, every *surviving* slave computes, serially
        reports back, and all slaves then wait at the barrier for the next
        round.  Degraded rounds stay consistent by construction: a crashed
        slave is charged only the traffic that actually crossed the links,
        and the barrier still synchronizes every rank, so the clock vector
        never runs backwards.  Straggler faults multiply the afflicted
        slave's compute time by the backend-reported slowdown factor.

        The byte ledgers and slowdown factors come from the round's
        :class:`~repro.obs.telemetry.RoundTelemetry`; the returned per-slave
        compute charges are keyed by slave id (missing id = missing report).
        """
        m = self.instance.n_constraints
        if self.farm is None or clock is None or trace is None:
            return 0.0, 0.0, {r.slave_id: 0.0 for r in reports}

        master_rank = self.config.n_slaves
        t_round_start = clock.now
        task_nbytes = telemetry.task_nbytes
        report_nbytes = telemetry.report_nbytes
        slowdowns = telemetry.slowdowns

        # Scatter: the master's outgoing link serializes the sends.
        for k in sorted(task_nbytes):
            dt = self.farm.transfer_seconds(task_nbytes[k])
            t0 = clock.time_of(master_rank)
            clock.advance(master_rank, dt)
            trace.record(master_rank, EventKind.SEND, t0, t0 + dt, f"task->{k}")
            # Slave k cannot start before its task arrives.
            clock.wait_until(k, clock.time_of(master_rank))

        # Compute: each surviving slave burns its evaluation count (at its
        # own speed when the farm is heterogeneous; slower under straggle).
        slave_seconds: dict[int, float] = {}
        for report in reports:
            k = report.slave_id
            dt = self.farm.compute_seconds_on(k, report.evaluations, m)
            dt *= float(slowdowns.get(k, 1.0))
            t0 = clock.time_of(k)
            clock.advance(k, dt)
            trace.record(k, EventKind.COMPUTE, t0, t0 + dt, "round-search")
            slave_seconds[k] = dt

        # Gather: the master's incoming link serializes; it can only start
        # receiving from slave k once k has finished.
        comm_seconds = sum(
            self.farm.transfer_seconds(b) for b in task_nbytes.values()
        )
        for k in sorted(report_nbytes):
            dt = self.farm.transfer_seconds(report_nbytes[k])
            start = max(clock.time_of(master_rank), clock.time_of(k))
            clock.wait_until(master_rank, start)
            t0 = clock.time_of(master_rank)
            clock.advance(master_rank, dt)
            trace.record(k, EventKind.SEND, t0, t0 + dt, f"report<-{k}")
            comm_seconds += dt

        # Barrier: every slave waits for the master to finish the round.
        barrier_time = clock.time_of(master_rank)
        for k in range(self.config.n_slaves):
            idle = clock.wait_until(k, barrier_time)
            if idle > 0:
                trace.record(
                    k, EventKind.BARRIER_WAIT, barrier_time - idle, barrier_time, "barrier"
                )
        return clock.now - t_round_start, comm_seconds, slave_seconds

    # ------------------------------------------------------------------ #
    # Conformance tracing (Figure 2)
    # ------------------------------------------------------------------ #
    def enable_phase_trace(self) -> list[str]:
        self._phase_trace = []
        return self._phase_trace

    def _note(self, label: str) -> None:
        if self._phase_trace is not None:
            self._phase_trace.append(label)
