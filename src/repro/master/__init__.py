"""Master process: per-slave data structure, ISP, SGP, Figure-2 loop."""

from .datastruct import INITIAL_SCORE, SlaveEntry
from .isp import AlphaController, ISPConfig, ISPDecision, generate_initial_solutions
from .master import MasterConfig, MasterProcess
from .result import ParallelRunResult, RoundStats
from .sgp import SGPConfig, SGPDecision, classify_dispersion, update_strategies

__all__ = [
    "SlaveEntry",
    "INITIAL_SCORE",
    "ISPConfig",
    "ISPDecision",
    "AlphaController",
    "generate_initial_solutions",
    "SGPConfig",
    "SGPDecision",
    "classify_dispersion",
    "update_strategies",
    "MasterConfig",
    "MasterProcess",
    "ParallelRunResult",
    "RoundStats",
]
