"""SGP — the Strategy Generation Procedure (§4.2).

Scoring: "Initially, the parameter score_i is set to a predetermined value
(four in the actual version).  At each search iteration, score_i is
incremented if the final solution cost returned by the slave i (C'_i) is
higher than the initial solution cost (C_i).  Otherwise score_i is
decremented.  Once score_i reaches the value 0, st_i is removed and new
values are affected to each parameter."

Regeneration: "These new values may be chosen randomly or in a clever manner
by using the B best solutions returned by the slave i.  If the B best
solutions found by a slave are in close areas [small Hamming dispersion]
... it is interesting to increment lt_size and nb_drop and to reduce the
nb_it parameter [diversify].  In the opposite, if the B best solutions are
very far ones another, the master will force slave processors to do
intensification ... by reducing the values of lt_size and nb_drop and
incrementing nb_it."

The dispersion statistic is the mean pairwise Hamming distance over each
entry's elite set, computed on the solutions' memoized packed-bitset words
(XOR + popcount over ``n/64``-word rows; see
:func:`repro.core.solution.mean_pairwise_distance`) — the number is
bit-identical to the dense elementwise version, so every ``close``/``far``
classification below is unaffected by the packed representation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.solution import mean_pairwise_distance
from ..core.strategy import Strategy, StrategyBounds
from ..parallel.message import SlaveReport
from .datastruct import INITIAL_SCORE, SlaveEntry

__all__ = ["SGPConfig", "update_strategies", "SGPDecision", "classify_dispersion"]


@dataclass(frozen=True)
class SGPConfig:
    """Tunables of the SGP.

    Dispersion classification: elite sets with mean pairwise Hamming
    distance below ``close_fraction * n`` count as "close areas", above
    ``far_fraction * n`` as "very far"; in between the regeneration falls
    back to the paper's random option.
    """

    initial_score: int = INITIAL_SCORE
    close_fraction: float = 0.10
    far_fraction: float = 0.30
    mutation_intensity: float = 0.5

    def __post_init__(self) -> None:
        if self.initial_score < 1:
            raise ValueError("initial_score must be >= 1")
        if not 0.0 < self.close_fraction <= self.far_fraction <= 1.0:
            raise ValueError(
                "require 0 < close_fraction <= far_fraction <= 1; got "
                f"{self.close_fraction}, {self.far_fraction}"
            )
        if not 0.0 < self.mutation_intensity <= 1.0:
            raise ValueError("mutation_intensity must be in (0, 1]")


@dataclass(frozen=True)
class SGPDecision:
    """Audit record of one slave's SGP outcome."""

    slave_id: int
    action: str  # "keep" | "diversify" | "intensify" | "random"
    score_after: int
    strategy: Strategy
    dispersion: float


def classify_dispersion(dispersion: float, n_items: int, config: SGPConfig) -> str:
    """Map an elite-set dispersion to the SGP's three regeneration modes."""
    if n_items <= 0:
        raise ValueError("n_items must be positive")
    fraction = dispersion / n_items
    if fraction < config.close_fraction:
        return "diversify"
    if fraction > config.far_fraction:
        return "intensify"
    return "random"


def update_strategies(
    entries: list[SlaveEntry],
    reports: list[SlaveReport],
    bounds: StrategyBounds,
    config: SGPConfig,
    n_items: int,
    rng: np.random.Generator,
    *,
    allow_missing: bool = False,
) -> list[SGPDecision]:
    """Score every slave and regenerate exhausted strategies; in place.

    By default ``reports`` must cover every entry (one report per slave).
    Degraded mode (``allow_missing=True``, used by the hardened master when
    slaves crash or reports are lost) scores only the slaves that actually
    reported; absent slaves keep their score and strategy untouched and are
    recorded with action ``"absent"``.
    """
    by_id = {report.slave_id: report for report in reports}
    known = {entry.slave_id for entry in entries}
    orphans = [sid for sid in by_id if sid not in known]
    if orphans:
        raise ValueError(f"misaligned report: no entry for slave id(s) {orphans}")
    if not allow_missing and len(by_id) != len(entries):
        raise ValueError(
            f"entries/reports length mismatch: {len(entries)} vs {len(reports)}"
        )
    decisions: list[SGPDecision] = []
    for entry in entries:
        report = by_id.get(entry.slave_id)
        if report is None:
            # Degraded round: the slave produced nothing to score.
            decisions.append(
                SGPDecision(entry.slave_id, "absent", entry.score, entry.strategy, 0.0)
            )
            continue
        entry.score += 1 if report.improved else -1
        dispersion = mean_pairwise_distance(entry.best_solutions)
        if entry.score > 0:
            decisions.append(
                SGPDecision(entry.slave_id, "keep", entry.score, entry.strategy, dispersion)
            )
            continue
        # Score exhausted: regenerate the strategy.
        if len(entry.best_solutions) >= 2:
            action = classify_dispersion(dispersion, n_items, config)
        else:
            action = "random"
        if action == "diversify":
            new_strategy = entry.strategy.diversified(bounds, config.mutation_intensity)
        elif action == "intensify":
            new_strategy = entry.strategy.intensified(bounds, config.mutation_intensity)
        else:
            new_strategy = bounds.random(rng)
        entry.strategy = new_strategy
        entry.score = config.initial_score
        entry.regenerations += 1
        decisions.append(
            SGPDecision(entry.slave_id, action, entry.score, new_strategy, dispersion)
        )
    return decisions
