"""The master's per-slave data structure (§4.2).

"The data structure used by the master process is an array of P entries.
The entry i corresponds to informations given to or by the slave processor i
and contains four items: the search strategy (three values) (St_i), the
initial solution used by the slave (S_i), the B best solutions found by the
slave i (best_i), and the score of the slave i (score_i)."

:class:`SlaveEntry` is that entry, plus the two counters the ISP/SGP rules
need (rounds since the slave's best last changed, and the round the score
was last reset) — bookkeeping the paper implies but does not name.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.solution import Solution
from ..core.strategy import Strategy

__all__ = ["SlaveEntry", "INITIAL_SCORE"]

#: "Initially, the parameter score_i is set to a predetermined value (four
#: in the actual version)."
INITIAL_SCORE = 4


@dataclass
class SlaveEntry:
    """Master-side record for one slave processor."""

    slave_id: int
    strategy: Strategy
    init_solution: Solution
    best_solutions: list[Solution] = field(default_factory=list)
    score: int = INITIAL_SCORE
    #: rounds since this slave's best solution last changed (ISP rule 2)
    stagnant_rounds: int = 0
    #: total strategy regenerations (diagnostics for the A3/A6 ablations)
    regenerations: int = 0

    @property
    def best(self) -> Solution | None:
        """The slave's best solution so far (``best_solutions`` is sorted)."""
        return self.best_solutions[0] if self.best_solutions else None

    def absorb_elite(self, elite: list[Solution], capacity: int) -> bool:
        """Merge a round's elite list into the entry; True if best improved.

        Keeps the top ``capacity`` distinct solutions across rounds so the
        SGP's dispersion statistic reflects the slave's recent history.
        """
        previous_best = self.best.value if self.best is not None else float("-inf")
        # Dedup keys are the packed 1-bit frames (memoized on the solutions)
        # rather than the dense int8 bytes: 8× smaller keys, and solutions
        # that crossed the wire already carry the packing.
        seen = {s.packed_bytes() for s in self.best_solutions}
        for sol in elite:
            key = sol.packed_bytes()
            if key not in seen:
                self.best_solutions.append(sol)
                seen.add(key)
        self.best_solutions.sort(key=lambda s: -s.value)
        del self.best_solutions[capacity:]
        new_best = self.best.value if self.best is not None else float("-inf")
        return new_best > previous_best
