"""Tabu search with Reverse Elimination Method list management.

§4.1: "Among these methods, we quote the Reverse Elimination Method (REM)
[Dammeyer & Voss].  This method is based on the building of a list
containing all the moves executed from the initial configuration (the
running list).  In spite of its good performances for a set of problems,
this method has the drawback of having a time overhead proportional to the
number of executed iterations." — which is exactly why the paper prefers
parallel dynamic tuning.  We implement REM so the A7 panel can measure that
linear-in-iterations overhead.

Mechanism (Glover's residual-cancellation sequence): keep the *running
list* of all attribute flips.  Before choosing move ``t+1``, walk the
running list backwards maintaining the symmetric-difference set ("residual
set") between the current solution and each previously visited solution.
Whenever the residual set shrinks to a single attribute, flipping exactly
that attribute would recreate a visited solution — so that attribute is
tabu for the next move.  This yields *exact* cycle prevention (necessary
and sufficient one-step lookahead), at O(t) work per iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.construction import random_solution
from ..core.instance import MKPInstance
from ..core.moves import MoveEngine
from ..core.solution import SearchState, Solution
from ..core.tabu_list import TabuList
from ..core.termination import Budget
from ..rng import make_rng

__all__ = ["REMConfig", "REMResult", "rem_tabu_search"]


@dataclass(frozen=True)
class REMConfig:
    """REM knobs. ``nb_drop`` controls the paper-style compound move."""

    nb_drop: int = 1
    #: cap on the backward trace per iteration (None = exact/unbounded,
    #: the authentic linear-overhead behaviour)
    trace_limit: int | None = None

    def __post_init__(self) -> None:
        if self.nb_drop < 1:
            raise ValueError("nb_drop must be >= 1")
        if self.trace_limit is not None and self.trace_limit < 1:
            raise ValueError("trace_limit must be >= 1 or None")


@dataclass
class REMResult:
    best: Solution
    evaluations: int
    moves: int
    running_list_length: int
    #: total backward-trace steps (the REM overhead the paper criticizes)
    trace_steps: int


def _reverse_elimination(
    running_list: list[list[int]],
    trace_limit: int | None,
) -> tuple[set[int], int]:
    """One backward sweep; returns (tabu attributes, trace steps done).

    The residual set starts empty (distance of the current solution to
    itself) and accumulates flips walking back in time; a singleton
    residual set marks its lone attribute tabu.
    """
    residual: set[int] = set()
    tabu: set[int] = set()
    steps = 0
    for flips in reversed(running_list):
        for attr in flips:
            if attr in residual:
                residual.discard(attr)
            else:
                residual.add(attr)
        steps += 1
        if len(residual) == 1:
            tabu.add(next(iter(residual)))
        if trace_limit is not None and steps >= trace_limit:
            break
    return tabu, steps


def rem_tabu_search(
    instance: MKPInstance,
    budget: Budget,
    *,
    rng: int | None | np.random.Generator = None,
    config: REMConfig | None = None,
    x_init: Solution | None = None,
) -> REMResult:
    """Run TS with REM-managed tabu status until the budget is spent."""
    gen = make_rng(rng)
    config = config or REMConfig()
    budget.start()
    if x_init is None:
        x_init = random_solution(instance, gen)
    state = SearchState.from_solution(instance, x_init)
    # Tenure-1 list: REM decides tabu status itself each iteration; we use
    # the TabuList purely as the per-iteration attribute mask the move
    # engine consults.
    tabu = TabuList(instance.n_items, tenure=1)
    engine = MoveEngine(state, tabu, gen)
    best = state.snapshot()

    running_list: list[list[int]] = []
    moves = 0
    trace_steps = 0

    while not budget.exhausted(
        evaluations=engine.evaluations, moves=moves, best_value=best.value
    ):
        record = engine.apply(config.nb_drop, best.value)
        moves += 1
        if record.hamming_step == 0:
            break
        running_list.append(record.touched)
        if state.value > best.value:
            best = state.snapshot()
        # REM sweep: recompute next iteration's tabu set from scratch.
        tabu.tick()
        forbidden, steps = _reverse_elimination(running_list, config.trace_limit)
        trace_steps += steps
        if forbidden:
            tabu.make_tabu(np.fromiter(forbidden, dtype=np.intp, count=len(forbidden)))

    return REMResult(
        best=best,
        evaluations=engine.evaluations,
        moves=moves,
        running_list_length=len(running_list),
        trace_steps=trace_steps,
    )
