"""Simulated annealing baseline for the 0–1 MKP.

A standard feasible-space SA over the flip neighborhood:

* a *flip* of a packed item is a drop; of a free item, an add (only offered
  when it fits — the walk never leaves the feasible region);
* acceptance by the Metropolis rule on the objective difference;
* geometric cooling from an initial temperature calibrated to accept a
  target fraction of random deteriorations.

SA was *the* late-80s metaheuristic the TS literature positioned itself
against; experiment A7 reports it next to the paper's approaches at equal
evaluation budgets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.construction import random_solution
from ..core.instance import MKPInstance
from ..core.solution import SearchState, Solution
from ..core.termination import Budget
from ..rng import make_rng

__all__ = ["SAConfig", "SAResult", "simulated_annealing"]


@dataclass(frozen=True)
class SAConfig:
    """Cooling-schedule parameters."""

    initial_acceptance: float = 0.5
    cooling: float = 0.995
    steps_per_temperature: int = 50
    min_temperature: float = 1e-3

    def __post_init__(self) -> None:
        if not 0.0 < self.initial_acceptance < 1.0:
            raise ValueError("initial_acceptance must be in (0, 1)")
        if not 0.0 < self.cooling < 1.0:
            raise ValueError("cooling must be in (0, 1)")
        if self.steps_per_temperature < 1:
            raise ValueError("steps_per_temperature must be >= 1")
        if self.min_temperature <= 0:
            raise ValueError("min_temperature must be positive")


@dataclass
class SAResult:
    best: Solution
    evaluations: int
    accepted: int
    rejected: int


def _initial_temperature(instance: MKPInstance, config: SAConfig) -> float:
    """Temperature at which a typical single-item deterioration is accepted
    with probability ``initial_acceptance``."""
    mean_profit = float(instance.profits.mean())
    return -mean_profit / np.log(config.initial_acceptance)


def simulated_annealing(
    instance: MKPInstance,
    budget: Budget,
    *,
    rng: int | None | np.random.Generator = None,
    config: SAConfig | None = None,
    x_init: Solution | None = None,
) -> SAResult:
    """Run SA until the budget is exhausted (or the system freezes)."""
    gen = make_rng(rng)
    config = config or SAConfig()
    budget.start()
    if x_init is None:
        x_init = random_solution(instance, gen)
    state = SearchState.from_solution(instance, x_init)
    best = state.snapshot()
    temperature = _initial_temperature(instance, config)
    evaluations = 0
    accepted = 0
    rejected = 0
    n = instance.n_items

    while temperature > config.min_temperature:
        for _ in range(config.steps_per_temperature):
            if budget.exhausted(
                evaluations=evaluations, moves=accepted + rejected, best_value=best.value
            ):
                return SAResult(best, evaluations, accepted, rejected)
            j = int(gen.integers(0, n))
            evaluations += 1
            if state.x[j]:
                delta = -float(instance.profits[j])
                feasible = True
            else:
                col = instance.weights[:, j]
                feasible = bool(np.all(col <= state.slack + 1e-9))
                delta = float(instance.profits[j])
            if not feasible:
                rejected += 1
                continue
            if delta >= 0 or gen.random() < np.exp(delta / temperature):
                state.flip(j)
                accepted += 1
                if state.value > best.value:
                    best = state.snapshot()
            else:
                rejected += 1
        temperature *= config.cooling
    return SAResult(best, evaluations, accepted, rejected)
