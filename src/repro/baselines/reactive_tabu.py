"""Reactive tabu search (Battiti & Tecchiolli, ORSA JoC 1994).

§4.1 discusses this as the main *sequential* alternative to the paper's
parallel dynamic tuning: "it consists in using aside the classic Tabu list
another data structure (hashing table) which contains objective function
values of all visited solutions.  The using of hashing function for MKP of
great size will produce a great number of collisions and this will lead to
an important overhead."

We implement the genuine mechanism so the A7 baseline panel can measure
that trade-off directly:

* every visited solution is hashed (full 0/1 vector digest — collision-free
  up to hash width, with the table size tracked as the overhead metric);
* a revisit multiplies the tenure by ``increase`` (reaction);
* after ``decrease_after`` moves without any revisit the tenure is shrunk
  by ``decrease`` (forgetting);
* ``escape_after`` revisits of *often-repeated* solutions trigger an escape:
  a random walk of ``escape_steps`` forced moves.

The move structure reuses the paper's own Drop/Add engine so that the only
difference measured is the tenure-control policy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.construction import random_solution
from ..core.instance import MKPInstance
from ..core.moves import MoveEngine
from ..core.solution import SearchState, Solution
from ..core.tabu_list import TabuList
from ..core.termination import Budget
from ..rng import make_rng

__all__ = ["ReactiveConfig", "ReactiveResult", "reactive_tabu_search"]


@dataclass(frozen=True)
class ReactiveConfig:
    """Reaction parameters (defaults follow Battiti & Tecchiolli)."""

    initial_tenure: int = 8
    increase: float = 1.2
    decrease: float = 0.9
    decrease_after: int = 50
    escape_after: int = 3
    escape_steps: int = 5
    max_tenure_fraction: float = 0.5
    nb_drop: int = 1

    def __post_init__(self) -> None:
        if self.initial_tenure < 1:
            raise ValueError("initial_tenure must be >= 1")
        if self.increase <= 1.0:
            raise ValueError("increase must be > 1")
        if not 0.0 < self.decrease < 1.0:
            raise ValueError("decrease must be in (0, 1)")
        if self.decrease_after < 1 or self.escape_after < 1 or self.escape_steps < 1:
            raise ValueError("counters must be >= 1")
        if not 0.0 < self.max_tenure_fraction <= 1.0:
            raise ValueError("max_tenure_fraction must be in (0, 1]")
        if self.nb_drop < 1:
            raise ValueError("nb_drop must be >= 1")


@dataclass
class ReactiveResult:
    best: Solution
    evaluations: int
    moves: int
    revisits: int
    escapes: int
    final_tenure: int
    hash_table_size: int


def reactive_tabu_search(
    instance: MKPInstance,
    budget: Budget,
    *,
    rng: int | None | np.random.Generator = None,
    config: ReactiveConfig | None = None,
    x_init: Solution | None = None,
) -> ReactiveResult:
    """Run reactive TS until the budget is exhausted."""
    gen = make_rng(rng)
    config = config or ReactiveConfig()
    budget.start()
    if x_init is None:
        x_init = random_solution(instance, gen)
    state = SearchState.from_solution(instance, x_init)
    tabu = TabuList(instance.n_items, config.initial_tenure)
    engine = MoveEngine(state, tabu, gen)
    best = state.snapshot()

    visited: dict[bytes, int] = {}  # solution digest -> visit count
    moves = 0
    revisits = 0
    escapes = 0
    moves_since_reaction = 0
    max_tenure = max(2, int(config.max_tenure_fraction * instance.n_items))

    while not budget.exhausted(
        evaluations=engine.evaluations, moves=moves, best_value=best.value
    ):
        record = engine.apply(config.nb_drop, best.value)
        moves += 1
        if record.hamming_step == 0:
            break
        if state.value > best.value:
            best = state.snapshot()
        tabu.tick()
        if record.touched:
            tabu.make_tabu(np.asarray(record.touched, dtype=np.intp))

        digest = state.x.tobytes()
        count = visited.get(digest, 0) + 1
        visited[digest] = count
        if count > 1:
            # Reaction: a revisit means the tenure is too short.
            revisits += 1
            moves_since_reaction = 0
            new_tenure = min(max_tenure, max(tabu.tenure + 1, int(tabu.tenure * config.increase)))
            tabu.set_tenure(new_tenure)
            if count >= config.escape_after:
                # Escape: forced random diversification walk.
                escapes += 1
                for _ in range(config.escape_steps):
                    packed = state.packed_items()
                    if packed.size == 0:
                        break
                    j = int(gen.choice(packed))
                    state.drop(j)
                    tabu.make_tabu(np.asarray([j], dtype=np.intp), extra_tenure=config.escape_steps)
                engine.add_step(best.value)
                visited[state.x.tobytes()] = visited.get(state.x.tobytes(), 0)
        else:
            moves_since_reaction += 1
            if moves_since_reaction >= config.decrease_after:
                moves_since_reaction = 0
                tabu.set_tenure(max(1, int(tabu.tenure * config.decrease)))

    return ReactiveResult(
        best=best,
        evaluations=engine.evaluations,
        moves=moves,
        revisits=revisits,
        escapes=escapes,
        final_tenure=tabu.tenure,
        hash_table_size=len(visited),
    )
