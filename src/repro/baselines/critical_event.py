"""Critical-event tabu search (Glover & Kochenberger, 1996).

The paper's reference [6] and the source of its strategic-oscillation
intensification; implemented as an A7 baseline.

Mechanism: the search *oscillates* across the feasibility boundary in
alternating constructive and destructive phases.

* **Constructive phase**: add best-ratio non-tabu items, continuing
  ``span`` steps *past* the last feasible solution (into infeasibility).
* **Critical event**: the last feasible solution crossed on the way out is
  recorded — these boundary solutions are the algorithm's candidates, and
  the best one drives the incumbent.
* **Destructive phase**: drop worst-ratio non-tabu items until feasible
  again, then ``span`` more.
* Recency tabu: an item added (dropped) in phase ``t`` may not be dropped
  (added) for ``tenure`` phases.  The span is adapted: increased after
  phases without improvement (explore deeper), reset to 1 on improvement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.construction import random_solution
from ..core.instance import MKPInstance
from ..core.solution import SearchState, Solution
from ..core.tabu_list import TabuList
from ..core.termination import Budget
from ..rng import make_rng

__all__ = ["CriticalEventConfig", "CriticalEventResult", "critical_event_tabu_search"]


@dataclass(frozen=True)
class CriticalEventConfig:
    tenure: int = 5
    initial_span: int = 1
    max_span: int = 6
    span_increase_after: int = 4

    def __post_init__(self) -> None:
        if self.tenure < 0:
            raise ValueError("tenure must be >= 0")
        if not 1 <= self.initial_span <= self.max_span:
            raise ValueError("require 1 <= initial_span <= max_span")
        if self.span_increase_after < 1:
            raise ValueError("span_increase_after must be >= 1")


@dataclass
class CriticalEventResult:
    best: Solution
    evaluations: int
    critical_events: int
    phases: int


def critical_event_tabu_search(
    instance: MKPInstance,
    budget: Budget,
    *,
    rng: int | None | np.random.Generator = None,
    config: CriticalEventConfig | None = None,
    x_init: Solution | None = None,
) -> CriticalEventResult:
    """Run critical-event TS until the budget is exhausted."""
    gen = make_rng(rng)
    config = config or CriticalEventConfig()
    budget.start()
    if x_init is None:
        x_init = random_solution(instance, gen)
    state = SearchState.from_solution(instance, x_init)
    tabu = TabuList(instance.n_items, config.tenure)
    best = state.snapshot()
    evaluations = 0
    critical_events = 0
    phases = 0
    span = config.initial_span
    stall = 0
    density = instance.density

    def pick_add() -> int | None:
        nonlocal evaluations
        free = state.free_items()
        if free.size == 0:
            return None
        candidates = tabu.admissible(free)
        if candidates.size == 0:
            candidates = free
        evaluations += int(candidates.size)
        jitter = gen.random(candidates.size) * 1e-9
        return int(candidates[int(np.argmin(density[candidates] + jitter))])

    def pick_drop() -> int | None:
        nonlocal evaluations
        packed = state.packed_items()
        if packed.size == 0:
            return None
        candidates = tabu.admissible(packed)
        if candidates.size == 0:
            candidates = packed
        evaluations += int(candidates.size)
        jitter = gen.random(candidates.size) * 1e-9
        return int(candidates[int(np.argmax(density[candidates] + jitter))])

    while not budget.exhausted(
        evaluations=evaluations, moves=phases, best_value=best.value
    ):
        phases += 1
        # --- constructive phase: to the boundary, then `span` beyond -----
        last_feasible: Solution | None = None
        over = 0
        while over < span:
            j = pick_add()
            if j is None:
                break
            if state.is_feasible:
                last_feasible = state.snapshot()
            state.add(j)
            tabu.tick()
            tabu.make_tabu(np.asarray([j], dtype=np.intp))
            if not state.is_feasible:
                over += 1
        if state.is_feasible:
            last_feasible = state.snapshot()
        if last_feasible is not None:
            # Critical event: record the boundary solution.
            critical_events += 1
            if last_feasible.value > best.value:
                best = last_feasible
                stall = 0
                span = config.initial_span
            else:
                stall += 1
        # --- destructive phase: back to feasibility, then `span` more ----
        under = 0
        while (not state.is_feasible or under < span) and state.packed_items().size > 0:
            j = pick_drop()
            if j is None:
                break
            state.drop(j)
            tabu.tick()
            tabu.make_tabu(np.asarray([j], dtype=np.intp))
            if state.is_feasible:
                under += 1
        if state.is_feasible and state.value > best.value:
            best = state.snapshot()
            stall = 0
            span = config.initial_span
        if stall >= config.span_increase_after:
            span = min(config.max_span, span + 1)
            stall = 0

    return CriticalEventResult(
        best=best,
        evaluations=evaluations,
        critical_events=critical_events,
        phases=phases,
    )
