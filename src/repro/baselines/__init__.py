"""Baseline algorithms the paper discusses or that its lineage compares to.

Every baseline consumes the same :class:`~repro.core.termination.Budget`
abstraction as the paper's own threads, so experiment A7 compares them at
strictly equal candidate-evaluation budgets.
"""

from .critical_event import (
    CriticalEventConfig,
    CriticalEventResult,
    critical_event_tabu_search,
)
from .greedy import density_greedy, toyoda_greedy
from .reactive_tabu import ReactiveConfig, ReactiveResult, reactive_tabu_search
from .rem_tabu import REMConfig, REMResult, rem_tabu_search
from .simulated_annealing import SAConfig, SAResult, simulated_annealing

__all__ = [
    "density_greedy",
    "toyoda_greedy",
    "simulated_annealing",
    "SAConfig",
    "SAResult",
    "reactive_tabu_search",
    "ReactiveConfig",
    "ReactiveResult",
    "rem_tabu_search",
    "REMConfig",
    "REMResult",
    "critical_event_tabu_search",
    "CriticalEventConfig",
    "CriticalEventResult",
]
