"""Greedy primal heuristics for the 0–1 MKP.

Two classics used as cheap baselines in experiment A7:

* :func:`density_greedy` — re-export of the core density-ordered fill.
* :func:`toyoda_greedy` — Toyoda's effective-gradient method (1975): items
  are added by the largest ratio of profit to *penalty*, where the penalty
  is the item's weight projected onto the current load direction, so the
  ordering adapts to which constraints are filling up.  Senju–Toyoda's
  drop-variant pedigree is what the paper's own Add rule descends from.
"""

from __future__ import annotations

import numpy as np

from ..core.construction import greedy_solution as density_greedy  # noqa: F401
from ..core.instance import MKPInstance
from ..core.solution import SearchState, Solution

__all__ = ["density_greedy", "toyoda_greedy"]


def toyoda_greedy(instance: MKPInstance) -> Solution:
    """Toyoda's effective-gradient construction.

    At each step, with current load ``L`` (normalized by capacities), the
    penalty of item ``j`` is ``v_j = u · w_j`` where ``u = L / |L|`` and
    ``w_j`` is the item's capacity-normalized weight column; when no
    capacity is loaded yet (``L = 0``) the penalty is the mean normalized
    weight.  Add the fitting item maximizing ``c_j / v_j``; stop when
    nothing fits.
    """
    state = SearchState.empty(instance)
    caps = instance.capacities
    norm_weights = instance.weights / caps[:, None]  # (m, n) view-friendly
    while True:
        fitting = state.fitting_items()
        if fitting.size == 0:
            break
        load = state.load / caps
        norm = float(np.linalg.norm(load))
        if norm < 1e-12:
            penalties = norm_weights[:, fitting].mean(axis=0)
        else:
            u = load / norm
            penalties = u @ norm_weights[:, fitting]
        penalties = np.maximum(penalties, 1e-12)
        gradient = instance.profits[fitting] / penalties
        state.add(int(fitting[int(np.argmax(gradient))]))
    return state.snapshot()
