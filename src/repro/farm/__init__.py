"""Deterministic model of the paper's 16-Alpha PVM farm (DESIGN.md §3).

Converts algorithmic work (candidate evaluations) and message traffic into
virtual seconds, so that "for a fixed execution time" experiments replay
bit-for-bit on any host.
"""

from .clock import VirtualClock
from .machine import ALPHA_FARM, CrossbarModel, FarmModel, ProcessorModel
from .trace import EventKind, FarmEvent, FarmTrace

__all__ = [
    "VirtualClock",
    "FarmModel",
    "ProcessorModel",
    "CrossbarModel",
    "ALPHA_FARM",
    "FarmTrace",
    "FarmEvent",
    "EventKind",
]
