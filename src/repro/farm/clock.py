"""Virtual clocks for the simulated farm.

:class:`VirtualClock` tracks one virtual time per processor plus the global
(wall) time of the simulated machine.  The synchronous master–slave scheme
of the paper is a sequence of *rounds* ending in a barrier: "each slave must
wait until all other slaves terminate their search thread in the previous
search iteration" (§4.2) — :meth:`barrier` realises that, and reports the
idle time each processor spent waiting, which experiment A8 (load balance)
measures.
"""

from __future__ import annotations

import numpy as np

__all__ = ["VirtualClock"]


class VirtualClock:
    """Per-processor virtual times with barrier synchronization."""

    def __init__(self, n_processors: int) -> None:
        if n_processors < 1:
            raise ValueError("n_processors must be >= 1")
        self.n_processors = int(n_processors)
        self._t = np.zeros(n_processors, dtype=np.float64)

    @property
    def times(self) -> np.ndarray:
        """Copy of the per-processor clock vector."""
        return self._t.copy()

    @property
    def now(self) -> float:
        """Global time = the furthest-ahead processor."""
        return float(self._t.max())

    def time_of(self, proc: int) -> float:
        return float(self._t[proc])

    def advance(self, proc: int, seconds: float) -> float:
        """Charge ``seconds`` of work/communication to ``proc``.

        Returns the processor's new local time.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance by negative time: {seconds}")
        self._t[proc] += seconds
        return float(self._t[proc])

    def advance_all(self, seconds: float) -> None:
        """Charge ``seconds`` to every processor (e.g. a broadcast)."""
        if seconds < 0:
            raise ValueError(f"cannot advance by negative time: {seconds}")
        self._t += seconds

    def barrier(self) -> np.ndarray:
        """Synchronize all processors to the maximum time.

        Returns the per-processor *idle* time spent waiting at the barrier
        (zero for the straggler), which the load-balance experiment sums.
        """
        top = self._t.max()
        idle = top - self._t
        self._t[:] = top
        return idle

    def wait_until(self, proc: int, t: float) -> float:
        """Block ``proc`` until global time ``t``; returns idle time.

        Used by the asynchronous variant where a thread waits for a message
        that was *sent* at time ``t`` (no global barrier involved).
        """
        idle = max(0.0, t - self._t[proc])
        self._t[proc] = max(self._t[proc], t)
        return idle
