"""Machine model of the paper's parallel testbed.

§5: "The parallel architecture used during tests is the Farm of 16 Alpha
processors.  These processors have a pick performance of 500 MIPS and are
connected by a high speed optic fiber crossbar (16X16 links of 200Mb/sec
each).  Communication between processors are realized by using the PVM
library."

We do not have that hardware (DESIGN.md §3), so this module provides the
calibrated cost model that converts *algorithmic work* (candidate
evaluations, message bytes) into deterministic **virtual seconds**:

* a candidate evaluation of an ``m``-constraint instance costs
  ``EVAL_BASE_OPS + EVAL_OPS_PER_CONSTRAINT · m`` machine operations
  (one slack comparison per constraint plus fixed move-bookkeeping);
* a processor retires ``mips · 10^6`` operations per second;
* a message of ``B`` bytes on a crossbar link takes
  ``latency + 8·B / bandwidth_bps`` seconds; the 16×16 crossbar is
  non-blocking, so simultaneous transfers to distinct destinations do not
  queue.

Absolute constants only set the time *scale*; every comparison the
benchmarks make (who wins at equal time, load-balance ratios, speedups) is
invariant to them.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ProcessorModel", "CrossbarModel", "FarmModel", "ALPHA_FARM"]

#: Operations charged per candidate evaluation, independent of m.
EVAL_BASE_OPS = 200.0
#: Additional operations per constraint per candidate evaluation.
EVAL_OPS_PER_CONSTRAINT = 50.0


@dataclass(frozen=True)
class ProcessorModel:
    """One compute node (default: a 500 MIPS DEC Alpha)."""

    mips: float = 500.0

    def __post_init__(self) -> None:
        if self.mips <= 0:
            raise ValueError(f"mips must be positive; got {self.mips}")

    @property
    def ops_per_second(self) -> float:
        return self.mips * 1e6

    def compute_seconds(self, evaluations: int, n_constraints: int) -> float:
        """Virtual seconds to perform ``evaluations`` candidate evaluations."""
        if evaluations < 0:
            raise ValueError("evaluations must be >= 0")
        ops = evaluations * (EVAL_BASE_OPS + EVAL_OPS_PER_CONSTRAINT * n_constraints)
        return ops / self.ops_per_second

    def evaluations_for_seconds(self, seconds: float, n_constraints: int) -> int:
        """Inverse of :meth:`compute_seconds` (budget sizing helper)."""
        if seconds < 0:
            raise ValueError("seconds must be >= 0")
        per_eval = EVAL_BASE_OPS + EVAL_OPS_PER_CONSTRAINT * n_constraints
        return int(seconds * self.ops_per_second / per_eval)


@dataclass(frozen=True)
class CrossbarModel:
    """The 16×16 optic-fiber crossbar (200 Mb/s per link, non-blocking)."""

    link_bandwidth_mbps: float = 200.0
    latency_seconds: float = 50e-6
    #: fixed per-message protocol overhead in bytes (PVM packing headers)
    overhead_bytes: int = 64

    def __post_init__(self) -> None:
        if self.link_bandwidth_mbps <= 0:
            raise ValueError("link bandwidth must be positive")
        if self.latency_seconds < 0:
            raise ValueError("latency must be >= 0")
        if self.overhead_bytes < 0:
            raise ValueError("overhead_bytes must be >= 0")

    def transfer_seconds(self, payload_bytes: int) -> float:
        """Time for one point-to-point message of ``payload_bytes``."""
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be >= 0")
        bits = 8 * (payload_bytes + self.overhead_bytes)
        return self.latency_seconds + bits / (self.link_bandwidth_mbps * 1e6)


@dataclass(frozen=True)
class FarmModel:
    """A farm of ``n_processors`` nodes on one crossbar.

    Homogeneous by default (the paper's testbed).  ``speed_factors`` makes
    the farm heterogeneous: processor ``k`` runs at
    ``speed_factors[k] × processor.mips`` — the substrate for the A12
    experiment (how the §4.2 load-balancing rule degrades when node speeds,
    which the rule cannot see, differ).
    """

    n_processors: int = 16
    processor: ProcessorModel = ProcessorModel()
    network: CrossbarModel = CrossbarModel()
    speed_factors: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if self.n_processors < 1:
            raise ValueError("n_processors must be >= 1")
        if self.speed_factors is not None:
            if len(self.speed_factors) < self.n_processors:
                raise ValueError(
                    f"need >= {self.n_processors} speed factors; "
                    f"got {len(self.speed_factors)}"
                )
            if any(f <= 0 for f in self.speed_factors):
                raise ValueError("speed factors must be positive")

    def compute_seconds(self, evaluations: int, n_constraints: int) -> float:
        """Compute time on a reference (factor-1.0) processor."""
        return self.processor.compute_seconds(evaluations, n_constraints)

    def compute_seconds_on(
        self, proc: int, evaluations: int, n_constraints: int
    ) -> float:
        """Compute time on processor ``proc`` (honours ``speed_factors``)."""
        base = self.processor.compute_seconds(evaluations, n_constraints)
        if self.speed_factors is None:
            return base
        return base / self.speed_factors[proc]

    def transfer_seconds(self, payload_bytes: int) -> float:
        return self.network.transfer_seconds(payload_bytes)

    def scatter_seconds(self, payload_bytes_per_slave: list[int]) -> float:
        """Master sends distinct payloads to each slave.

        The master's outgoing link serializes the sends (one NIC), so the
        scatter takes the *sum* of the individual transfer times — the same
        asymmetry that makes master–slave schemes master-bound at large P.
        """
        return sum(self.transfer_seconds(b) for b in payload_bytes_per_slave)

    def gather_seconds(self, payload_bytes_per_slave: list[int]) -> float:
        """Slaves send results back; the master's incoming link serializes."""
        return sum(self.transfer_seconds(b) for b in payload_bytes_per_slave)


#: The paper's testbed.
ALPHA_FARM = FarmModel()
