"""Event traces of simulated farm executions.

Every compute burst, message and barrier wait is recorded as a
:class:`FarmEvent`; :class:`FarmTrace` aggregates them into the utilisation
and load-balance statistics that experiments A5 (speedup) and A8 (barrier
idle time) report.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from enum import Enum

__all__ = ["EventKind", "FarmEvent", "FarmTrace"]


class EventKind(str, Enum):
    COMPUTE = "compute"
    SEND = "send"
    RECV = "recv"
    BARRIER_WAIT = "barrier_wait"


@dataclass(frozen=True)
class FarmEvent:
    """One interval on one processor's timeline."""

    proc: int
    kind: EventKind
    t_start: float
    t_end: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.t_end < self.t_start:
            raise ValueError(
                f"event ends before it starts: [{self.t_start}, {self.t_end}]"
            )

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


class FarmTrace:
    """Append-only event log with aggregate queries."""

    def __init__(self) -> None:
        self.events: list[FarmEvent] = []

    def record(
        self, proc: int, kind: EventKind, t_start: float, t_end: float, label: str = ""
    ) -> None:
        self.events.append(FarmEvent(proc, kind, t_start, t_end, label))

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------ #
    # Aggregations
    # ------------------------------------------------------------------ #
    def total_by_kind(self, kind: EventKind) -> float:
        """Total duration of all events of ``kind`` across processors."""
        return sum(e.duration for e in self.events if e.kind is kind)

    def per_proc_by_kind(self, kind: EventKind) -> dict[int, float]:
        out: dict[int, float] = defaultdict(float)
        for e in self.events:
            if e.kind is kind:
                out[e.proc] += e.duration
        return dict(out)

    def busy_fraction(self, makespan: float) -> dict[int, float]:
        """Fraction of the makespan each processor spent computing."""
        if makespan <= 0:
            return {}
        busy = self.per_proc_by_kind(EventKind.COMPUTE)
        return {p: t / makespan for p, t in busy.items()}

    def idle_ratio(self) -> float:
        """Barrier idle time as a fraction of (idle + compute) time.

        The A8 load-balance metric: lower is better; the paper's
        ``Nb_it ∝ 1/Nb_drop`` rule exists to shrink exactly this quantity.
        """
        idle = self.total_by_kind(EventKind.BARRIER_WAIT)
        compute = self.total_by_kind(EventKind.COMPUTE)
        denom = idle + compute
        return idle / denom if denom > 0 else 0.0

    def communication_seconds(self) -> float:
        return self.total_by_kind(EventKind.SEND) + self.total_by_kind(EventKind.RECV)
