"""Event traces of simulated farm executions.

Every compute burst, message and barrier wait is recorded as a
:class:`FarmEvent`; :class:`FarmTrace` aggregates them into the utilisation
and load-balance statistics that experiments A5 (speedup) and A8 (barrier
idle time) report.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from enum import Enum

__all__ = ["EventKind", "FarmEvent", "FarmTrace"]


class EventKind(str, Enum):
    COMPUTE = "compute"
    SEND = "send"
    RECV = "recv"
    BARRIER_WAIT = "barrier_wait"


@dataclass(frozen=True)
class FarmEvent:
    """One interval on one processor's timeline."""

    proc: int
    kind: EventKind
    t_start: float
    t_end: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.t_end < self.t_start:
            raise ValueError(
                f"event ends before it starts: [{self.t_start}, {self.t_end}]"
            )

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


class FarmTrace:
    """Append-only event log with aggregate queries.

    Besides the *virtual*-time events, the trace also carries the measured
    wall-clock phase splits the backends report per round (scatter /
    compute / gather plus per-slave gather idle) — the two time bases live
    side by side so an experiment can check the simulated schedule against
    what the real round loop actually did.
    """

    def __init__(self) -> None:
        self.events: list[FarmEvent] = []
        #: per-round measured wall phases, appended by the master:
        #: ``{"round_index", "phase_seconds", "gather_idle_s", "master_wait_s"}``
        self.wall_phases: list[dict] = []

    def record(
        self, proc: int, kind: EventKind, t_start: float, t_end: float, label: str = ""
    ) -> None:
        self.events.append(FarmEvent(proc, kind, t_start, t_end, label))

    def record_wall_phases(
        self,
        round_index: int,
        phase_seconds: dict[str, float],
        gather_idle_s: dict[int, float] | None = None,
        master_wait_s: float = 0.0,
    ) -> None:
        """Log one round's measured wall-clock phase split."""
        self.wall_phases.append(
            {
                "round_index": int(round_index),
                "phase_seconds": {k: float(v) for k, v in phase_seconds.items()},
                "gather_idle_s": {
                    int(k): float(v) for k, v in (gather_idle_s or {}).items()
                },
                "master_wait_s": float(master_wait_s),
            }
        )

    def wall_phase_totals(self) -> dict[str, float]:
        """Cumulative measured seconds per phase (plus ``master_wait``)."""
        totals: dict[str, float] = defaultdict(float)
        for rec in self.wall_phases:
            for phase, seconds in rec["phase_seconds"].items():
                totals[phase] += seconds
            totals["master_wait"] += rec["master_wait_s"]
        return dict(totals)

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------ #
    # Aggregations
    # ------------------------------------------------------------------ #
    def total_by_kind(self, kind: EventKind) -> float:
        """Total duration of all events of ``kind`` across processors."""
        return sum(e.duration for e in self.events if e.kind is kind)

    def per_proc_by_kind(self, kind: EventKind) -> dict[int, float]:
        out: dict[int, float] = defaultdict(float)
        for e in self.events:
            if e.kind is kind:
                out[e.proc] += e.duration
        return dict(out)

    def busy_fraction(self, makespan: float) -> dict[int, float]:
        """Fraction of the makespan each processor spent computing."""
        if makespan <= 0:
            return {}
        busy = self.per_proc_by_kind(EventKind.COMPUTE)
        return {p: t / makespan for p, t in busy.items()}

    def idle_ratio(self) -> float:
        """Barrier idle time as a fraction of (idle + compute) time.

        The A8 load-balance metric: lower is better; the paper's
        ``Nb_it ∝ 1/Nb_drop`` rule exists to shrink exactly this quantity.
        """
        idle = self.total_by_kind(EventKind.BARRIER_WAIT)
        compute = self.total_by_kind(EventKind.COMPUTE)
        denom = idle + compute
        return idle / denom if denom > 0 else 0.0

    def communication_seconds(self) -> float:
        return self.total_by_kind(EventKind.SEND) + self.total_by_kind(EventKind.RECV)
