"""Elastic TCP backend: socket transport with dynamic worker membership.

Every earlier backend assumes a fixed fleet wired up at ``start()`` — the
paper's Fig. 2 farm on one host.  :class:`SocketBackend` promotes the same
master–slave round protocol onto TCP so workers can live anywhere a socket
reaches, and makes the fleet *elastic*:

* **join mid-run** — a ``repro worker --connect HOST:PORT`` agent registers
  with a HELLO frame at any time; the master re-shards the logical slave-id
  space ``0..P-1`` over the live members and the joiner's first task batch
  warms its :class:`~repro.parallel.runtime.SlaveRuntime`.  Trajectories
  depend only on task contents (pinned by ``tests/test_runtime.py``), so a
  late attach never perturbs a pinned trajectory — it only changes which
  process executes which slave id.
* **vanish mid-run** — a closed connection or an expired heartbeat window
  (normalised through :class:`~repro.parallel.comm.CommTimeout`) buries the
  member; its slave ids surface through :meth:`SocketBackend.drain_dead_slaves`
  and the missing reports take the master's existing dead-rank path
  (degraded-mode ISP/SGP, exponential backoff, monotone incumbent).

Wire protocol (DESIGN.md §5.10): length-prefixed frames ``<tag:u8, len:u32>``
followed by ``len`` payload bytes.  Task and report payloads are the PR 7
:class:`~repro.parallel.shm.WireCodec` *batch* envelopes — byte-identical
to the shm/pipe carriers, so the byte ledgers agree across transports.
Control frames (HELLO, problem REBIND) are pickled, exactly like the
control plane of :class:`~repro.parallel.shm.ShmComm`; the transport is
therefore only safe on trusted networks, same as multiprocessing pipes.

The master's socket I/O runs on one asyncio loop in a daemon thread; the
blocking backend methods exchange events with it through a queue, so the
``Backend`` protocol surface (``start`` / ``run_round`` = scatter + gather /
``dispatch`` / ``next_report`` / ``drain_dead_slaves`` / ``shutdown``) stays
synchronous and drop-in for both master pipelines and the service pool.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import queue
import socket
import struct
import threading
import time
from collections import Counter, deque
from typing import Any, Sequence

from ..core.instance import MKPInstance
from ..core.tabu_search import TabuSearchConfig
from ..obs.telemetry import RoundTelemetry
from .backends import (
    _round_index_of,
    _same_problem,
    _straggle,
    _validate_round,
)
from .comm import CommTimeout
from .faults import FaultPlan
from .message import REBIND_TAG, RESULT_TAG, STOP_TAG, TASK_TAG, SlaveReport, SlaveTask
from .runtime import SlaveRuntime
from .shm import WireCodec

__all__ = ["SocketBackend", "run_worker", "HELLO_TAG", "HEARTBEAT_TAG"]

#: Worker registration frame (worker -> master, pickled info dict).
HELLO_TAG = 10
#: Liveness beacon (worker -> master, empty payload).  A worker's heartbeat
#: thread keeps these flowing even while the main thread is deep in a
#: compute-bound task, so the master's window only expires on real death.
HEARTBEAT_TAG = 11

#: Length-prefixed frame header: tag (u8) + payload length (u32).
_WIRE_HEADER = struct.Struct("<BI")

#: Hard ceiling on a single frame (a REBIND carries a pickled instance;
#: anything past this is a corrupt or hostile stream, not a message).
_MAX_FRAME_NBYTES = 1 << 28


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise ``EOFError`` on a closed peer."""
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise EOFError("peer closed the socket mid-frame")
        buf += chunk
    return bytes(buf)


def _recv_frame(sock: socket.socket) -> tuple[int, bytes]:
    tag, length = _WIRE_HEADER.unpack(_recv_exact(sock, _WIRE_HEADER.size))
    if length > _MAX_FRAME_NBYTES:
        raise RuntimeError(f"frame of {length} bytes exceeds the wire limit")
    payload = _recv_exact(sock, length) if length else b""
    return tag, payload


class _Member:
    """Master-side record of one connected worker (backend-thread owned)."""

    __slots__ = ("wid", "name", "pid", "slave_ids")

    def __init__(self, wid: int, info: dict) -> None:
        self.wid = wid
        self.name = str(info.get("name", f"worker-{wid}"))
        self.pid = info.get("pid")
        self.slave_ids: tuple[int, ...] = ()


class SocketBackend:
    """TCP backend with elastic membership over a fixed slave-id space.

    The *logical* farm size ``n_slaves`` is fixed (the master's ISP/SGP and
    telemetry are sized by it); the *physical* fleet is whatever is
    connected right now.  Each member owns a contiguous shard of slave ids,
    recomputed whenever membership changes; one batched task frame per
    member per round carries its shard's tasks (the worker's single warm
    arena serves the whole shard by identity override, exactly like the
    ``batch_k > 1`` multiprocessing layout).

    Membership state machine per worker: CONNECTED (HELLO accepted) ->
    BOUND (problem shipped) -> serving; any read error, closed socket or
    heartbeat-window expiry -> DEAD (buried, shard re-dealt).  A worker is
    never respawned by the master — respawn is the operator's (or the
    test harness') job; the master only ever re-deals the shards.
    """

    def __init__(
        self,
        n_slaves: int,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        min_workers: int = 1,
        round_timeout_s: float | None = 60.0,
        start_timeout_s: float = 30.0,
        heartbeat_timeout_s: float | None = 15.0,
        shutdown_timeout_s: float = 10.0,
    ) -> None:
        if n_slaves < 1:
            raise ValueError("n_slaves must be >= 1")
        if min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if round_timeout_s is not None and round_timeout_s <= 0:
            raise ValueError("round_timeout_s must be positive (or None)")
        if heartbeat_timeout_s is not None and heartbeat_timeout_s <= 0:
            raise ValueError("heartbeat_timeout_s must be positive (or None)")
        self.n_slaves = int(n_slaves)
        self.host = host
        self.port = int(port)
        self.min_workers = int(min_workers)
        self.round_timeout_s = round_timeout_s
        self.start_timeout_s = float(start_timeout_s)
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.shutdown_timeout_s = float(shutdown_timeout_s)

        self._instance: MKPInstance | None = None
        self._config: TabuSearchConfig | None = None
        self._codec: WireCodec | None = None

        # IO loop plumbing (created by listen()).
        self._thread: threading.Thread | None = None
        self._aloop: Any = None
        self._ready = threading.Event()
        self._bound_port: int | None = None
        self._writers: dict[int, Any] = {}  # loop-thread only
        self._inbox: "queue.Queue[tuple]" = queue.Queue()

        # Backend-thread membership and round state.
        self._members: dict[int, _Member] = {}
        self._owner_of: dict[int, int] = {}
        self._needs_reshard = True
        self._report_buffer: deque[tuple[SlaveReport, int]] = deque()
        self._dead_slaves: set[int] = set()
        self._local_procs: list[mp.Process] = []

        # Standard backend ledgers (see MultiprocessingBackend).
        self.bytes_sent = 0
        self.bytes_received = 0
        self.last_task_nbytes: dict[int, int] = {}
        self.last_report_nbytes: dict[int, int] = {}
        self.last_phase_seconds: dict[str, float] = {}
        self.last_gather_idle_s: dict[int, float] = {}
        self.last_master_wait_s: float = 0.0
        self.phase_totals: Counter[str] = Counter()
        self.last_telemetry: RoundTelemetry | None = None
        self.fault_counters: Counter[str] = Counter()
        self.warm_reuses = 0
        self.rebinds = 0
        #: workers that ever registered (joins across the backend's life)
        self.joins = 0

    # ------------------------------------------------------------------ #
    # asyncio side (daemon thread)
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``; raises if :meth:`listen` never ran."""
        if self._bound_port is None:
            raise RuntimeError("backend is not listening: call listen() first")
        return self.host, self._bound_port

    def listen(self) -> tuple[str, int]:
        """Bind and start accepting workers; idempotent; returns the address."""
        if self._thread is not None and self._thread.is_alive():
            return self.address
        self._ready.clear()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._io_thread_main, name="repro-socket-io", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=self.start_timeout_s)
        if self._startup_error is not None:
            raise self._startup_error
        if self._bound_port is None:
            raise RuntimeError("socket backend failed to bind within the deadline")
        return self.address

    def _io_thread_main(self) -> None:
        import asyncio

        async def main() -> None:
            self._aloop = asyncio.get_running_loop()
            self._stop_async = asyncio.Event()
            try:
                server = await asyncio.start_server(
                    self._handle_worker, self.host, self.port
                )
            except OSError as exc:
                self._startup_error = RuntimeError(
                    f"cannot listen on {self.host}:{self.port}: {exc}"
                )
                self._ready.set()
                return
            self._bound_port = server.sockets[0].getsockname()[1]
            self._ready.set()
            try:
                await self._stop_async.wait()
            finally:
                server.close()
                await server.wait_closed()
                for writer in list(self._writers.values()):
                    writer.close()

        asyncio.run(main())

    async def _handle_worker(self, reader: Any, writer: Any) -> None:
        """One connection's lifetime: HELLO, then frames until death.

        Any read error — EOF, reset, or a heartbeat window expiring (the
        ``asyncio`` timeout is normalised through
        :class:`~repro.parallel.comm.CommTimeout`, the same type the pipe
        transport raises on a silent peer) — ends in exactly one ``leave``
        event, which is what buries the member's shard.
        """
        import asyncio

        wid = -1
        reason = "closed"
        try:
            hello = await asyncio.wait_for(
                self._read_frame(reader), timeout=self.start_timeout_s
            )
            tag, payload = hello
            if tag != HELLO_TAG:
                return
            info = pickle.loads(payload)
            wid = self._next_wid
            self._next_wid += 1
            self._writers[wid] = writer
            self._inbox.put(("join", wid, info))
            while True:
                try:
                    if self.heartbeat_timeout_s is None:
                        tag, payload = await self._read_frame(reader)
                    else:
                        tag, payload = await asyncio.wait_for(
                            self._read_frame(reader),
                            timeout=self.heartbeat_timeout_s,
                        )
                except asyncio.TimeoutError as exc:
                    raise CommTimeout(
                        f"worker {wid}: no frame within "
                        f"{self.heartbeat_timeout_s:.1f}s heartbeat window"
                    ) from exc
                if tag == HEARTBEAT_TAG:
                    continue
                if tag == RESULT_TAG:
                    self._inbox.put(("report", wid, payload))
                    continue
                reason = f"protocol error: unexpected tag {tag}"
                return
        except CommTimeout:
            reason = "heartbeat-timeout"
        except asyncio.CancelledError:
            # Loop teardown cancels handler tasks; finishing normally keeps
            # shutdown quiet (3.11's stream done-callback re-raises a
            # cancelled task's exception into the loop's error handler).
            reason = "master-shutdown"
        except (asyncio.IncompleteReadError, ConnectionError, OSError, EOFError):
            reason = "closed"
        except Exception as exc:  # pragma: no cover - defensive
            reason = f"error: {exc}"
        finally:
            self._writers.pop(wid, None)
            writer.close()
            if wid >= 0:
                self._inbox.put(("leave", wid, reason))

    _next_wid = 0

    @staticmethod
    async def _read_frame(reader: Any) -> tuple[int, bytes]:
        head = await reader.readexactly(_WIRE_HEADER.size)
        tag, length = _WIRE_HEADER.unpack(head)
        if length > _MAX_FRAME_NBYTES:
            raise RuntimeError(f"frame of {length} bytes exceeds the wire limit")
        payload = await reader.readexactly(length) if length else b""
        return tag, payload

    def _send(self, wid: int, tag: int, payload: bytes = b"") -> None:
        """Schedule one frame to a worker (thread-safe, fire and forget).

        Writes happen on the loop thread in call order, so the per-worker
        stream stays ordered (bind before tasks); a send to a member that
        died in flight is silently dropped — the ``leave`` event is the
        authoritative signal, exactly like a broken pipe on the mp backend.
        """
        if self._aloop is None:
            return
        frame = _WIRE_HEADER.pack(tag, len(payload)) + payload
        self.bytes_sent += len(payload)

        def write() -> None:
            writer = self._writers.get(wid)
            if writer is not None and not writer.is_closing():
                try:
                    writer.write(frame)
                except Exception:  # pragma: no cover - torn connection
                    pass

        try:
            self._aloop.call_soon_threadsafe(write)
        except RuntimeError:  # pragma: no cover - loop already closed
            pass

    # ------------------------------------------------------------------ #
    # membership (backend thread)
    # ------------------------------------------------------------------ #
    def _pump(self, timeout: float) -> bool:
        """Drain membership/report events; block up to ``timeout`` for one.

        Returns whether any event was processed.  All mutation of
        ``_members`` / ``_report_buffer`` / ``_dead_slaves`` funnels through
        here, so the blocking backend methods see a consistent fleet.
        """
        processed = False
        block = timeout > 0.0
        while True:
            try:
                event = self._inbox.get(timeout=timeout if block else 0.0)
            except queue.Empty:
                return processed
            processed = True
            block = False  # only the first get may block
            kind = event[0]
            if kind == "join":
                _, wid, info = event
                member = _Member(wid, info)
                self._members[wid] = member
                self._needs_reshard = True
                self.joins += 1
                self.fault_counters["worker_join"] += 1
                if self._instance is not None:
                    self._send(
                        wid,
                        REBIND_TAG,
                        pickle.dumps((self._instance, self._config)),
                    )
            elif kind == "leave":
                _, wid, reason = event
                member = self._members.pop(wid, None)
                if member is not None:
                    self._needs_reshard = True
                    self._dead_slaves.update(member.slave_ids)
                    self.fault_counters["worker_lost"] += 1
                    if reason == "heartbeat-timeout":
                        self.fault_counters["heartbeat_timeout"] += 1
            elif kind == "report":
                _, wid, payload = event
                if self._codec is None:
                    continue  # report raced a shutdown/rebind; drop it
                reports, sizes = self._codec.decode_report_batch(payload)
                self.bytes_received += sum(sizes)
                for report, nbytes in zip(reports, sizes):
                    self.last_report_nbytes[report.slave_id] = (
                        self.last_report_nbytes.get(report.slave_id, 0) + nbytes
                    )
                    self._report_buffer.append((report, nbytes))

    def _reshard(self) -> None:
        """Deal the slave-id space 0..P-1 over the live members, contiguously.

        The first ``P mod W`` members (by join order) take one extra id.
        In-flight tasks are unaffected — reports carry their slave id — so
        a reshard between rounds is invisible to the master's fold.
        """
        members = [self._members[w] for w in sorted(self._members)]
        self._owner_of.clear()
        if not members:
            for member in members:  # pragma: no cover - empty loop, clarity
                member.slave_ids = ()
            self._needs_reshard = False
            return
        base, extra = divmod(self.n_slaves, len(members))
        lo = 0
        for i, member in enumerate(members):
            width = base + (1 if i < extra else 0)
            member.slave_ids = tuple(range(lo, lo + width))
            for k in member.slave_ids:
                self._owner_of[k] = member.wid
            lo += width
        self._needs_reshard = False

    def _fleet(self, deadline: float | None) -> bool:
        """Ensure at least one live member, pumping until ``deadline``."""
        self._pump(0.0)
        while not self._members:
            remaining = None if deadline is None else deadline - time.perf_counter()
            if remaining is not None and remaining <= 0.0:
                return False
            if not self._pump(remaining if remaining is not None else 1.0):
                return False
        if self._needs_reshard:
            self._reshard()
        return True

    # ------------------------------------------------------------------ #
    # Backend protocol
    # ------------------------------------------------------------------ #
    def start(self, instance: MKPInstance, config: TabuSearchConfig) -> None:
        """Bind the fleet to a problem; waits for ``min_workers`` members.

        Warm-lease semantics match the other backends: same problem on a
        live backend is a counted no-op, a different problem ships one
        REBIND frame per member.  Workers that join later receive the
        current problem in their join handshake, so a mid-run attach needs
        no extra protocol.
        """
        self.listen()
        if self._instance is not None and _same_problem(
            self._instance, self._config, instance, config
        ):
            self.warm_reuses += 1
            return
        deadline = time.perf_counter() + self.start_timeout_s
        self._pump(0.0)
        while len(self._members) < self.min_workers:
            remaining = deadline - time.perf_counter()
            if remaining <= 0.0:
                host, port = self.address
                raise RuntimeError(
                    f"only {len(self._members)}/{self.min_workers} workers "
                    f"connected to {host}:{port} within "
                    f"{self.start_timeout_s:.0f}s; start more with "
                    f"`repro worker --connect {host}:{port}`"
                )
            self._pump(remaining)
        rebinding = self._instance is not None
        self._instance = instance
        self._config = config
        self._codec = WireCodec(instance.n_items)
        if rebinding:
            self.rebinds += 1
        payload = pickle.dumps((instance, config))
        for wid in sorted(self._members):
            self._send(wid, REBIND_TAG, payload)
        if self._needs_reshard:
            self._reshard()

    def scatter(
        self, tasks: Sequence[SlaveTask | None]
    ) -> dict[int, set[int]]:
        """Ship one round's tasks as one batched frame per member.

        Returns the outstanding map ``{wid: {slave ids not yet reported}}``
        that :meth:`gather` drains.  Slave ids with no owner (an empty or
        shrunken fleet) are counted lost immediately — the master's backoff
        machinery owns their retry schedule.
        """
        assert self._codec is not None
        per_member: dict[int, list[tuple[int, SlaveTask]]] = {}
        orphans: list[int] = []
        for k, task in enumerate(tasks):
            if task is None:
                continue
            wid = self._owner_of.get(k)
            if wid is None or wid not in self._members:
                orphans.append(k)
                continue
            per_member.setdefault(wid, []).append((k, task))
        outstanding: dict[int, set[int]] = {}
        for wid, entries in per_member.items():
            frame, sizes = self._codec.encode_task_batch(entries)
            self.last_task_nbytes.update(sizes)
            self._send(wid, TASK_TAG, frame)
            outstanding[wid] = {k for k, _ in entries}
        for k in orphans:
            self.fault_counters["no_owner"] += 1
            self._dead_slaves.add(k)
        return outstanding

    def gather(
        self, outstanding: dict[int, set[int]], deadline: float | None
    ) -> tuple[list[SlaveReport], float | None, float]:
        """Drain reports until the round is complete or the deadline passes.

        Returns ``(reports, first_report_s, wait_s)`` where ``wait_s`` is
        the master's blocked time in the event queue.  Members that die
        mid-round take the lost-rank path; a member that is merely silent
        past the deadline is *not* buried — unlike a local process, a
        remote straggler's liveness is the heartbeat machinery's verdict,
        not the round clock's.
        """
        t_gather = time.perf_counter()
        reports: list[SlaveReport] = []
        first_report_s: float | None = None
        wait_s = 0.0

        def drain_buffer() -> None:
            nonlocal first_report_s
            now = time.perf_counter()
            while self._report_buffer:
                report, _nbytes = self._report_buffer.popleft()
                if first_report_s is None:
                    first_report_s = now - t_gather
                self.last_gather_idle_s.setdefault(report.slave_id, now - t_gather)
                reports.append(report)
                for wid, ids in list(outstanding.items()):
                    ids.discard(report.slave_id)
                    if not ids:
                        del outstanding[wid]

        drain_buffer()
        while outstanding:
            remaining = None if deadline is None else deadline - time.perf_counter()
            if remaining is not None and remaining <= 0.0:
                break
            t_wait = time.perf_counter()
            got = self._pump(remaining if remaining is not None else 1.0)
            wait_s += time.perf_counter() - t_wait
            if not got and remaining is not None:
                break  # deadline expired with the fleet silent
            drain_buffer()
            for wid in list(outstanding):
                if wid not in self._members:  # died mid-round
                    self.fault_counters["gather_lost"] += 1
                    del outstanding[wid]
        t_end = time.perf_counter()
        for ids in outstanding.values():  # silent past the deadline
            self.fault_counters["gather_lost"] += 1
            for k in ids:
                self.last_gather_idle_s.setdefault(k, t_end - t_gather)
        return reports, first_report_s, wait_s

    def run_round(self, tasks: Sequence[SlaveTask | None]) -> list[SlaveReport]:
        if self._instance is None or self._codec is None:
            raise RuntimeError("backend not started: call start() first")
        _validate_round(tasks, self.n_slaves)
        self.last_task_nbytes = {}
        self.last_report_nbytes = {}
        self.last_gather_idle_s = {}
        self.last_master_wait_s = 0.0
        t_scatter = time.perf_counter()
        deadline = (
            None
            if self.round_timeout_s is None
            else t_scatter + self.round_timeout_s
        )
        self._fleet(deadline)
        outstanding = self.scatter(tasks)
        t_gather = time.perf_counter()
        reports, first_report_s, wait_s = self.gather(outstanding, deadline)
        t_end = time.perf_counter()
        self.last_master_wait_s = wait_s
        self.last_phase_seconds = {
            "scatter": t_gather - t_scatter,
            "compute": first_report_s if first_report_s is not None else 0.0,
            "gather": t_end - t_gather,
        }
        self.phase_totals.update(self.last_phase_seconds)
        self.phase_totals["master_wait"] += wait_s
        self.last_telemetry = RoundTelemetry(
            round_index=_round_index_of(tasks),
            phase_seconds=dict(self.last_phase_seconds),
            gather_idle_s=dict(self.last_gather_idle_s),
            master_wait_s=self.last_master_wait_s,
            task_nbytes=dict(self.last_task_nbytes),
            report_nbytes=dict(self.last_report_nbytes),
        )
        reports.sort(key=lambda r: (r.slave_id, r.seq_id))
        return reports

    # ------------------------------------------------------------------ #
    # Pipelined (bounded-staleness) API — DESIGN.md §5.9 over TCP.
    # ------------------------------------------------------------------ #
    def dispatch(self, slave_id: int, task: SlaveTask) -> int:
        """Send one task as a single-entry batch; returns its payload bytes.

        A slave id with no live owner is recorded for
        :meth:`drain_dead_slaves` and 0 is returned — the async master's
        backoff then owns the retry, and a worker joining in the meantime
        inherits the id at the next reshard.
        """
        if self._instance is None or self._codec is None:
            raise RuntimeError("backend not started: call start() first")
        self._pump(0.0)
        if self._needs_reshard:
            self._reshard()
        wid = self._owner_of.get(slave_id)
        if wid is None or wid not in self._members:
            self.fault_counters["no_owner"] += 1
            self._dead_slaves.add(slave_id)
            return 0
        frame, sizes = self._codec.encode_task_batch([(slave_id, task)])
        nbytes = sizes.get(slave_id, 0)
        self.last_task_nbytes[slave_id] = nbytes
        self._send(wid, TASK_TAG, frame)
        return nbytes

    def next_report(
        self, timeout_s: float | None = None
    ) -> tuple[SlaveReport, int] | None:
        """Pop the next ``(report, payload_nbytes)`` pair in arrival order.

        Returns ``None`` on timeout, on an empty fleet, or when a member
        died during the wait — surfacing the loss immediately so the async
        master can consult :meth:`drain_dead_slaves` instead of blocking
        out the full timeout (mirrors the mp backend's contract).
        """
        if self._report_buffer:
            return self._report_buffer.popleft()
        deadline = (
            None if timeout_s is None else time.perf_counter() + timeout_s
        )
        n_dead_before = len(self._dead_slaves)
        while True:
            t_wait = time.perf_counter()
            remaining = None if deadline is None else deadline - t_wait
            if remaining is not None and remaining <= 0.0:
                return None
            got = self._pump(remaining if remaining is not None else 1.0)
            self.last_master_wait_s = time.perf_counter() - t_wait
            if self._report_buffer:
                return self._report_buffer.popleft()
            if len(self._dead_slaves) > n_dead_before:
                return None  # surface the loss instead of re-waiting
            if not got and not self._members:
                return None
            if not got and remaining is not None:
                return None

    def drain_dead_slaves(self) -> list[int]:
        """Slave ids lost since the last call (consuming)."""
        dead = sorted(self._dead_slaves)
        self._dead_slaves.clear()
        return dead

    # ------------------------------------------------------------------ #
    def attach_local_workers(
        self,
        n: int,
        *,
        mp_context: str = "fork",
        fault_plans: Sequence[FaultPlan | None] | None = None,
        heartbeat_s: float = 1.0,
    ) -> list[mp.Process]:
        """Spawn ``n`` local worker processes pointed at this master.

        Convenience for tests, benchmarks and single-host pools; each
        process is a full :func:`run_worker` agent, indistinguishable from
        one started by ``repro worker --connect`` on another machine.
        They are joined (then terminated) by :meth:`shutdown`.
        """
        host, port = self.listen()
        ctx = mp.get_context(mp_context)
        procs: list[mp.Process] = []
        for i in range(n):
            plan = fault_plans[i] if fault_plans is not None else None
            proc = ctx.Process(
                target=run_worker,
                args=(host, port),
                kwargs={
                    "name": f"local-{i}",
                    "fault_plan": plan,
                    "heartbeat_s": heartbeat_s,
                },
                daemon=True,
                name=f"repro-socket-worker-{i}",
            )
            proc.start()
            procs.append(proc)
        self._local_procs.extend(procs)
        return procs

    def shutdown(self) -> None:
        """Stop the fleet and the IO loop; idempotent, ``start()`` revives.

        Every member gets one STOP frame, locally attached workers are
        joined against a single shared deadline (stragglers terminated),
        and the listener closes — a later ``start()`` binds afresh (a new
        ephemeral port when ``port=0``).
        """
        for wid in list(self._members):
            self._send(wid, STOP_TAG)
        if self._aloop is not None:
            try:
                self._aloop.call_soon_threadsafe(self._stop_async.set)
            except RuntimeError:  # pragma: no cover - loop already closed
                pass
        if self._thread is not None:
            self._thread.join(timeout=self.shutdown_timeout_s)
            self._thread = None
        self._aloop = None
        self._bound_port = None
        deadline = time.monotonic() + self.shutdown_timeout_s
        for proc in self._local_procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
        for proc in self._local_procs:
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=5)
        self._local_procs = []
        self._members.clear()
        self._owner_of.clear()
        self._needs_reshard = True
        self._report_buffer.clear()
        self._dead_slaves.clear()
        self._instance = None
        self._config = None
        self._codec = None
        while True:  # drop events from the torn-down fleet
            try:
                self._inbox.get_nowait()
            except queue.Empty:
                break

    def __enter__(self) -> "SocketBackend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()


# ---------------------------------------------------------------------- #
# Worker agent
# ---------------------------------------------------------------------- #


def run_worker(
    host: str,
    port: int,
    *,
    name: str | None = None,
    heartbeat_s: float = 1.0,
    fault_plan: FaultPlan | None = None,
    connect_timeout_s: float = 10.0,
) -> int:
    """Serve slave tasks for a :class:`SocketBackend` master until STOP.

    The agent behind ``repro worker --connect HOST:PORT``: registers with
    HELLO, receives the problem in a REBIND frame, then answers each task
    batch with one report batch computed on a single warm
    :class:`~repro.parallel.runtime.SlaveRuntime` (identity override per
    slave id, so any worker can serve any shard bit-identically).  A
    daemon thread keeps HEARTBEAT frames flowing while the main thread is
    compute-bound.  Returns 0 on STOP or a closed master.

    ``fault_plan`` injects worker-side chaos for the seeded test matrix:
    a scheduled crash is a hard ``os._exit`` mid-batch (the master only
    observes the symptom — a dead socket), a straggle is a real sleep.
    """
    plan = fault_plan or FaultPlan.none()
    sock = socket.create_connection((host, port), timeout=connect_timeout_s)
    sock.settimeout(None)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    send_lock = threading.Lock()
    stop_beat = threading.Event()

    def send_frame(tag: int, payload: bytes = b"") -> None:
        with send_lock:
            sock.sendall(_WIRE_HEADER.pack(tag, len(payload)) + payload)

    def beat() -> None:
        while not stop_beat.wait(heartbeat_s):
            try:
                send_frame(HEARTBEAT_TAG)
            except OSError:
                return

    send_frame(
        HELLO_TAG,
        pickle.dumps({"name": name or f"worker-{os.getpid()}", "pid": os.getpid()}),
    )
    threading.Thread(target=beat, name="repro-heartbeat", daemon=True).start()
    codec: WireCodec | None = None
    runtime: SlaveRuntime | None = None
    try:
        while True:
            tag, payload = _recv_frame(sock)
            if tag == STOP_TAG:
                return 0
            if tag == REBIND_TAG:
                instance, config = pickle.loads(payload)
                codec = WireCodec(instance.n_items)
                runtime = SlaveRuntime(instance, config, slave_id=0)
                continue
            if tag != TASK_TAG:
                raise RuntimeError(f"worker: unexpected tag {tag}")
            if codec is None or runtime is None:
                raise RuntimeError("worker: task frame before problem bind")
            entries, _sizes = codec.decode_task_batch(payload)
            if plan.is_empty:
                reports = runtime.execute_batch(
                    [t for _, t in entries], [k for k, _ in entries]
                )
            else:
                reports = []
                for k, task in entries:
                    if plan.crashes(task.round_index, k):
                        os._exit(17)
                    reports.append(runtime.execute(task, slave_id=k))
                    _straggle(plan, task.round_index, k)
            frame, _sizes = codec.encode_report_batch(reports)
            send_frame(RESULT_TAG, frame)
    except (ConnectionError, EOFError, OSError):
        return 0  # master went away; nothing left to serve
    finally:
        stop_beat.set()
        sock.close()
