"""Deterministic fault injection for the master–slave stack.

The paper's synchronous scheme (§4) assumes all ``P`` slaves return their
``B`` best solutions every round.  Real farms do not cooperate: workers
crash, reports get lost or duplicated in flight, and stragglers hold the
barrier hostage.  This module provides the *fault model* the chaos-test
suite drives against the hardened master:

:class:`FaultPlan`
    A precomputed, seed-deterministic schedule of fault events addressed by
    ``(round_index, slave_id)``.  The same seed always yields the same
    schedule, so every chaos scenario replays bit-for-bit — fault-injection
    tests are ordinary deterministic tests, never flaky.

:class:`ChaosComm`
    A :class:`~repro.parallel.comm.Comm` wrapper that applies the plan's
    message faults (drop / duplicate / delay) on ``send``, either by
    introspecting :class:`~repro.parallel.message.SlaveTask` /
    :class:`~repro.parallel.message.SlaveReport` payloads or by following an
    explicit per-send action script.  Works over both ``InProcComm`` and
    ``PipeComm`` endpoints.

Failure taxonomy (see DESIGN.md §"Fault model"):

========== ==========================================================
``crash``      the slave dies mid-round; no report is produced
``drop``       a task or report message is lost in flight
``duplicate``  a report arrives twice (at-least-once delivery)
``delay``      a report is held one round and arrives stale
``straggle``   the slave computes at ``1/factor`` speed that round
========== ==========================================================
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterable, Sequence

from ..rng import derive_rng

__all__ = ["FaultKind", "FaultEvent", "FaultPlan", "ChaosComm"]


class FaultKind(str, Enum):
    """The failure taxonomy injected by :class:`FaultPlan`."""

    CRASH = "crash"
    DROP_TASK = "drop_task"
    DROP_REPORT = "drop_report"
    DUPLICATE_REPORT = "duplicate_report"
    DELAY_REPORT = "delay_report"
    STRAGGLE = "straggle"


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One scheduled fault: *what* happens to *whom* in *which* round."""

    round_index: int
    slave_id: int
    kind: FaultKind
    #: straggler slowdown multiplier (ignored for the other kinds)
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.round_index < 0:
            raise ValueError("round_index must be >= 0")
        if self.slave_id < 0:
            raise ValueError("slave_id must be >= 0")
        if self.kind is FaultKind.STRAGGLE and self.factor <= 1.0:
            raise ValueError("straggle factor must be > 1")


#: Namespace constant mixed into the derivation path so fault streams never
#: collide with search-seed streams derived from the same root seed.
_FAULT_STREAM = 0xFA17


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, fully precomputed fault schedule.

    Build one with :meth:`from_seed` (randomized but deterministic) or pass
    explicit events for hand-crafted scenarios.  Query methods are O(1)
    dictionary lookups so the no-fault path costs one empty-dict probe.
    """

    events: tuple[FaultEvent, ...] = ()
    seed: int | None = None

    # Derived indexes (populated in __post_init__; object.__setattr__ because
    # the dataclass is frozen).
    _crashes: frozenset[tuple[int, int]] = field(default=frozenset(), repr=False)
    _task_drops: frozenset[tuple[int, int]] = field(default=frozenset(), repr=False)
    _report_drops: frozenset[tuple[int, int]] = field(default=frozenset(), repr=False)
    _report_dups: frozenset[tuple[int, int]] = field(default=frozenset(), repr=False)
    _report_delays: frozenset[tuple[int, int]] = field(default=frozenset(), repr=False)
    _straggles: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        by_kind: dict[FaultKind, set[tuple[int, int]]] = {k: set() for k in FaultKind}
        straggles: dict[tuple[int, int], float] = {}
        for event in self.events:
            key = (event.round_index, event.slave_id)
            by_kind[event.kind].add(key)
            if event.kind is FaultKind.STRAGGLE:
                straggles[key] = float(event.factor)
        object.__setattr__(self, "events", tuple(sorted(self.events)))
        object.__setattr__(self, "_crashes", frozenset(by_kind[FaultKind.CRASH]))
        object.__setattr__(self, "_task_drops", frozenset(by_kind[FaultKind.DROP_TASK]))
        object.__setattr__(self, "_report_drops", frozenset(by_kind[FaultKind.DROP_REPORT]))
        object.__setattr__(self, "_report_dups", frozenset(by_kind[FaultKind.DUPLICATE_REPORT]))
        object.__setattr__(self, "_report_delays", frozenset(by_kind[FaultKind.DELAY_REPORT]))
        object.__setattr__(self, "_straggles", straggles)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan: the hardened stack must be bit-identical under it."""
        return cls()

    @classmethod
    def from_seed(
        cls,
        seed: int,
        n_slaves: int,
        n_rounds: int,
        *,
        crash_rate: float = 0.0,
        task_drop_rate: float = 0.0,
        report_drop_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        delay_rate: float = 0.0,
        straggle_rate: float = 0.0,
        straggle_factor: float = 4.0,
        max_crashes_per_round: int | None = None,
    ) -> "FaultPlan":
        """Draw a deterministic schedule from ``seed``.

        Per (round, slave) cell at most one fault fires, chosen by a fixed
        priority (crash > drop-task > drop-report > duplicate > delay >
        straggle), so rates compose predictably.  ``max_crashes_per_round``
        defaults to ``n_slaves - 1``: at least one slave survives every
        round, matching the degraded-mode guarantee the tests assert.
        """
        if n_slaves < 1:
            raise ValueError("n_slaves must be >= 1")
        if n_rounds < 1:
            raise ValueError("n_rounds must be >= 1")
        for name, rate in [
            ("crash_rate", crash_rate),
            ("task_drop_rate", task_drop_rate),
            ("report_drop_rate", report_drop_rate),
            ("duplicate_rate", duplicate_rate),
            ("delay_rate", delay_rate),
            ("straggle_rate", straggle_rate),
        ]:
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]; got {rate}")
        if max_crashes_per_round is None:
            max_crashes_per_round = n_slaves - 1
        if not 0 <= max_crashes_per_round <= n_slaves:
            raise ValueError("max_crashes_per_round must be in [0, n_slaves]")

        rng = derive_rng(seed, _FAULT_STREAM)
        events: list[FaultEvent] = []
        schedule = [
            (FaultKind.CRASH, crash_rate),
            (FaultKind.DROP_TASK, task_drop_rate),
            (FaultKind.DROP_REPORT, report_drop_rate),
            (FaultKind.DUPLICATE_REPORT, duplicate_rate),
            (FaultKind.DELAY_REPORT, delay_rate),
            (FaultKind.STRAGGLE, straggle_rate),
        ]
        for round_index in range(n_rounds):
            crashed_this_round = 0
            for slave_id in range(n_slaves):
                # One uniform draw per fault kind per cell keeps the stream
                # layout independent of the rates (same seed, different
                # rates => comparable schedules).
                draws = rng.random(len(schedule))
                for (kind, rate), u in zip(schedule, draws):
                    if u >= rate:
                        continue
                    if kind is FaultKind.CRASH:
                        if crashed_this_round >= max_crashes_per_round:
                            continue
                        crashed_this_round += 1
                    events.append(
                        FaultEvent(
                            round_index,
                            slave_id,
                            kind,
                            factor=straggle_factor if kind is FaultKind.STRAGGLE else 1.0,
                        )
                    )
                    break
        return cls(events=tuple(events), seed=seed)

    @classmethod
    def stragglers(
        cls,
        seed: int,
        n_slaves: int,
        n_rounds: int,
        *,
        rate: float = 0.25,
        factor: float = 8.0,
    ) -> "FaultPlan":
        """A straggle-only plan: the pipelined-master benchmark regime.

        No crashes, no message loss — every report arrives, but a seeded
        quarter of the (round, slave) cells run ``factor`` times slower.
        Under the synchronous barrier every such cell stalls the whole
        round; the async pipeline overlaps the stall with its peers'
        compute, which is exactly the gap ``benchmarks/bench_pipeline.py``
        measures.
        """
        return cls.from_seed(
            seed,
            n_slaves,
            n_rounds,
            straggle_rate=rate,
            straggle_factor=factor,
        )

    # ------------------------------------------------------------------ #
    # Queries (hot path: O(1) set membership)
    # ------------------------------------------------------------------ #
    @property
    def is_empty(self) -> bool:
        return not self.events

    @property
    def n_events(self) -> int:
        return len(self.events)

    def crashes(self, round_index: int, slave_id: int) -> bool:
        return (round_index, slave_id) in self._crashes

    def drops_task(self, round_index: int, slave_id: int) -> bool:
        return (round_index, slave_id) in self._task_drops

    def drops_report(self, round_index: int, slave_id: int) -> bool:
        return (round_index, slave_id) in self._report_drops

    def duplicates_report(self, round_index: int, slave_id: int) -> bool:
        return (round_index, slave_id) in self._report_dups

    def delays_report(self, round_index: int, slave_id: int) -> bool:
        return (round_index, slave_id) in self._report_delays

    def straggle_factor(self, round_index: int, slave_id: int) -> float:
        return self._straggles.get((round_index, slave_id), 1.0)

    def crashed_slaves(self) -> set[int]:
        """All slave ids that crash at least once under this plan."""
        return {slave_id for _, slave_id in self._crashes}

    def fingerprint(self) -> str:
        """Stable digest of the schedule (determinism assertions)."""
        text = ";".join(
            f"{e.round_index},{e.slave_id},{e.kind.value},{e.factor:g}"
            for e in self.events
        )
        return hashlib.sha256(text.encode()).hexdigest()


def _message_key(obj: Any, dest: int, direction: str) -> tuple[int, int] | None:
    """Map a message to its (round, slave) fault-plan address, if possible."""
    round_index = getattr(obj, "round_index", None)
    if round_index is None:
        return None
    if direction == "task":
        return int(round_index), int(dest)
    slave_id = getattr(obj, "slave_id", None)
    if slave_id is None:
        return None
    return int(round_index), int(slave_id)


class ChaosComm:
    """A fault-injecting wrapper around any :class:`~repro.parallel.comm.Comm`.

    Two addressing modes, checked in order on every ``send``:

    1. an explicit ``actions`` script — a finite sequence of
       ``"ok" | "drop" | "dup" | "delay"`` consumed one entry per send
       (exhausted script ⇒ ``"ok"``), for driving arbitrary payloads;
    2. plan lookup — ``SlaveTask`` / ``SlaveReport`` payloads are addressed
       by their ``round_index`` and slave id and matched against the
       :class:`FaultPlan`'s message faults for ``direction``.

    Delayed messages are buffered and released by :meth:`flush_delayed`
    (the serial backend calls it at the top of the next round, so a delayed
    report arrives exactly one round stale).  ``recv``/``probe`` pass
    through untouched: faults are injected on the sending side, mirroring a
    lossy fabric.
    """

    _SCRIPT_ACTIONS = ("ok", "drop", "dup", "delay")

    def __init__(
        self,
        inner: Any,
        plan: FaultPlan | None = None,
        *,
        direction: str = "report",
        actions: Iterable[str] | None = None,
    ) -> None:
        if direction not in ("task", "report"):
            raise ValueError(f"direction must be 'task' or 'report'; got {direction!r}")
        self.inner = inner
        self.plan = plan or FaultPlan.none()
        self.direction = direction
        self._script: list[str] | None = None
        if actions is not None:
            script = list(actions)
            bad = [a for a in script if a not in self._SCRIPT_ACTIONS]
            if bad:
                raise ValueError(f"unknown chaos actions: {bad}")
            self._script = script
        self._delayed: list[tuple[Any, int, int]] = []
        self.sent = 0
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0

    # ------------------------------------------------------------------ #
    def _decide(self, obj: Any, dest: int) -> str:
        if self._script is not None:
            return self._script.pop(0) if self._script else "ok"
        key = _message_key(obj, dest, self.direction)
        if key is None:
            return "ok"
        if self.direction == "task":
            return "drop" if self.plan.drops_task(*key) else "ok"
        if self.plan.drops_report(*key):
            return "drop"
        if self.plan.duplicates_report(*key):
            return "dup"
        if self.plan.delays_report(*key):
            return "delay"
        return "ok"

    def send(self, obj: Any, dest: int = 0, tag: int = 0) -> None:
        action = self._decide(obj, dest)
        if action == "drop":
            self.dropped += 1
            return
        if action == "delay":
            self.delayed += 1
            self._delayed.append((obj, dest, tag))
            return
        self.inner.send(obj, dest, tag)
        self.sent += 1
        if action == "dup":
            self.inner.send(obj, dest, tag)
            self.duplicated += 1
            self.sent += 1

    def flush_delayed(self) -> int:
        """Deliver every held-back message; returns how many were released."""
        released = 0
        while self._delayed:
            obj, dest, tag = self._delayed.pop(0)
            self.inner.send(obj, dest, tag)
            self.sent += 1
            released += 1
        return released

    @property
    def pending_delayed(self) -> int:
        return len(self._delayed)

    # Pass-throughs ----------------------------------------------------- #
    def recv(self, source: int = 0, tag: int = 0, **kwargs: Any) -> Any:
        return self.inner.recv(source, tag, **kwargs)

    def probe(self, tag: int = 0) -> bool:
        return self.inner.probe(tag)

    def __getattr__(self, name: str) -> Any:
        # Byte counters etc. resolve on the wrapped endpoint.
        return getattr(self.inner, name)


def chaos_script(actions: Sequence[str]) -> list[str]:
    """Convenience validator for explicit action scripts (test helper)."""
    bad = [a for a in actions if a not in ChaosComm._SCRIPT_ACTIONS]
    if bad:
        raise ValueError(f"unknown chaos actions: {bad}")
    return list(actions)
