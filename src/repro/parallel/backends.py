"""Execution backends for one master–slave search round.

A *backend* places ``P`` slave tasks, executes them, and returns the ``P``
reports in slave order.  Three implementations:

:class:`SerialBackend`
    Runs slaves inline, one after the other, but still routes every task
    and report through the :class:`~repro.parallel.comm.MessageRouter`, so
    the communication pattern (and its byte volume) is identical to a real
    run.  This is also the engine of the *simulated farm*: the master
    driver converts the reports' evaluation counts and the router's byte
    counts into virtual time.

:class:`MultiprocessingBackend`
    Persistent worker processes connected by private duplex pipes, speaking
    the same tagged message protocol via :class:`~repro.parallel.comm.PipeComm`.
    This is the real-parallelism path (the Python GIL forces processes, not
    threads — see DESIGN.md).

Both produce bit-identical reports for identical tasks (same seeds), which
``tests/test_backend_equivalence.py`` asserts — the property that makes the
simulated results transferable to real parallel hardware.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Protocol, Sequence

from ..core.instance import MKPInstance
from ..core.tabu_search import TabuSearchConfig
from .comm import InProcComm, MessageRouter, PipeComm
from .message import RESULT_TAG, STOP_TAG, TASK_TAG, SlaveReport, SlaveTask
from .slave import execute_task

__all__ = ["Backend", "SerialBackend", "MultiprocessingBackend"]


class Backend(Protocol):
    """Round-based slave executor."""

    n_slaves: int

    def start(self, instance: MKPInstance, config: TabuSearchConfig) -> None:
        """Distribute the problem data (Fig. 2: 'Read and send to slaves')."""
        ...  # pragma: no cover

    def run_round(self, tasks: Sequence[SlaveTask]) -> list[SlaveReport]:
        """Execute one synchronous search round."""
        ...  # pragma: no cover

    def shutdown(self) -> None:
        """Release workers/resources."""
        ...  # pragma: no cover


class SerialBackend:
    """In-process backend; the substrate of the simulated farm.

    Rank convention: slaves are ranks ``0..P-1``, the master is rank ``P``.
    """

    def __init__(self, n_slaves: int) -> None:
        if n_slaves < 1:
            raise ValueError("n_slaves must be >= 1")
        self.n_slaves = int(n_slaves)
        self.router = MessageRouter()
        self.master_comm = InProcComm(self.router, rank=n_slaves)
        self._slave_comms = [InProcComm(self.router, rank=k) for k in range(n_slaves)]
        self._instance: MKPInstance | None = None
        self._config: TabuSearchConfig | None = None
        #: per-round message sizes, for the farm's scatter/gather model
        self.last_task_nbytes: list[int] = []
        self.last_report_nbytes: list[int] = []

    def start(self, instance: MKPInstance, config: TabuSearchConfig) -> None:
        self._instance = instance
        self._config = config

    def run_round(self, tasks: Sequence[SlaveTask]) -> list[SlaveReport]:
        if self._instance is None or self._config is None:
            raise RuntimeError("backend not started: call start() first")
        if len(tasks) != self.n_slaves:
            raise ValueError(f"expected {self.n_slaves} tasks; got {len(tasks)}")
        self.last_task_nbytes = []
        self.last_report_nbytes = []
        # Scatter phase: master -> slaves.
        for k, task in enumerate(tasks):
            self.master_comm.send(task, dest=k, tag=TASK_TAG)
            self.last_task_nbytes.append(self.master_comm.last_payload_nbytes)
        # Compute + report phase (inline execution).
        for k in range(self.n_slaves):
            task = self._slave_comms[k].recv(source=self.n_slaves, tag=TASK_TAG)
            report = execute_task(self._instance, self._config, task, slave_id=k)
            self._slave_comms[k].send(report, dest=self.n_slaves, tag=RESULT_TAG)
        # Gather phase: master <- slaves.
        reports: list[SlaveReport] = []
        for k in range(self.n_slaves):
            report = self.master_comm.recv(source=k, tag=RESULT_TAG)
            self.last_report_nbytes.append(self.master_comm.last_payload_nbytes)
            reports.append(report)
        reports.sort(key=lambda r: r.slave_id)
        return reports

    def shutdown(self) -> None:
        """Nothing to release for the in-process backend."""

    def __enter__(self) -> "SerialBackend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()


def _worker_main(
    conn: "mp.connection.Connection",
    instance: MKPInstance,
    config: TabuSearchConfig,
    slave_id: int,
) -> None:
    """Worker process entry point: serve tasks until the stop sentinel."""
    comm = PipeComm(conn)
    try:
        while True:
            tag, obj = conn.recv()
            if tag == STOP_TAG:
                return
            if tag != TASK_TAG:  # pragma: no cover - protocol guard
                raise RuntimeError(f"worker {slave_id}: unexpected tag {tag}")
            report = execute_task(instance, config, obj, slave_id=slave_id)
            comm.send(report, tag=RESULT_TAG)
    finally:
        conn.close()


class MultiprocessingBackend:
    """Real process-parallel backend (PVM stand-in; mpi4py idiom over pipes).

    Workers are forked once per run and reused across rounds, so the
    problem data crosses the process boundary a single time — the same
    optimization the paper's master applies ("Read and send to slaves
    problem data" once, outside the round loop).
    """

    def __init__(self, n_slaves: int, *, mp_context: str = "fork") -> None:
        if n_slaves < 1:
            raise ValueError("n_slaves must be >= 1")
        self.n_slaves = int(n_slaves)
        self._ctx = mp.get_context(mp_context)
        self._procs: list[mp.Process] = []
        self._comms: list[PipeComm] = []
        self.last_task_nbytes: list[int] = []
        self.last_report_nbytes: list[int] = []

    def start(self, instance: MKPInstance, config: TabuSearchConfig) -> None:
        if self._procs:
            raise RuntimeError("backend already started")
        for k in range(self.n_slaves):
            parent_conn, child_conn = self._ctx.Pipe(duplex=True)
            proc = self._ctx.Process(
                target=_worker_main,
                args=(child_conn, instance, config, k),
                daemon=True,
                name=f"repro-slave-{k}",
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._comms.append(PipeComm(parent_conn))

    def run_round(self, tasks: Sequence[SlaveTask]) -> list[SlaveReport]:
        if not self._procs:
            raise RuntimeError("backend not started: call start() first")
        if len(tasks) != self.n_slaves:
            raise ValueError(f"expected {self.n_slaves} tasks; got {len(tasks)}")
        self.last_task_nbytes = []
        self.last_report_nbytes = []
        # Scatter: non-blocking from the master's perspective (pipes buffer).
        for k, task in enumerate(tasks):
            before = self._comms[k].bytes_sent
            self._comms[k].send(task, tag=TASK_TAG)
            self.last_task_nbytes.append(self._comms[k].bytes_sent - before)
        # Gather: blocks until every slave reports (the Fig. 2 barrier).
        reports: list[SlaveReport] = []
        for k in range(self.n_slaves):
            before = self._comms[k].bytes_received
            report = self._comms[k].recv(tag=RESULT_TAG)
            self.last_report_nbytes.append(self._comms[k].bytes_received - before)
            reports.append(report)
        reports.sort(key=lambda r: r.slave_id)
        return reports

    def shutdown(self) -> None:
        for comm in self._comms:
            try:
                comm.send(None, tag=STOP_TAG)
            except (BrokenPipeError, OSError):  # pragma: no cover - dead worker
                pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=5)
        for comm in self._comms:
            comm.close()
        self._procs.clear()
        self._comms.clear()

    def __enter__(self) -> "MultiprocessingBackend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()
