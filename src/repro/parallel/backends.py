"""Execution backends for one master–slave search round.

A *backend* places up to ``P`` slave tasks, executes them, and returns the
reports of the slaves that survived the round, sorted by slave id.  Three
implementations:

:class:`SerialBackend`
    Runs slaves inline, one after the other, but still routes every task
    and report through the :class:`~repro.parallel.comm.MessageRouter`, so
    the communication pattern (and its byte volume) is identical to a real
    run.  This is also the engine of the *simulated farm*: the master
    driver converts the reports' evaluation counts and the router's byte
    counts into virtual time.

:class:`MultiprocessingBackend`
    Persistent worker processes connected by private duplex pipes, speaking
    the same tagged message protocol via :class:`~repro.parallel.comm.PipeComm`.
    This is the real-parallelism path (the Python GIL forces processes, not
    threads — see DESIGN.md).

Both produce bit-identical reports for identical tasks (same seeds), which
``tests/test_backends.py`` asserts — the property that makes the simulated
results transferable to real parallel hardware.

Fault tolerance (DESIGN.md §"Fault model"): both backends accept a
:class:`~repro.parallel.faults.FaultPlan` that deterministically injects
slave crashes, dropped/duplicated/delayed messages and stragglers; a round's
return value then simply omits the reports the faults destroyed.  Task
entries may be ``None`` — the master uses that to keep a crashed slave in
exponential backoff.  The multiprocessing gather path is bounded by
``round_timeout_s`` and dead workers are respawned instead of deadlocking
the barrier.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from collections import Counter
from typing import Protocol, Sequence

from ..core.instance import MKPInstance
from ..core.tabu_search import TabuSearchConfig
from .comm import CommTimeout, InProcComm, MessageRouter, PipeComm
from .faults import ChaosComm, FaultPlan
from .message import RESULT_TAG, STOP_TAG, TASK_TAG, SlaveReport, SlaveTask
from .slave import execute_task

__all__ = ["Backend", "SerialBackend", "MultiprocessingBackend"]


class Backend(Protocol):
    """Round-based slave executor."""

    n_slaves: int

    def start(self, instance: MKPInstance, config: TabuSearchConfig) -> None:
        """Distribute the problem data (Fig. 2: 'Read and send to slaves')."""
        ...  # pragma: no cover

    def run_round(self, tasks: Sequence[SlaveTask | None]) -> list[SlaveReport]:
        """Execute one search round; ``None`` entries sit the round out.

        Returns the reports that actually arrived (possibly fewer than the
        number of tasks placed, never more than one accepted per send).
        """
        ...  # pragma: no cover

    def shutdown(self) -> None:
        """Release workers/resources."""
        ...  # pragma: no cover


def _validate_round(tasks: Sequence[SlaveTask | None], n_slaves: int) -> None:
    if len(tasks) != n_slaves:
        raise ValueError(f"expected {n_slaves} tasks; got {len(tasks)}")


class SerialBackend:
    """In-process backend; the substrate of the simulated farm.

    Rank convention: slaves are ranks ``0..P-1``, the master is rank ``P``.
    With a non-empty ``fault_plan`` the report path of every slave is
    wrapped in a :class:`~repro.parallel.faults.ChaosComm`; the no-fault
    construction is byte-for-byte the original pipeline.
    """

    def __init__(self, n_slaves: int, *, fault_plan: FaultPlan | None = None) -> None:
        if n_slaves < 1:
            raise ValueError("n_slaves must be >= 1")
        self.n_slaves = int(n_slaves)
        self.fault_plan = fault_plan or FaultPlan.none()
        self.router = MessageRouter()
        self.master_comm = InProcComm(self.router, rank=n_slaves)
        self._slave_comms = [InProcComm(self.router, rank=k) for k in range(n_slaves)]
        if self.fault_plan.is_empty:
            self._report_comms: list[InProcComm | ChaosComm] = list(self._slave_comms)
        else:
            self._report_comms = [
                ChaosComm(comm, self.fault_plan, direction="report")
                for comm in self._slave_comms
            ]
        self._instance: MKPInstance | None = None
        self._config: TabuSearchConfig | None = None
        #: per-round message sizes by slave id, for the farm's scatter/gather model
        self.last_task_nbytes: dict[int, int] = {}
        self.last_report_nbytes: dict[int, int] = {}
        #: per-round straggler slowdown factors by slave id (virtual time)
        self.last_slowdowns: dict[int, float] = {}
        #: cumulative injected-fault tally (diagnostics for the chaos suite)
        self.fault_counters: Counter[str] = Counter()

    def start(self, instance: MKPInstance, config: TabuSearchConfig) -> None:
        self._instance = instance
        self._config = config

    def run_round(self, tasks: Sequence[SlaveTask | None]) -> list[SlaveReport]:
        if self._instance is None or self._config is None:
            raise RuntimeError("backend not started: call start() first")
        _validate_round(tasks, self.n_slaves)
        plan = self.fault_plan
        self.last_task_nbytes = {}
        self.last_report_nbytes = {}
        self.last_slowdowns = {}
        # Reports the chaos layer delayed in an earlier round arrive now,
        # stale — the hardened master must discard them by seq id.
        for comm in self._report_comms:
            if isinstance(comm, ChaosComm):
                comm.flush_delayed()
        # Scatter phase: master -> slaves.
        for k, task in enumerate(tasks):
            if task is None:
                continue
            if plan.drops_task(task.round_index, k):
                self.fault_counters["drop_task"] += 1
                continue
            self.master_comm.send(task, dest=k, tag=TASK_TAG)
            self.last_task_nbytes[k] = self.master_comm.last_payload_nbytes
        # Compute + report phase (inline execution).
        for k in range(self.n_slaves):
            while self._slave_comms[k].probe(TASK_TAG):
                task = self._slave_comms[k].recv(source=self.n_slaves, tag=TASK_TAG)
                if plan.crashes(task.round_index, k):
                    # The slave dies mid-round: the task is consumed, no
                    # report is produced.  (A fresh "process" serves the
                    # next round; in-process slaves are stateless anyway.)
                    self.fault_counters["crash"] += 1
                    continue
                report = execute_task(self._instance, self._config, task, slave_id=k)
                factor = plan.straggle_factor(task.round_index, k)
                if factor != 1.0:
                    self.fault_counters["straggle"] += 1
                    self.last_slowdowns[k] = factor
                self._report_comms[k].send(report, dest=self.n_slaves, tag=RESULT_TAG)
        # Gather phase: drain every report that actually arrived (including
        # duplicates and releases of previously delayed messages).
        reports: list[SlaveReport] = []
        while self.master_comm.probe(RESULT_TAG):
            report = self.master_comm.recv(source=-1, tag=RESULT_TAG)
            self.last_report_nbytes[report.slave_id] = (
                self.last_report_nbytes.get(report.slave_id, 0)
                + self.master_comm.last_payload_nbytes
            )
            reports.append(report)
        reports.sort(key=lambda r: (r.slave_id, r.seq_id))
        return reports

    def shutdown(self) -> None:
        """Nothing to release for the in-process backend."""

    def __enter__(self) -> "SerialBackend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()


#: Worker straggler injection sleeps ``_STRAGGLE_SLEEP_S * (factor - 1)``
#: wall seconds, capped — long enough to trip a short gather timeout in the
#: chaos tests, short enough to keep the suite fast.
_STRAGGLE_SLEEP_S = 0.05
_MAX_STRAGGLE_SLEEP_S = 1.0


def _worker_main(
    conn: "mp.connection.Connection",
    instance: MKPInstance,
    config: TabuSearchConfig,
    slave_id: int,
    fault_plan: FaultPlan,
) -> None:
    """Worker process entry point: serve tasks until the stop sentinel.

    The fault plan travels to the worker so crash/drop faults happen on the
    *worker* side of the pipe — the master only ever observes their
    symptoms (silence), exactly as with a real failing host.
    """
    comm = PipeComm(conn)
    try:
        while True:
            tag, obj = conn.recv()
            if tag == STOP_TAG:
                return
            if tag != TASK_TAG:  # pragma: no cover - protocol guard
                raise RuntimeError(f"worker {slave_id}: unexpected tag {tag}")
            task: SlaveTask = obj
            if fault_plan.crashes(task.round_index, slave_id):
                # Hard crash: no cleanup, no reply, nonzero exit code.
                os._exit(17)
            report = execute_task(instance, config, task, slave_id=slave_id)
            factor = fault_plan.straggle_factor(task.round_index, slave_id)
            if factor > 1.0:
                time.sleep(min(_STRAGGLE_SLEEP_S * (factor - 1.0), _MAX_STRAGGLE_SLEEP_S))
            if fault_plan.drops_report(task.round_index, slave_id):
                continue  # the message is lost in flight
            comm.send(report, tag=RESULT_TAG)
            if fault_plan.duplicates_report(task.round_index, slave_id):
                comm.send(report, tag=RESULT_TAG)
    except (EOFError, BrokenPipeError):  # pragma: no cover - master died
        pass
    finally:
        comm.close()


class MultiprocessingBackend:
    """Real process-parallel backend (PVM stand-in; mpi4py idiom over pipes).

    Workers are forked once per run and reused across rounds, so the
    problem data crosses the process boundary a single time — the same
    optimization the paper's master applies ("Read and send to slaves
    problem data" once, outside the round loop).

    Hardened: the gather is bounded by ``round_timeout_s`` per slave; a
    worker that times out, dies, or breaks its pipe is terminated and
    respawned (``respawns`` counts them), and the round returns without its
    report instead of deadlocking the Fig. 2 barrier.
    """

    def __init__(
        self,
        n_slaves: int,
        *,
        mp_context: str = "fork",
        fault_plan: FaultPlan | None = None,
        round_timeout_s: float | None = 60.0,
    ) -> None:
        if n_slaves < 1:
            raise ValueError("n_slaves must be >= 1")
        if round_timeout_s is not None and round_timeout_s <= 0:
            raise ValueError("round_timeout_s must be positive (or None)")
        self.n_slaves = int(n_slaves)
        self.fault_plan = fault_plan or FaultPlan.none()
        self.round_timeout_s = round_timeout_s
        self._ctx = mp.get_context(mp_context)
        self._procs: list[mp.Process | None] = []
        self._comms: list[PipeComm | None] = []
        self._instance: MKPInstance | None = None
        self._config: TabuSearchConfig | None = None
        self.last_task_nbytes: dict[int, int] = {}
        self.last_report_nbytes: dict[int, int] = {}
        #: respawn count per slave id (the chaos suite asserts recovery)
        self.respawns: Counter[int] = Counter()
        self.fault_counters: Counter[str] = Counter()

    # ------------------------------------------------------------------ #
    def _spawn(self, k: int) -> None:
        assert self._instance is not None and self._config is not None
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._instance, self._config, k, self.fault_plan),
            daemon=True,
            name=f"repro-slave-{k}",
        )
        proc.start()
        child_conn.close()
        self._procs[k] = proc
        self._comms[k] = PipeComm(parent_conn)

    def _bury(self, k: int) -> None:
        """Terminate worker ``k`` and close its pipe (idempotent)."""
        proc = self._procs[k]
        if proc is not None:
            if proc.is_alive():  # pragma: no branch
                proc.terminate()
            proc.join(timeout=5)
            self._procs[k] = None
        comm = self._comms[k]
        if comm is not None:
            comm.close()
            self._comms[k] = None

    def _ensure_alive(self, k: int) -> PipeComm:
        """Respawn worker ``k`` if it is dead; return its live endpoint."""
        proc = self._procs[k]
        if proc is None or not proc.is_alive():
            self._bury(k)
            self._spawn(k)
            self.respawns[k] += 1
        comm = self._comms[k]
        assert comm is not None
        return comm

    # ------------------------------------------------------------------ #
    def start(self, instance: MKPInstance, config: TabuSearchConfig) -> None:
        if self._procs:
            raise RuntimeError("backend already started")
        self._instance = instance
        self._config = config
        self._procs = [None] * self.n_slaves
        self._comms = [None] * self.n_slaves
        for k in range(self.n_slaves):
            self._spawn(k)

    def run_round(self, tasks: Sequence[SlaveTask | None]) -> list[SlaveReport]:
        if not self._procs:
            raise RuntimeError("backend not started: call start() first")
        _validate_round(tasks, self.n_slaves)
        self.last_task_nbytes = {}
        self.last_report_nbytes = {}
        # Scatter: non-blocking from the master's perspective (pipes buffer).
        sent: list[int] = []
        for k, task in enumerate(tasks):
            if task is None:
                continue
            try:
                comm = self._ensure_alive(k)
                before = comm.bytes_sent
                comm.send(task, tag=TASK_TAG)
                self.last_task_nbytes[k] = comm.bytes_sent - before
                sent.append(k)
            except (BrokenPipeError, OSError):
                # The worker died between liveness check and send; the
                # round proceeds without it and the next round respawns.
                self.fault_counters["send_failed"] += 1
                self._bury(k)
        # Gather: bounded wait per slave instead of the unbounded Fig. 2
        # barrier; a silent slave is buried and the round goes on.
        reports: list[SlaveReport] = []
        for k in sent:
            comm = self._comms[k]
            if comm is None:  # pragma: no cover - buried during scatter
                continue
            try:
                before = comm.bytes_received
                report = comm.recv(tag=RESULT_TAG, timeout=self.round_timeout_s)
                reports.append(report)
                # Drain duplicates already in flight so they surface this
                # round (idempotency is the master's job, delivery is ours).
                # When the plan scheduled a duplicate for this slave the
                # extra copy may still be crossing the pipe, so grant it a
                # bounded grace window instead of a racy zero-wait poll.
                task = tasks[k]
                drain_wait = (
                    1.0
                    if task is not None
                    and self.fault_plan.duplicates_report(task.round_index, k)
                    else 0.0
                )
                while comm.poll(drain_wait):
                    reports.append(comm.recv(tag=RESULT_TAG))
                    drain_wait = 0.0
                self.last_report_nbytes[k] = comm.bytes_received - before
            except (CommTimeout, EOFError, OSError):
                self.fault_counters["gather_lost"] += 1
                self._bury(k)
        reports.sort(key=lambda r: (r.slave_id, r.seq_id))
        return reports

    def shutdown(self) -> None:
        for comm in self._comms:
            if comm is None or comm.closed:
                continue
            try:
                comm.send(None, tag=STOP_TAG)
            except (BrokenPipeError, OSError):  # pragma: no cover - dead worker
                pass
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=5)
        for comm in self._comms:
            if comm is not None:
                comm.close()
        self._procs = []
        self._comms = []

    def __enter__(self) -> "MultiprocessingBackend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()
