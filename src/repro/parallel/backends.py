"""Execution backends for one master–slave search round.

A *backend* places up to ``P`` slave tasks, executes them, and returns the
reports of the slaves that survived the round, sorted by slave id.  Two
implementations:

:class:`SerialBackend`
    Runs slaves inline, one after the other, but still routes every task
    and report through the :class:`~repro.parallel.comm.MessageRouter`, so
    the communication pattern (and its byte volume) is identical to a real
    run.  This is also the engine of the *simulated farm*: the master
    driver converts the reports' evaluation counts and the router's byte
    counts into virtual time.

:class:`MultiprocessingBackend`
    Persistent worker processes connected by private duplex pipes, speaking
    the same tagged message protocol via :class:`~repro.parallel.comm.PipeComm`.
    This is the real-parallelism path (the Python GIL forces processes, not
    threads — see DESIGN.md).

Both produce bit-identical reports for identical tasks (same seeds), which
``tests/test_backends.py`` asserts — the property that makes the simulated
results transferable to real parallel hardware.

Warm runtimes (DESIGN.md §5.4): with ``warm_runtime=True`` (the default)
each slave owns one :class:`~repro.parallel.runtime.SlaveRuntime` for the
life of the backend — built at ``start()`` (serial) or at worker spawn
(multiprocessing) — and every task resets the cached arena in place instead
of reconstructing kernels and tabu structures per round.  Trajectories are
bit-identical either way (``tests/test_runtime.py``); the flag exists so
benchmarks can A/B the cold path.

Service leasing (DESIGN.md §5.6): backends may outlive a single run.
``start()`` on an already-started backend never respawns — the same problem
(by :meth:`~repro.core.instance.MKPInstance.content_hash`) is a no-op that
keeps the warm arenas, a different problem rebinds live workers in place
(serial: rebuilt runtimes; multiprocessing: one ``REBIND_TAG`` message per
worker) — and ``shutdown()`` is idempotent, so a
:class:`~repro.service.SolverPool` can lease one backend to many
consecutive jobs with trajectories bit-identical to cold backends.

Gather (multiprocessing): a single ``multiprocessing.connection.wait()``
event loop with one round deadline replaces the old rank-ordered
``recv(timeout)`` chain.  Reports are consumed in arrival order (the return
value is still sorted), scheduled duplicates drain through the same select
with no fixed grace sleep, and dead or silent workers are buried from the
same loop without ever blocking a live one behind a slow rank.

Fault tolerance (DESIGN.md §"Fault model"): both backends accept a
:class:`~repro.parallel.faults.FaultPlan` that deterministically injects
slave crashes, dropped/duplicated/delayed messages and stragglers; a round's
return value then simply omits the reports the faults destroyed.  Task
entries may be ``None`` — the master uses that to keep a crashed slave in
exponential backoff.

Observability (DESIGN.md §5.5): after each round both backends publish one
typed :class:`~repro.obs.telemetry.RoundTelemetry` record
(``last_telemetry``) carrying the wall-clock phase split, per-slave gather
idle, master blocked time and the byte ledgers — the master consumes that
record (via :func:`~repro.obs.telemetry.collect_round_telemetry`) instead
of scraping attributes.  The legacy per-field attributes
(``last_phase_seconds``, ``last_gather_idle_s``, ``last_master_wait_s``,
``phase_totals``) remain as the raw measurement store and for third-party
consumers; ``benchmarks/bench_round_overhead.py`` builds on them.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from collections import Counter, deque
from multiprocessing import connection as mp_connection
from typing import Protocol, Sequence

from ..core.instance import MKPInstance
from ..core.tabu_search import TabuSearchConfig
from ..obs.telemetry import RoundTelemetry
from .comm import CommClosedError, InProcComm, MessageRouter, PipeComm
from .faults import ChaosComm, FaultPlan
from .message import REBIND_TAG, RESULT_TAG, STOP_TAG, TASK_TAG, SlaveReport, SlaveTask
from .runtime import SlaveRuntime
from .shm import (
    DEFAULT_RING_NBYTES,
    ShmComm,
    ShmRing,
    TornFrameError,
    WireCodec,
    resolve_transport,
)
from .slave import execute_task

__all__ = ["Backend", "SerialBackend", "MultiprocessingBackend"]

#: Phase keys every backend reports in ``last_phase_seconds``.
PHASE_KEYS = ("scatter", "compute", "gather")


def _n_groups(n_slaves: int, batch_k: int) -> int:
    return -(-n_slaves // batch_k)  # ceil division


class Backend(Protocol):
    """Round-based slave executor."""

    n_slaves: int

    def start(self, instance: MKPInstance, config: TabuSearchConfig) -> None:
        """Distribute the problem data (Fig. 2: 'Read and send to slaves')."""
        ...  # pragma: no cover

    def run_round(self, tasks: Sequence[SlaveTask | None]) -> list[SlaveReport]:
        """Execute one search round; ``None`` entries sit the round out.

        Returns the reports that actually arrived (possibly fewer than the
        number of tasks placed, never more than one accepted per send).
        """
        ...  # pragma: no cover

    def shutdown(self) -> None:
        """Release workers/resources."""
        ...  # pragma: no cover


def _validate_round(tasks: Sequence[SlaveTask | None], n_slaves: int) -> None:
    if len(tasks) != n_slaves:
        raise ValueError(f"expected {n_slaves} tasks; got {len(tasks)}")


def _round_index_of(tasks: Sequence[SlaveTask | None]) -> int:
    return next((t.round_index for t in tasks if t is not None), -1)


def _same_problem(
    bound_instance: MKPInstance,
    bound_config: TabuSearchConfig | None,
    instance: MKPInstance,
    config: TabuSearchConfig,
) -> bool:
    """Whether a live backend's bound problem matches a ``start()`` request.

    Instance comparison is by identity first (the common warm-lease case —
    the :class:`~repro.service.cache.InstanceCache` hands out one canonical
    object) and by content hash otherwise; the structural config compares
    by value (plain dataclass equality — it carries no arrays).
    """
    if bound_config != config:
        return False
    if bound_instance is instance:
        return True
    return bound_instance.content_hash() == instance.content_hash()


class SerialBackend:
    """In-process backend; the substrate of the simulated farm.

    Rank convention: slaves are ranks ``0..P-1``, the master is rank ``P``.
    With a non-empty ``fault_plan`` the report path of every slave is
    wrapped in a :class:`~repro.parallel.faults.ChaosComm`; the no-fault
    construction is byte-for-byte the original pipeline.

    With ``warm_runtime=True`` each slave id keeps one
    :class:`~repro.parallel.runtime.SlaveRuntime` across rounds (built at
    :meth:`start`); ``False`` reconstructs per task via
    :func:`~repro.parallel.slave.execute_task`, the pre-warm behaviour.
    """

    def __init__(
        self,
        n_slaves: int,
        *,
        fault_plan: FaultPlan | None = None,
        warm_runtime: bool = True,
        batch_k: int = 1,
    ) -> None:
        if n_slaves < 1:
            raise ValueError("n_slaves must be >= 1")
        if batch_k < 1:
            raise ValueError("batch_k must be >= 1")
        self.n_slaves = int(n_slaves)
        #: slaves per shared warm runtime (``1`` = one arena per slave);
        #: higher values share one arena across a whole slave group, the
        #: serial mirror of the multiprocessing backend's batched workers
        self.batch_k = int(batch_k)
        self.fault_plan = fault_plan or FaultPlan.none()
        self.warm_runtime = bool(warm_runtime)
        self.router = MessageRouter()
        self.master_comm = InProcComm(self.router, rank=n_slaves)
        self._slave_comms = [InProcComm(self.router, rank=k) for k in range(n_slaves)]
        if self.fault_plan.is_empty:
            self._report_comms: list[InProcComm | ChaosComm] = list(self._slave_comms)
        else:
            self._report_comms = [
                ChaosComm(comm, self.fault_plan, direction="report")
                for comm in self._slave_comms
            ]
        self._instance: MKPInstance | None = None
        self._config: TabuSearchConfig | None = None
        self._runtimes: list[SlaveRuntime] = []
        #: ``start()`` calls that found live warm state already bound to the
        #: same problem and kept it (DESIGN.md §5.6 — the warm-lease path)
        self.warm_reuses = 0
        #: ``start()`` calls that rebound live state to a *different* problem
        self.rebinds = 0
        #: per-round message sizes by slave id, for the farm's scatter/gather model
        self.last_task_nbytes: dict[int, int] = {}
        self.last_report_nbytes: dict[int, int] = {}
        #: per-round straggler slowdown factors by slave id (virtual time)
        self.last_slowdowns: dict[int, float] = {}
        #: cumulative injected-fault tally (diagnostics for the chaos suite)
        self.fault_counters: Counter[str] = Counter()
        #: wall-clock split of the last round over ``PHASE_KEYS``
        self.last_phase_seconds: dict[str, float] = {}
        #: seconds from gather start to each slave's first accepted report
        self.last_gather_idle_s: dict[int, float] = {}
        #: master wall time blocked waiting on slaves (0 for inline slaves)
        self.last_master_wait_s: float = 0.0
        #: cumulative phase wall time across rounds (plus ``master_wait``)
        self.phase_totals: Counter[str] = Counter()
        #: typed telemetry record of the last round (DESIGN.md §5.5)
        self.last_telemetry: RoundTelemetry | None = None
        #: pipelined-mode arrival queue: ``(report, payload_nbytes)`` in
        #: dispatch order (inline execution makes arrival order equal
        #: dispatch order, which is what makes async serial replay
        #: seeded-deterministic — DESIGN.md §5.9)
        self._pending: deque[tuple[SlaveReport, int]] = deque()

    def start(self, instance: MKPInstance, config: TabuSearchConfig) -> None:
        """Bind the backend to a problem; idempotent on a live backend.

        Re-``start()``-ing an already-started backend on the same problem
        data (by :meth:`~repro.core.instance.MKPInstance.content_hash`) and
        config keeps the warm runtimes — this is how a leased backend
        serves many jobs without re-paying arena construction.  A different
        problem rebuilds the runtimes in place.  Either way the resulting
        trajectories are bit-identical to a cold backend (every task rebinds
        the arena before running; ``tests/test_service.py`` pins this).
        """
        if (
            self._instance is not None
            and _same_problem(self._instance, self._config, instance, config)
        ):
            self.warm_reuses += 1
            return
        if self._instance is not None:
            self.rebinds += 1
        self._instance = instance
        self._config = config
        # One warm arena per slave *group*: with batch_k == 1 that is the
        # historical one-arena-per-slave layout; with batch_k > 1 a group
        # of K slaves shares a single runtime (the trajectory depends only
        # on the task, so reports are bit-identical either way).
        self._runtimes = (
            [
                SlaveRuntime(instance, config, slave_id=g * self.batch_k)
                for g in range(_n_groups(self.n_slaves, self.batch_k))
            ]
            if self.warm_runtime
            else []
        )

    def _execute(self, k: int, task: SlaveTask) -> SlaveReport:
        assert self._instance is not None and self._config is not None
        runtime = self._runtimes[k // self.batch_k] if self._runtimes else None
        if runtime is not None and runtime.slave_id != k:
            return runtime.execute(task, slave_id=k)
        return execute_task(
            self._instance, self._config, task, slave_id=k, runtime=runtime
        )

    def run_round(self, tasks: Sequence[SlaveTask | None]) -> list[SlaveReport]:
        if self._instance is None or self._config is None:
            raise RuntimeError("backend not started: call start() first")
        _validate_round(tasks, self.n_slaves)
        plan = self.fault_plan
        self.last_task_nbytes = {}
        self.last_report_nbytes = {}
        self.last_slowdowns = {}
        self.last_gather_idle_s = {}
        self.last_master_wait_s = 0.0
        # Reports the chaos layer delayed in an earlier round arrive now,
        # stale — the hardened master must discard them by seq id.
        for comm in self._report_comms:
            if isinstance(comm, ChaosComm):
                comm.flush_delayed()
        t_scatter = time.perf_counter()
        # Scatter phase: master -> slaves.
        for k, task in enumerate(tasks):
            if task is None:
                continue
            if plan.drops_task(task.round_index, k):
                self.fault_counters["drop_task"] += 1
                continue
            self.master_comm.send(task, dest=k, tag=TASK_TAG)
            self.last_task_nbytes[k] = self.master_comm.last_payload_nbytes
        t_compute = time.perf_counter()
        # Compute + report phase (inline execution).
        for k in range(self.n_slaves):
            while self._slave_comms[k].probe(TASK_TAG):
                task = self._slave_comms[k].recv(source=self.n_slaves, tag=TASK_TAG)
                if plan.crashes(task.round_index, k):
                    # The slave dies mid-round: the task is consumed, no
                    # report is produced.  (A fresh "process" serves the
                    # next round; warm state is rebound per task anyway.)
                    self.fault_counters["crash"] += 1
                    continue
                report = self._execute(k, task)
                factor = plan.straggle_factor(task.round_index, k)
                if factor != 1.0:
                    self.fault_counters["straggle"] += 1
                    self.last_slowdowns[k] = factor
                self._report_comms[k].send(report, dest=self.n_slaves, tag=RESULT_TAG)
        t_gather = time.perf_counter()
        # Gather phase: drain every report that actually arrived (including
        # duplicates and releases of previously delayed messages).
        reports: list[SlaveReport] = []
        while self.master_comm.probe(RESULT_TAG):
            report = self.master_comm.recv(source=-1, tag=RESULT_TAG)
            self.last_report_nbytes[report.slave_id] = (
                self.last_report_nbytes.get(report.slave_id, 0)
                + self.master_comm.last_payload_nbytes
            )
            self.last_gather_idle_s.setdefault(
                report.slave_id, time.perf_counter() - t_gather
            )
            reports.append(report)
        t_end = time.perf_counter()
        self.last_phase_seconds = {
            "scatter": t_compute - t_scatter,
            "compute": t_gather - t_compute,
            "gather": t_end - t_gather,
        }
        self.phase_totals.update(self.last_phase_seconds)
        self.last_telemetry = RoundTelemetry(
            round_index=_round_index_of(tasks),
            phase_seconds=dict(self.last_phase_seconds),
            gather_idle_s=dict(self.last_gather_idle_s),
            master_wait_s=self.last_master_wait_s,
            task_nbytes=dict(self.last_task_nbytes),
            report_nbytes=dict(self.last_report_nbytes),
            slowdowns=dict(self.last_slowdowns),
        )
        reports.sort(key=lambda r: (r.slave_id, r.seq_id))
        return reports

    # ------------------------------------------------------------------ #
    # Pipelined (bounded-staleness) API — DESIGN.md §5.9.  One task in,
    # reports out in arrival order; the master owns windows and staleness.

    def _drain_arrivals(self) -> None:
        while self.master_comm.probe(RESULT_TAG):
            report = self.master_comm.recv(source=-1, tag=RESULT_TAG)
            self._pending.append((report, self.master_comm.last_payload_nbytes))

    def dispatch(self, slave_id: int, task: SlaveTask) -> int:
        """Send one task to one slave; returns the task payload bytes.

        Inline execution: the slave runs immediately and its report (unless
        a fault destroys it) is queued for :meth:`next_report` before this
        returns.  Reports a delay fault held from an earlier burst flush
        first, so per-slave arrival order stays monotone in burst index —
        the invariant the async master's loss detection rests on.
        """
        if self._instance is None or self._config is None:
            raise RuntimeError("backend not started: call start() first")
        k = slave_id
        plan = self.fault_plan
        report_comm = self._report_comms[k]
        if isinstance(report_comm, ChaosComm):
            report_comm.flush_delayed()
        if plan.drops_task(task.round_index, k):
            self.fault_counters["drop_task"] += 1
            self._drain_arrivals()
            return 0
        self.master_comm.send(task, dest=k, tag=TASK_TAG)
        nbytes = self.master_comm.last_payload_nbytes
        self.last_task_nbytes[k] = nbytes
        self._slave_comms[k].recv(source=self.n_slaves, tag=TASK_TAG)
        if plan.crashes(task.round_index, k):
            # Inline "process death": the task is consumed, no report.
            self.fault_counters["crash"] += 1
        else:
            report = self._execute(k, task)
            factor = plan.straggle_factor(task.round_index, k)
            if factor != 1.0:
                self.fault_counters["straggle"] += 1
                self.last_slowdowns[k] = factor
            report_comm.send(report, dest=self.n_slaves, tag=RESULT_TAG)
        self._drain_arrivals()
        return nbytes

    def next_report(
        self, timeout_s: float | None = None
    ) -> tuple[SlaveReport, int] | None:
        """Pop the next ``(report, payload_nbytes)`` pair, or ``None``.

        Slaves run inline, so nothing can arrive *later*: an empty queue is
        final and the timeout is irrelevant — ``None`` returns immediately,
        which is exactly what lets the async master's timeout policy run
        deterministically under serial replay.
        """
        del timeout_s  # inline slaves: arrival already happened or never will
        self._drain_arrivals()
        if self._pending:
            return self._pending.popleft()
        return None

    def drain_dead_slaves(self) -> list[int]:
        """Slaves lost since the last call (inline slaves never die)."""
        return []

    def shutdown(self) -> None:
        """Release the warm runtimes; idempotent, and ``start()`` revives.

        Safe to call any number of times (including before ``start()``);
        after a shutdown the backend is simply unbound and a later
        ``start()`` rebuilds it from scratch.
        """
        self._runtimes = []
        self._instance = None
        self._config = None
        self._pending.clear()

    def __enter__(self) -> "SerialBackend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()


#: Worker straggler injection sleeps ``_STRAGGLE_SLEEP_S * (factor - 1)``
#: wall seconds, capped — long enough to trip a short gather timeout in the
#: chaos tests, short enough to keep the suite fast.
_STRAGGLE_SLEEP_S = 0.05
_MAX_STRAGGLE_SLEEP_S = 1.0


def _run_one(
    runtime: SlaveRuntime | None,
    instance: MKPInstance,
    config: TabuSearchConfig,
    task: SlaveTask,
    slave_id: int,
) -> SlaveReport:
    """One task through the warm arena (identity override) or a cold one."""
    if runtime is not None:
        return runtime.execute(task, slave_id=slave_id)
    return execute_task(instance, config, task, slave_id=slave_id)


def _straggle(fault_plan: FaultPlan, round_index: int, slave_id: int) -> None:
    factor = fault_plan.straggle_factor(round_index, slave_id)
    if factor > 1.0:
        time.sleep(min(_STRAGGLE_SLEEP_S * (factor - 1.0), _MAX_STRAGGLE_SLEEP_S))


def _worker_main(
    conn: "mp.connection.Connection",
    instance: MKPInstance,
    config: TabuSearchConfig,
    slave_ids: tuple[int, ...],
    fault_plan: FaultPlan,
    warm_runtime: bool = True,
    shm_spec: tuple[str, str] | None = None,
) -> None:
    """Worker process entry point: serve tasks until the stop sentinel.

    One worker owns a whole slave *group* (``slave_ids``; a single id in
    the classic one-process-per-slave layout).  The fault plan travels to
    the worker so crash/drop faults happen on the worker side of the wire
    — the master only ever observes their symptoms (silence), exactly as
    with a real failing host.

    ``shm_spec`` names the two rings the master created for this worker
    (task direction, report direction); attach failure silently degrades
    to the in-band pipe carrier — the doorbell protocol needs no
    negotiation, so the master never has to know.

    Delayed reports (``FaultKind.DELAY_REPORT``) are *held*, not slept on:
    they leave with the next round's traffic, so a delay fault costs the
    master zero gather wall time and is charged to the farm clock on the
    round the stale bytes actually arrive (see ``tests/test_wall_clock.py``).
    """
    codec = WireCodec(instance.n_items)
    send_ring = recv_ring = None
    if shm_spec is not None:
        task_name, report_name = shm_spec
        try:
            recv_ring = ShmRing.attach(task_name)
            send_ring = ShmRing.attach(report_name)
        except Exception:  # pragma: no cover - host-dependent attach failure
            if recv_ring is not None:
                recv_ring.close()
            send_ring = recv_ring = None
    comm = ShmComm(PipeComm(conn), codec, send_ring=send_ring, recv_ring=recv_ring)
    primary = slave_ids[0]
    runtime = (
        SlaveRuntime(instance, config, slave_id=primary) if warm_runtime else None
    )
    #: reports a delay fault held back, flushed with the next round's sends
    held: list[SlaveReport] = []
    try:
        while True:
            tag, obj = comm.recv_message()
            if tag == STOP_TAG:
                return
            if tag == REBIND_TAG:
                # The backend was re-started on a new problem: rebuild the
                # warm arena here, once, in place of a process respawn.
                # Pipe ordering guarantees every later task sees the new
                # instance, so this needs no acknowledgement round-trip.
                instance, config = obj
                codec.n_items = instance.n_items
                held = []
                if runtime is not None:
                    runtime = SlaveRuntime(instance, config, slave_id=primary)
                continue
            if tag != TASK_TAG:  # pragma: no cover - protocol guard
                raise RuntimeError(f"worker {primary}: unexpected tag {tag}")
            if isinstance(obj, list):
                # Batched round: one message in, one message out — always
                # sent, even when faults emptied it, so the master's
                # one-message-per-worker expectation holds unconditionally.
                out: list[SlaveReport] = held
                held = []
                entries: list[tuple[int, SlaveTask]] = obj
                if runtime is not None and fault_plan.is_empty:
                    # Fault-free fast path: whole group audited in one
                    # batched (K, n) kernel pass, then run back to back.
                    out.extend(
                        runtime.execute_batch(
                            [t for _, t in entries], [k for k, _ in entries]
                        )
                    )
                else:
                    for k, task in entries:
                        if fault_plan.crashes(task.round_index, k):
                            os._exit(17)
                        report = _run_one(runtime, instance, config, task, k)
                        _straggle(fault_plan, task.round_index, k)
                        if fault_plan.drops_report(task.round_index, k):
                            continue  # the entry is lost in flight
                        copies = (
                            2
                            if fault_plan.duplicates_report(task.round_index, k)
                            else 1
                        )
                        if fault_plan.delays_report(task.round_index, k):
                            held.extend([report] * copies)
                        else:
                            out.extend([report] * copies)
                comm.send_reports(out)
                continue
            # Classic one-task-per-message round (batch_k == 1).  Stale
            # deliveries first: reports a delay fault held from an earlier
            # round ride out as soon as the worker wakes for a new task.
            for stale in held:
                comm.send(stale, tag=RESULT_TAG)
            held = []
            task = obj
            if fault_plan.crashes(task.round_index, primary):
                # Hard crash: no cleanup, no reply, nonzero exit code.
                os._exit(17)
            report = _run_one(runtime, instance, config, task, primary)
            _straggle(fault_plan, task.round_index, primary)
            if fault_plan.drops_report(task.round_index, primary):
                continue  # the message is lost in flight
            copies = 2 if fault_plan.duplicates_report(task.round_index, primary) else 1
            if fault_plan.delays_report(task.round_index, primary):
                held.extend([report] * copies)
                continue
            for _ in range(copies):
                comm.send(report, tag=RESULT_TAG)
    except (EOFError, BrokenPipeError, CommClosedError):  # pragma: no cover - master died
        pass
    finally:
        comm.close()


class MultiprocessingBackend:
    """Real process-parallel backend (PVM stand-in; mpi4py idiom over pipes).

    Workers are forked once per run and reused across rounds, so the
    problem data crosses the process boundary a single time — the same
    optimization the paper's master applies ("Read and send to slaves
    problem data" once, outside the round loop) — and, with
    ``warm_runtime`` (default), each worker also builds its search arena
    once at spawn and rebinds it per task.

    Hardened: the gather is one ``connection.wait()`` event loop bounded by
    a single ``round_timeout_s`` deadline for the whole round; reports fold
    in as they arrive, so a slow or dead rank never delays a fast one.  A
    worker that stays silent past the deadline or breaks its pipe is
    terminated and respawned (``respawns`` counts them), and the round
    returns without its report instead of deadlocking the Fig. 2 barrier.

    Transport (DESIGN.md §5.7): with ``transport="shm"`` (the automatic
    choice wherever POSIX shared memory works; override with the argument
    or ``REPRO_TRANSPORT``) every task and report frame moves through a
    per-worker pair of :class:`~repro.parallel.shm.ShmRing` buffers and
    the pipe carries only constant-size doorbells; ``"pipe"`` ships the
    same codec frames in-band.  Byte ledgers are identical either way.

    Batching: ``batch_k`` slaves share one worker process and one
    :class:`~repro.parallel.runtime.SlaveRuntime`; a round then exchanges
    one batched message per worker per direction instead of one per slave.
    Reports are bit-identical to the ``batch_k == 1`` layout (pinned by
    ``tests/differential.py``); only the process count and message count
    change.
    """

    def __init__(
        self,
        n_slaves: int,
        *,
        mp_context: str = "fork",
        fault_plan: FaultPlan | None = None,
        round_timeout_s: float | None = 60.0,
        warm_runtime: bool = True,
        shutdown_timeout_s: float = 10.0,
        transport: str | None = None,
        batch_k: int = 1,
        ring_nbytes: int = DEFAULT_RING_NBYTES,
    ) -> None:
        if n_slaves < 1:
            raise ValueError("n_slaves must be >= 1")
        if batch_k < 1:
            raise ValueError("batch_k must be >= 1")
        if round_timeout_s is not None and round_timeout_s <= 0:
            raise ValueError("round_timeout_s must be positive (or None)")
        if shutdown_timeout_s <= 0:
            raise ValueError("shutdown_timeout_s must be positive")
        self.n_slaves = int(n_slaves)
        #: slaves served per worker process and message (1 = classic layout)
        self.batch_k = int(batch_k)
        #: worker process count: ``ceil(n_slaves / batch_k)``
        self.n_workers = _n_groups(self.n_slaves, self.batch_k)
        #: resolved payload carrier: explicit arg > ``REPRO_TRANSPORT`` > auto
        self.transport = resolve_transport(transport)
        self.ring_nbytes = int(ring_nbytes)
        self.fault_plan = fault_plan or FaultPlan.none()
        self.round_timeout_s = round_timeout_s
        self.warm_runtime = bool(warm_runtime)
        self.shutdown_timeout_s = float(shutdown_timeout_s)
        self._ctx = mp.get_context(mp_context)
        self._procs: list[mp.Process | None] = []
        self._comms: list[ShmComm | None] = []
        self._rings: list[tuple[ShmRing, ShmRing] | None] = []
        #: per-worker carrier actually in use after spawn ("shm" or "pipe")
        self.worker_transports: list[str] = []
        #: reports a delay fault will hold at the worker, owed next round
        #: (slave-keyed; batch_k == 1 path only — batches always send)
        self._stale_due: Counter[int] = Counter()
        self._instance: MKPInstance | None = None
        self._config: TabuSearchConfig | None = None
        self.last_task_nbytes: dict[int, int] = {}
        self.last_report_nbytes: dict[int, int] = {}
        #: respawn count per slave id (the chaos suite asserts recovery)
        self.respawns: Counter[int] = Counter()
        self.fault_counters: Counter[str] = Counter()
        #: ``start()`` calls served by live workers with no reship needed
        self.warm_reuses = 0
        #: ``start()`` calls that rebound live workers to a new problem
        self.rebinds = 0
        #: wall-clock split of the last round; on this backend ``compute``
        #: is the latency to the *first* report (the fastest slave) and is
        #: contained in ``gather``, which runs to the last accepted report.
        self.last_phase_seconds: dict[str, float] = {}
        #: seconds from gather start to each slave's first accepted report
        #: (silent slaves get the full gather wall — their cost to the round)
        self.last_gather_idle_s: dict[int, float] = {}
        #: master wall time blocked inside ``connection.wait``
        self.last_master_wait_s: float = 0.0
        #: cumulative phase wall time across rounds (plus ``master_wait``)
        self.phase_totals: Counter[str] = Counter()
        #: typed telemetry record of the last round (DESIGN.md §5.5)
        self.last_telemetry: RoundTelemetry | None = None
        #: pipelined-mode arrival buffer: ``(report, nbytes)`` pairs drained
        #: from worker pipes in arrival order, ahead of master consumption
        self._report_buffer: deque[tuple[SlaveReport, int]] = deque()
        #: slave ids whose worker died since the last ``drain_dead_slaves()``
        self._dead_slaves: set[int] = set()

    # ------------------------------------------------------------------ #
    def _group_slaves(self, w: int) -> range:
        """Slave ids served by worker ``w`` (one id when ``batch_k == 1``)."""
        lo = w * self.batch_k
        return range(lo, min(lo + self.batch_k, self.n_slaves))

    def _spawn(self, w: int) -> None:
        assert self._instance is not None and self._config is not None
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        task_ring: ShmRing | None = None
        report_ring: ShmRing | None = None
        shm_spec: tuple[str, str] | None = None
        if self.transport == "shm":
            try:
                task_ring = ShmRing.create(self.ring_nbytes)
                report_ring = ShmRing.create(self.ring_nbytes)
                shm_spec = (task_ring.name, report_ring.name)
            except Exception:
                # Segment creation failed (exhausted /dev/shm, hardened
                # host, ...): this worker degrades to the in-band pipe
                # carrier.  The doorbell protocol is carrier-agnostic, so
                # nothing else changes.
                if task_ring is not None:
                    task_ring.close()
                    task_ring.unlink()
                task_ring = report_ring = None
                shm_spec = None
                self.fault_counters["shm_fallback"] += 1
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                self._instance,
                self._config,
                tuple(self._group_slaves(w)),
                self.fault_plan,
                self.warm_runtime,
                shm_spec,
            ),
            daemon=True,
            name=f"repro-slave-{w}",
        )
        proc.start()
        child_conn.close()
        self._procs[w] = proc
        self._comms[w] = ShmComm(
            PipeComm(parent_conn),
            WireCodec(self._instance.n_items),
            send_ring=task_ring,
            recv_ring=report_ring,
        )
        self._rings[w] = (
            (task_ring, report_ring) if task_ring is not None else None
        )
        self.worker_transports[w] = "shm" if shm_spec is not None else "pipe"

    def _bury(self, w: int) -> None:
        """Terminate worker ``w``, close its wire, unlink its rings."""
        proc = self._procs[w]
        if proc is not None:
            if proc.is_alive():  # pragma: no branch
                proc.terminate()
            proc.join(timeout=5)
            self._procs[w] = None
        comm = self._comms[w]
        if comm is not None:
            comm.close()
            self._comms[w] = None
        rings = self._rings[w]
        if rings is not None:
            for ring in rings:
                ring.close()
                ring.unlink()
            self._rings[w] = None
        for k in self._group_slaves(w):
            self._stale_due.pop(k, None)

    def _ensure_alive(self, w: int) -> ShmComm:
        """Respawn worker ``w`` if it is dead; return its live endpoint."""
        proc = self._procs[w]
        if proc is None or not proc.is_alive():
            self._bury(w)
            self._spawn(w)
            self.respawns[w] += 1
        comm = self._comms[w]
        assert comm is not None
        return comm

    # ------------------------------------------------------------------ #
    def start(self, instance: MKPInstance, config: TabuSearchConfig) -> None:
        """Bind the workers to a problem; reuses live workers when possible.

        On a cold backend this spawns the worker fleet (problem data crosses
        the process boundary once, at spawn).  On an already-started backend
        it *never* respawns: the same problem (by content hash) and config is
        a no-op — the workers' warm arenas stay valid — and a different
        problem ships one :data:`~repro.parallel.message.REBIND_TAG` message
        per live worker, which rebuilds its ``SlaveRuntime`` in place.  Dead
        workers are left to the round loop's lazy respawn, which picks up the
        new problem from the updated backend fields.
        """
        if self._procs:
            if _same_problem(self._instance, self._config, instance, config):
                self.warm_reuses += 1
                return
            self.rebinds += 1
            self._instance = instance
            self._config = config
            self._stale_due.clear()
            for w in range(self.n_workers):
                comm = self._comms[w]
                proc = self._procs[w]
                if comm is None or comm.closed or proc is None or not proc.is_alive():
                    continue  # lazily respawned (with the new problem) on use
                try:
                    comm.send((instance, config), tag=REBIND_TAG)
                    comm.codec.n_items = instance.n_items
                except (BrokenPipeError, OSError, CommClosedError):
                    self._bury(w)
            return
        self._instance = instance
        self._config = config
        self._procs = [None] * self.n_workers
        self._comms = [None] * self.n_workers
        self._rings = [None] * self.n_workers
        self.worker_transports = ["pipe"] * self.n_workers
        for w in range(self.n_workers):
            self._spawn(w)

    def run_round(self, tasks: Sequence[SlaveTask | None]) -> list[SlaveReport]:
        if not self._procs:
            raise RuntimeError("backend not started: call start() first")
        _validate_round(tasks, self.n_slaves)
        plan = self.fault_plan
        self.last_task_nbytes = {}
        self.last_report_nbytes = {}
        self.last_gather_idle_s = {}
        self.last_master_wait_s = 0.0
        t_scatter = time.perf_counter()
        # Scatter: non-blocking from the master's perspective (pipes buffer).
        # Tasks are grouped per worker; with batch_k == 1 the classic
        # one-message-per-slave wire is preserved bit-for-bit, otherwise a
        # group's tasks travel as one batched frame.
        per_worker: dict[int, list[tuple[int, SlaveTask]]] = {}
        for k, task in enumerate(tasks):
            if task is None:
                continue
            per_worker.setdefault(k // self.batch_k, []).append((k, task))
        expected: dict[int, int] = {}
        for w, entries in per_worker.items():
            try:
                comm = self._ensure_alive(w)
                if self.batch_k == 1:
                    k, task = entries[0]
                    before = comm.bytes_sent
                    comm.send(task, tag=TASK_TAG)
                    self.last_task_nbytes[k] = comm.bytes_sent - before
                    # The plan is shared with the worker, so the master
                    # knows exactly how many report messages this round's
                    # task produces *now*: any stale reports the worker
                    # held from a delay fault flush first, a duplicate adds
                    # a copy, and a delayed report adds nothing this round
                    # — it becomes stale debt charged when it arrives.
                    n_expected = self._stale_due.pop(k, 0)
                    copies = (
                        2 if plan.duplicates_report(task.round_index, k) else 1
                    )
                    if plan.delays_report(task.round_index, k):
                        self._stale_due[k] += copies
                    else:
                        n_expected += copies
                    expected[w] = n_expected
                else:
                    self.last_task_nbytes.update(comm.send_tasks(entries))
                    expected[w] = 1  # one batch message, faults or not
            except (BrokenPipeError, OSError, CommClosedError):
                # The worker died between liveness check and send; the
                # round proceeds without it and the next round respawns.
                self.fault_counters["send_failed"] += 1
                self._bury(w)
        # Gather: one multiplexed event loop over every outstanding
        # doorbell pipe, bounded by a single whole-round deadline.
        # Messages are consumed in arrival order; a slow worker never
        # blocks a fast one.
        t_gather = time.perf_counter()
        deadline = (
            None if self.round_timeout_s is None else t_gather + self.round_timeout_s
        )
        got: Counter[int] = Counter()
        pending = {
            w for w, n in expected.items() if n > 0 and self._comms[w] is not None
        }
        reports: list[SlaveReport] = []
        first_report_s: float | None = None
        wait_s = 0.0
        while pending:
            live = {}
            for w in pending:
                comm = self._comms[w]
                if comm is not None and not comm.closed:
                    live[comm.connection] = w
            if not live:
                break
            timeout = None
            if deadline is not None:
                timeout = deadline - time.perf_counter()
                if timeout <= 0.0:
                    break
            t_wait = time.perf_counter()
            ready = mp_connection.wait(list(live), timeout)
            wait_s += time.perf_counter() - t_wait
            if not ready:
                break  # round deadline expired with workers still silent
            for raw in ready:
                w = live[raw]
                comm = self._comms[w]
                if comm is None or comm.closed:  # pragma: no cover - raced bury
                    pending.discard(w)
                    continue
                try:
                    while True:
                        obj = comm.recv(tag=RESULT_TAG)
                        now = time.perf_counter()
                        if first_report_s is None:
                            first_report_s = now - t_gather
                        batch = obj if isinstance(obj, list) else [obj]
                        for report, nbytes in zip(batch, comm.last_entry_nbytes):
                            self.last_gather_idle_s.setdefault(
                                report.slave_id, now - t_gather
                            )
                            self.last_report_nbytes[report.slave_id] = (
                                self.last_report_nbytes.get(report.slave_id, 0)
                                + nbytes
                            )
                            reports.append(report)
                        got[w] += 1
                        if got[w] >= expected[w]:
                            pending.discard(w)
                            break
                        if not comm.poll(0.0):
                            break  # duplicate still in flight; select again
                except (EOFError, OSError, TornFrameError, CommClosedError):
                    # The worker died mid-round (or tore its ring).
                    # Messages it delivered before dying still count;
                    # total silence is a loss.
                    if got[w] == 0:
                        self.fault_counters["gather_lost"] += 1
                    self._bury(w)
                    pending.discard(w)
        # Deadline expired: bury only the workers that produced nothing.  A
        # worker whose scheduled duplicate never surfaced is still alive and
        # keeps its accepted report (idempotency is the master's job).
        t_end = time.perf_counter()
        for w in pending:
            if got[w] == 0:
                self.fault_counters["gather_lost"] += 1
                self._bury(w)
                for k, _task in per_worker.get(w, ()):
                    self.last_gather_idle_s.setdefault(k, t_end - t_gather)
        self.last_master_wait_s = wait_s
        self.last_phase_seconds = {
            "scatter": t_gather - t_scatter,
            "compute": first_report_s if first_report_s is not None else 0.0,
            "gather": t_end - t_gather,
        }
        self.phase_totals.update(self.last_phase_seconds)
        self.phase_totals["master_wait"] += wait_s
        self.last_telemetry = RoundTelemetry(
            round_index=_round_index_of(tasks),
            phase_seconds=dict(self.last_phase_seconds),
            gather_idle_s=dict(self.last_gather_idle_s),
            master_wait_s=self.last_master_wait_s,
            task_nbytes=dict(self.last_task_nbytes),
            report_nbytes=dict(self.last_report_nbytes),
        )
        reports.sort(key=lambda r: (r.slave_id, r.seq_id))
        return reports

    # ------------------------------------------------------------------ #
    # Pipelined (bounded-staleness) API — DESIGN.md §5.9.

    def dispatch(self, slave_id: int, task: SlaveTask) -> int:
        """Send one task to one slave without waiting for any report.

        The task travels as a single-entry *batch* envelope, so the worker
        serves it on the batched path regardless of its primary id (the
        classic scalar path always executes as the worker's first slave) and
        always answers with one batch message — possibly empty when a drop
        fault destroyed the report, which keeps the doorbell pipe's
        message-per-task cadence intact.  A dead worker is respawned lazily
        here; if the send itself fails the group's slaves are queued for
        :meth:`drain_dead_slaves` and 0 is returned.
        """
        if not self._procs:
            raise RuntimeError("backend not started: call start() first")
        w = slave_id // self.batch_k
        try:
            comm = self._ensure_alive(w)
            sizes = comm.send_tasks([(slave_id, task)])
            nbytes = sizes.get(slave_id, 0)
            self.last_task_nbytes[slave_id] = nbytes
            return nbytes
        except (BrokenPipeError, OSError, CommClosedError):
            self.fault_counters["send_failed"] += 1
            self._dead_slaves.update(self._group_slaves(w))
            self._bury(w)
            return 0

    def next_report(
        self, timeout_s: float | None = None
    ) -> tuple[SlaveReport, int] | None:
        """Wait for the next ``(report, payload_nbytes)`` pair in arrival order.

        One multiplexed ``connection.wait`` over every live worker pipe;
        coalesced doorbells are drained eagerly (``poll(0.0)`` loop) so a
        burst of arrivals costs one select.  Returns ``None`` when the
        timeout expires with nothing buffered, when no worker is left
        alive, or when a worker died during the wait (so the caller can
        observe the loss via :meth:`drain_dead_slaves` without blocking for
        the full timeout).  Worker death mid-drain buries the worker and
        records its slaves; reports it delivered before dying still count.
        """
        if self._report_buffer:
            return self._report_buffer.popleft()
        if not self._procs:
            return None
        deadline = None if timeout_s is None else time.perf_counter() + timeout_s
        n_dead_before = len(self._dead_slaves)
        while True:
            live: dict[object, int] = {}
            for w in range(self.n_workers):
                comm = self._comms[w]
                if comm is not None and not comm.closed:
                    live[comm.connection] = w
            if not live:
                return None
            timeout = None
            if deadline is not None:
                timeout = deadline - time.perf_counter()
                if timeout <= 0.0:
                    return None
            t_wait = time.perf_counter()
            ready = mp_connection.wait(list(live), timeout)
            self.last_master_wait_s = time.perf_counter() - t_wait
            if not ready:
                return None  # deadline expired with every worker silent
            for raw in ready:
                w = live[raw]
                comm = self._comms[w]
                if comm is None or comm.closed:  # pragma: no cover - raced bury
                    continue
                try:
                    while comm.poll(0.0):
                        obj = comm.recv(tag=RESULT_TAG)
                        batch = obj if isinstance(obj, list) else [obj]
                        for report, nbytes in zip(batch, comm.last_entry_nbytes):
                            self.last_report_nbytes[report.slave_id] = (
                                self.last_report_nbytes.get(report.slave_id, 0)
                                + nbytes
                            )
                            self._report_buffer.append((report, nbytes))
                except (EOFError, OSError, TornFrameError, CommClosedError):
                    self.fault_counters["gather_lost"] += 1
                    self._dead_slaves.update(self._group_slaves(w))
                    self._bury(w)
            if self._report_buffer:
                return self._report_buffer.popleft()
            if len(self._dead_slaves) > n_dead_before:
                return None  # surface the loss instead of re-waiting
            # Only empty batches (drop faults) arrived; keep waiting.

    def drain_dead_slaves(self) -> list[int]:
        """Slave ids lost since the last call (send/gather failures).

        Consuming: the set is cleared.  Buffered reports those slaves
        delivered before dying remain valid and still surface through
        :meth:`next_report` — death invalidates the *in-flight*, not the
        already-arrived.
        """
        dead = sorted(self._dead_slaves)
        self._dead_slaves.clear()
        return dead

    def shutdown(self) -> None:
        """Stop every worker, bounded by one shared deadline.

        Signals *all* workers first, then joins each against the remaining
        budget of a single ``shutdown_timeout_s`` window — P hung workers
        cost the deadline once, not ``P × 10`` seconds of sequential joins.
        Whoever is still alive afterwards is terminated.

        Idempotent by contract (``tests/test_backends.py`` pins it): calling
        it twice, before ``start()``, or after workers already died/were
        buried is a no-op beyond releasing whatever is still held, and a
        later ``start()`` spawns a fresh fleet.
        """
        if not self._procs and not self._comms:
            return
        for comm in self._comms:
            if comm is None or comm.closed:
                continue
            try:
                comm.send(None, tag=STOP_TAG)
            except (BrokenPipeError, OSError, CommClosedError):  # pragma: no cover - dead worker
                pass
        deadline = time.monotonic() + self.shutdown_timeout_s
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
        stragglers = [p for p in self._procs if p is not None and p.is_alive()]
        for proc in stragglers:  # pragma: no cover - defensive
            proc.terminate()
        for proc in stragglers:  # pragma: no cover - defensive
            proc.join(timeout=5)
        for comm in self._comms:
            if comm is not None:
                comm.close()
        for rings in self._rings:
            if rings is not None:
                for ring in rings:
                    ring.close()
                    ring.unlink()
        self._procs = []
        self._comms = []
        self._rings = []
        self.worker_transports = []
        self._stale_due.clear()
        self._report_buffer.clear()
        self._dead_slaves.clear()

    def __enter__(self) -> "MultiprocessingBackend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()
