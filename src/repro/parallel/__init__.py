"""Message-passing substrate: PVM/MPI-style comm + execution backends."""

from .backend_socket import SocketBackend, run_worker
from .backends import Backend, MultiprocessingBackend, SerialBackend
from .comm import (
    Comm,
    CommClosedError,
    CommTimeout,
    InProcComm,
    MessageRouter,
    PipeComm,
)
from .faults import ChaosComm, FaultEvent, FaultKind, FaultPlan
from .message import (
    PROBLEM_TAG,
    RESULT_TAG,
    SlaveReport,
    SlaveTask,
    payload_nbytes,
)
from .runtime import SlaveRuntime
from .shm import (
    RingEmpty,
    RingFull,
    ShmComm,
    ShmRing,
    TornFrameError,
    WireCodec,
    resolve_transport,
    shm_available,
)
from .slave import execute_task

__all__ = [
    "ShmRing",
    "ShmComm",
    "WireCodec",
    "RingEmpty",
    "RingFull",
    "TornFrameError",
    "resolve_transport",
    "shm_available",
    "SlaveRuntime",
    "Backend",
    "SerialBackend",
    "MultiprocessingBackend",
    "SocketBackend",
    "run_worker",
    "Comm",
    "InProcComm",
    "PipeComm",
    "MessageRouter",
    "CommTimeout",
    "CommClosedError",
    "ChaosComm",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "SlaveTask",
    "SlaveReport",
    "payload_nbytes",
    "execute_task",
    "PROBLEM_TAG",
    "RESULT_TAG",
]
