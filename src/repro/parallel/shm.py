"""Zero-copy shared-memory transport: seqlock rings + compact wire frames.

The PR-4 gather rewrite left exactly one per-round cost the pipes cannot
shed: every task and report still crosses the kernel as a pickled pipe
message.  This module demotes the pipe to a *doorbell* — a constant-size
``(tag, nbytes, b"")`` frame that only says "a message is waiting" — while
the actual payload moves through a ``multiprocessing.shared_memory`` ring
buffer that both sides map once, at spawn.

Three layers, bottom up:

:class:`ShmRing`
    A single-producer/single-consumer byte ring over one shared-memory
    segment.  The 64-byte header holds the write/read cursors plus a
    seqlock-style write sequence counter (``wseq``): the writer makes it
    odd before touching the cursor and even after, so a reader that loads
    an odd value — or sees the value change across its cursor snapshot —
    knows it raced a write and retries.  Each frame additionally carries a
    monotone frame sequence number; a reader that decodes a frame whose
    number is not exactly "last read + 1" raises :class:`TornFrameError`
    instead of silently consuming garbage (the property suite in
    ``tests/test_shm.py`` forges both corruptions).

:class:`WireCodec`
    Fixed binary frames (``struct``, no pickle) for
    :class:`~repro.parallel.message.SlaveTask` /
    :class:`~repro.parallel.message.SlaveReport` and their batched forms.
    Solutions travel as the PR-3 packed-word frames (``8 + ceil(n/8)``
    bytes) and are rebuilt through the same
    :func:`~repro.core.solution._solution_from_wire` hook as the pickle
    path, so the decoded object seeds the identical ``packed_words`` memo.

:class:`ShmComm`
    A :class:`~repro.parallel.comm.PipeComm`-compatible endpoint: same
    ``send``/``recv``/``poll``/``close`` surface, same byte counters, same
    ``.connection`` handle for the multiplexed gather — but ``send``
    encodes the message with the codec, writes the frame into the ring and
    pushes only the doorbell through the pipe.  When a ring is absent
    (non-POSIX host, exhausted shm, attach failure) or momentarily full,
    the *same frame bytes* ride in-band through the pipe instead — the
    receive side keys off the doorbell's empty payload, so no negotiation
    is needed and the byte ledgers are identical either way.  That
    equality is what keeps serialized run records byte-identical across
    ``transport ∈ {pipe, shm}`` (the differential suite's contract).

Transport selection: :func:`resolve_transport` prefers an explicit
argument, then ``REPRO_TRANSPORT`` (``shm`` | ``pipe``), then picks
``shm`` wherever :func:`shm_available` proves a segment can actually be
created — pipes remain the automatic fallback everywhere else.
"""

from __future__ import annotations

import os
import struct
import time
from typing import Any

from ..core.reduction import _pattern_from_wire
from ..core.solution import Solution, _solution_from_wire
from ..core.strategy import Strategy
from ..core.termination import Budget
from .comm import CommTimeout, PipeComm
from .message import RESULT_TAG, TASK_TAG, SlaveReport, SlaveTask

__all__ = [
    "DEFAULT_RING_NBYTES",
    "FrameTooLarge",
    "RingEmpty",
    "RingFull",
    "ShmComm",
    "ShmRing",
    "TornFrameError",
    "WireCodec",
    "resolve_transport",
    "shm_available",
]


class RingError(RuntimeError):
    """Base class for ring-buffer protocol errors."""


class RingFull(RingError):
    """``write`` found too little free space for the frame."""


class RingEmpty(RingError):
    """``read`` found no complete frame in the ring."""


class FrameTooLarge(RingError):
    """The frame can never fit the ring, even empty."""


class TornFrameError(RingError):
    """The reader observed a torn or out-of-sequence frame.

    Raised when the seqlock stays odd past the spin budget (writer died
    mid-write) or when a decoded frame header fails validation (frame
    sequence number out of order, length beyond the readable span) —
    i.e. whenever consuming the bytes would return garbage.
    """


# ---------------------------------------------------------------------- #
# Ring buffer
# ---------------------------------------------------------------------- #

#: Default ring capacity per direction.  A GK-scale round moves a few KiB
#: per slave; 1 MiB absorbs whole batched rounds plus chaos duplicates
#: without ever exercising the in-band overflow fallback.
DEFAULT_RING_NBYTES = 1 << 20

_HEADER_NBYTES = 64
_MAGIC = 0x53_4C_52_50  # "SLRP"
_OFF_MAGIC = 0
_OFF_CAPACITY = 8
_OFF_WIDX = 16
_OFF_WSEQ = 24
_OFF_RIDX = 32
_OFF_FRAMES_WRITTEN = 40
_OFF_FRAMES_READ = 48

_U64 = struct.Struct("<Q")
_FRAME_HEADER = struct.Struct("<II")  # payload length, frame sequence number


class ShmRing:
    """SPSC byte ring over one ``multiprocessing.shared_memory`` segment.

    Cursors are *logical* (monotonically increasing) offsets; the physical
    position is ``cursor % capacity``, so ``widx - ridx`` is always the
    exact number of unread bytes and full/empty never alias.  CPython's
    allocator-level memory operations make each 8-byte header store
    effectively atomic under the GIL-free reader; the seqlock exists
    because the *pair* (cursor advance + payload bytes) is not.
    """

    def __init__(self, shm: Any, *, owner: bool, spin: int = 10_000) -> None:
        self._shm = shm
        self._buf = shm.buf
        self.owner = bool(owner)
        self._spin = int(spin)
        self._closed = False
        self.capacity = int(self._get(_OFF_CAPACITY))

    # -- construction -------------------------------------------------- #
    @classmethod
    def create(cls, capacity: int = DEFAULT_RING_NBYTES, *, spin: int = 10_000) -> "ShmRing":
        """Allocate a fresh segment and initialise the header."""
        if capacity < _FRAME_HEADER.size + 1:
            raise ValueError(f"ring capacity too small: {capacity}")
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=_HEADER_NBYTES + capacity)
        ring = cls.__new__(cls)
        ring._shm = shm
        ring._buf = shm.buf
        ring.owner = True
        ring._spin = int(spin)
        ring._closed = False
        ring._buf[:_HEADER_NBYTES] = bytes(_HEADER_NBYTES)
        ring._set(_OFF_CAPACITY, capacity)
        ring._set(_OFF_MAGIC, _MAGIC)
        ring.capacity = int(capacity)
        return ring

    @classmethod
    def attach(cls, name: str, *, spin: int = 10_000) -> "ShmRing":
        """Map an existing segment by name (the non-owning side)."""
        from multiprocessing import resource_tracker, shared_memory

        # CPython (3.8–3.12) registers the segment with the resource
        # tracker on *attach* as well as create; left alone, the shared
        # tracker would try to unlink a segment the creating side still
        # owns (and lose the creator's registration, so the real unlink
        # later warns).  Suppress registration for the duration of the
        # attach — the creating side keeps sole unlink responsibility.
        orig_register = resource_tracker.register

        def _no_register(name_: str, rtype: str) -> None:
            if rtype != "shared_memory":  # pragma: no cover - other rtypes
                orig_register(name_, rtype)

        resource_tracker.register = _no_register
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = orig_register
        ring = cls(shm, owner=False, spin=spin)
        if ring._get(_OFF_MAGIC) != _MAGIC:
            ring.close()
            raise ValueError(f"segment {name!r} is not a ShmRing")
        return ring

    # -- header accessors ---------------------------------------------- #
    def _get(self, offset: int) -> int:
        return _U64.unpack_from(self._buf, offset)[0]

    def _set(self, offset: int, value: int) -> None:
        _U64.pack_into(self._buf, offset, value & 0xFFFF_FFFF_FFFF_FFFF)

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def closed(self) -> bool:
        return self._closed

    def used(self) -> int:
        """Unread bytes currently in the ring (reader-safe snapshot)."""
        return self._stable_widx() - self._get(_OFF_RIDX)

    def free(self) -> int:
        return self.capacity - (self._get(_OFF_WIDX) - self._get(_OFF_RIDX))

    @property
    def frames_written(self) -> int:
        """Total frames ever published into the ring."""
        return self._get(_OFF_FRAMES_WRITTEN)

    @property
    def frames_read(self) -> int:
        """Total frames ever consumed from the ring."""
        return self._get(_OFF_FRAMES_READ)

    def pending_frames(self) -> int:
        """Frames published but not yet consumed (queue depth on the wire).

        The pipelined master dispatches up to its queue depth ahead of the
        reader, so this is the per-ring observable that distinguishes "the
        worker is behind" from "the ring is idle" when diagnosing a stall.
        """
        return max(0, self.frames_written - self.frames_read)

    # -- wrap-aware byte copies ---------------------------------------- #
    def _write_bytes(self, at: int, data: bytes) -> None:
        pos = at % self.capacity
        first = min(len(data), self.capacity - pos)
        lo = _HEADER_NBYTES + pos
        self._buf[lo : lo + first] = data[:first]
        if first < len(data):
            rest = len(data) - first
            self._buf[_HEADER_NBYTES : _HEADER_NBYTES + rest] = data[first:]

    def _read_bytes(self, at: int, n: int) -> bytes:
        pos = at % self.capacity
        first = min(n, self.capacity - pos)
        lo = _HEADER_NBYTES + pos
        out = bytes(self._buf[lo : lo + first])
        if first < n:
            out += bytes(self._buf[_HEADER_NBYTES : _HEADER_NBYTES + (n - first)])
        return out

    # -- seqlock -------------------------------------------------------- #
    def _stable_widx(self) -> int:
        """Consistent write-cursor snapshot; spins across in-flight writes."""
        for attempt in range(self._spin):
            seq = self._get(_OFF_WSEQ)
            if seq & 1:  # writer mid-frame: cursor may be half-published
                if attempt > 100:
                    time.sleep(0.0001)
                continue
            widx = self._get(_OFF_WIDX)
            if self._get(_OFF_WSEQ) == seq:
                return widx
        raise TornFrameError(
            "write seqlock never stabilised "
            f"(wseq={self._get(_OFF_WSEQ)}; writer crashed mid-frame?)"
        )

    # -- frame I/O ------------------------------------------------------ #
    def write(self, payload: bytes) -> int:
        """Append one frame; returns its sequence number.

        Raises :class:`RingFull` when the frame does not currently fit and
        :class:`FrameTooLarge` when it never can.
        """
        data = bytes(payload)
        need = _FRAME_HEADER.size + len(data)
        if need > self.capacity:
            raise FrameTooLarge(
                f"frame of {len(data)} bytes exceeds ring capacity {self.capacity}"
            )
        widx = self._get(_OFF_WIDX)
        if need > self.capacity - (widx - self._get(_OFF_RIDX)):
            raise RingFull(f"{need} bytes needed, {self.free()} free")
        fseq = (self._get(_OFF_FRAMES_WRITTEN) + 1) & 0xFFFF_FFFF
        wseq = self._get(_OFF_WSEQ)
        self._set(_OFF_WSEQ, wseq + 1)  # odd: write in flight
        self._write_bytes(widx, _FRAME_HEADER.pack(len(data), fseq))
        self._write_bytes(widx + _FRAME_HEADER.size, data)
        self._set(_OFF_FRAMES_WRITTEN, self._get(_OFF_FRAMES_WRITTEN) + 1)
        self._set(_OFF_WIDX, widx + need)
        self._set(_OFF_WSEQ, wseq + 2)  # even: frame fully published
        return fseq

    def try_write(self, payload: bytes) -> int | None:
        """Like :meth:`write` but returns ``None`` instead of RingFull."""
        try:
            return self.write(payload)
        except RingFull:
            return None

    def read(self) -> bytes:
        """Consume and return the next frame's payload.

        Raises :class:`RingEmpty` with no complete frame published and
        :class:`TornFrameError` when validation fails (see class doc).
        """
        widx = self._stable_widx()
        ridx = self._get(_OFF_RIDX)
        avail = widx - ridx
        if avail == 0:
            raise RingEmpty("no frame in ring")
        if avail < _FRAME_HEADER.size:
            raise TornFrameError(f"partial frame header: {avail} bytes readable")
        length, fseq = _FRAME_HEADER.unpack(self._read_bytes(ridx, _FRAME_HEADER.size))
        expected = (self._get(_OFF_FRAMES_READ) + 1) & 0xFFFF_FFFF
        if fseq != expected:
            raise TornFrameError(
                f"frame sequence {fseq} != expected {expected} (torn or corrupt ring)"
            )
        if length > avail - _FRAME_HEADER.size:
            raise TornFrameError(
                f"frame claims {length} payload bytes, only "
                f"{avail - _FRAME_HEADER.size} readable"
            )
        data = self._read_bytes(ridx + _FRAME_HEADER.size, length)
        self._set(_OFF_FRAMES_READ, self._get(_OFF_FRAMES_READ) + 1)
        self._set(_OFF_RIDX, ridx + _FRAME_HEADER.size + length)
        return data

    def poll(self) -> bool:
        """Whether :meth:`read` would return (or raise Torn) right now."""
        try:
            return self.used() > 0
        except TornFrameError:
            return True  # let read() surface the diagnosis

    # -- lifecycle ------------------------------------------------------ #
    def close(self) -> None:
        """Drop this side's mapping; idempotent."""
        if self._closed:
            return
        self._closed = True
        self._buf = None  # release the exported memoryview before unmap
        self._shm.close()

    def unlink(self) -> None:
        """Remove the segment name (owner side, after both closed)."""
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


# ---------------------------------------------------------------------- #
# Transport availability / selection
# ---------------------------------------------------------------------- #

_AVAILABLE: bool | None = None


def shm_available() -> bool:
    """Whether POSIX shared memory verifiably works on this host (cached)."""
    global _AVAILABLE
    if _AVAILABLE is None:
        if os.name != "posix":
            _AVAILABLE = False
        else:
            try:
                ring = ShmRing.create(capacity=64)
                ring.close()
                ring.unlink()
                _AVAILABLE = True
            except Exception:
                _AVAILABLE = False
    return _AVAILABLE


def resolve_transport(explicit: str | None = None) -> str:
    """Pick ``"shm"`` or ``"pipe"``: explicit > ``REPRO_TRANSPORT`` > auto.

    An explicit/env request for ``shm`` on a host without working POSIX
    shared memory degrades to ``pipe`` (the automatic-fallback contract)
    rather than erroring; anything other than ``shm``/``pipe`` is rejected.
    """
    choice = explicit
    if choice is None:
        env = os.environ.get("REPRO_TRANSPORT", "").strip().lower()
        choice = env or None
    if choice is not None:
        choice = choice.strip().lower()
        if choice not in ("shm", "pipe"):
            raise ValueError(f"unknown transport {choice!r}; expected 'shm' or 'pipe'")
    if choice is None:
        choice = "shm" if shm_available() else "pipe"
    elif choice == "shm" and not shm_available():
        choice = "pipe"
    return choice


# ---------------------------------------------------------------------- #
# Wire codec
# ---------------------------------------------------------------------- #

KIND_TASK = 1
KIND_REPORT = 2
KIND_TASK_BATCH = 3
KIND_REPORT_BATCH = 4

# kind, slave hint (task batches), seed, seq, round, strategy(3i), flags
_TASK_HEAD = struct.Struct("<Bqqii iii B".replace(" ", ""))
# kind, slave_id, seq, round, initial_value, evaluations, moves, n_elite
_REPORT_HEAD = struct.Struct("<BiqidqqH")
_BATCH_HEAD = struct.Struct("<BH")
_ENTRY_HEAD = struct.Struct("<iI")  # slave id, frame length
_VALUE = struct.Struct("<d")
_I64 = struct.Struct("<q")

_BUDGET_EVALS = 1
_BUDGET_MOVES = 2
_BUDGET_WALL = 4
_BUDGET_TARGET = 8
#: the strategy carries a non-unit core ratio (one <d follows the budget)
_HAS_CORE_RATIO = 16
#: the task carries a fixation pattern (two packed ceil(n/8) blocks:
#: core mask then fixed values — see repro.core.reduction)
_HAS_PATTERN = 32


class WireCodec:
    """Pickle-free binary frames for the task/report message family.

    One codec per (endpoint, instance): ``n_items`` fixes the packed
    solution width, so frames need no per-solution length field.  Frame
    sizes are deterministic functions of the message content — identical
    on both sides and across transports, which is what lets the doorbell
    path charge exactly the bytes the in-band path would.
    """

    def __init__(self, n_items: int) -> None:
        self.n_items = int(n_items)

    @property
    def solution_nbytes(self) -> int:
        return _VALUE.size + (self.n_items + 7) // 8

    # -- solutions ------------------------------------------------------ #
    def _put_solution(self, out: bytearray, sol: Solution) -> None:
        out += _VALUE.pack(sol.value)
        out += sol.packed_bytes()

    def _take_solution(self, buf: bytes, off: int) -> tuple[Solution, int]:
        (value,) = _VALUE.unpack_from(buf, off)
        off += _VALUE.size
        nb = (self.n_items + 7) // 8
        sol = _solution_from_wire(bytes(buf[off : off + nb]), self.n_items, value)
        return sol, off + nb

    # -- tasks ----------------------------------------------------------- #
    def encode_task(self, task: SlaveTask) -> bytes:
        budget = task.budget
        flags = 0
        if budget.max_evaluations is not None:
            flags |= _BUDGET_EVALS
        if budget.max_moves is not None:
            flags |= _BUDGET_MOVES
        if budget.wall_seconds is not None:
            flags |= _BUDGET_WALL
        if budget.target_value is not None:
            flags |= _BUDGET_TARGET
        if task.strategy.core_ratio != 1.0:
            flags |= _HAS_CORE_RATIO
        if task.pattern is not None:
            flags |= _HAS_PATTERN
        lt, drop, local = task.strategy.as_tuple()
        out = bytearray(
            _TASK_HEAD.pack(
                KIND_TASK, task.seed, task.seq_id, task.round_index, 0,
                lt, drop, local, flags,
            )
        )
        if flags & _BUDGET_EVALS:
            out += _I64.pack(budget.max_evaluations)
        if flags & _BUDGET_MOVES:
            out += _I64.pack(budget.max_moves)
        if flags & _BUDGET_WALL:
            out += _VALUE.pack(budget.wall_seconds)
        if flags & _BUDGET_TARGET:
            out += _VALUE.pack(budget.target_value)
        if flags & _HAS_CORE_RATIO:
            out += _VALUE.pack(task.strategy.core_ratio)
        if flags & _HAS_PATTERN:
            out += task.pattern.packed_mask_bytes()
            out += task.pattern.packed_values_bytes()
        self._put_solution(out, task.x_init)
        return bytes(out)

    def decode_task(self, frame: bytes) -> SlaveTask:
        kind, seed, seq_id, round_index, _, lt, drop, local, flags = (
            _TASK_HEAD.unpack_from(frame, 0)
        )
        if kind != KIND_TASK:
            raise ValueError(f"not a task frame (kind={kind})")
        off = _TASK_HEAD.size
        max_evaluations = max_moves = None
        wall_seconds = target_value = None
        if flags & _BUDGET_EVALS:
            (max_evaluations,) = _I64.unpack_from(frame, off)
            off += _I64.size
        if flags & _BUDGET_MOVES:
            (max_moves,) = _I64.unpack_from(frame, off)
            off += _I64.size
        if flags & _BUDGET_WALL:
            (wall_seconds,) = _VALUE.unpack_from(frame, off)
            off += _VALUE.size
        if flags & _BUDGET_TARGET:
            (target_value,) = _VALUE.unpack_from(frame, off)
            off += _VALUE.size
        core_ratio = 1.0
        if flags & _HAS_CORE_RATIO:
            (core_ratio,) = _VALUE.unpack_from(frame, off)
            off += _VALUE.size
        pattern = None
        if flags & _HAS_PATTERN:
            nb = (self.n_items + 7) // 8
            pattern = _pattern_from_wire(
                bytes(frame[off : off + nb]),
                bytes(frame[off + nb : off + 2 * nb]),
                self.n_items,
            )
            off += 2 * nb
        x_init, off = self._take_solution(frame, off)
        return SlaveTask(
            x_init=x_init,
            strategy=Strategy(lt, drop, local, core_ratio),
            budget=Budget(max_evaluations, max_moves, wall_seconds, target_value),
            seed=seed,
            round_index=round_index,
            seq_id=seq_id,
            pattern=pattern,
        )

    # -- reports --------------------------------------------------------- #
    def encode_report(self, report: SlaveReport) -> bytes:
        out = bytearray(
            _REPORT_HEAD.pack(
                KIND_REPORT, report.slave_id, report.seq_id, report.round_index,
                report.initial_value, report.evaluations, report.moves,
                len(report.elite),
            )
        )
        self._put_solution(out, report.best)
        for sol in report.elite:
            self._put_solution(out, sol)
        return bytes(out)

    def decode_report(self, frame: bytes) -> SlaveReport:
        kind, slave_id, seq_id, round_index, initial_value, evaluations, moves, n_elite = (
            _REPORT_HEAD.unpack_from(frame, 0)
        )
        if kind != KIND_REPORT:
            raise ValueError(f"not a report frame (kind={kind})")
        off = _REPORT_HEAD.size
        best, off = self._take_solution(frame, off)
        elite = []
        for _ in range(n_elite):
            sol, off = self._take_solution(frame, off)
            elite.append(sol)
        return SlaveReport(
            slave_id=slave_id,
            best=best,
            elite=elite,
            initial_value=initial_value,
            evaluations=evaluations,
            moves=moves,
            round_index=round_index,
            seq_id=seq_id,
        )

    # -- batches ---------------------------------------------------------- #
    def encode_task_batch(
        self, entries: list[tuple[int, SlaveTask]]
    ) -> tuple[bytes, dict[int, int]]:
        """Pack ``(slave_id, task)`` entries; also returns per-slave sizes.

        The per-entry sizes are the *individual* task-frame lengths (the
        batch envelope is uncharged), so the master's byte ledger for a
        batched round equals the ledger K per-message sends would produce.
        """
        out = bytearray(_BATCH_HEAD.pack(KIND_TASK_BATCH, len(entries)))
        sizes: dict[int, int] = {}
        for slave_id, task in entries:
            frame = self.encode_task(task)
            out += _ENTRY_HEAD.pack(slave_id, len(frame))
            out += frame
            sizes[slave_id] = len(frame)
        return bytes(out), sizes

    def decode_task_batch(
        self, frame: bytes
    ) -> tuple[list[tuple[int, SlaveTask]], list[int]]:
        """Unpack a task batch; returns the entries and per-entry sizes."""
        kind, count = _BATCH_HEAD.unpack_from(frame, 0)
        if kind != KIND_TASK_BATCH:
            raise ValueError(f"not a task batch frame (kind={kind})")
        off = _BATCH_HEAD.size
        entries = []
        sizes: list[int] = []
        for _ in range(count):
            slave_id, length = _ENTRY_HEAD.unpack_from(frame, off)
            off += _ENTRY_HEAD.size
            entries.append((slave_id, self.decode_task(frame[off : off + length])))
            sizes.append(length)
            off += length
        return entries, sizes

    def encode_report_batch(
        self, reports: list[SlaveReport]
    ) -> tuple[bytes, list[int]]:
        """Pack reports into one frame; also returns per-entry sizes."""
        out = bytearray(_BATCH_HEAD.pack(KIND_REPORT_BATCH, len(reports)))
        sizes: list[int] = []
        for report in reports:
            frame = self.encode_report(report)
            out += _ENTRY_HEAD.pack(report.slave_id, len(frame))
            out += frame
            sizes.append(len(frame))
        return bytes(out), sizes

    def decode_report_batch(
        self, frame: bytes
    ) -> tuple[list[SlaveReport], list[int]]:
        """Unpack a report batch; returns the reports and per-entry sizes."""
        kind, count = _BATCH_HEAD.unpack_from(frame, 0)
        if kind != KIND_REPORT_BATCH:
            raise ValueError(f"not a report batch frame (kind={kind})")
        off = _BATCH_HEAD.size
        reports: list[SlaveReport] = []
        sizes: list[int] = []
        for _ in range(count):
            _slave_id, length = _ENTRY_HEAD.unpack_from(frame, off)
            off += _ENTRY_HEAD.size
            reports.append(self.decode_report(frame[off : off + length]))
            sizes.append(length)
            off += length
        return reports, sizes

    # -- dispatch ---------------------------------------------------------- #
    def encode(self, obj: Any) -> bytes:
        if isinstance(obj, SlaveTask):
            return self.encode_task(obj)
        if isinstance(obj, SlaveReport):
            return self.encode_report(obj)
        raise TypeError(f"codec cannot encode {type(obj).__name__}")

    def decode(self, frame: bytes) -> Any:
        """Decode any codec frame by its kind byte (batches drop sizes)."""
        kind = frame[0]
        if kind == KIND_TASK:
            return self.decode_task(frame)
        if kind == KIND_REPORT:
            return self.decode_report(frame)
        if kind == KIND_TASK_BATCH:
            return self.decode_task_batch(frame)[0]
        if kind == KIND_REPORT_BATCH:
            return self.decode_report_batch(frame)[0]
        raise ValueError(f"unknown frame kind {kind}")


# ---------------------------------------------------------------------- #
# Comm facade
# ---------------------------------------------------------------------- #


class ShmComm:
    """Pipe-compatible endpoint that moves payloads through shm rings.

    Wraps one :class:`~repro.parallel.comm.PipeComm` (the doorbell) plus an
    optional send ring and receive ring.  Message family traffic (tasks,
    reports, batches) is codec-encoded; control messages (STOP, REBIND)
    keep the pickled pipe path — they are rare, unsized-by-the-farm, and
    may carry arbitrary objects.

    Per-message carrier selection, visible in the doorbell itself:

    * ring write succeeded → pipe frame ``(tag, nbytes, b"")``;
    * no ring / ring full  → pipe frame ``(tag, nbytes, frame_bytes)``.

    ``nbytes`` is always the codec frame length, so ``bytes_sent`` /
    ``bytes_received`` are carrier-independent.  ``pipe_payload_bytes``
    counts only the in-band bytes — the benchmark's "bytes through pipes"
    gate asserts it stays ≈ 0 on the shm path.
    """

    def __init__(
        self,
        pipe: PipeComm,
        codec: WireCodec,
        *,
        send_ring: ShmRing | None = None,
        recv_ring: ShmRing | None = None,
    ) -> None:
        self._pipe = pipe
        self.codec = codec
        self.send_ring = send_ring
        self.recv_ring = recv_ring
        self.bytes_sent = 0
        self.bytes_received = 0
        self.last_payload_nbytes = 0
        #: per-entry codec sizes of the last received message family frame
        self.last_entry_nbytes: list[int] = []
        #: payload bytes that actually crossed the pipe (overflow/fallback)
        self.pipe_payload_bytes = 0
        #: messages whose payload fell back to the in-band pipe carrier
        self.ring_overflows = 0

    # -- surface parity -------------------------------------------------- #
    @property
    def transport(self) -> str:
        return "shm" if (self.send_ring or self.recv_ring) else "pipe"

    @property
    def connection(self) -> Any:
        return self._pipe.connection

    @property
    def closed(self) -> bool:
        return self._pipe.closed

    def poll(self, timeout: float = 0.0) -> bool:
        return self._pipe.poll(timeout)

    def pending_frames(self) -> dict[str, int]:
        """Frames queued but unconsumed per ring direction (0 when pipe-only).

        Diagnostic for the pipelined dispatch mode: ``send`` counts tasks
        this endpoint queued ahead of the peer, ``recv`` counts reports the
        peer queued ahead of us (doorbells may coalesce — several frames can
        be pending behind one wakeup).
        """
        return {
            "send": self.send_ring.pending_frames() if self.send_ring else 0,
            "recv": self.recv_ring.pending_frames() if self.recv_ring else 0,
        }

    def close(self) -> None:
        """Close doorbell and ring mappings; never unlinks (owner's job)."""
        self._pipe.close()
        for ring in (self.send_ring, self.recv_ring):
            if ring is not None:
                ring.close()

    # -- send ------------------------------------------------------------- #
    def _dispatch(self, frame: bytes, tag: int) -> None:
        self.bytes_sent += len(frame)
        self.last_payload_nbytes = len(frame)
        inband: bytes = frame
        if self.send_ring is not None:
            try:
                if self.send_ring.write(frame) is not None:
                    inband = b""
            except (RingFull, FrameTooLarge):
                # Momentarily full or permanently too small: either way the
                # same frame bytes ride the pipe in-band instead.
                self.ring_overflows += 1
        if inband:
            self.pipe_payload_bytes += len(inband)
        # Raw doorbell push: PipeComm.send would re-pickle and re-charge.
        self._pipe._check_open()
        self._pipe.connection.send((tag, len(frame), inband))

    def send(self, obj: Any, dest: int = 0, tag: int = 0) -> None:
        if tag in (TASK_TAG, RESULT_TAG):
            self._dispatch(self.codec.encode(obj), tag)
            return
        # Control plane (STOP/REBIND/PROBLEM): plain pickled pipe message.
        before = self._pipe.bytes_sent
        self._pipe.send(obj, dest, tag)
        self.bytes_sent += self._pipe.bytes_sent - before
        self.last_payload_nbytes = self._pipe.bytes_sent - before

    def send_tasks(self, entries: list[tuple[int, SlaveTask]]) -> dict[int, int]:
        """Send one batched task message; returns per-slave charged sizes."""
        frame, sizes = self.codec.encode_task_batch(entries)
        self._dispatch(frame, TASK_TAG)
        # Charge per-entry frame bytes, not the envelope: identical ledger
        # to K individual sends (the cross-K differential contract).
        self.bytes_sent += sum(sizes.values()) - len(frame)
        self.last_payload_nbytes = sum(sizes.values())
        return sizes

    def send_reports(self, reports: list[SlaveReport]) -> None:
        """Send one batched report message (worker side)."""
        frame, sizes = self.codec.encode_report_batch(reports)
        self._dispatch(frame, RESULT_TAG)
        self.bytes_sent += sum(sizes) - len(frame)
        self.last_payload_nbytes = sum(sizes)

    # -- receive ----------------------------------------------------------- #
    def _resolve_payload(self, nbytes: int, inband: bytes) -> bytes:
        if inband:
            # Count arrivals too: one endpoint's ledger then bounds the
            # pipe-payload traffic in *both* directions (the bench gate).
            self.pipe_payload_bytes += len(inband)
            return inband
        if self.recv_ring is None:
            raise RuntimeError("doorbell without ring: no payload carrier")
        return self.recv_ring.read()

    def recv(self, source: int = 0, tag: int = 0, timeout: float | None = None) -> Any:
        """Receive one message with ``tag``; mirrors ``PipeComm.recv``."""
        got_tag, obj = self.recv_message(timeout=timeout)
        if got_tag != tag:
            raise RuntimeError(
                f"protocol error: expected message tag {tag}, received {got_tag}"
            )
        return obj

    def recv_message(self, timeout: float | None = None) -> tuple[int, Any]:
        """Receive the next message of any tag as ``(tag, obj)``."""
        self._pipe._check_open()
        conn = self._pipe.connection
        if timeout is not None and not conn.poll(timeout):
            raise CommTimeout(
                f"no message within {timeout:.3f}s; peer crashed or hung?"
            )
        tag, nbytes, body = conn.recv()
        if tag not in (TASK_TAG, RESULT_TAG):
            # Control plane: body is the pickled object itself.
            self.bytes_received += nbytes
            self.last_payload_nbytes = nbytes
            self.last_entry_nbytes = [nbytes]
            return tag, body
        frame = self._resolve_payload(nbytes, body)
        kind = frame[0]
        if kind == KIND_TASK_BATCH:
            obj, sizes = self.codec.decode_task_batch(frame)
        elif kind == KIND_REPORT_BATCH:
            obj, sizes = self.codec.decode_report_batch(frame)
        else:
            obj = self.codec.decode(frame)
            sizes = [len(frame)]
        self.last_entry_nbytes = sizes
        self.bytes_received += sum(sizes)
        self.last_payload_nbytes = sum(sizes)
        return tag, obj

