"""Low-level parallelism: distributed neighborhood evaluation (§2, source 2).

The paper lists four sources of parallelism in tabu search and dismisses
the first two — cost-function and neighborhood evaluation — as "low level
approaches" whose fine granularity suits only specialized hardware
(Chakrapani & Skorin-Kapov's massively parallel QAP machine, ref. [2]).
It then builds on source 4 (parallel search threads) because coarse grain
"minimiz[es] the communication overhead".

This module implements source 2 anyway, so the claim is *measurable* in
this reproduction rather than taken on faith: a candidate-scoring kernel
that can run serially, chunked in-process (the vectorization baseline), or
fanned out over worker processes.  Benchmark A10 compares the three and
shows the process fan-out losing by orders of magnitude at MKP
neighborhood sizes — the quantitative version of the paper's §2 argument.

The scoring function is the Drop rule's: ``a_{i*, j} / c_j`` over a set of
candidate items, where ``i*`` is the most saturated constraint.  All three
evaluators are thin views over :func:`repro.core.kernels.drop_ratios` — the
same flat-array kernel the in-thread :class:`~repro.core.moves.MoveEngine`
scores through — so benchmark A10's serial/chunked/process comparison
measures transport and partitioning overhead against *identical* scoring
code, not three divergent implementations.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass

import numpy as np

from ..core.instance import MKPInstance
from ..core.kernels import drop_ratios
from ..core.solution import SearchState

__all__ = [
    "score_candidates",
    "score_candidates_chunked",
    "ProcessPoolNeighborhoodEvaluator",
]


def score_candidates(
    instance: MKPInstance, i_star: int, candidates: np.ndarray
) -> np.ndarray:
    """Vectorized reference kernel: drop-rule ratios for ``candidates``."""
    candidates = np.asarray(candidates, dtype=np.intp)
    return drop_ratios(instance.weights[i_star], instance.profits, candidates)


def score_candidates_chunked(
    instance: MKPInstance,
    i_star: int,
    candidates: np.ndarray,
    n_chunks: int,
) -> np.ndarray:
    """The same kernel computed in ``n_chunks`` pieces (in-process).

    Models the partitioning a parallel evaluator would do, without any
    transport cost — the best case for fine-grain parallelism.
    """
    if n_chunks < 1:
        raise ValueError("n_chunks must be >= 1")
    candidates = np.asarray(candidates, dtype=np.intp)
    if candidates.size == 0:
        return np.empty(0)
    pieces = np.array_split(candidates, min(n_chunks, candidates.size))
    return np.concatenate(
        [score_candidates(instance, i_star, piece) for piece in pieces]
    )


def _worker_score(args: tuple) -> np.ndarray:  # pragma: no cover - subprocess
    weights_row, profits, candidates = args
    return drop_ratios(weights_row, profits, candidates)


@dataclass
class ProcessPoolNeighborhoodEvaluator:
    """Source-2 parallelism over real worker processes.

    Each ``evaluate`` call ships candidate chunks to a process pool and
    gathers the partial score vectors.  This is deliberately the naive
    design the paper warns about: per-move communication of O(neighborhood)
    data.  Use :meth:`close` (or a ``with`` block) to release the pool.
    """

    instance: MKPInstance
    n_workers: int = 2

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self._pool = mp.get_context("fork").Pool(self.n_workers)

    def evaluate(self, i_star: int, candidates: np.ndarray) -> np.ndarray:
        candidates = np.asarray(candidates, dtype=np.intp)
        if candidates.size == 0:
            return np.empty(0)
        chunks = np.array_split(candidates, min(self.n_workers, candidates.size))
        weights_row = self.instance.weights[i_star]
        jobs = [(weights_row, self.instance.profits, chunk) for chunk in chunks]
        return np.concatenate(self._pool.map(_worker_score, jobs))

    def close(self) -> None:
        self._pool.close()
        self._pool.join()

    def __enter__(self) -> "ProcessPoolNeighborhoodEvaluator":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def drop_candidates_of(state: SearchState) -> tuple[int, np.ndarray]:
    """Convenience: the (i*, packed items) pair the Drop rule scores."""
    return state.most_saturated_constraint(), state.packed_items()


def score_with_kernel(state: SearchState, candidates: np.ndarray) -> np.ndarray:
    """Score ``candidates`` through the state's own preallocated kernel.

    This is literally the in-thread hot path (scratch-buffer reuse and the
    cached ``i*``); the serial baseline in benchmark A10 calls this so the
    comparison's zero-transport case is the true production code path.
    Returns a copy (the kernel's scratch is reused by the next call).
    """
    candidates = np.asarray(candidates, dtype=np.intp)
    kernel = state.kernel
    return kernel.scores(kernel.most_saturated_constraint(), candidates).copy()
