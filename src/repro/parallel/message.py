"""Message types exchanged between the master and slave processes.

One search round of the synchronous scheme (Fig. 2) is two messages per
slave: a :class:`SlaveTask` down (initial solution + strategy + budget +
seed) and a :class:`SlaveReport` back up (the ``B`` best solutions plus the
scoring/accounting signals).  Both are plain picklable dataclasses so the
same objects travel over an in-process deque, a ``multiprocessing`` pipe, or
— in the simulated farm — feed the byte-size cost model via
:func:`payload_nbytes`.

The dominant payload on both legs is 0/1 solution vectors.  Those ship as
packed-bitset frames (``ceil(n/8)`` payload bytes, ~64 for a 500-item
instance) via :class:`~repro.core.solution.Solution`'s pickle hook rather
than as pickled dense ``int8`` ndarrays — see ``set_wire_codec`` /
``wire_codec_enabled`` in :mod:`repro.core.solution` for the toggle, and
``benchmarks/bench_bitset.py`` for the measured bytes-per-round shrink.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field

from ..core.reduction import FixationPattern
from ..core.solution import Solution
from ..core.strategy import Strategy
from ..core.termination import Budget

__all__ = ["SlaveTask", "SlaveReport", "payload_nbytes", "PROBLEM_TAG", "RESULT_TAG"]

#: Message tags, mirroring the mpi4py ``tag`` convention.
PROBLEM_TAG = 0
TASK_TAG = 1
RESULT_TAG = 2
#: Carries a fresh ``(instance, config)`` pair to a live worker so a
#: long-lived backend can be re-``start()``-ed on a new problem without
#: respawning its processes (DESIGN.md §5.6 service leasing).
REBIND_TAG = 3
STOP_TAG = 99


@dataclass(frozen=True)
class SlaveTask:
    """What the master hands a slave for one search round.

    ``seed`` replaces shipping generator state across process boundaries
    (see :mod:`repro.rng`).  ``round_index`` and ``seq_id`` make report
    handling idempotent: the slave echoes both back on its
    :class:`SlaveReport`, letting the master discard duplicated or stale
    (delayed) reports instead of double-counting them.
    """

    x_init: Solution
    strategy: Strategy
    budget: Budget
    seed: int
    round_index: int = 0
    #: unique per (round, slave) — the idempotency key echoed by the report
    seq_id: int = 0
    #: LP-core fixation for this round (ISSUE-8); ``None`` = full-space
    #: search.  ``x_init`` is always full-space — the slave runtime projects
    #: it onto the core and lifts its report back, so the master never sees
    #: reduced coordinates.
    pattern: FixationPattern | None = None

    def __reduce__(self):
        # Compact wire form: positional args with the strategy and budget
        # flattened to plain tuples — the dataclass state dicts and nested
        # class references would otherwise cost more than the packed
        # solution frame they accompany.  Full-space tasks keep the
        # historical 6-tuple (no pattern, core_ratio elided when 1.0), so
        # their pickle bytes — and the byte ledgers — are unchanged.
        budget = self.budget
        args = (
            self.x_init,
            self.strategy.as_tuple()
            if self.strategy.core_ratio == 1.0
            else (*self.strategy.as_tuple(), self.strategy.core_ratio),
            (
                budget.max_evaluations,
                budget.max_moves,
                budget.wall_seconds,
                budget.target_value,
            ),
            self.seed,
            self.round_index,
            self.seq_id,
        )
        if self.pattern is not None:
            args = (*args, self.pattern)
        return (_task_from_wire, args)


@dataclass(frozen=True)
class SlaveReport:
    """What a slave returns after one search round.

    Carries everything the master's data structure needs (§4.2): the ``B``
    best solutions, the final best, the initial cost (for the ±1 scoring),
    and the evaluation count the farm model converts into virtual time.
    ``round_index``/``seq_id`` echo the originating task so the hardened
    master can deduplicate and drop stale deliveries.
    """

    slave_id: int
    best: Solution
    elite: list[Solution] = field(default_factory=list)
    initial_value: float = 0.0
    evaluations: int = 0
    moves: int = 0
    round_index: int = 0
    seq_id: int = 0

    def __reduce__(self):
        # Compact wire form (see SlaveTask.__reduce__).
        return (
            SlaveReport,
            (self.slave_id, self.best, self.elite, self.initial_value,
             self.evaluations, self.moves, self.round_index, self.seq_id),
        )

    @property
    def improved(self) -> bool:
        """§4.2 scoring signal: final cost strictly above initial cost."""
        return self.best.value > self.initial_value


def _task_from_wire(
    x_init: Solution,
    strategy: tuple,
    budget: tuple[int | None, int | None, float | None, float | None],
    seed: int,
    round_index: int,
    seq_id: int,
    pattern: FixationPattern | None = None,
) -> SlaveTask:
    """Rebuild a :class:`SlaveTask` from its compact wire tuple."""
    return SlaveTask(
        x_init=x_init,
        strategy=Strategy(*strategy),
        budget=Budget(*budget),
        seed=seed,
        round_index=round_index,
        seq_id=seq_id,
        pattern=pattern,
    )


def payload_nbytes(obj: object) -> int:
    """Serialized size of a message, as charged to the crossbar model.

    We charge the *actual* pickle size rather than an analytic estimate so
    the communication cost tracks what PVM would really pack.
    """
    return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
