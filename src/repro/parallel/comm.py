"""Point-to-point communication in the mpi4py idiom.

The guides' mpi4py tutorial fixes the API shape we mirror: lowercase
``send(obj, dest, tag)`` / ``recv(source, tag)`` moving pickled Python
objects.  Two realisations:

:class:`InProcComm`
    Per-(endpoint, tag) FIFO queues inside one process.  Used by the serial
    and simulated backends; :attr:`InProcComm.bytes_sent` feeds the farm's
    crossbar cost model.

:class:`PipeComm`
    A thin wrapper over a ``multiprocessing`` duplex pipe, giving worker
    processes the same two-method surface.

Both enforce *message conservation*: every ``recv`` returns an object that
was ``send``-ed exactly once (property-tested).
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Any, Protocol

from .message import payload_nbytes

__all__ = [
    "Comm",
    "InProcComm",
    "PipeComm",
    "MessageRouter",
    "CommTimeout",
    "CommClosedError",
]


class CommTimeout(TimeoutError):
    """A bounded ``recv`` expired before any message arrived."""


class CommClosedError(RuntimeError):
    """Send/recv attempted on an endpoint that was already closed."""


class Comm(Protocol):
    """Minimal point-to-point protocol (mpi4py lowercase subset)."""

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:  # pragma: no cover
        ...

    def recv(self, source: int, tag: int = 0) -> Any:  # pragma: no cover
        ...


class MessageRouter:
    """Shared mailbox fabric for a set of in-process endpoints.

    Endpoint ``r``'s inbox for tag ``t`` is keyed ``(r, t)``.  The router
    also keeps byte counters per (src, dest) pair and per tag so the
    simulated farm can charge the exact traffic to the crossbar and the
    benchmarks can attribute it to task/report streams.  Charged sizes are
    actual pickle sizes, so they reflect the packed-bitset wire codec of
    :class:`~repro.core.solution.Solution` (``ceil(n/8)``-byte frames
    instead of dense ``int8`` vectors) whenever it is enabled.
    """

    def __init__(self) -> None:
        self._queues: dict[tuple[int, int], deque[tuple[Any, int]]] = defaultdict(deque)
        self.bytes_by_pair: dict[tuple[int, int], int] = defaultdict(int)
        self.messages_by_pair: dict[tuple[int, int], int] = defaultdict(int)
        self.bytes_by_tag: dict[int, int] = defaultdict(int)
        self.messages_by_tag: dict[int, int] = defaultdict(int)

    def push(self, src: int, dest: int, tag: int, obj: Any) -> int:
        """Enqueue and return the charged payload size in bytes."""
        nbytes = payload_nbytes(obj)
        self._queues[(dest, tag)].append((obj, nbytes))
        self.bytes_by_pair[(src, dest)] += nbytes
        self.messages_by_pair[(src, dest)] += 1
        self.bytes_by_tag[tag] += nbytes
        self.messages_by_tag[tag] += 1
        return nbytes

    def pop(self, dest: int, tag: int) -> tuple[Any, int]:
        """Dequeue one ``(obj, nbytes)`` pair.

        The payload size measured at :meth:`push` rides along, so the
        receive side never re-pickles the object just to re-derive a number
        already known — a measurable cost in the round loop's hot path.
        """
        queue = self._queues[(dest, tag)]
        if not queue:
            raise RuntimeError(
                f"recv on empty mailbox: endpoint {dest}, tag {tag} "
                "(in-process comm is synchronous; send before recv)"
            )
        return queue.popleft()

    def pending(self, dest: int, tag: int) -> int:
        return len(self._queues[(dest, tag)])

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_pair.values())

    @property
    def total_messages(self) -> int:
        return sum(self.messages_by_pair.values())


class InProcComm:
    """One endpoint (rank) attached to a :class:`MessageRouter`."""

    def __init__(self, router: MessageRouter, rank: int) -> None:
        self.router = router
        self.rank = int(rank)
        self.bytes_sent = 0
        self.bytes_received = 0
        self.last_payload_nbytes = 0

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        nbytes = self.router.push(self.rank, dest, tag, obj)
        self.bytes_sent += nbytes
        self.last_payload_nbytes = nbytes

    def recv(self, source: int, tag: int = 0) -> Any:
        # ``source`` is advisory for in-process FIFOs (single mailbox per
        # (dest, tag)); kept for API parity with MPI.
        obj, nbytes = self.router.pop(self.rank, tag)
        self.bytes_received += nbytes
        self.last_payload_nbytes = nbytes
        return obj

    def probe(self, tag: int = 0) -> bool:
        """Non-blocking check whether a message is waiting (iprobe)."""
        return self.router.pending(self.rank, tag) > 0


class PipeComm:
    """mpi4py-style facade over one end of a ``multiprocessing`` pipe.

    Each master↔worker pair owns a private duplex pipe, so ``dest`` /
    ``source`` are fixed by construction and the arguments are accepted
    only for API parity.  Messages are framed as ``(tag, nbytes, obj)``,
    where ``nbytes`` is the sender-measured payload size (so both ends book
    the same byte charge with a single pickle); a recv with a mismatched
    tag is a protocol error, loudly reported.

    Hardened surface (chaos-test requirements): ``recv`` takes an optional
    ``timeout`` in seconds and raises :class:`CommTimeout` instead of
    blocking forever on a dead peer; ``close`` is idempotent; operations on
    a closed endpoint raise :class:`CommClosedError` rather than hitting
    the raw OS handle.
    """

    def __init__(self, connection: Any) -> None:
        self._conn = connection
        self._closed = False
        self.bytes_sent = 0
        self.bytes_received = 0

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def connection(self) -> Any:
        """The underlying OS connection (for ``multiprocessing.connection.wait``).

        The multiplexed gather selects over many endpoints at once; exposing
        the raw handle read-only keeps the event loop out of this class
        while the tagged-protocol framing stays behind :meth:`recv`.
        """
        return self._conn

    def _check_open(self) -> None:
        if self._closed:
            raise CommClosedError("operation on closed PipeComm endpoint")

    def send(self, obj: Any, dest: int = 0, tag: int = 0) -> None:
        self._check_open()
        nbytes = payload_nbytes(obj)
        self.bytes_sent += nbytes
        # The charged size rides in the frame so the receive side books the
        # identical number without re-pickling the payload (hot-path cost).
        try:
            self._conn.send((tag, nbytes, obj))
        except (BrokenPipeError, OSError) as exc:
            raise CommClosedError(
                f"peer gone while sending tag {tag}: {exc}"
            ) from exc

    def recv(self, source: int = 0, tag: int = 0, timeout: float | None = None) -> Any:
        """Receive one tagged message; bounded wait when ``timeout`` is set.

        ``timeout=None`` preserves the original blocking semantics (the
        synchronous barrier); any finite value converts a hung or crashed
        peer into a :class:`CommTimeout` the caller can act on.

        Crash-window hardening: ``poll(timeout)`` can report a readable
        handle and the peer then die before (or while) the frame is read —
        ``Connection.recv`` raises a bare ``EOFError``/``OSError`` in that
        window.  Both are normalised into :class:`CommClosedError` so the
        gather loops take the existing dead-rank path instead of crashing
        the master on a raw OS exception.  ``CommTimeout`` is raised
        *outside* the normalising handler: since Python 3.3 ``TimeoutError``
        *is* an ``OSError`` subclass, and a naive ``except OSError`` around
        the poll would silently re-label the timeout as a closed peer.
        """
        self._check_open()
        if timeout is not None:
            try:
                has_message = self._conn.poll(timeout)
            except OSError as exc:
                raise CommClosedError(
                    f"peer gone while polling tag {tag}: {exc}"
                ) from exc
            if not has_message:
                raise CommTimeout(
                    f"no message within {timeout:.3f}s (tag {tag}); "
                    "peer crashed or hung?"
                )
        try:
            got_tag, nbytes, obj = self._conn.recv()
        except (EOFError, OSError) as exc:
            raise CommClosedError(
                f"peer closed mid-frame while receiving tag {tag}: {exc}"
            ) from exc
        if got_tag != tag:
            raise RuntimeError(
                f"protocol error: expected message tag {tag}, received {got_tag}"
            )
        self.bytes_received += nbytes
        return obj

    def poll(self, timeout: float = 0.0) -> bool:
        """Non-blocking (or bounded) check for a waiting message."""
        if self._closed:
            return False
        return bool(self._conn.poll(timeout))

    def close(self) -> None:
        """Release the underlying connection; safe to call repeatedly."""
        if self._closed:
            return
        self._closed = True
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - already torn down by the OS
            pass
