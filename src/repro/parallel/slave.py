"""The slave-side work function: one tabu-search round.

Exactly one place turns a :class:`~repro.parallel.message.SlaveTask` into a
:class:`~repro.parallel.message.SlaveReport` — :meth:`SlaveRuntime.execute`
— shared by every backend, so serial, simulated and multiprocessing
executions of the same task are bit-identical (given the same seed), which
the backend-equivalence integration test asserts.

:func:`execute_task` is the one-shot *cold* entry point: it builds a fresh
:class:`~repro.parallel.runtime.SlaveRuntime` per call, which is what every
caller did implicitly before the warm-runtime layer existed.  Persistent
workers and the serial backend instead keep one runtime per slave and reuse
its arena across rounds (see :mod:`repro.parallel.runtime`); the two paths
produce identical reports (pinned by ``tests/test_runtime.py``).
"""

from __future__ import annotations

from ..core.instance import MKPInstance
from ..core.tabu_search import TabuSearchConfig
from .message import SlaveReport, SlaveTask
from .runtime import SlaveRuntime

__all__ = ["execute_task"]


def execute_task(
    instance: MKPInstance,
    config: TabuSearchConfig,
    task: SlaveTask,
    slave_id: int,
    runtime: SlaveRuntime | None = None,
) -> SlaveReport:
    """Run one tabu-search round; cold by default, warm when given a runtime.

    With ``runtime=None`` a fresh single-use :class:`SlaveRuntime` is built
    (the pre-warm behaviour).  Passing a cached runtime makes this the one
    call path for both temperatures — the backends use it so that only the
    runtime's *lifetime*, never the execution code, differs between them.
    """
    if runtime is not None:
        if runtime.slave_id != slave_id:
            raise ValueError(
                f"runtime belongs to slave {runtime.slave_id}, not {slave_id}"
            )
        return runtime.execute(task)
    return SlaveRuntime(instance, config, slave_id=slave_id).execute(task)
