"""The slave-side work function: one tabu-search round.

Exactly one place turns a :class:`~repro.parallel.message.SlaveTask` into a
:class:`~repro.parallel.message.SlaveReport`, shared by every backend, so
serial, simulated and multiprocessing executions of the same task are
bit-identical (given the same seed) — which the backend-equivalence
integration test asserts.
"""

from __future__ import annotations

from ..core.instance import MKPInstance
from ..core.tabu_search import TabuSearch, TabuSearchConfig
from .message import SlaveReport, SlaveTask

__all__ = ["execute_task"]


def execute_task(
    instance: MKPInstance,
    config: TabuSearchConfig,
    task: SlaveTask,
    slave_id: int,
) -> SlaveReport:
    """Run one tabu-search round and package the report."""
    thread = TabuSearch(
        instance,
        task.strategy,
        config=config,
        rng=task.seed,
    )
    result = thread.run(x_init=task.x_init, budget=task.budget)
    return SlaveReport(
        slave_id=slave_id,
        best=result.best,
        elite=result.elite,
        initial_value=result.initial_value,
        evaluations=result.evaluations,
        moves=result.moves,
        round_index=task.round_index,
        seq_id=task.seq_id,
    )
